"""CI smoke for the tradeoff-query service: the real binary, end to end.

Launches ``python -m repro serve`` as a subprocess (with a structured
access log), drives it with concurrent mixed requests (analytic +
simulation, repeats for cache hits) carrying pinned
``X-Repro-Request-Id`` headers, scrapes ``/metrics``,
``/v1/debug/profile`` (a short sampling window whose document must
validate and whose id must be annotated on its access-log record) and
``/v1/debug/trace``, writes every captured response envelope plus the
stats snapshot and the span-ring tail to disk, and SIGTERMs the server
to exercise the drain path.  The captured payloads are then validated
offline::

    PYTHONPATH=src python scripts/service_smoke.py --payload-dir payloads
    PYTHONPATH=src python -m repro.obs.validate \
        --service-response payloads/*.json \
        --access-log payloads/access_log.jsonl

Exit is non-zero if any request errors, if a *cached-config* simulation
dispatched to the step simulator (the replay engine must cover every
repeated query the smoke issues), if the server fails to drain cleanly
on SIGTERM, or if the three observability views disagree: the metrics
exposition must parse with a rolling-window p99 for every endpoint the
smoke hit, every ``request_id`` in the span ring must appear in the
access log, and the pinned simulate ids must appear in both.

With ``--workers N`` (N > 1) the same smoke drives the sharded fleet:
the router is launched with N workers, one worker is SIGKILLed while
the mixed traffic is in flight (every request must still succeed —
forwarding retries through the restart), the supervisor must respawn
the slot with a fresh pid, and ``--compare-results DIR`` asserts each
captured simulate ``result`` object is byte-identical to the one a
prior single-process run wrote to DIR::

    PYTHONPATH=src python scripts/service_smoke.py --payload-dir single
    PYTHONPATH=src python scripts/service_smoke.py --payload-dir fleet \
        --workers 2 --compare-results single
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.access_log import read_access_log
from repro.obs.live import parse_exposition
from repro.obs.schemas import (
    SchemaError,
    validate_access_log_record,
    validate_profile,
)
from repro.service import ServiceClient
from repro.util.jsonout import dump_json, write_json

SIMULATE_CONFIGS = [
    {
        "trace": {"kind": "spec92", "name": "swm256", "instructions": 3000, "seed": 7},
        "memory_cycle": beta,
    }
    for beta in (4.0, 8.0, 16.0)
] + [
    {"trace": {"kind": "matmul", "n": 16, "tile": 4}, "policy": "BNL3"},
]

ANALYTIC_REQUESTS = [
    ("execution-time", {"hit_ratio": 0.95, "memory_cycle": 8.0}),
    ("tradeoff", {"feature": "doubling-bus", "base_hit_ratio": 0.9}),
    ("ranking", {"base_hit_ratio": 0.9, "betas": [2.0, 8.0, 32.0]}),
    ("advise", {"memory_cycle": 12.0}),
]


def launch_server(access_log: Path, workers: int = 1) -> tuple[subprocess.Popen, int]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--batch-window-ms", "1", "--access-log", str(access_log),
         "--workers", str(workers)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={
            **os.environ,
            "PYTHONPATH": os.path.join(os.path.dirname(__file__), "..", "src"),
            "PYTHONUNBUFFERED": "1",
        },
    )
    line = process.stdout.readline()
    match = re.search(r"listening on .*:(\d+)", line)
    if not match:
        process.kill()
        raise SystemExit(f"server did not announce a port: {line!r}")
    return process, int(match.group(1))


def counter_total(counters: dict, name: str) -> float:
    """Sum a counter across the fleet: the router re-keys each worker's
    counters with a ``worker=`` label, so ``engine.step.calls`` becomes
    ``engine.step.calls{worker=w0}`` in the merged snapshot."""
    return sum(
        value
        for key, value in counters.items()
        if key == name or key.startswith(name + "{")
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--payload-dir",
        default="service_payloads",
        help="directory for captured response envelopes",
    )
    parser.add_argument(
        "--access-log",
        default=None,
        help="server access-log path (default: PAYLOAD_DIR/access_log.jsonl)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="span-ring tail export "
        "(default: PAYLOAD_DIR/trace/trace_tail.json, outside the "
        "--service-response glob)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fleet size; above 1 the smoke SIGKILLs a worker mid-run "
        "and asserts the supervisor respawns it (default: 1)",
    )
    parser.add_argument(
        "--compare-results",
        default=None,
        metavar="DIR",
        help="payload dir from a prior run; every captured simulate "
        "result object must be byte-identical to its counterpart there",
    )
    args = parser.parse_args(argv)
    payload_dir = Path(args.payload_dir)
    payload_dir.mkdir(parents=True, exist_ok=True)
    access_log_path = Path(args.access_log or payload_dir / "access_log.jsonl")
    trace_out = Path(
        args.trace_out or payload_dir / "trace" / "trace_tail.json"
    )

    process, port = launch_server(access_log_path, workers=args.workers)
    captured: dict[str, dict] = {}
    failures: list[str] = []
    lock = threading.Lock()

    def record(name: str, envelope: dict) -> None:
        with lock:
            captured[name] = envelope

    def analytic_worker() -> None:
        client = ServiceClient("127.0.0.1", port)
        try:
            for endpoint, params in ANALYTIC_REQUESTS * 3:
                envelope = client.request("POST", f"/v1/{endpoint}", params)
                record(f"analytic_{endpoint}", envelope)
        except Exception as error:  # noqa: BLE001 - reported at exit
            failures.append(f"analytic: {error!r}")
        finally:
            client.close()

    pinned_ids: set[str] = set()
    span_ids: set[str] = set()

    def simulate_worker(worker_id: int) -> None:
        client = ServiceClient("127.0.0.1", port)
        try:
            # Two passes over the same configs: the second is the
            # cached-config pass that must not touch the step engine.
            # Every request pins its own X-Repro-Request-Id, so the
            # access log and the span ring can be cross-checked by id.
            for round_id in range(2):
                for index, params in enumerate(SIMULATE_CONFIGS):
                    request_id = f"smoke-w{worker_id}-r{round_id}-c{index}"
                    with lock:
                        pinned_ids.add(request_id)
                    envelope = client.request(
                        "POST", "/v1/simulate", params, request_id=request_id
                    )
                    if envelope["result"]["engine"] != "replay":
                        failures.append(
                            f"config {index} served by "
                            f"{envelope['result']['engine']}, expected replay"
                        )
                    record(f"simulate_{index}_round{round_id}", envelope)
        except Exception as error:  # noqa: BLE001 - reported at exit
            failures.append(f"simulate[{worker_id}]: {error!r}")
        finally:
            client.close()

    try:
        probe = ServiceClient("127.0.0.1", port)
        probe.wait_ready(timeout=30.0)
        victim_pid = None
        if args.workers > 1:
            fleet_before = probe.stats_envelope().get("fleet", {})
            victim_pid = (
                fleet_before.get("workers", {}).get("w0", {}).get("pid")
            )
            if victim_pid is None:
                failures.append("fleet stats carry no pid for worker w0")
        threads = [threading.Thread(target=analytic_worker)] + [
            threading.Thread(target=simulate_worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        if victim_pid is not None:
            # Kill a worker while the mixed traffic is in flight: every
            # request must still succeed — the router retries transport
            # failures through the restart — and the supervisor must
            # respawn the slot with a fresh pid before we finish.
            time.sleep(0.3)
            os.kill(victim_pid, signal.SIGKILL)
        for thread in threads:
            thread.join()
        if victim_pid is not None:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                fleet_now = probe.stats_envelope().get("fleet", {})
                w0 = fleet_now.get("workers", {}).get("w0", {})
                if (
                    w0.get("alive")
                    and w0.get("pid") != victim_pid
                    and fleet_now.get("restarts", 0) >= 1
                ):
                    break
                time.sleep(0.2)
            else:
                failures.append(
                    f"worker w0 (pid {victim_pid}) was not respawned "
                    f"within 30s of SIGKILL"
                )
        stats = probe.stats_envelope()
        record("stats", stats)
        if args.workers > 1:
            fleet_section = stats.get("fleet", {})
            workers_info = fleet_section.get("workers", {})
            if len(workers_info) != args.workers:
                failures.append(
                    f"fleet stats list {len(workers_info)} workers, "
                    f"expected {args.workers}"
                )
            for name, info in workers_info.items():
                if not (info.get("alive") and info.get("reachable")):
                    failures.append(f"worker {name} not alive+reachable: {info}")

        # The live-observability surfaces, scraped while still serving.
        metrics_text = probe.metrics_text()
        samples = parse_exposition(metrics_text)
        (payload_dir / "metrics.prom").write_text(metrics_text)
        p99_endpoints = {
            labels["endpoint"]
            for labels, _ in samples.get("repro_sli_request_latency_ms", [])
            if labels.get("quantile") == "0.99"
        }
        for endpoint in ("simulate", "execution-time", "tradeoff"):
            if endpoint not in p99_endpoints:
                failures.append(
                    f"/metrics has no rolling-window p99 for {endpoint!r}"
                )
        if args.workers > 1 and (
            f"repro_fleet_workers {args.workers}" not in metrics_text
        ):
            failures.append("merged /metrics is missing the fleet gauges")
        # A short profiling window while traffic is still possible; the
        # document must validate and its id must land in the access log
        # as the debug-profile request's annotation.
        profile_document = probe.debug_profile(seconds=0.3, hz=199)
        try:
            validate_profile(profile_document)
        except SchemaError as error:
            failures.append(f"/v1/debug/profile document invalid: {error}")
        profile_id = profile_document.get("id")
        write_json(payload_dir / "trace" / "profile.json", profile_document)

        trace_document = probe.debug_trace(last=4096)
        write_json(trace_out, trace_document)
        if not trace_document.get("enabled"):
            failures.append("/v1/debug/trace reports tracing disabled")
        if args.workers > 1:
            # Distributed-tracing pin: one forwarded request must yield
            # a merged document where the router's forward span fathers
            # the worker's ingress span under one trace id.  The merged
            # doc is kept for the CI artifact upload.
            probe.simulate(
                trace={
                    "kind": "spec92",
                    "name": "swm256",
                    "instructions": 3000,
                    "seed": 997,
                },
                memory_cycle=6.0,
            )
            fleet_trace_id = probe.last_trace_id
            stitched = None
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                merged = probe.debug_trace(trace_id=fleet_trace_id)
                spans = [
                    e
                    for e in merged.get("traceEvents", [])
                    if e.get("ph") == "X"
                ]
                forwards = [
                    e
                    for e in spans
                    if e["name"] == "service.forward" and e["pid"] == 0
                ]
                worker_spans = [e for e in spans if e["pid"] >= 1]
                if forwards and worker_spans:
                    stitched = (merged, forwards[0], spans, worker_spans)
                    break
                time.sleep(0.2)
            if stitched is None:
                failures.append(
                    f"merged trace for {fleet_trace_id} never assembled "
                    f"router and worker spans"
                )
            else:
                merged, forward, spans, worker_spans = stitched
                write_json(payload_dir / "trace" / "fleet_trace.json", merged)
                if not all(
                    e.get("args", {}).get("trace_id") == fleet_trace_id
                    for e in spans
                ):
                    failures.append(
                        "merged trace mixes trace ids despite the filter"
                    )
                if not any(
                    e["args"].get("parent_span_id")
                    == forward["args"]["span_id"]
                    for e in worker_spans
                ):
                    failures.append(
                        "no worker span names the router's forward span "
                        "as its parent"
                    )
                if not any(
                    e.get("ph") == "f"
                    for e in merged.get("traceEvents", [])
                    if e.get("cat") == "repro.flow"
                ):
                    failures.append(
                        "merged trace carries no forward flow events"
                    )
        # The ring<->access-log invariant covers the router's own spans.
        # In fleet mode the merged document also carries worker tracks
        # (pid >= 1) whose internal scrape requests (/v1/stats,
        # /v1/debug/spans) mint worker-side ids the router never logs.
        span_ids.update(
            event["args"]["request_id"]
            for event in trace_document.get("traceEvents", [])
            if "request_id" in event.get("args", {})
            and (args.workers == 1 or event.get("pid") == 0)
        )
        if not pinned_ids <= span_ids:
            failures.append(
                f"pinned ids missing from the span ring: "
                f"{sorted(pinned_ids - span_ids)[:5]}"
            )
        probe.close()

        counters = stats["counters"]
        step_calls = counter_total(counters, "engine.step.calls")
        if step_calls:
            failures.append(f"{step_calls} step-simulator dispatches (want 0)")
        if stats["result_cache"]["hits"] == 0:
            failures.append("no result-cache hits despite repeated configs")
        if counter_total(counters, "service.phase1.resolves") > len(
            SIMULATE_CONFIGS
        ):
            failures.append("phase-1 ran more than once per distinct key")
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            failures.append("server did not drain within 30s of SIGTERM")

    if process.returncode != 0:
        failures.append(f"server exited with status {process.returncode}")
    tail = process.stdout.read()
    if "drained" not in tail:
        failures.append(f"server did not report a drain: {tail!r}")

    # Cross-check the access log (complete now that the drain closed it)
    # against the span ring: every id a span saw must belong to a logged
    # request, and the pinned simulate ids must appear in both views.
    try:
        records = read_access_log(access_log_path)
        for index, entry in enumerate(records, start=1):
            validate_access_log_record(entry)
    except (OSError, ValueError, SchemaError) as error:
        records = []
        failures.append(f"access log invalid: {error}")
    if not records:
        failures.append(f"access log {access_log_path} is empty")
    logged_ids = {entry["request_id"] for entry in records}
    if not span_ids <= logged_ids:
        failures.append(
            f"span request ids missing from the access log: "
            f"{sorted(span_ids - logged_ids)[:5]}"
        )
    if not pinned_ids <= logged_ids:
        failures.append(
            f"pinned ids missing from the access log: "
            f"{sorted(pinned_ids - logged_ids)[:5]}"
        )
    annotated = [
        entry for entry in records if entry.get("profile_id") == profile_id
    ]
    if profile_id is None or len(annotated) != 1:
        failures.append(
            f"expected exactly one access-log record annotated with "
            f"profile_id={profile_id!r}, found {len(annotated)}"
        )
    elif annotated[0]["endpoint"] != "debug-profile":
        failures.append(
            f"profile_id annotation on endpoint "
            f"{annotated[0]['endpoint']!r}, expected 'debug-profile'"
        )

    # Byte-identity across topologies: the fleet run must serialize the
    # same result objects a single-process run produced for every
    # simulate point (the router forwards worker bodies verbatim and
    # sharding must not change what gets computed).
    if args.compare_results is not None:
        reference_dir = Path(args.compare_results)
        compared = 0
        for name, envelope in sorted(captured.items()):
            if not name.startswith("simulate_"):
                continue
            reference_path = reference_dir / f"{name}.json"
            if not reference_path.exists():
                failures.append(f"no reference envelope {reference_path}")
                continue
            reference = json.loads(reference_path.read_text())
            if dump_json(reference["result"]) != dump_json(envelope["result"]):
                failures.append(
                    f"{name}: result differs from the run in {reference_dir}/"
                )
            compared += 1
        if compared == 0:
            failures.append(
                f"no simulate envelopes to compare against {reference_dir}/"
            )
        else:
            print(
                f"compared {compared} simulate results against "
                f"{reference_dir}/"
            )

    for name, envelope in sorted(captured.items()):
        write_json(payload_dir / f"{name}.json", envelope)
    print(
        f"captured {len(captured)} envelopes to {payload_dir}/ "
        f"({stats['result_cache']['hits']} cache hits, "
        f"{counter_total(counters, 'engine.replay.calls')} replay calls, "
        f"{counter_total(counters, 'engine.step.calls')} step calls); "
        f"{len(records)} access-log records, {len(span_ids)} traced ids"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(None))
