"""CI smoke for the tradeoff-query service: the real binary, end to end.

Launches ``python -m repro serve`` as a subprocess, drives it with
concurrent mixed requests (analytic + simulation, repeats for cache
hits), writes every captured response envelope plus the stats snapshot
to disk, and SIGTERMs the server to exercise the drain path.  The
captured payloads are then validated offline::

    PYTHONPATH=src python scripts/service_smoke.py --payload-dir payloads
    PYTHONPATH=src python -m repro.obs.validate \
        --service-response payloads/*.json

Exit is non-zero if any request errors, if a *cached-config* simulation
dispatched to the step simulator (the replay engine must cover every
repeated query the smoke issues), or if the server fails to drain
cleanly on SIGTERM.
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service import ServiceClient
from repro.util.jsonout import write_json

SIMULATE_CONFIGS = [
    {
        "trace": {"kind": "spec92", "name": "swm256", "instructions": 3000, "seed": 7},
        "memory_cycle": beta,
    }
    for beta in (4.0, 8.0, 16.0)
] + [
    {"trace": {"kind": "matmul", "n": 16, "tile": 4}, "policy": "BNL3"},
]

ANALYTIC_REQUESTS = [
    ("execution-time", {"hit_ratio": 0.95, "memory_cycle": 8.0}),
    ("tradeoff", {"feature": "doubling-bus", "base_hit_ratio": 0.9}),
    ("ranking", {"base_hit_ratio": 0.9, "betas": [2.0, 8.0, 32.0]}),
    ("advise", {"memory_cycle": 12.0}),
]


def launch_server() -> tuple[subprocess.Popen, int]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--batch-window-ms", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={
            **os.environ,
            "PYTHONPATH": os.path.join(os.path.dirname(__file__), "..", "src"),
            "PYTHONUNBUFFERED": "1",
        },
    )
    line = process.stdout.readline()
    match = re.search(r"listening on .*:(\d+)", line)
    if not match:
        process.kill()
        raise SystemExit(f"server did not announce a port: {line!r}")
    return process, int(match.group(1))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--payload-dir",
        default="service_payloads",
        help="directory for captured response envelopes",
    )
    args = parser.parse_args(argv)
    payload_dir = Path(args.payload_dir)
    payload_dir.mkdir(parents=True, exist_ok=True)

    process, port = launch_server()
    captured: dict[str, dict] = {}
    failures: list[str] = []
    lock = threading.Lock()

    def record(name: str, envelope: dict) -> None:
        with lock:
            captured[name] = envelope

    def analytic_worker() -> None:
        client = ServiceClient("127.0.0.1", port)
        try:
            for endpoint, params in ANALYTIC_REQUESTS * 3:
                envelope = client.request("POST", f"/v1/{endpoint}", params)
                record(f"analytic_{endpoint}", envelope)
        except Exception as error:  # noqa: BLE001 - reported at exit
            failures.append(f"analytic: {error!r}")
        finally:
            client.close()

    def simulate_worker(worker_id: int) -> None:
        client = ServiceClient("127.0.0.1", port)
        try:
            # Two passes over the same configs: the second is the
            # cached-config pass that must not touch the step engine.
            for round_id in range(2):
                for index, params in enumerate(SIMULATE_CONFIGS):
                    envelope = client.simulate(**params)
                    if envelope["result"]["engine"] != "replay":
                        failures.append(
                            f"config {index} served by "
                            f"{envelope['result']['engine']}, expected replay"
                        )
                    record(f"simulate_{index}_round{round_id}", envelope)
        except Exception as error:  # noqa: BLE001 - reported at exit
            failures.append(f"simulate[{worker_id}]: {error!r}")
        finally:
            client.close()

    try:
        probe = ServiceClient("127.0.0.1", port)
        probe.wait_ready(timeout=30.0)
        threads = [threading.Thread(target=analytic_worker)] + [
            threading.Thread(target=simulate_worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = probe.stats()
        record("stats", stats)
        probe.close()

        counters = stats["counters"]
        step_calls = counters.get("engine.step.calls", 0)
        if step_calls:
            failures.append(f"{step_calls} step-simulator dispatches (want 0)")
        if stats["result_cache"]["hits"] == 0:
            failures.append("no result-cache hits despite repeated configs")
        if counters.get("service.phase1.resolves", 0) > len(SIMULATE_CONFIGS):
            failures.append("phase-1 ran more than once per distinct key")
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            failures.append("server did not drain within 30s of SIGTERM")

    if process.returncode != 0:
        failures.append(f"server exited with status {process.returncode}")
    tail = process.stdout.read()
    if "drained" not in tail:
        failures.append(f"server did not report a drain: {tail!r}")

    for name, envelope in sorted(captured.items()):
        write_json(payload_dir / f"{name}.json", envelope)
    print(
        f"captured {len(captured)} envelopes to {payload_dir}/ "
        f"({stats['result_cache']['hits']} cache hits, "
        f"{counters.get('engine.replay.calls', 0)} replay calls, "
        f"{counters.get('engine.step.calls', 0)} step calls)"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(None))
