"""CI smoke for campaign orchestration: kill, resume, byte-identity.

Boots a 2-worker fleet (``python -m repro serve --workers 2
--campaign-dir REG``), submits a 16-point campaign to the router, and
then breaks things on purpose:

1. one worker is SIGKILLed while the campaign is in flight — the
   router's retry-through-restart must absorb it (zero errored points);
2. the router itself is SIGTERMed mid-campaign — the drain must
   checkpoint, and a restarted fleet must *resume* from that checkpoint
   when the same spec is re-POSTed (no auto-resume on boot, and
   ``created`` must come back false).

After the resumed run completes, the registry the fleet wrote is
compared byte-for-byte against an in-process ``run_campaign`` of the
same spec into a fresh registry — the crash, the worker death, and the
service path must all be invisible in the final artifacts.  The span
spools every fleet process left behind (``--span-spool-dir`` fans one
root out into ``router``/``w0``/..) must validate end to end — the
phase-1 crash leaves an unsealed active file the phase-2 restart seals
— and assemble into a campaign-filtered Perfetto timeline carrying the
executor's ``campaign.*`` spans.  CI then runs ``python -m
repro.obs.validate --campaign REG/<id>`` over the directory and uploads
it as a build artifact::

    PYTHONPATH=src python scripts/campaign_smoke.py --registry campaign_smoke
    PYTHONPATH=src python -m repro.obs.validate \
        --campaign campaign_smoke/$(ls campaign_smoke | grep -v baselines) \
        --spans campaign_smoke_spans/router
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.campaign.executor import run_campaign
from repro.campaign.registry import CAMPAIGN_DIR_ENV, CampaignRegistry
from repro.service import ServiceClient

SPEC = {
    "name": "ci-smoke",
    "traces": [
        {"kind": "spec92", "name": "ear", "instructions": 8000, "seed": 7}
    ],
    "caches": [
        {"total_bytes": 1 << n, "line_size": 32} for n in (11, 12, 13, 14)
    ],
    "policies": ["FS", "BNL3"],
    "memory_cycles": [8.0, 16.0],
}  # 16 points


def launch_fleet(
    registry: Path, workers: int, span_spool: Path
) -> tuple[subprocess.Popen, int]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--batch-window-ms", "1", "--workers", str(workers),
         "--campaign-dir", str(registry),
         "--span-spool-dir", str(span_spool)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={
            **os.environ,
            "PYTHONPATH": os.path.join(os.path.dirname(__file__), "..", "src"),
            "PYTHONUNBUFFERED": "1",
            # The env override beats --campaign-dir; keep them agreeing.
            CAMPAIGN_DIR_ENV: str(registry),
        },
    )
    line = process.stdout.readline()
    match = re.search(r"listening on .*:(\d+)", line)
    if not match:
        process.kill()
        raise SystemExit(f"fleet did not announce a port: {line!r}")
    return process, int(match.group(1))


def stop_fleet(process: subprocess.Popen, failures: list) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30.0)
    except subprocess.TimeoutExpired:
        process.kill()
        failures.append("fleet did not drain within 30s of SIGTERM")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--registry",
        default="campaign_smoke",
        help="registry directory the fleet writes (uploaded by CI)",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--span-spool",
        default=None,
        help="span-spool root the fleet writes one subdirectory per "
        "process into (default: REGISTRY_spans); validated and "
        "assembled into a campaign timeline at exit",
    )
    args = parser.parse_args(argv)
    registry_dir = Path(args.registry).resolve()
    registry_dir.mkdir(parents=True, exist_ok=True)
    span_spool = Path(
        args.span_spool
        or registry_dir.parent / f"{registry_dir.name}_spans"
    ).resolve()
    failures: list = []

    # -- phase 1: submit, SIGKILL a worker, SIGTERM the router mid-run --
    process, port = launch_fleet(registry_dir, args.workers, span_spool)
    client = ServiceClient("127.0.0.1", port)
    client.wait_ready(timeout=60.0)
    view = client.submit_campaign(SPEC)
    campaign_id = view["campaign"]
    print(f"submitted campaign {campaign_id[:12]} "
          f"({view['progress']['points']} points) on port {port}")
    if args.workers > 1:
        victim = client.stats_envelope()["fleet"]["workers"]["w0"]["pid"]
        os.kill(victim, signal.SIGKILL)
        print(f"SIGKILLed worker w0 (pid {victim})")
    # SIGTERM the router while points are (very likely) still in
    # flight: the drain must checkpoint whatever landed.  Wherever the
    # kill caught it, the resumed run must converge on the same bytes.
    time.sleep(0.5)
    print("SIGTERMing the router mid-campaign")
    client.close()
    stop_fleet(process, failures)

    interrupted = CampaignRegistry(registry_dir).get(campaign_id)
    checkpointed = interrupted.progress()["done"]
    print(f"drained with {checkpointed} points checkpointed")

    # -- phase 2: restart, re-POST the same spec, run to completion ----
    process, port = launch_fleet(registry_dir, args.workers, span_spool)
    client = ServiceClient("127.0.0.1", port)
    client.wait_ready(timeout=60.0)
    booted = client.campaign_status(campaign_id)["progress"]
    if booted["done"] != checkpointed:
        failures.append(
            f"restarted fleet reports {booted['done']} done, "
            f"checkpoint said {checkpointed} (auto-resume? lost state?)"
        )
    again = client.submit_campaign(SPEC)
    if again["created"]:
        failures.append("re-POSTed spec registered a new campaign")
    done = client.wait_campaign(campaign_id, timeout=300.0)
    if done["progress"]["errors"]:
        failures.append(
            f"campaign finished with {done['progress']['errors']} errors"
        )
    records = list(client.campaign_results(campaign_id))
    if len(records) != done["progress"]["points"] + 2:
        failures.append(
            f"results stream carried {len(records)} lines for "
            f"{done['progress']['points']} points"
        )
    if args.workers > 1:
        w0 = client.stats_envelope()["fleet"]["workers"]["w0"]
        if not w0["alive"]:
            failures.append("worker w0 was not respawned after SIGKILL")
    client.close()
    stop_fleet(process, failures)
    print(f"resumed to completion: {done['progress']['done']} done")

    # -- phase 3: byte-identity against an in-process run --------------
    server_campaign = CampaignRegistry(registry_dir).get(campaign_id)
    local_root = registry_dir.parent / f"{registry_dir.name}_local"
    os.environ[CAMPAIGN_DIR_ENV] = str(local_root)
    local = CampaignRegistry(local_root)
    reference, _ = local.submit(SPEC)
    report = run_campaign(reference)
    if not report["progress"]["complete"]:
        failures.append("local reference run did not complete")
    elif (
        server_campaign.results_path.read_bytes()
        != reference.results_path.read_bytes()
    ):
        failures.append(
            "fleet-written results.jsonl differs from the local run"
        )
    else:
        print(
            f"byte-identity: fleet and local results.jsonl match "
            f"({server_campaign.results_path.stat().st_size} bytes)"
        )

    # -- phase 4: the span spools the fleet left must validate and ----
    # assemble into a campaign-filtered timeline (the crash in phase 1
    # left an unsealed active file; the phase-2 restart sealed it, so
    # the whole spool is checksummed end to end).
    from repro.obs.cli import assemble_timeline
    from repro.obs.schemas import SchemaError, validate_chrome_trace
    from repro.obs.span_spool import validate_spool

    spool_dirs = sorted(
        entry for entry in span_spool.iterdir() if entry.is_dir()
    ) if span_spool.is_dir() else []
    if not spool_dirs:
        failures.append(f"fleet left no span spools under {span_spool}")
    total_spans = 0
    for spool_dir in spool_dirs:
        try:
            counts = validate_spool(str(spool_dir))
        except (OSError, SchemaError) as error:
            failures.append(f"span spool {spool_dir.name} invalid: {error}")
            continue
        total_spans += counts["records"]
    try:
        timeline = assemble_timeline(
            str(span_spool), str(registry_dir / campaign_id)
        )
        validate_chrome_trace(timeline)
        campaign_spans = [
            e
            for e in timeline["traceEvents"]
            if e.get("ph") == "X"
            and e.get("name", "").startswith("campaign.")
        ]
        if not campaign_spans:
            failures.append(
                "campaign timeline carries no campaign.* spans"
            )
        else:
            print(
                f"span spools ok: {total_spans} spans across "
                f"{len(spool_dirs)} processes, campaign timeline has "
                f"{len(campaign_spans)} campaign spans"
            )
    except (OSError, ValueError, KeyError, SchemaError) as error:
        failures.append(f"campaign timeline assembly failed: {error}")

    if failures:
        print("FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"campaign smoke ok: registry at {registry_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
