"""Quickstart: the unified tradeoff methodology in five minutes.

The paper's question: you have a design budget — spend it on a bigger
cache, a wider bus, write buffers, or a pipelined memory?  The answer is
expressed in one currency: cache hit ratio.

Run:  python examples/quickstart.py
"""

from repro import SystemConfig, doubling_tradeoff, pipelined_tradeoff, write_buffer_tradeoff
from repro.core import (
    hit_ratio_gain_equivalent_to_doubling,
    pipelined_vs_doubling_crossover,
)


def main() -> None:
    # A 1994-vintage RISC system: 4-byte bus, 32-byte lines, memory that
    # needs 8 CPU clocks per bus transfer, best-case pipelining (q = 2).
    config = SystemConfig(
        bus_width=4, line_size=32, memory_cycle=8.0, pipeline_turnaround=2.0
    )
    base_hr = 0.95  # the data cache we can afford today

    print("System: D=4 B, L=32 B, beta_m=8 clocks, q=2, base HR=95%\n")

    # 1. What is doubling the bus worth, in hit ratio?
    bus = doubling_tradeoff(config, base_hr)
    print(
        f"Doubling the bus lets the cache shrink until HR = "
        f"{bus.feature_hit_ratio:.2%} (a {bus.hit_ratio_delta:.2%} trade)."
    )

    # 2. Same question for read-bypassing write buffers...
    buffers = write_buffer_tradeoff(config, base_hr)
    print(
        f"Write buffers (best case) are worth {buffers.hit_ratio_delta:.2%} "
        "of hit ratio."
    )

    # 3. ...and for a pipelined memory system.
    pipe = pipelined_tradeoff(config, base_hr)
    print(f"A pipelined memory is worth {pipe.hit_ratio_delta:.2%}.")

    # 4. The reverse question: how much must the cache grow to match a
    #    doubled bus?  (The paper's 0.5-0.6 x (1-HR) rule.)
    gain = hit_ratio_gain_equivalent_to_doubling(config, base_hr)
    print(
        f"\nKeeping the narrow bus instead requires raising HR by "
        f"{gain:.2%} ({gain / (1 - base_hr):.2f} x (1-HR))."
    )

    # 5. When does pipelining overtake the wider bus?
    crossover = pipelined_vs_doubling_crossover(
        config.line_size, config.bus_width, config.pipeline_turnaround
    )
    print(
        f"\nPipelining overtakes the doubled bus once beta_m exceeds "
        f"{crossover:.2f} clocks — at beta_m=8 it is already the best "
        "single feature."
    )


if __name__ == "__main__":
    main()
