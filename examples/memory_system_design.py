"""Memory-system design sweep (paper Section 5.3, Figures 3-5).

Given a target line size and cache, sweep the memory cycle time and
print which feature to buy at each point — including the pipelined
crossover the paper highlights — plus an ASCII rendering of the curves.

Run:  python examples/memory_system_design.py [line_size]
"""

import sys

from repro.core import SystemConfig, unified_comparison
from repro.core.features import ArchFeature
from repro.util.ascii_plot import AsciiPlot

LABELS = {
    ArchFeature.DOUBLING_BUS: "doubling bus",
    ArchFeature.WRITE_BUFFERS: "write buffers",
    ArchFeature.PIPELINED_MEMORY: "pipelined memory",
}


def main() -> None:
    line_size = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    betas = [float(b) for b in range(2, 21, 2)]
    config = SystemConfig(4, line_size, betas[0], pipeline_turnaround=2.0)
    comparison = unified_comparison(config, 0.95, betas, flush_ratio=0.5)

    plot = AsciiPlot(
        title=f"Hit ratio traded (%), L={line_size} B, D=4 B, base HR=95%",
        xlabel="memory cycle time per 4 bytes",
        ylabel="hit ratio traded (%)",
    )
    for feature, sweep in comparison.sweeps.items():
        plot.add_series(
            LABELS[feature], list(sweep.memory_cycles),
            [100 * v for v in sweep.hit_ratio_traded],
        )
    print(plot.render())

    print("\nBest single feature by memory cycle time:")
    for beta in betas:
        best = comparison.ranking_at(beta)[0]
        print(f"  beta_m={beta:>4.0f}: {LABELS[best]}")

    crossover = comparison.pipelined_crossover_vs(ArchFeature.DOUBLING_BUS)
    if crossover is None:
        print(
            "\nPipelining never overtakes the doubled bus at this line size "
            "(L = 2D — paper Figure 3)."
        )
    else:
        print(
            f"\nPipelining overtakes the doubled bus at beta_m ~ "
            f"{crossover:.1f} clocks (paper: about 5-6 for L/D >= 2, q=2)."
        )


if __name__ == "__main__":
    main()
