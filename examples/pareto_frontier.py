"""Pareto frontier over feature bundles — including "just grow the cache".

The paper prices features one at a time; a design team combines them and
always has the baseline alternative of a bigger cache.  Using the
numeric equivalence solver under the hood, this script evaluates all
eight bundles of {2x bus, write buffers, pipelined memory} plus 2x/4x
cache growth, prices each in pins / rbe area / memory banks, and prints
the Pareto-efficient set.  At a 32K cache, growing the cache is
dominated by cheap features — Section 5.2's conclusion falling out of
the frontier.

Run:  python examples/pareto_frontier.py
"""

from repro.analysis.pareto import evaluate_bundles, pareto_front
from repro.analysis.short_levy import short_levy_curve
from repro.core.params import SystemConfig
from repro.util.tables import format_table

KIB = 1024


def show(memory_cycle: float) -> None:
    # The design's current cache is 32K at HR 95.5% (Short & Levy).
    curve = short_levy_curve()
    cache_bytes = 32 * KIB
    config = SystemConfig(4, 32, memory_cycle, pipeline_turnaround=2.0)
    points = evaluate_bundles(
        config,
        base_hit_ratio=curve.hit_ratio(cache_bytes),
        hit_ratio_curve=curve,
        cache_bytes=cache_bytes,
    )
    front = pareto_front(points)
    front_bundles = {p.bundle for p in front}

    rows = [
        (
            point.bundle.label,
            f"{point.speedup:.3f}x",
            f"{point.pin_cost:.0f}",
            f"{point.area_cost_rbe:.0f}",
            point.memory_banks,
            "*" if point.bundle in front_bundles else "",
        )
        for point in sorted(points, key=lambda p: -p.speedup)
    ]
    print(
        format_table(
            ["bundle", "speedup", "pins", "area (rbe)", "banks", "Pareto"],
            rows,
            title=f"beta_m = {memory_cycle:g} clocks, 32K cache (HR 95.5%)",
        )
    )
    print()


def main() -> None:
    print(
        "Feature bundles priced with the numeric equivalence solver;\n"
        "'*' marks the Pareto-efficient set.\n"
    )
    for memory_cycle in (4.0, 12.0):
        show(memory_cycle)
    print(
        "Cache growth is dominated (huge area for modest speedup at an\n"
        "already-large cache: Section 5.2); among features, fast memory\n"
        "favors the wide bus and slow memory the pipelined bundles — the\n"
        "Figures 3-5 story, now with costs attached."
    )


if __name__ == "__main__":
    main()
