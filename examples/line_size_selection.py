"""Line-size selection, end to end (paper Section 5.4).

Instead of the published design-target tables, this script *measures*
miss ratios per line size with the cache simulator on a synthetic
workload, then asks both criteria — Smith's minimum miss delay (Eq. 16)
and the paper's maximum reduced delay (Eq. 19) — for the optimal line,
demonstrating on live data that they always agree.

Run:  python examples/line_size_selection.py
"""

from repro.cache.cache import Cache, CacheConfig
from repro.core.smith import reduced_memory_delay, smith_optimal_line, tradeoff_optimal_line
from repro.trace.spec92 import spec92_trace
from repro.util.tables import format_table

CACHE_BYTES = 8192
LINE_SIZES = (8, 16, 32, 64, 128)
BASE_LINE = 8


def measured_miss_table(trace) -> dict[int, float]:
    """Miss ratio per candidate line size, same cache capacity."""
    table = {}
    for line in LINE_SIZES:
        cache = Cache(CacheConfig(CACHE_BYTES, line, 2))
        for inst in trace:
            if inst.kind.is_memory:
                cache.read(inst.address)
        table[line] = cache.stats.miss_ratio
    return table


def main() -> None:
    trace = spec92_trace("nasa7", 40_000, seed=3)
    table = measured_miss_table(trace)

    print("Measured miss ratios (8K 2-way, nasa7 stand-in):")
    print(
        format_table(
            ["line size (B)", "miss ratio"],
            [(line, table[line]) for line in LINE_SIZES],
        )
    )

    print("\nOptimal line per memory timing (c = latency, beta = bus cycles/4B):")
    rows = []
    agree_everywhere = True
    for latency, beta in ((4.0, 1.0), (8.0, 2.0), (12.0, 2.0), (20.0, 6.0)):
        smith = smith_optimal_line(table, latency, beta, 4)
        ours = tradeoff_optimal_line(table, BASE_LINE, latency, beta, 4)
        agree_everywhere &= smith == ours
        rows.append((latency, beta, smith, ours, "yes" if smith == ours else "NO"))
    print(
        format_table(
            ["c", "beta", "Smith Eq.(16)", "tradeoff Eq.(19)", "agree"],
            rows,
        )
    )
    print(
        "\nEq. (19) and Smith's criterion agree everywhere: "
        + ("yes" if agree_everywhere else "NO")
    )

    # The reduced-delay picture at one operating point.
    print("\nReduced memory delay over the 8-byte base line (c=12, beta=2):")
    for point in reduced_memory_delay(table, BASE_LINE, 12.0, 2.0, 4):
        marker = "beneficial" if point.beneficial else "not worth it"
        print(
            f"  L={point.line_size:>3}: gain {point.actual_gain:+.4f}, "
            f"required {point.required_gain:.4f} -> "
            f"reduced delay {point.reduced_delay:+.4f} ({marker})"
        )


if __name__ == "__main__":
    main()
