"""Stalling-factor study: measure phi for your workload and use it.

The paper measures the stalling factor phi by trace-driven simulation
(Figure 1) and feeds it into the tradeoff model (Section 4.2).  This
script does the full loop on one SPEC92 stand-in workload:

1. build the trace;
2. simulate every Table 2 blocking policy and measure phi;
3. verify the Eq. (2) model reproduces the simulated cycles exactly;
4. convert the measured BNL1/BNL3 phi into traded hit ratio.

Run:  python examples/stalling_factor_study.py [program] [instructions]
"""

import sys

from repro.analysis.characterize import characterize
from repro.cache.cache import CacheConfig
from repro.core import SystemConfig, execution_time, partial_stall_tradeoff
from repro.core.stalling import MEASURED_POLICIES, StallPolicy
from repro.cpu.processor import TimingSimulator
from repro.memory.mainmem import MainMemory
from repro.trace.spec92 import SPEC92_PROFILES, spec92_trace
from repro.util.tables import format_table

CACHE = CacheConfig(total_bytes=8192, line_size=32, associativity=2)
BETA_M = 8.0
BUS_WIDTH = 4


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "swm256"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000
    if program not in SPEC92_PROFILES:
        raise SystemExit(
            f"unknown program {program!r}; choose from {sorted(SPEC92_PROFILES)}"
        )

    trace = spec92_trace(program, length, seed=7)
    run = characterize(trace, CACHE)
    print(
        f"{program}: {length} instructions, data hit ratio "
        f"{run.hit_ratio:.1%}, alpha={run.workload.flush_ratio:.2f}\n"
    )

    config = SystemConfig(BUS_WIDTH, 32, BETA_M)
    rows = []
    for policy in (StallPolicy.FULL_STALL, *MEASURED_POLICIES):
        sim = TimingSimulator(CACHE, MainMemory(BETA_M, BUS_WIDTH), policy=policy)
        result = sim.run(trace)
        predicted = execution_time(
            run.workload, config, stall_factor=result.stall_factor, policy=policy
        )
        rows.append(
            (
                policy.value,
                result.stall_factor,
                result.stall_percentage(8),
                result.cycles,
                "yes" if abs(predicted - result.cycles) < 1e-6 else "NO",
            )
        )
    print(
        format_table(
            ["policy", "phi", "% of L/D", "cycles", "Eq.(2) exact?"],
            rows,
            title=f"Measured stalling factors at beta_m={BETA_M:.0f}",
        )
    )

    # What the measured partial stalling is worth in hit ratio.
    print()
    for policy in (StallPolicy.BUS_NOT_LOCKED_1, StallPolicy.BUS_NOT_LOCKED_3):
        sim = TimingSimulator(CACHE, MainMemory(BETA_M, BUS_WIDTH), policy=policy)
        phi = sim.run(trace).stall_factor
        trade = partial_stall_tradeoff(
            config, 0.95, measured_stall_factor=phi, policy=policy
        )
        print(
            f"Switching FS -> {policy.value} (phi={phi:.2f}) is worth "
            f"{trade.hit_ratio_delta:.2%} of hit ratio at a 95% base."
        )


if __name__ == "__main__":
    main()
