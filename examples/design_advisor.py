"""Design advisor: "I have one budget line — what do I buy?"

Feeds a design brief (current geometry, memory speed, cache size and a
hit-ratio-vs-size curve) to the advisor, which prices every paper
feature in the unified hit-ratio currency plus pins/area, and explains
how the recommendation flips as the memory gets slower.

Run:  python examples/design_advisor.py
"""

from repro.analysis.design_advisor import DesignBrief, recommend
from repro.analysis.short_levy import short_levy_curve
from repro.core.params import SystemConfig

KIB = 1024


def advise(memory_cycle: float) -> None:
    brief = DesignBrief(
        config=SystemConfig(4, 32, memory_cycle, pipeline_turnaround=2.0),
        cache_bytes=8 * KIB,
        hit_ratio_curve=short_levy_curve(),
        measured_stall_factor=0.92 * 8,  # BNL1 from the Figure 1 runs
    )
    print(
        f"--- beta_m = {memory_cycle:g} clocks, 8K cache "
        f"(HR {brief.base_hit_ratio:.1%}) ---"
    )
    for rank, rec in enumerate(recommend(brief), start=1):
        print(f"  {rank}. {rec.summary}")
    print()


def main() -> None:
    print(
        "Advisor output for three memory speeds (the paper's Section 5.3\n"
        "story: fast memory -> buy the bus; slow memory -> buy the\n"
        "pipelined memory system).\n"
    )
    for memory_cycle in (2.5, 4.7, 12.0):
        advise(memory_cycle)


if __name__ == "__main__":
    main()
