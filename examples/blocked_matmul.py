"""Blocked matrix multiply through the methodology's lens.

Generates the exact reference stream of a 48x48 double-precision matmul
(55 KB of matrices against an 8 KB cache), untiled and tiled, and asks
the paper's questions of it:

1. what does tiling do to the hit ratio (the software knob the paper's
   hardware features compete with)?
2. what line size does the Smith/Eq. 19 criterion pick for each variant?
3. what is each hardware feature worth on each variant (Eq. 6)?

Run:  python examples/blocked_matmul.py
"""

from repro.cache.cache import Cache, CacheConfig
from repro.core.bus_width import doubling_tradeoff
from repro.core.params import SystemConfig
from repro.core.pipelined import pipelined_tradeoff
from repro.core.smith import smith_optimal_line
from repro.trace.loops import square_matmul_trace
from repro.trace.record import OpKind
from repro.util.tables import format_table

N = 48
CACHE_BYTES = 8192
CONFIG = SystemConfig(4, 32, 8.0, pipeline_turnaround=2.0)


def miss_table(trace, line_sizes=(8, 16, 32, 64, 128)):
    table = {}
    for line in line_sizes:
        cache = Cache(CacheConfig(CACHE_BYTES, line, 2))
        for inst in trace:
            if inst.kind is OpKind.LOAD:
                cache.read(inst.address)
            elif inst.kind is OpKind.STORE:
                cache.write(inst.address)
        table[line] = cache.stats.miss_ratio
    return table


def main() -> None:
    variants = {
        "untiled ijk": square_matmul_trace(N),
        "tiled 8x8x8": square_matmul_trace(N, tile=8),
    }
    rows = []
    for name, trace in variants.items():
        table = miss_table(trace)
        hit_ratio = 1.0 - table[32]
        optimal = smith_optimal_line(table, latency=8.0, transfer=2.0, bus_width=4)
        bus = doubling_tradeoff(CONFIG, hit_ratio).hit_ratio_delta
        pipe = pipelined_tradeoff(CONFIG, hit_ratio).hit_ratio_delta
        rows.append(
            (
                name,
                f"{hit_ratio:.1%}",
                optimal,
                f"{bus:.2%}",
                f"{pipe:.2%}",
            )
        )
    print(
        format_table(
            [
                "variant",
                "HR (L=32)",
                "optimal L (Smith/Eq.19)",
                "2x bus worth",
                "pipelining worth",
            ],
            rows,
            title=f"{N}x{N} double matmul on an 8K 2-way cache, beta_m=8",
        )
    )
    print(
        "\nTiling raises the hit ratio so much that every hardware feature\n"
        "is worth *less* afterwards (Eq. 6 scales with 1-HR): good software\n"
        "shrinks the hardware problem — and the methodology quantifies by\n"
        "exactly how much."
    )


if __name__ == "__main__":
    main()
