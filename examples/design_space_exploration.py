"""Design-space exploration: pins versus silicon (paper Example 1).

A microprocessor team must choose between a 64-bit external bus with a
small on-chip cache and a 32-bit bus with a bigger cache.  Using the
Short & Levy hit-ratio curve, this script prices every equal-performance
pair in package pins and cache area — reproducing the paper's Section
5.2 conclusion that the right answer flips as the cache grows.

Run:  python examples/design_space_exploration.py
"""

from repro.analysis.chip_area import CacheAreaModel, PackageModel, bus_width_pin_delta
from repro.analysis.short_levy import short_levy_curve
from repro.core.bus_width import asymptotic_hit_ratio
from repro.util.tables import format_table

KIB = 1024


def main() -> None:
    curve = short_levy_curve()
    area_model = CacheAreaModel()
    package = PackageModel()

    pin_cost = bus_width_pin_delta(32, 64, package)
    print(
        f"Widening the data bus 32 -> 64 bits costs about {pin_cost:.0f} "
        "extra package pins (signals + supply pairs).\n"
    )

    rows = []
    for wide_cache_kib in (32, 128):
        wide_cache = wide_cache_kib * KIB
        wide_hr = curve.hit_ratio(wide_cache)
        # The equal-performance narrow-cache system on a doubled bus
        # (asymptotic rule HR2 = 2 HR1 - 1, Section 4.1).
        narrow_hr = asymptotic_hit_ratio(wide_hr)
        narrow_cache = curve.size_for_hit_ratio(narrow_hr)
        extra_area = area_model.area(wide_cache, 32, 2) - area_model.area(
            int(narrow_cache), 32, 2
        )
        area_per_pin = extra_area / pin_cost
        rows.append(
            (
                f"{narrow_cache / KIB:.0f}K + 64-bit",
                f"{wide_cache_kib}K + 32-bit",
                f"{wide_hr:.2%} vs {narrow_hr:.2%}",
                f"{extra_area / 1000:.0f}k rbe",
                f"{area_per_pin:.0f} rbe/pin",
            )
        )

    print(
        format_table(
            [
                "wide-bus design",
                "wide-cache design",
                "hit ratios (cache/bus)",
                "cache area saved by bus",
                "area per pin spent",
            ],
            rows,
            title="Equal-performance design pairs",
        )
    )
    print(
        "\nReading the last column: the silicon a 64-bit bus saves per pin\n"
        "grows several-fold between the 8K/32K pair and the 32K/128K pair —\n"
        "small systems should buy cache, large systems should buy pins\n"
        "(paper Section 5.2)."
    )


if __name__ == "__main__":
    main()
