"""Campaigns as a service: endpoints, background execution, restart.

Every test byte-compares the server-written registry against a local
(in-process) run of the same spec — the two executors must be
interchangeable artifacts-for-artifacts.
"""

import time

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.registry import (
    CAMPAIGN_DIR_ENV,
    CampaignRegistry,
    validate_campaign_dir,
)
from repro.service import ServerConfig, ServerThread, ServiceClient, ServiceError

DOC = {
    "name": "svc",
    "traces": [{"kind": "spec92", "name": "ear", "instructions": 600}],
    "caches": [
        {"total_bytes": 4096, "line_size": 32, "associativity": 1},
        {"total_bytes": 8192, "line_size": 32, "associativity": 2},
    ],
    "policies": ["FS"],
    "memory_cycles": [4.0, 8.0],
}


def _local_reference(tmp_path, doc=DOC):
    registry = CampaignRegistry(tmp_path / "local-ref")
    campaign, _ = registry.submit(doc)
    assert run_campaign(campaign)["progress"]["complete"]
    return campaign


@pytest.fixture
def campaign_server(tmp_path, monkeypatch):
    registry_dir = tmp_path / "server-reg"
    # The env override beats the configured path, so aim both at the
    # same per-test directory.
    monkeypatch.setenv(CAMPAIGN_DIR_ENV, str(registry_dir))
    config = ServerConfig(
        batch_window_s=0.001, campaign_dir=str(registry_dir)
    )
    with ServerThread(config) as handle:
        client = ServiceClient("127.0.0.1", handle.port)
        client.wait_ready(timeout=30.0)
        yield client, registry_dir
        client.close()


class TestDisabled:
    def test_endpoints_answer_503_without_campaign_dir(self):
        with ServerThread(ServerConfig(batch_window_s=0.001)) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            try:
                client.wait_ready(timeout=30.0)
                with pytest.raises(ServiceError) as excinfo:
                    client.submit_campaign(DOC)
                assert excinfo.value.status == 503
                assert excinfo.value.code == "campaigns_disabled"
                with pytest.raises(ServiceError) as excinfo:
                    client.campaigns()
                assert excinfo.value.status == 503
            finally:
                client.close()


class TestEndpoints:
    def test_submit_runs_streams_and_matches_local(
        self, campaign_server, tmp_path
    ):
        client, registry_dir = campaign_server
        view = client.submit_campaign(DOC)
        assert view["created"] is True
        assert view["name"] == "svc"
        campaign_id = view["campaign"]
        done = client.wait_campaign(campaign_id[:12], timeout=120.0)
        assert done["progress"] == {
            "points": 4,
            "done": 4,
            "errors": 0,
            "excluded": 0,
            "pending": 0,
            "complete": True,
        }

        # Listing and status agree.
        listed = client.campaigns()
        assert [v["campaign"] for v in listed] == [campaign_id]

        # The results stream carries the registry's exact framing.
        records = list(client.campaign_results("svc"))
        assert records[0]["schema"] == "repro.campaign.results/1"
        assert records[-1]["done"] is True
        assert sorted(r["index"] for r in records[1:-1]) == [0, 1, 2, 3]

        # Unknown refs are a 404, not a stream.
        with pytest.raises(ServiceError) as excinfo:
            client.campaign_status("no-such-campaign")
        assert excinfo.value.status == 404

        # Byte-identity with the in-process executor, and the offline
        # validator's full pass.
        reference = _local_reference(tmp_path)
        assert reference.id == campaign_id
        server_campaign = CampaignRegistry(registry_dir).get(campaign_id)
        assert (
            server_campaign.results_path.read_bytes()
            == reference.results_path.read_bytes()
        )
        counts = validate_campaign_dir(server_campaign.dir)
        assert counts["done"] == 4

    def test_resubmit_of_complete_campaign_is_a_noop(self, campaign_server):
        client, _ = campaign_server
        first = client.submit_campaign(DOC)
        client.wait_campaign(first["campaign"], timeout=120.0)
        again = client.submit_campaign(DOC)
        assert again["created"] is False
        assert again["started"] is False
        assert again["progress"]["complete"] is True

    def test_invalid_spec_is_a_400(self, campaign_server):
        client, _ = campaign_server
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign({"policies": ["NOPE"]})
        assert excinfo.value.status == 400

    def test_stats_and_metrics_carry_campaign_sections(self, campaign_server):
        client, registry_dir = campaign_server
        view = client.submit_campaign(DOC)
        client.wait_campaign(view["campaign"], timeout=120.0)
        stats = client.stats_envelope()
        assert stats["campaigns"]["campaigns"] == 1
        assert stats["campaigns"]["complete"] == 1
        assert stats["campaigns"]["directory"] == str(registry_dir)
        text = client.metrics_text()
        assert "repro_service_campaigns_registered 1" in text
        assert "repro_service_campaigns_complete 1" in text


class TestRestart:
    def test_drained_server_resumes_on_resubmit(self, tmp_path, monkeypatch):
        """Stop a server mid-campaign; a restarted server resumes from
        the checkpoint and converges on the same bytes as a local run."""
        registry_dir = tmp_path / "server-reg"
        monkeypatch.setenv(CAMPAIGN_DIR_ENV, str(registry_dir))
        doc = {
            **DOC,
            "caches": [
                {"total_bytes": 1 << n, "line_size": 32} for n in (10, 11, 12, 13)
            ],
            "memory_cycles": [4.0, 8.0, 16.0],
        }  # 12 points: wide enough to catch mid-run
        config = ServerConfig(
            batch_window_s=0.001, campaign_dir=str(registry_dir)
        )
        with ServerThread(config) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            client.wait_ready(timeout=30.0)
            view = client.submit_campaign(doc)
            campaign_id = view["campaign"]
            # Let at least one point land so the restart genuinely
            # resumes (rather than starting cold), then drain.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                progress = client.campaign_status(campaign_id)["progress"]
                if progress["done"] >= 1:
                    break
                time.sleep(0.02)
            client.close()

        # The drain checkpointed: state on disk is loadable and sane.
        interrupted = CampaignRegistry(registry_dir).get(campaign_id)
        resumed_from = interrupted.progress()["done"]

        with ServerThread(config) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            try:
                client.wait_ready(timeout=30.0)
                # No auto-resume on boot: the campaign sits exactly
                # where the drain checkpointed it until the spec is
                # re-POSTed (same content address).
                booted = client.campaign_status(campaign_id)["progress"]
                assert booted["done"] == resumed_from
                again = client.submit_campaign(doc)
                assert again["created"] is False
                client.wait_campaign(campaign_id, timeout=120.0)
            finally:
                client.close()

        server_campaign = CampaignRegistry(registry_dir).get(campaign_id)
        assert server_campaign.progress()["done"] == 12
        assert resumed_from <= 12
        reference = _local_reference(tmp_path, doc)
        assert (
            server_campaign.results_path.read_bytes()
            == reference.results_path.read_bytes()
        )
        validate_campaign_dir(server_campaign.dir)
