"""The campaign registry: content addressing, atomicity, recovery.

One module-scoped completed campaign seeds these tests; each test gets
its own copy-on-write clone of the registry directory, so corruption
tests can vandalize freely.
"""

import json
import shutil

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.registry import (
    CAMPAIGN_RESULTS_SCHEMA,
    CampaignRegistry,
    validate_campaign_dir,
)
from repro.campaign.spec import SchemaError
from repro.obs import metrics

DOC = {
    "name": "reg-suite",
    "traces": [{"kind": "spec92", "name": "ear", "instructions": 400}],
    "caches": [{"total_bytes": 4096, "line_size": 32, "associativity": 1}],
    "policies": ["FS"],
    "memory_cycles": [4.0, 8.0],
}


@pytest.fixture(scope="module")
def seeded(tmp_path_factory):
    root = tmp_path_factory.mktemp("campaign-registry")
    registry = CampaignRegistry(root)
    campaign, created = registry.submit(DOC)
    assert created
    report = run_campaign(campaign, chunk_size=1)
    assert report["progress"]["complete"]
    registry.promote(campaign, "seeded-base")
    return root


@pytest.fixture
def registry(seeded, tmp_path):
    clone = tmp_path / "reg"
    shutil.copytree(seeded, clone)
    return CampaignRegistry(clone)


class TestSubmit:
    def test_idempotent_and_state_preserved(self, registry):
        first = registry.find("reg-suite")
        done_before = first.progress()["done"]
        again, created = registry.submit(DOC)
        assert created is False
        assert again.id == first.id
        # Resubmitting carried the existing progress forward.
        assert again.progress()["done"] == done_before == 2

    def test_created_state_seeds_exclusions(self, tmp_path):
        registry = CampaignRegistry(tmp_path / "fresh")
        campaign, created = registry.submit(
            {**DOC, "exclude": [{"memory_cycle": 8.0}]}
        )
        assert created
        status = campaign.load_state()
        assert status == {1: {"excluded": True}}
        assert campaign.progress(status)["excluded"] == 1

    def test_invalid_spec_rejected(self, registry):
        with pytest.raises(SchemaError):
            registry.submit({"policies": ["NOPE"]})


class TestFind:
    def test_by_id_prefix_and_name(self, registry):
        campaign = registry.find("reg-suite")
        assert registry.find(campaign.id).id == campaign.id
        assert registry.find(campaign.id[:10]).id == campaign.id

    def test_no_match_raises(self, registry):
        with pytest.raises(KeyError, match="no campaign matching"):
            registry.find("definitely-not-here")

    def test_ambiguous_name_raises(self, registry):
        registry.submit({**DOC, "memory_cycles": [16.0]})
        with pytest.raises(KeyError, match="ambiguous"):
            registry.find("reg-suite")

    def test_get_detects_a_moved_directory(self, registry):
        campaign = registry.find("reg-suite")
        bogus = "0" * 64
        campaign.dir.rename(registry.root / bogus)
        with pytest.raises(KeyError, match="corrupt registry"):
            registry.get(bogus)


class TestStateRecovery:
    def test_corrupt_state_rebuilds_from_artifacts(self, registry):
        campaign = registry.find("reg-suite")
        campaign.state_path.write_bytes(b'{"schema": "garbage"')
        collected = metrics.enable_metrics()
        try:
            status = campaign.load_state()
        finally:
            metrics.disable_metrics()
        assert campaign.progress(status)["done"] == 2
        assert (
            collected.counter("campaign_store.corrupt_recompute", kind="state")
            == 1
        )

    def test_torn_state_sidecar_rebuilds(self, registry):
        campaign = registry.find("reg-suite")
        # The checkpoint itself is intact, but the checksum says
        # otherwise: a torn write must not be trusted.
        (campaign.dir / "state.json.sum").write_text(
            '{"sha256": "' + "f" * 64 + '", "size": 1}'
        )
        status = campaign.load_state()
        assert campaign.progress(status)["done"] == 2

    def test_missing_state_rebuilds_silently(self, registry):
        campaign = registry.find("reg-suite")
        campaign.state_path.unlink()
        (campaign.dir / "state.json.sum").unlink()
        collected = metrics.enable_metrics()
        try:
            status = campaign.load_state()
        finally:
            metrics.disable_metrics()
        assert campaign.progress(status)["done"] == 2
        # Absence is normal (a never-run campaign), not corruption.
        assert (
            collected.counter("campaign_store.corrupt_recompute", kind="state")
            == 0
        )


class TestArtifacts:
    def test_round_trip(self, registry):
        campaign = registry.find("reg-suite")
        campaign.store_artifact("k" * 64, b'{"x": 1}')
        assert campaign.load_artifact("k" * 64) == b'{"x": 1}'

    def test_corrupt_payload_degrades_to_none(self, registry):
        campaign = registry.find("reg-suite")
        status = campaign.load_state()
        key = status[0]["artifact"]
        (campaign.artifacts_dir / f"{key}.bin").write_bytes(b"truncated")
        collected = metrics.enable_metrics()
        try:
            assert campaign.load_artifact(key) is None
        finally:
            metrics.disable_metrics()
        assert (
            collected.counter(
                "campaign_store.corrupt_recompute", kind="artifact"
            )
            == 1
        )
        # A lost artifact reopens its point: the results stream drops
        # the record and reports the campaign incomplete.
        lines = [json.loads(line) for line in campaign.result_lines(status)]
        assert lines[-1]["done"] is False

    def test_missing_artifact_is_not_corruption(self, registry):
        campaign = registry.find("reg-suite")
        assert campaign.load_artifact("0" * 64) is None


class TestResults:
    def test_stream_framing(self, registry):
        campaign = registry.find("reg-suite")
        lines = [json.loads(line) for line in campaign.result_lines()]
        header, *points, summary = lines
        assert header["schema"] == CAMPAIGN_RESULTS_SCHEMA
        assert header["campaign"] == campaign.id
        assert header["name"] == "reg-suite"
        assert sorted(record["index"] for record in points) == [0, 1]
        assert summary == {
            "done": True, "errors": 0, "excluded": 0, "points": 2,
        }

    def test_write_results_refuses_incomplete(self, tmp_path):
        registry = CampaignRegistry(tmp_path / "fresh")
        campaign, _ = registry.submit(DOC)
        with pytest.raises(RuntimeError, match="pending"):
            campaign.write_results()

    def test_validate_campaign_dir_ok(self, registry):
        campaign = registry.find("reg-suite")
        counts = validate_campaign_dir(campaign.dir)
        assert counts["campaign"] == campaign.id
        assert counts["done"] == 2
        assert counts["results"] == {"errors": 0, "excluded": 0}

    def test_validate_campaign_dir_catches_tampering(self, registry):
        campaign = registry.find("reg-suite")
        with open(campaign.results_path, "ab") as handle:
            handle.write(b'{"index": 0, "point": {}, "result": {}}\n')
        with pytest.raises(SchemaError):
            validate_campaign_dir(campaign.dir)

    def test_validate_campaign_dir_catches_wrong_address(self, registry):
        campaign = registry.find("reg-suite")
        moved = registry.root / ("1" * 64)
        shutil.copytree(campaign.dir, moved)
        with pytest.raises(SchemaError, match="content address"):
            validate_campaign_dir(moved)


class TestBaselines:
    def test_promote_pins_spec_and_results(self, registry):
        campaign = registry.find("reg-suite")
        target = registry.promote(campaign, "golden")
        assert (target / "spec.json").read_bytes() == (
            campaign.spec_path.read_bytes()
        )
        assert (target / "results.jsonl").read_bytes() == (
            campaign.results_path.read_bytes()
        )
        doc = json.loads((target / "baseline.json").read_text())
        assert doc["campaign"] == campaign.id
        assert doc["done"] == 2
        names = [b["name"] for b in registry.baselines()]
        assert names == ["golden", "seeded-base"]

    def test_promote_refuses_overwrite_without_force(self, registry):
        campaign = registry.find("reg-suite")
        with pytest.raises(FileExistsError, match="--force"):
            registry.promote(campaign, "seeded-base")
        registry.promote(campaign, "seeded-base", force=True)

    def test_promote_rejects_incomplete(self, tmp_path):
        registry = CampaignRegistry(tmp_path / "fresh")
        campaign, _ = registry.submit(DOC)
        with pytest.raises(RuntimeError, match="pending"):
            registry.promote(campaign, "too-soon")

    def test_baseline_names_are_validated(self, registry):
        with pytest.raises(SchemaError):
            registry.baseline_dir("../escape")
