"""Crash-resume and zero-rework guarantees of the campaign executor.

The acceptance pins for the subsystem live here: an interrupted
campaign resumes to a byte-identical ``results.jsonl``, and points that
already completed are never re-simulated (no ``engine.phase1.dispatches``
counters fire on a warm re-run).
"""

import shutil

import pytest

from repro.campaign.executor import classify_error, run_campaign
from repro.campaign.registry import CampaignRegistry
from repro.obs import metrics
from repro.service import queries

DOC = {
    "name": "exec-suite",
    "traces": [{"kind": "spec92", "name": "ear", "instructions": 400}],
    "caches": [
        {"total_bytes": 4096, "line_size": 32, "associativity": 1},
        {"total_bytes": 8192, "line_size": 32, "associativity": 2},
    ],
    "policies": ["FS"],
    "memory_cycles": [4.0, 8.0],
    "exclude": [{"cache_index": 1, "memory_cycle": 8.0}],
}
# 4 grid points, 1 excluded => 3 simulated when run to completion.


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """An uninterrupted cold run: the byte-identity reference."""
    registry = CampaignRegistry(tmp_path_factory.mktemp("golden"))
    campaign, _ = registry.submit(DOC)
    report = run_campaign(campaign, chunk_size=2)
    assert report["progress"]["complete"]
    assert report["simulated"] == 3
    # chunk_size=2 over 3 points: one full chunk plus the final flush.
    assert report["chunks"] == 2
    return campaign


class TestCrashResume:
    def test_interrupted_resume_is_byte_identical(self, golden, tmp_path):
        registry = CampaignRegistry(tmp_path / "reg")
        campaign, _ = registry.submit(DOC)
        # max_chunks is the deterministic stand-in for "killed here":
        # the run stops after one checkpoint with work outstanding.
        partial = run_campaign(campaign, chunk_size=1, max_chunks=2)
        assert not partial["progress"]["complete"]
        assert partial["progress"]["pending"] == 1
        resumed = run_campaign(campaign, chunk_size=1)
        assert resumed["progress"]["complete"]
        assert resumed["simulated"] == 1
        assert partial["simulated"] + resumed["simulated"] == 3
        assert (
            campaign.results_path.read_bytes()
            == golden.results_path.read_bytes()
        )
        assert (
            campaign.summary_path.read_bytes()
            == golden.summary_path.read_bytes()
        )

    def test_artifact_without_checkpoint_is_adopted(self, golden, tmp_path):
        """A run killed between the artifact write and the checkpoint
        leaves an orphaned artifact; the resume adopts it instead of
        re-simulating."""
        registry = CampaignRegistry(tmp_path / "reg")
        campaign, _ = registry.submit(DOC)
        shutil.rmtree(campaign.artifacts_dir)
        shutil.copytree(golden.artifacts_dir, campaign.artifacts_dir)
        report = run_campaign(campaign, chunk_size=2)
        assert report["progress"]["complete"]
        assert report["simulated"] == 0
        assert report["reused"] == 3
        assert (
            campaign.results_path.read_bytes()
            == golden.results_path.read_bytes()
        )


class TestZeroRework:
    def test_completed_rerun_simulates_nothing(self, golden):
        collected = metrics.enable_metrics()
        try:
            report = run_campaign(golden, chunk_size=2)
        finally:
            metrics.disable_metrics()
        assert report["progress"]["complete"]
        assert report["simulated"] == 0
        assert report["reused"] == 0
        assert report["chunks"] == 0
        # The acceptance pin: nothing reached phase 1 — not even a
        # cache-served extraction.
        dispatches = [
            key
            for key in collected.snapshot()["counters"]
            if key.startswith("engine.phase1.dispatches")
        ]
        assert dispatches == []


class TestErrors:
    def test_classify_invalid_query_as_400(self):
        doc = classify_error(queries.InvalidQuery("bad trace"))
        assert doc == {
            "code": "invalid_params", "message": "bad trace", "status": 400,
        }
        assert classify_error(RuntimeError("boom"))["status"] == 500

    def test_errors_are_terminal_until_retried(
        self, golden, tmp_path, monkeypatch
    ):
        registry = CampaignRegistry(tmp_path / "reg")
        campaign, _ = registry.submit(DOC)

        def boom(params, events):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(queries, "simulate_from_events", boom)
        report = run_campaign(campaign, chunk_size=2)
        # Errors are terminal: the campaign *completes* with them.
        assert report["errors"] == 3
        assert report["progress"]["complete"]
        assert report["progress"]["errors"] == 3
        status = campaign.load_state()
        assert status[0]["error"]["code"] == "internal_error"

        # A plain resume retries nothing.
        rerun = run_campaign(campaign, chunk_size=2)
        assert rerun["simulated"] == rerun["errors"] == 0

        # retry_errors clears them back to pending; with the failure
        # gone, the campaign converges on the golden bytes.
        monkeypatch.undo()
        retried = run_campaign(campaign, chunk_size=2, retry_errors=True)
        assert retried["simulated"] == 3
        assert retried["progress"]["errors"] == 0
        assert (
            campaign.results_path.read_bytes()
            == golden.results_path.read_bytes()
        )

    def test_chunk_size_validated(self, golden):
        with pytest.raises(ValueError, match="chunk_size"):
            run_campaign(golden, chunk_size=0)
