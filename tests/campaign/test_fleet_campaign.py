"""A campaign on the fleet router, through a worker SIGKILL.

The router runs the campaign service (workers are spawned without a
campaign dir) and resolves each point by forwarding to the owning
worker; the supervisor's retry-through-restart must absorb a worker
killed mid-campaign without the campaign noticing.
"""

import os
import signal

from repro.campaign.executor import run_campaign
from repro.campaign.registry import (
    CAMPAIGN_DIR_ENV,
    CampaignRegistry,
    validate_campaign_dir,
)
from repro.service import FleetConfig, FleetThread, ServerConfig, ServiceClient

DOC = {
    "name": "fleet-camp",
    "traces": [{"kind": "spec92", "name": "ear", "instructions": 2000}],
    "caches": [
        {"total_bytes": 1 << n, "line_size": 32} for n in (11, 12, 13, 14)
    ],
    "policies": ["FS", "BNL3"],
    "memory_cycles": [8.0, 16.0],
}  # 16 points, sharded across both workers by events key


def test_campaign_survives_a_worker_sigkill(tmp_path, monkeypatch):
    registry_dir = tmp_path / "router-reg"
    monkeypatch.setenv(CAMPAIGN_DIR_ENV, str(registry_dir))
    config = FleetConfig(
        base=ServerConfig(
            batch_window_s=0.001, campaign_dir=str(registry_dir)
        ),
        workers=2,
    )
    with FleetThread(config) as handle:
        client = ServiceClient("127.0.0.1", handle.port)
        try:
            client.wait_ready(timeout=30.0)
            victim_pid = client.stats_envelope()["fleet"]["workers"]["w0"][
                "pid"
            ]
            view = client.submit_campaign(DOC)
            campaign_id = view["campaign"]
            os.kill(victim_pid, signal.SIGKILL)
            done = client.wait_campaign(campaign_id, timeout=180.0)
            assert done["progress"]["complete"] is True
            assert done["progress"]["errors"] == 0
            # The supervisor restored the slot along the way.
            workers = client.stats_envelope()["fleet"]["workers"]
            assert workers["w0"]["alive"] is True
            assert workers["w0"]["pid"] != victim_pid
            # Results stream all 16 points through the router.
            records = list(client.campaign_results("fleet-camp"))
            assert sorted(r["index"] for r in records[1:-1]) == list(
                range(16)
            )
            assert records[-1]["done"] is True
        finally:
            client.close()

    # The registry the router wrote is valid and byte-identical to an
    # in-process run of the same spec — worker death and all.
    server_campaign = CampaignRegistry(registry_dir).find("fleet-camp")
    validate_campaign_dir(server_campaign.dir)
    local = CampaignRegistry(tmp_path / "local-ref")
    reference, _ = local.submit(DOC)
    assert run_campaign(reference)["progress"]["complete"]
    assert (
        server_campaign.results_path.read_bytes()
        == reference.results_path.read_bytes()
    )
