"""Cohort comparison: Eq. (2) deltas, physical-identity joins."""

import pytest

from repro.campaign import compare
from repro.campaign.executor import run_campaign
from repro.campaign.registry import CampaignRegistry
from repro.campaign.spec import validate_spec
from repro.service import queries

TRACE = {"kind": "spec92", "name": "ear", "instructions": 400}


def _result(instructions, cycles, read, flush, write):
    return {
        "instructions": instructions,
        "cycles": cycles,
        "cpi": cycles / instructions,
        "read_miss_stall_cycles": read,
        "flush_stall_cycles": flush,
        "write_stall_cycles": write,
    }


def _record(spec, index, cache_index, policy, beta, result):
    return {
        "index": index,
        "point": {
            "trace_index": 0,
            "cache_index": cache_index,
            "cache": spec["caches"][cache_index],
            "policy": policy,
            "memory_cycle": beta,
        },
        "result": result,
    }


class TestEq2Terms:
    def test_terms_sum_to_cpi_exactly(self):
        result = _result(100, 250.0, 30.0, 20.0, 10.0)
        terms = compare.eq2_terms(result)
        assert terms == {
            "execute_cpi": 1.9,
            "read_stall_cpi": 0.3,
            "flush_stall_cpi": 0.2,
            "write_buffer_stall_cpi": 0.1,
        }
        assert sum(terms.values()) == pytest.approx(result["cpi"])


class TestDiffCohorts:
    def test_joins_on_physical_identity(self):
        spec_a = validate_spec(
            {
                "traces": [TRACE],
                "caches": [{"total_bytes": 4096}, {"total_bytes": 8192}],
                "memory_cycles": [8.0],
            }
        )
        # B swapped one cache size: one shared point, one per side.
        spec_b = validate_spec(
            {
                "traces": [TRACE],
                "caches": [{"total_bytes": 8192}, {"total_bytes": 16384}],
                "memory_cycles": [8.0],
            }
        )
        cohort_a = compare.load_cohort(
            spec_a,
            [
                _record(spec_a, 0, 0, "FS", 8.0, _result(100, 300, 50, 0, 0)),
                _record(spec_a, 1, 1, "FS", 8.0, _result(100, 250, 30, 0, 0)),
            ],
        )
        cohort_b = compare.load_cohort(
            spec_b,
            [
                _record(spec_b, 0, 0, "FS", 8.0, _result(100, 240, 20, 0, 0)),
                _record(spec_b, 1, 1, "FS", 8.0, _result(100, 220, 10, 0, 0)),
            ],
        )
        report = compare.diff_cohorts(
            spec_a, cohort_a, spec_b, cohort_b, include_hit_ratio=False
        )
        assert report["matched"] == 1
        assert report["only_a"] == 1
        assert report["only_b"] == 1
        (row,) = report["rows"]
        # The shared point is the 8K cache: B is index 0 there, A is 1.
        assert row["cache"]["total_bytes"] == 8192
        assert row["delta_cycles"] == -10.0
        assert row["delta_cpi"] == pytest.approx(-0.1)
        assert row["delta_eq2"]["read_stall_cpi"] == pytest.approx(-0.1)
        assert row["delta_eq2"]["execute_cpi"] == pytest.approx(0.0)

    def test_load_cohort_skips_non_result_records(self):
        spec = validate_spec({"traces": [TRACE]})
        cohort = compare.load_cohort(
            spec,
            [
                {"schema": "repro.campaign.results/1", "points": 1},
                {"index": 0, "point": {}, "error": {"code": "x"}},
                {"done": True},
            ],
        )
        assert cohort == {}


class TestResolveAndRender:
    @pytest.fixture(scope="class")
    def cohorts(self, tmp_path_factory):
        registry = CampaignRegistry(tmp_path_factory.mktemp("cmp"))
        doc = {
            "name": "cmp",
            "traces": [TRACE],
            "caches": [{"total_bytes": 4096, "line_size": 32}],
            "memory_cycles": [4.0, 8.0],
        }
        campaign, _ = registry.submit(doc)
        assert run_campaign(campaign)["progress"]["complete"]
        registry.promote(campaign, "cmp-base")
        return registry

    def test_campaign_diffed_against_its_own_baseline(self, cohorts):
        label_a, spec_a, cohort_a = compare.resolve_cohort(cohorts, "cmp-base")
        label_b, spec_b, cohort_b = compare.resolve_cohort(cohorts, "cmp")
        assert label_a == "baseline:cmp-base"
        assert label_b == "cmp"
        report = compare.diff_cohorts(spec_a, cohort_a, spec_b, cohort_b)
        assert report["matched"] == 2
        assert report["only_a"] == report["only_b"] == 0
        for row in report["rows"]:
            assert row["delta_cycles"] == 0.0
            assert row["delta_cpi"] == 0.0
            # Hit ratios recover through the (warm) events store.
            assert row["delta_hit_ratio"] == 0.0
            assert 0.0 <= row["hit_ratio_a"] <= 1.0
        rendered = compare.render_diff(label_a, label_b, report)
        assert "A=baseline:cmp-base" in rendered
        assert "4096/32/a2" in rendered
        assert "dCPI" in rendered

    def test_unknown_ref_raises(self, cohorts):
        with pytest.raises(KeyError, match="neither a campaign nor"):
            compare.resolve_cohort(cohorts, "nope")

    def test_hit_ratio_matches_events_store(self, cohorts):
        campaign = cohorts.find("cmp")
        _, spec, cohort = compare.resolve_cohort(cohorts, "cmp")
        entry = next(iter(cohort.values()))
        from repro.campaign import spec as spec_mod

        params = spec_mod.point_params(spec, entry["point"])
        expected = queries.resolve_events(params).stats.hit_ratio
        assert compare._hit_ratio_of(spec, entry["point"]) == expected
        assert campaign.progress()["complete"]
