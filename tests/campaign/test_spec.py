"""Campaign specs: validation, normalization, content identity."""

import pytest

from repro.campaign.spec import (
    CAMPAIGN_SPEC_SCHEMA,
    CampaignPoint,
    SchemaError,
    campaign_id,
    canonical_bytes,
    iter_points,
    point_count,
    point_params,
    validate_name,
    validate_spec,
    wire_params,
)

SPEC = {
    "name": "unit",
    "traces": [{"kind": "spec92", "name": "ear", "instructions": 500}],
    "caches": [
        {"total_bytes": 4096, "line_size": 32, "associativity": 1},
        {"total_bytes": 8192, "line_size": 32, "associativity": 2},
    ],
    "policies": ["FS", "BL"],
    "memory_cycles": [4.0, 8.0],
}


class TestValidation:
    def test_defaults_applied(self):
        spec = validate_spec({})
        assert spec["schema"] == CAMPAIGN_SPEC_SCHEMA
        assert spec["traces"][0]["kind"] == "spec92"
        assert len(spec["caches"]) == 1
        assert spec["policies"] == ["FS"]
        assert spec["memory_cycles"] == [8.0]
        assert spec["bus_width"] == 4
        assert spec["issue_rate"] == 1.0
        # Unset optionals are spelled as explicit nulls in the normal
        # form (part of the canonical rendering).
        assert spec["write_buffer_depth"] is None
        assert spec["pipelined_q"] is None
        assert spec["deadline_ms"] is None
        assert spec["exclude"] == []

    def test_validate_is_idempotent(self):
        once = validate_spec(dict(SPEC))
        assert validate_spec(once) == once

    def test_unknown_key_rejected(self):
        with pytest.raises(SchemaError, match="unknown key"):
            validate_spec({"sweeps": []})

    def test_bad_policy_rejected(self):
        with pytest.raises(SchemaError, match=r"policies\[0\]"):
            validate_spec({"policies": ["NOPE"]})

    def test_memory_cycle_below_one_rejected(self):
        with pytest.raises(SchemaError, match=r"memory_cycles\[0\]"):
            validate_spec({"memory_cycles": [0.5]})

    def test_line_size_must_be_bus_multiple(self):
        with pytest.raises(SchemaError, match="multiple of bus_width"):
            validate_spec(
                {"caches": [{"line_size": 16}], "bus_width": 32}
            )

    def test_wrong_schema_tag_rejected(self):
        with pytest.raises(SchemaError, match=r"\$\.schema"):
            validate_spec({"schema": "repro.campaign.spec/999"})

    def test_names_are_path_safe(self):
        assert validate_name("beta-sweep_v1.2", "$.name") == "beta-sweep_v1.2"
        for bad in ("", ".hidden", "a/b", "x" * 65, "sp ace"):
            with pytest.raises(SchemaError):
                validate_name(bad, "$.name")


class TestExclusionRules:
    def test_rules_validated(self):
        spec = validate_spec(
            {**SPEC, "exclude": [{"cache_index": 0, "policy": "BL"}]}
        )
        assert spec["exclude"] == [{"cache_index": 0, "policy": "BL"}]

    def test_empty_rule_rejected(self):
        with pytest.raises(SchemaError, match="at least one"):
            validate_spec({**SPEC, "exclude": [{}]})

    def test_unknown_rule_key_rejected(self):
        with pytest.raises(SchemaError, match="unknown exclusion key"):
            validate_spec({**SPEC, "exclude": [{"cache": 0}]})

    def test_out_of_range_index_rejected(self):
        with pytest.raises(SchemaError, match=r"exclude\[0\]"):
            validate_spec({**SPEC, "exclude": [{"cache_index": 2}]})

    def test_rule_conjunction_marks_matching_points(self):
        spec = validate_spec(
            {**SPEC, "exclude": [{"cache_index": 1, "policy": "BL"}]}
        )
        points = list(iter_points(spec))
        excluded = [cp for cp in points if cp.excluded]
        # Rule keys AND together: cache 1 AND policy BL, both betas.
        assert len(excluded) == 2
        for cp in excluded:
            assert cp.point["cache_index"] == 1
            assert cp.point["policy"] == "BL"
        # The index space is unchanged by exclusion.
        assert len(points) == point_count(spec) == 8


class TestContentIdentity:
    def test_id_ignores_spelling(self):
        spec = validate_spec(dict(SPEC))
        explicit = validate_spec(
            {
                **SPEC,
                "schema": CAMPAIGN_SPEC_SCHEMA,
                "bus_width": 4,
                "issue_rate": 1.0,
                "exclude": [],
            }
        )
        assert campaign_id(spec) == campaign_id(explicit)

    def test_id_tracks_the_grid(self):
        base = campaign_id(validate_spec(dict(SPEC)))
        other = campaign_id(
            validate_spec({**SPEC, "memory_cycles": [4.0, 16.0]})
        )
        assert base != other
        assert len(base) == 64

    def test_canonical_bytes_round_trip(self):
        import json

        spec = validate_spec(dict(SPEC))
        assert validate_spec(json.loads(canonical_bytes(spec))) == spec


class TestEnumeration:
    def test_trace_major_then_sweep_grid_order(self):
        spec = validate_spec(
            {
                **SPEC,
                "traces": [
                    {"kind": "spec92", "name": "ear", "instructions": 500},
                    {"kind": "spec92", "name": "swm256", "instructions": 500},
                ],
            }
        )
        points = list(iter_points(spec))
        assert [cp.index for cp in points] == list(range(16))
        assert isinstance(points[0], CampaignPoint)
        # Trace-major: first half trace 0, second half trace 1.
        assert all(cp.point["trace_index"] == 0 for cp in points[:8])
        assert all(cp.point["trace_index"] == 1 for cp in points[8:])
        # Within a trace: cache, then policy, then beta (sweep_grid).
        first = points[:4]
        assert [cp.point["cache_index"] for cp in first] == [0, 0, 0, 0]
        assert [cp.point["policy"] for cp in first] == ["FS", "FS", "BL", "BL"]
        assert [cp.point["memory_cycle"] for cp in first] == [
            4.0, 8.0, 4.0, 8.0,
        ]

    def test_point_params_match_simulate_shape(self):
        spec = validate_spec(dict(SPEC))
        cp = next(iter_points(spec))
        params = point_params(spec, cp.point)
        assert params["trace"] == spec["traces"][0]
        assert params["cache"] == spec["caches"][0]
        assert params["policy"] == "FS"
        assert params["write_buffer_depth"] is None
        # The wire form drops nulls (request validators reject them).
        wire = wire_params(params)
        assert "write_buffer_depth" not in wire
        assert "deadline_ms" not in wire
        assert wire["memory_cycle"] == 4.0
