"""The content-addressed, byte-bounded result cache."""

import pytest

from repro.cache.cache import CacheConfig
from repro.service.result_cache import (
    ResultCache,
    result_key,
    simulate_key_material,
)

CONFIG = CacheConfig(8192, 32, 2)


def material(**overrides):
    base = dict(
        trace_fingerprint="spec92/1/swm256/8000/7",
        config=CONFIG,
        policy="FS",
        memory_cycle=8.0,
        bus_width=4,
        write_buffer_depth=None,
        pipelined_q=None,
        issue_rate=1.0,
    )
    base.update(overrides)
    return simulate_key_material(**base)


class TestKeyMaterial:
    def test_every_field_discriminates(self):
        base = material()
        variants = [
            material(trace_fingerprint="spec92/1/ear/8000/7"),
            material(config=CacheConfig(16384, 32, 2)),
            material(config=CacheConfig(8192, 64, 2)),
            material(policy="BNL3"),
            material(memory_cycle=16.0),
            material(bus_width=8),
            material(write_buffer_depth=4),
            material(pipelined_q=2.0),
            material(issue_rate=2.0),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_material_is_human_readable_and_key_is_hex(self):
        text = material()
        assert "swm256" in text and "FS" in text
        key = result_key(text)
        assert len(key) == 64
        assert int(key, 16) >= 0  # hex digest

    def test_same_material_same_key(self):
        assert result_key(material()) == result_key(material())


class TestResultCache:
    def test_hit_and_miss_accounting(self):
        cache = ResultCache(1024)
        assert cache.get("k") is None
        cache.put("k", b"payload")
        assert cache.get("k") == b"payload"
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        assert cache.size_bytes == 7
        assert len(cache) == 1

    def test_lru_eviction_by_bytes(self):
        cache = ResultCache(10)
        cache.put("a", b"aaaa")
        cache.put("b", b"bbbb")
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", b"cccc")  # 12 bytes > 10: evict b
        assert cache.get("b") is None
        assert cache.get("a") == b"aaaa"
        assert cache.get("c") == b"cccc"
        assert cache.evictions == 1
        assert cache.size_bytes <= 10

    def test_oversized_payload_not_cached(self):
        cache = ResultCache(4)
        cache.put("big", b"xxxxxxxx")
        assert len(cache) == 0
        assert cache.get("big") is None

    def test_replacing_entry_updates_bytes(self):
        cache = ResultCache(100)
        cache.put("k", b"aaaa")
        cache.put("k", b"bb")
        assert cache.size_bytes == 2
        assert len(cache) == 1

    def test_clear_keeps_counters(self):
        cache = ResultCache(100)
        cache.put("k", b"aaaa")
        cache.get("k")
        cache.clear()
        assert len(cache) == 0 and cache.size_bytes == 0
        assert cache.hits == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)
