"""The consistent-hash ring that places fleet shards."""

import pytest

from repro.service.shard import (
    DEFAULT_REPLICAS,
    HashRing,
    ring_hash,
    worker_names,
)


class TestRingHash:
    def test_deterministic(self):
        assert ring_hash("abc") == ring_hash("abc")

    def test_distinct_inputs_differ(self):
        assert ring_hash("w0#0") != ring_hash("w1#0")

    def test_64_bit_range(self):
        for value in ("", "x", "a-long-shard-key"):
            assert 0 <= ring_hash(value) < 2**64


class TestWorkerNames:
    def test_stable_slot_names(self):
        assert worker_names(3) == ["w0", "w1", "w2"]

    def test_prefix_property(self):
        # Growing the fleet appends slots; existing names never change,
        # which is what keeps most keys in place on a resize.
        assert worker_names(4)[:2] == worker_names(2)


class TestHashRing:
    def test_owner_is_deterministic(self):
        ring = HashRing(worker_names(4))
        keys = [f"key-{i}" for i in range(200)]
        first = [ring.owner(k) for k in keys]
        again = [ring.owner(k) for k in keys]
        assert first == again

    def test_owner_always_a_member(self):
        ring = HashRing(worker_names(3))
        assert all(ring.owner(f"k{i}") in ring.nodes for i in range(100))

    def test_empty_ring_refuses(self):
        ring = HashRing([])
        with pytest.raises(ValueError):
            ring.owner("anything")

    def test_remove_moves_only_the_leavers_keys(self):
        ring = HashRing(worker_names(4))
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove("w2")
        for key in keys:
            after = ring.owner(key)
            if before[key] != "w2":
                assert after == before[key]
            else:
                assert after != "w2"

    def test_rejoin_restores_exact_ownership(self):
        # The restart story: a respawned worker reuses its slot name, so
        # the ring places every key exactly where it was.
        ring = HashRing(worker_names(4))
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove("w1")
        ring.add("w1")
        assert {k: ring.owner(k) for k in keys} == before

    def test_spread_uses_every_node(self):
        ring = HashRing(worker_names(4))
        owners = {ring.owner(f"key-{i}") for i in range(2000)}
        assert owners == set(worker_names(4))

    def test_replicas_default(self):
        ring = HashRing(worker_names(2))
        assert len(ring) == 2
        assert DEFAULT_REPLICAS > 1
