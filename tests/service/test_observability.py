"""End-to-end live observability: ids, /metrics, access log, trace tail.

One module-scoped server with every observability surface enabled; the
tests drive it with real requests and then cross-check the three views
of the same traffic (Prometheus exposition, access log, span ring).
"""

import threading

import pytest

from repro.obs import tracing
from repro.obs.access_log import read_access_log
from repro.obs.live import RingTracer, parse_exposition
from repro.obs.metrics import MetricsRegistry
from repro.obs.schemas import validate_access_log_record, validate_profile
from repro.service import ServerConfig, ServerThread, ServiceClient, ServiceError

TRACE = {"kind": "spec92", "name": "swm256", "instructions": 2000, "seed": 7}


@pytest.fixture(scope="module")
def handle(tmp_path_factory):
    access_log = tmp_path_factory.mktemp("obs") / "access.jsonl"
    config = ServerConfig(
        batch_window_s=0.001, access_log_path=str(access_log)
    )
    handle = ServerThread(config, registry=MetricsRegistry()).start()
    probe = ServiceClient("127.0.0.1", handle.port)
    probe.wait_ready()
    probe.close()
    yield handle
    handle.stop()


@pytest.fixture()
def client(handle):
    with ServiceClient("127.0.0.1", handle.port) as client:
        yield client


def _access_records(handle):
    assert handle.server.access_log is not None
    return read_access_log(handle.server.access_log.path)


class TestRequestIds:
    def test_inbound_id_is_honoured_and_echoed(self, handle, client):
        envelope = client.request(
            "POST",
            "/v1/simulate",
            {"trace": TRACE, "memory_cycle": 6.0},
            request_id="pinned-id-1",
        )
        assert envelope["result"]["cycles"] > 0
        assert client.last_request_id == "pinned-id-1"
        records = [
            r for r in _access_records(handle) if r["request_id"] == "pinned-id-1"
        ]
        assert len(records) == 1
        assert records[0]["endpoint"] == "simulate"

    def test_missing_id_is_minted(self, client):
        client.health()
        assert client.last_request_id
        assert len(client.last_request_id) == 16

    def test_unusable_inbound_id_is_replaced(self, client):
        client.request("GET", "/v1/health", request_id="@ $$ @")
        assert client.last_request_id
        assert "@" not in client.last_request_id


class TestProbesAndMetrics:
    def test_healthz_and_readyz_while_serving(self, client):
        assert client.healthz()["status"] == "ok"
        assert client.readyz()["status"] == "ready"

    def test_metrics_is_valid_exposition_with_sli_quantiles(
        self, handle, client
    ):
        client.simulate(trace=TRACE, memory_cycle=6.5)
        client.simulate(trace=TRACE, memory_cycle=6.5)  # cache hit
        text = client.metrics_text()
        samples = parse_exposition(text)
        assert text.endswith("\n")

        ready = dict(
            (tuple(sorted(labels.items())), value)
            for labels, value in samples["repro_service_ready"]
        )
        assert ready[()] == 1.0

        latency = samples["repro_sli_request_latency_ms"]
        quantiles_by_endpoint = {}
        for labels, value in latency:
            quantiles_by_endpoint.setdefault(labels["endpoint"], {})[
                labels["quantile"]
            ] = value
        assert "simulate" in quantiles_by_endpoint
        for endpoint, quantiles in quantiles_by_endpoint.items():
            assert set(quantiles) == {"0.5", "0.95", "0.99"}, endpoint
            assert quantiles["0.5"] <= quantiles["0.99"]

        counter_endpoints = {
            labels.get("endpoint")
            for labels, _ in samples.get("repro_service_requests_total", [])
        }
        assert "simulate" in counter_endpoints

    def test_metrics_requests_are_themselves_logged(self, handle, client):
        client.get_text("/metrics", request_id="metrics-probe")
        records = [
            r
            for r in _access_records(handle)
            if r["request_id"] == "metrics-probe"
        ]
        assert len(records) == 1
        assert records[0]["endpoint"] == "metrics"
        assert records[0]["status"] == 200


class TestTraceTailAndAccessLog:
    def test_span_request_ids_appear_in_access_log(self, handle, client):
        client.request(
            "POST",
            "/v1/simulate",
            {"trace": TRACE, "memory_cycle": 7.0},
            request_id="traced-sim-1",
        )
        document = client.debug_trace(last=500)
        assert document["enabled"] is True
        assert document["ring"]["capacity"] == 4096
        span_ids = {
            event["args"]["request_id"]
            for event in document["traceEvents"]
            if event.get("ph") == "X" and "request_id" in event.get("args", {})
        }
        assert "traced-sim-1" in span_ids
        logged_ids = {r["request_id"] for r in _access_records(handle)}
        # every request id a span saw belongs to a logged request ("-"
        # never appears: ingress always installs a context)
        assert span_ids <= logged_ids

    def test_simulate_spans_cover_both_phases(self, client):
        client.request(
            "POST",
            "/v1/simulate",
            {"trace": {**TRACE, "seed": 9}, "memory_cycle": 7.5},
            request_id="phases-1",
        )
        document = client.debug_trace(last=500)
        names = {
            event["name"]
            for event in document["traceEvents"]
            if event.get("args", {}).get("request_id") == "phases-1"
        }
        assert "service.request" in names
        assert "service.phase2" in names

    def test_every_access_log_record_validates(self, handle, client):
        with pytest.raises(ServiceError):
            client.simulate(trace={"kind": "nope"})
        records = _access_records(handle)
        assert records
        for record in records:
            validate_access_log_record(record)
        errors = [r for r in records if r["status"] == 400]
        assert errors and errors[-1]["error_code"] == "schema_error"

    def test_cache_annotations_logged(self, handle, client):
        params = {"trace": {**TRACE, "seed": 13}, "memory_cycle": 8.0}
        client.request("POST", "/v1/simulate", params, request_id="cold-1")
        client.request("POST", "/v1/simulate", params, request_id="warm-1")
        by_id = {r["request_id"]: r for r in _access_records(handle)}
        assert by_id["cold-1"]["cache"] == "miss"
        assert by_id["cold-1"]["batched"] is True
        assert by_id["warm-1"]["cache"] == "hit"
        assert "batched" not in by_id["warm-1"]

    def test_deadline_left_is_logged(self, handle, client):
        client.request(
            "POST",
            "/v1/simulate",
            {
                "trace": {**TRACE, "seed": 17},
                "memory_cycle": 8.5,
                "deadline_ms": 20000.0,
            },
            request_id="deadline-1",
        )
        by_id = {r["request_id"]: r for r in _access_records(handle)}
        record = by_id["deadline-1"]
        assert record["deadline_ms"] == 20000.0
        assert 0.0 < record["deadline_left_ms"] < 20000.0


class TestDebugProfile:
    def test_window_attributes_concurrent_traffic(self, handle, client):
        stop = threading.Event()

        def hammer():
            seed = 100
            with ServiceClient("127.0.0.1", handle.port) as load:
                while not stop.is_set():
                    seed += 1
                    load.simulate(
                        trace={**TRACE, "seed": seed}, memory_cycle=6.0
                    )

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            document = client.debug_profile(seconds=0.6, hz=300)
        finally:
            stop.set()
            thread.join()
        validate_profile(document)
        assert document["hz"] == 300
        # Requests served during the window open spans after the
        # profiler installed phase tracking, so their samples are
        # attributed to service phases.
        assert any(phase.startswith("service.") for phase in document["phases"])

    def test_profile_id_is_annotated_in_access_log(self, handle, client):
        document = client.debug_profile(seconds=0.1)
        records = [
            r
            for r in _access_records(handle)
            if r.get("profile_id") == document["id"]
        ]
        assert len(records) == 1
        assert records[0]["endpoint"] == "debug-profile"
        validate_access_log_record(records[0])

    def test_concurrent_window_is_409(self, handle):
        outcome = {}

        def long_window():
            with ServiceClient("127.0.0.1", handle.port) as first:
                outcome["document"] = first.debug_profile(seconds=0.8)

        thread = threading.Thread(target=long_window)
        thread.start()
        try:
            import time

            time.sleep(0.25)
            with ServiceClient("127.0.0.1", handle.port) as second:
                with pytest.raises(ServiceError) as info:
                    second.debug_profile(seconds=0.1)
            assert info.value.status == 409
            assert info.value.code == "profile_active"
        finally:
            thread.join()
        validate_profile(outcome["document"])

    def test_bad_query_bounds(self, client):
        for path in (
            "/v1/debug/profile?seconds=0",
            "/v1/debug/profile?seconds=9999",
            "/v1/debug/profile?hz=0",
            "/v1/debug/profile?hz=fast",
        ):
            with pytest.raises(ServiceError) as info:
                client.request("GET", path)
            assert info.value.status == 400
            assert info.value.code == "bad_query"

    def test_draining_server_refuses_new_windows(self, handle, client):
        handle.server._draining = True
        try:
            with pytest.raises(ServiceError) as info:
                client.debug_profile(seconds=0.1)
            assert info.value.status == 503
            assert info.value.code == "draining"
        finally:
            handle.server._draining = False


class TestClientStats:
    def test_latency_and_calls_recorded(self, handle):
        with ServiceClient("127.0.0.1", handle.port) as client:
            client.simulate(trace=TRACE, memory_cycle=6.5)
            client.health()
            summary = client.stats.summary()
        assert summary["calls"] == 2
        assert summary["retries"] == 0
        assert summary["errors"] == 0
        assert summary["latency_ms"]["p50"] > 0.0
        assert summary["latency_ms"]["p99"] >= summary["latency_ms"]["p50"]

    def test_errors_counted(self, handle):
        with ServiceClient("127.0.0.1", handle.port) as client:
            with pytest.raises(ServiceError):
                client.simulate(trace={"kind": "nope"})
            assert client.stats.errors == 1
            assert client.stats.calls == 1


class TestTracerLifecycle:
    """Each test parks the ambient tracer (the module server's ring) so
    the nested server under test sees a clean slate, then restores it."""

    @pytest.fixture(autouse=True)
    def _clean_ambient_tracer(self):
        previous = tracing.disable_tracing()
        yield
        if previous is not None:
            tracing.install_tracer(previous)

    def test_server_installs_and_removes_its_ring(self):
        config = ServerConfig(batch_window_s=0.001)
        handle = ServerThread(config, registry=MetricsRegistry()).start()
        try:
            probe = ServiceClient("127.0.0.1", handle.port)
            probe.wait_ready()
            probe.close()
            assert isinstance(tracing.current_tracer(), RingTracer)
        finally:
            handle.stop()
        assert tracing.current_tracer() is None

    def test_externally_installed_tracer_is_preserved(self):
        mine = tracing.install_tracer(RingTracer(capacity=32))
        config = ServerConfig(batch_window_s=0.001)
        handle = ServerThread(config, registry=MetricsRegistry()).start()
        try:
            assert tracing.current_tracer() is mine
        finally:
            handle.stop()
        assert tracing.current_tracer() is mine
        tracing.disable_tracing()

    def test_disabled_ring_leaves_tracing_off(self):
        config = ServerConfig(batch_window_s=0.001, span_ring_capacity=0)
        handle = ServerThread(config, registry=MetricsRegistry()).start()
        try:
            with ServiceClient("127.0.0.1", handle.port) as client:
                client.wait_ready()
                document = client.debug_trace()
            assert document["enabled"] is False
            assert document["traceEvents"] == []
            assert tracing.current_tracer() is None
        finally:
            handle.stop()
