"""Client-side mid-stream sweep resume (``sweep(resume_retries=N)``).

A scripted TCP server plays back one canned HTTP response per
connection — truncated streams, half-written JSON lines, error
statuses — so every disconnect shape is deterministic.  The contract
under test: with retries the caller sees each point index exactly once
and a summary whose error count matches the error lines actually
yielded (keeping the merged stream valid); without retries a truncated
stream still raises.
"""

import json
import socket
import threading

import pytest

from repro.obs.schemas import validate_sweep_stream
from repro.service import ServiceClient, ServiceError

HEADER = {
    "schema": "repro.service.sweep/1",
    "points": 4,
    "trace": {"kind": "spec92"},
}
POINTS = [
    {"index": 0, "point": {"cache_index": 0}, "result": {"cycles": 10.0}},
    {"index": 1, "point": {"cache_index": 0}, "error": {"code": "deadline_exceeded", "message": "too slow", "status": 504}},
    {"index": 2, "point": {"cache_index": 1}, "result": {"cycles": 30.0}},
    {"index": 3, "point": {"cache_index": 1}, "result": {"cycles": 40.0}},
]
SUMMARY = {"done": True, "errors": 1, "points": 4}


def _lines(*records):
    return b"".join(
        json.dumps(record).encode() + b"\n" for record in records
    )


def _ok(body):
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/x-ndjson\r\n"
        b"Connection: close\r\n\r\n" + body
    )


def _error(status, code):
    body = json.dumps({"error": {"code": code, "message": code}}).encode()
    head = (
        f"HTTP/1.1 {status} Nope\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode() + body


class ScriptedServer:
    """Serves one canned response per accepted connection, in order."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.connections = 0
        self.sock = socket.socket()
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while True:
            try:
                conn, _addr = self.sock.accept()
            except OSError:
                return
            with conn:
                conn.settimeout(5.0)
                data = b""
                try:
                    while b"\r\n\r\n" not in data:
                        chunk = conn.recv(65536)
                        if not chunk:
                            break
                        data += chunk
                    response = (
                        self.responses.pop(0) if self.responses else _ok(b"")
                    )
                    self.connections += 1
                    conn.sendall(response)
                except OSError:
                    continue

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


@pytest.fixture
def flaky(request):
    servers = []

    def start(responses):
        server = ScriptedServer(responses)
        servers.append(server)
        return server, ServiceClient("127.0.0.1", server.port, timeout=5.0)

    yield start
    for server in servers:
        server.close()


class TestResume:
    def test_truncated_stream_resumes_and_dedupes(self, flaky):
        server, client = flaky(
            [
                # First attempt dies after two points, no summary.
                _ok(_lines(HEADER, POINTS[0], POINTS[1])),
                # The re-issued request replays the whole grid (served
                # from the result caches on a real server) and finishes.
                _ok(_lines(HEADER, *POINTS, SUMMARY)),
            ]
        )
        records = list(client.sweep(resume_retries=1, caches=[{}, {}]))
        assert server.connections == 2
        assert client.stats.retries == 1
        # One header, each index exactly once, one summary — a valid
        # stream despite the mid-flight reconnect.
        validate_sweep_stream(records)
        assert [r.get("index") for r in records[1:-1]] == [0, 1, 2, 3]
        assert records[-1] == {"done": True, "errors": 1, "points": 4}

    def test_half_written_json_line_is_a_transport_failure(self, flaky):
        server, client = flaky(
            [
                _ok(_lines(HEADER, POINTS[0]) + b'{"index": 1, "res'),
                _ok(_lines(HEADER, *POINTS, SUMMARY)),
            ]
        )
        records = list(client.sweep(resume_retries=1))
        assert server.connections == 2
        validate_sweep_stream(records)

    def test_errors_rewritten_to_match_yielded_lines(self, flaky):
        """The error point streams in attempt 1; attempt 2's summary
        still says 1 — and after dedupe so must the merged stream's."""
        _server, client = flaky(
            [
                _ok(_lines(HEADER, POINTS[1])),
                _ok(
                    _lines(
                        HEADER,
                        POINTS[0],
                        POINTS[1],
                        POINTS[2],
                        POINTS[3],
                        SUMMARY,
                    )
                ),
            ]
        )
        records = list(client.sweep(resume_retries=1))
        error_lines = sum(1 for r in records if "error" in r and "index" in r)
        assert error_lines == 1
        assert records[-1]["errors"] == 1
        validate_sweep_stream(records)

    def test_retries_exhausted_reraises(self, flaky):
        server, client = flaky(
            [
                _ok(_lines(HEADER, POINTS[0])),
                _ok(_lines(HEADER, POINTS[1])),
            ]
        )
        with pytest.raises(ServiceError) as excinfo:
            list(client.sweep(resume_retries=1))
        assert excinfo.value.code == "truncated"
        assert server.connections == 2


class TestDefaultOff:
    def test_truncation_raises_without_retries(self, flaky):
        server, client = flaky([_ok(_lines(HEADER, POINTS[0]))])
        with pytest.raises(ServiceError, match="without a summary"):
            list(client.sweep())
        assert server.connections == 1

    def test_http_errors_are_not_retried(self, flaky):
        server, client = flaky(
            [
                _error(429, "overloaded"),
                _ok(_lines(HEADER, *POINTS, SUMMARY)),
            ]
        )
        with pytest.raises(ServiceError) as excinfo:
            list(client.sweep(resume_retries=3))
        assert excinfo.value.status == 429
        # The structured rejection consumed exactly one connection —
        # resume is for transport failures, not server verdicts.
        assert server.connections == 1
