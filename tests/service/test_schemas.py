"""Request validation: defaults, bounds, and JSON-path error messages."""

import pytest

from repro.obs.schemas import SchemaError
from repro.service.schemas import (
    MAX_INSTRUCTIONS,
    validate_advise,
    validate_execution_time,
    validate_ranking,
    validate_simulate,
    validate_tradeoff,
)


class TestExecutionTime:
    def test_defaults_fill_in(self):
        out = validate_execution_time({"hit_ratio": 0.95})
        assert out["bus_width"] == 4
        assert out["memory_cycle"] == 8.0
        assert out["policy"] == "FS"
        assert out["flush_ratio"] == 0.5

    def test_hit_ratio_required_and_bounded(self):
        with pytest.raises(SchemaError, match=r"\$\.params\.hit_ratio"):
            validate_execution_time({})
        with pytest.raises(SchemaError, match=r"\$\.params\.hit_ratio"):
            validate_execution_time({"hit_ratio": 1.5})

    def test_unknown_keys_rejected(self):
        with pytest.raises(SchemaError, match="unknown"):
            validate_execution_time({"hit_ratio": 0.9, "hit_rato": 0.9})

    def test_not_an_object(self):
        with pytest.raises(SchemaError, match=r"\$\.params"):
            validate_execution_time([1, 2])


class TestTradeoff:
    def test_partial_stalling_needs_phi(self):
        with pytest.raises(SchemaError, match="stall_factor"):
            validate_tradeoff(
                {"feature": "partial-stalling", "base_hit_ratio": 0.9}
            )
        out = validate_tradeoff(
            {
                "feature": "partial-stalling",
                "base_hit_ratio": 0.9,
                "stall_factor": 0.4,
            }
        )
        assert out["stall_factor"] == 0.4

    def test_feature_choice_enforced(self):
        with pytest.raises(SchemaError, match=r"\$\.params\.feature"):
            validate_tradeoff({"feature": "warp-drive", "base_hit_ratio": 0.9})


class TestRanking:
    def test_betas_required_and_bounded(self):
        with pytest.raises(SchemaError, match=r"\$\.params\.betas"):
            validate_ranking({"base_hit_ratio": 0.9})
        with pytest.raises(SchemaError, match=r"betas\[1\]"):
            validate_ranking({"base_hit_ratio": 0.9, "betas": [2.0, 0.5]})
        with pytest.raises(SchemaError, match=r"\$\.params\.betas"):
            validate_ranking({"base_hit_ratio": 0.9, "betas": [2.0] * 65})

    def test_stall_factors_must_parallel_betas(self):
        with pytest.raises(SchemaError, match="parallel"):
            validate_ranking(
                {
                    "base_hit_ratio": 0.9,
                    "betas": [2.0, 4.0],
                    "stall_factors": [0.4],
                }
            )


class TestAdvise:
    def test_defaults(self):
        out = validate_advise({})
        assert out["cache_kib"] == 8
        assert out["stall_factor"] is None


class TestSimulate:
    def test_defaults_give_quick_spec92(self):
        out = validate_simulate({})
        assert out["trace"] == {
            "kind": "spec92",
            "name": "swm256",
            "instructions": 8_000,
            "seed": 7,
        }
        assert out["cache"] == {
            "total_bytes": 8192,
            "line_size": 32,
            "associativity": 2,
        }
        assert out["policy"] == "FS"
        assert out["issue_rate"] == 1.0
        assert out["deadline_ms"] is None

    def test_trace_bounds(self):
        with pytest.raises(SchemaError, match="instructions"):
            validate_simulate(
                {
                    "trace": {
                        "kind": "spec92",
                        "name": "swm256",
                        "instructions": MAX_INSTRUCTIONS + 1,
                    }
                }
            )
        with pytest.raises(SchemaError, match=r"\$\.params\.trace\.name"):
            validate_simulate({"trace": {"kind": "spec92", "name": "doom"}})
        with pytest.raises(SchemaError, match=r"\$\.params\.trace\.n"):
            validate_simulate({"trace": {"kind": "matmul", "n": 4096}})

    def test_matmul_trace_normalised(self):
        out = validate_simulate({"trace": {"kind": "matmul", "n": 16}})
        assert out["trace"] == {
            "kind": "matmul",
            "n": 16,
            "tile": None,
            "element_size": 8,
            "alu_per_reference": 2,
        }

    def test_geometry_power_of_two(self):
        with pytest.raises(SchemaError, match="power of two"):
            validate_simulate({"cache": {"total_bytes": 3000}})

    def test_line_size_must_cover_bus(self):
        with pytest.raises(SchemaError, match="multiple of bus_width"):
            validate_simulate({"cache": {"line_size": 4}, "bus_width": 8})

    def test_unknown_keys_rejected_everywhere(self):
        with pytest.raises(SchemaError, match="unknown"):
            validate_simulate({"warp": 9})
        with pytest.raises(SchemaError, match="unknown"):
            validate_simulate({"trace": {"kind": "spec92", "nam": "swm256"}})
        with pytest.raises(SchemaError, match="unknown"):
            validate_simulate({"cache": {"bytes": 8192}})
