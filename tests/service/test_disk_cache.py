"""The disk-backed result cache: persistence, corruption, budget."""

import json

import pytest

from repro.obs import metrics
from repro.service.disk_cache import (
    RESULT_CACHE_DIR_ENV,
    RESULT_CACHE_ENV,
    DiskResultCache,
    cache_enabled,
    resolve_cache_dir,
)


@pytest.fixture
def cache(tmp_path):
    return DiskResultCache(tmp_path / "results", capacity_bytes=1024)


class TestRoundTrip:
    def test_put_get_returns_identical_bytes(self, cache):
        cache.put("k1", b'{"cycles": 42}')
        assert cache.get("k1") == b'{"cycles": 42}'
        assert cache.hits == 1

    def test_miss_on_unknown_key(self, cache):
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_survives_a_new_instance(self, cache):
        """The warm-boot contract: a fresh process over the same
        directory serves what its predecessor stored."""
        cache.put("k1", b"payload")
        reborn = DiskResultCache(cache.directory, capacity_bytes=1024)
        assert reborn.get("k1") == b"payload"

    def test_stats_shape(self, cache):
        cache.put("k1", b"abc")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] == 3
        assert stats["capacity_bytes"] == 1024


class TestCorruption:
    def test_truncated_payload_is_a_silent_miss(self, cache):
        cache.put("k1", b"full payload bytes")
        bin_path = cache.directory / "k1.bin"
        bin_path.write_bytes(b"trunc")
        registry = metrics.enable_metrics()
        try:
            assert cache.get("k1") is None
        finally:
            metrics.disable_metrics()
        assert cache.misses == 1
        counters = registry.snapshot()["counters"]
        assert counters.get("result_store.corrupt_recompute") == 1

    def test_garbage_sidecar_is_a_silent_miss(self, cache):
        cache.put("k1", b"payload")
        (cache.directory / "k1.json").write_text("not json at all")
        assert cache.get("k1") is None

    def test_version_skew_is_a_plain_miss(self, cache):
        cache.put("k1", b"payload")
        meta_path = cache.directory / "k1.json"
        meta = json.loads(meta_path.read_text())
        meta["store_version"] = 999
        meta_path.write_text(json.dumps(meta))
        registry = metrics.enable_metrics()
        try:
            assert cache.get("k1") is None
        finally:
            metrics.disable_metrics()
        # Skew is expected across upgrades — no corruption diagnostic.
        counters = registry.snapshot()["counters"]
        assert "result_store.corrupt_recompute" not in counters

    def test_recovery_by_rewrite(self, cache):
        cache.put("k1", b"payload")
        (cache.directory / "k1.bin").write_bytes(b"x")
        assert cache.get("k1") is None
        cache.put("k1", b"payload")
        assert cache.get("k1") == b"payload"


class TestBudget:
    def test_oversized_payload_is_not_stored(self, tmp_path):
        cache = DiskResultCache(tmp_path, capacity_bytes=8)
        cache.put("big", b"x" * 9)
        assert len(cache) == 0

    def test_eviction_prefers_oldest_used(self, tmp_path):
        cache = DiskResultCache(tmp_path, capacity_bytes=100)
        cache.put("a", b"x" * 40)
        cache.put("b", b"x" * 40)
        # Re-use "a" so "b" is the eviction candidate...
        meta_a = tmp_path / "a.json"
        meta_b = tmp_path / "b.json"
        import os

        os.utime(meta_b, (1.0, 1.0))
        os.utime(meta_a, (2.0, 2.0))
        # ...then overflow the budget.
        cache.put("c", b"x" * 40)
        assert cache.get("b") is None
        assert cache.get("a") == b"x" * 40
        assert cache.get("c") == b"x" * 40
        assert cache.evictions >= 1

    def test_zero_capacity_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskResultCache(tmp_path, capacity_bytes=0)


class TestEnvironment:
    def test_kill_switch(self, cache, monkeypatch):
        cache.put("k1", b"payload")
        monkeypatch.setenv(RESULT_CACHE_ENV, "0")
        assert not cache_enabled()
        assert cache.get("k1") is None
        cache.put("k2", b"other")
        monkeypatch.delenv(RESULT_CACHE_ENV)
        assert cache.get("k1") == b"payload"  # nothing was deleted
        assert cache.get("k2") is None  # nothing was written

    def test_dir_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(RESULT_CACHE_DIR_ENV, str(tmp_path / "override"))
        assert resolve_cache_dir(tmp_path / "configured") == tmp_path / "override"

    def test_configured_dir_without_override(self, monkeypatch, tmp_path):
        monkeypatch.delenv(RESULT_CACHE_DIR_ENV, raising=False)
        assert resolve_cache_dir(tmp_path / "configured") == tmp_path / "configured"
