"""The micro-batch scheduler, exercised with injected compute."""

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.batching import EventsMemo, MicroBatcher, QueueFullError


class Recorder:
    """Injected phase-1/phase-2 with call accounting."""

    def __init__(self, resolve_delay: float = 0.0) -> None:
        self.resolved: list[str] = []
        self.computed: list[dict] = []
        self.resolve_delay = resolve_delay

    def resolve(self, params):
        import time

        if self.resolve_delay:
            time.sleep(self.resolve_delay)
        self.resolved.append(params["key"])
        return f"events:{params['key']}"

    def compute(self, params, events):
        assert events == f"events:{params['key']}"
        self.computed.append(params)
        return {"key": params["key"], "value": params["value"]}


def make_batcher(recorder, registry=None, **kwargs):
    registry = registry or MetricsRegistry()
    kwargs.setdefault("batch_window_s", 0.005)
    batcher = MicroBatcher(
        registry,
        resolve_events=recorder.resolve,
        compute=recorder.compute,
        **kwargs,
    )
    # The scheduler groups on the real events key in production; tests
    # inject a trivial key function via params["key"].
    return batcher, registry


@pytest.fixture(autouse=True)
def _key_by_param(monkeypatch):
    from repro.service import batching

    monkeypatch.setattr(
        batching.queries, "events_key_of", lambda params: params["key"]
    )
    # Trace-alone key for the second-level grouping; defaults to the
    # events key so tests that don't care see one trace per group.
    monkeypatch.setattr(
        batching.queries,
        "trace_key_of",
        lambda params: params.get("trace", params["key"]),
    )


class TestCoalescing:
    def test_concurrent_same_key_resolve_once(self):
        recorder = Recorder()

        async def run():
            batcher, registry = make_batcher(recorder)
            batcher.start()
            results = await asyncio.gather(
                *(
                    batcher.submit({"key": "shared", "value": i})
                    for i in range(8)
                )
            )
            await batcher.drain()
            return results, registry

        results, registry = asyncio.run(run())
        assert [r["value"] for r in results] == list(range(8))
        assert recorder.resolved == ["shared"]  # phase 1 exactly once
        assert len(recorder.computed) == 8  # phase 2 per request
        counters = registry.snapshot()["counters"]
        assert counters["service.phase1.resolves"] == 1
        assert counters["service.batch.requests"] == 8
        assert counters["service.batch.groups"] == 1
        assert counters["service.batch.coalesced"] == 7

    def test_distinct_keys_resolve_separately(self):
        recorder = Recorder()

        async def run():
            batcher, registry = make_batcher(recorder)
            batcher.start()
            await asyncio.gather(
                batcher.submit({"key": "a", "value": 1}),
                batcher.submit({"key": "b", "value": 2}),
            )
            await batcher.drain()
            return registry

        registry = asyncio.run(run())
        assert sorted(recorder.resolved) == ["a", "b"]
        counters = registry.snapshot()["counters"]
        assert counters["service.batch.groups"] == 2

    def test_memo_carries_across_batches(self):
        recorder = Recorder()

        async def run():
            batcher, registry = make_batcher(recorder)
            batcher.start()
            await batcher.submit({"key": "hot", "value": 1})
            await batcher.submit({"key": "hot", "value": 2})
            await batcher.drain()
            return registry

        registry = asyncio.run(run())
        assert recorder.resolved == ["hot"]  # second batch hit the memo
        counters = registry.snapshot()["counters"]
        assert counters["service.events_memo.hit"] == 1
        assert counters["service.events_memo.miss"] == 1


class TestTraceCoalescing:
    def test_geometry_fan_counts_one_trace_group(self):
        recorder = Recorder()

        async def run():
            batcher, registry = make_batcher(recorder)
            batcher.start()
            await asyncio.gather(
                batcher.submit({"key": "t/g1", "trace": "t", "value": 1}),
                batcher.submit({"key": "t/g2", "trace": "t", "value": 2}),
            )
            await batcher.drain()
            return registry

        registry = asyncio.run(run())
        # Phase 1 still runs once per (trace, geometry) group...
        assert sorted(recorder.resolved) == ["t/g1", "t/g2"]
        counters = registry.snapshot()["counters"]
        assert counters["service.batch.groups"] == 2
        # ...but the scheduler sees one trace fanned over two geometries.
        assert counters["service.batch.trace_groups"] == 1
        assert counters["service.batch.geometry_coalesced"] == 1

    def test_interleaved_fans_resolve_trace_adjacent(self):
        recorder = Recorder()

        async def run():
            batcher, registry = make_batcher(recorder)
            batcher.start()
            await asyncio.gather(
                batcher.submit({"key": "a1", "trace": "A", "value": 1}),
                batcher.submit({"key": "b1", "trace": "B", "value": 2}),
                batcher.submit({"key": "a2", "trace": "A", "value": 3}),
                batcher.submit({"key": "b2", "trace": "B", "value": 4}),
            )
            await batcher.drain()
            return registry

        registry = asyncio.run(run())
        # Groups sharing a trace run back-to-back (profile memo stays
        # hot), in first-arrival order within and across traces.
        assert recorder.resolved == ["a1", "a2", "b1", "b2"]
        counters = registry.snapshot()["counters"]
        assert counters["service.batch.groups"] == 4
        assert counters["service.batch.trace_groups"] == 2
        assert counters["service.batch.geometry_coalesced"] == 2

    def test_distinct_traces_not_coalesced(self):
        recorder = Recorder()

        async def run():
            batcher, registry = make_batcher(recorder)
            batcher.start()
            await asyncio.gather(
                batcher.submit({"key": "x", "trace": "X", "value": 1}),
                batcher.submit({"key": "y", "trace": "Y", "value": 2}),
            )
            await batcher.drain()
            return registry

        registry = asyncio.run(run())
        counters = registry.snapshot()["counters"]
        assert counters["service.batch.trace_groups"] == 2
        assert counters["service.batch.geometry_coalesced"] == 0


class TestBackpressure:
    def test_queue_limit_rejects_immediately(self):
        recorder = Recorder(resolve_delay=0.05)

        async def run():
            batcher, registry = make_batcher(
                recorder, max_pending=2, batch_window_s=0.2
            )
            batcher.start()
            first = asyncio.ensure_future(
                batcher.submit({"key": "a", "value": 1})
            )
            second = asyncio.ensure_future(
                batcher.submit({"key": "b", "value": 2})
            )
            await asyncio.sleep(0.01)  # both now pending in the window
            with pytest.raises(QueueFullError):
                await batcher.submit({"key": "c", "value": 3})
            await asyncio.gather(first, second)
            await batcher.drain()
            return registry

        registry = asyncio.run(run())
        assert registry.snapshot()["counters"]["service.queue.rejected"] == 1

    def test_submit_after_drain_rejected(self):
        recorder = Recorder()

        async def run():
            batcher, _ = make_batcher(recorder)
            batcher.start()
            await batcher.submit({"key": "a", "value": 1})
            await batcher.drain()
            with pytest.raises(QueueFullError, match="shutting down"):
                await batcher.submit({"key": "b", "value": 2})

        asyncio.run(run())

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(MetricsRegistry(), max_pending=0)
        with pytest.raises(ValueError):
            EventsMemo(0)


class TestFailurePaths:
    def test_compute_error_propagates_to_its_request_only(self):
        recorder = Recorder()
        original = recorder.compute

        def compute(params, events):
            if params["value"] == 13:
                raise ValueError("unlucky")
            return original(params, events)

        recorder.compute = compute

        async def run():
            batcher, _ = make_batcher(recorder)
            batcher.start()
            results = await asyncio.gather(
                batcher.submit({"key": "k", "value": 13}),
                batcher.submit({"key": "k", "value": 2}),
                return_exceptions=True,
            )
            await batcher.drain()
            return results

        failed, ok = asyncio.run(run())
        assert isinstance(failed, ValueError)
        assert ok["value"] == 2

    def test_resolve_error_fails_whole_group(self):
        recorder = Recorder()
        recorder.resolve = lambda params: (_ for _ in ()).throw(
            RuntimeError("no events")
        )

        async def run():
            batcher, _ = make_batcher(recorder)
            batcher.start()
            results = await asyncio.gather(
                batcher.submit({"key": "k", "value": 1}),
                batcher.submit({"key": "k", "value": 2}),
                return_exceptions=True,
            )
            await batcher.drain()
            return results

        results = asyncio.run(run())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_cancelled_request_is_skipped_not_raced(self):
        recorder = Recorder()

        async def run():
            batcher, registry = make_batcher(recorder, batch_window_s=0.05)
            batcher.start()
            doomed = asyncio.ensure_future(
                batcher.submit({"key": "k", "value": 1})
            )
            survivor = asyncio.ensure_future(
                batcher.submit({"key": "k", "value": 2})
            )
            await asyncio.sleep(0.01)
            doomed.cancel()  # deadline path: handler abandons the wait
            result = await survivor
            with pytest.raises(asyncio.CancelledError):
                await doomed
            await batcher.drain()
            return result, registry

        result, registry = asyncio.run(run())
        assert result["value"] == 2
        assert [p["value"] for p in recorder.computed] == [2]
        counters = registry.snapshot()["counters"]
        assert counters["service.batch.abandoned"] == 1
        assert batcher_depth_zero(registry)


def batcher_depth_zero(registry):
    histogram = registry.snapshot()["histograms"]["service.queue.depth"]
    return histogram["count"] >= 1


class TestEventsMemo:
    def test_lru_bound(self):
        memo = EventsMemo(2)
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1  # refresh
        memo.put("c", 3)  # evicts b
        assert memo.get("b") is None
        assert memo.get("a") == 1 and memo.get("c") == 3
