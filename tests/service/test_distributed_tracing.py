"""End-to-end trace-context propagation through one server process.

Pins the tentpole contracts at the single-process level: a pinned
traceparent threads client → ingress span → batch-thread phase-2 span,
the access log and ``/metrics`` exemplars join the same identity, the
span spool survives a drain as a validating artifact — and with tracing
disabled, all of it stays pinned off.
"""

import pytest

from repro.obs.access_log import read_access_log
from repro.obs.live import format_traceparent, parse_exposition
from repro.obs.schemas import validate_access_log_record
from repro.service import ServerConfig, ServerThread, ServiceClient

TRACE = {"kind": "spec92", "name": "swm256", "instructions": 2000, "seed": 7}
TRACE_ID = "ab" * 16
PARENT_SPAN = "cd" * 8
TRACEPARENT = format_traceparent(TRACE_ID, PARENT_SPAN)


@pytest.fixture(scope="module")
def handle(tmp_path_factory):
    base = tmp_path_factory.mktemp("tracing")
    config = ServerConfig(
        batch_window_s=0.001,
        access_log_path=str(base / "access.jsonl"),
        span_spool_dir=str(base / "spans"),
    )
    handle = ServerThread(config).start()
    probe = ServiceClient("127.0.0.1", handle.port)
    probe.wait_ready()
    probe.close()
    yield handle
    handle.stop()


@pytest.fixture()
def client(handle):
    with ServiceClient("127.0.0.1", handle.port) as client:
        yield client


def _spans_of(client, trace_id):
    document = client.debug_trace(trace_id=trace_id)
    return [
        event
        for event in document["traceEvents"]
        if event.get("ph") == "X"
    ]


class TestPropagation:
    def test_pinned_traceparent_threads_the_whole_request(self, client):
        envelope = client.request(
            "POST",
            "/v1/simulate",
            {"trace": TRACE, "memory_cycle": 7.25},
            traceparent=TRACEPARENT,
        )
        assert envelope["result"]["cycles"] > 0
        assert client.last_trace_id == TRACE_ID
        spans = _spans_of(client, TRACE_ID)
        by_name = {event["name"]: event for event in spans}
        ingress = by_name["service.request"]
        assert ingress["args"]["trace_id"] == TRACE_ID
        # The client's span is the ingress span's parent.
        assert ingress["args"]["parent_span_id"] == PARENT_SPAN
        # The batch worker thread re-entered the request's context, so
        # phase 2 is a descendant in the same trace, not an orphan.
        phase2 = by_name["service.phase2"]
        assert phase2["args"]["trace_id"] == TRACE_ID
        assert "parent_span_id" in phase2["args"]
        # Every span of this tree, and only this tree, was returned.
        assert all(e["args"]["trace_id"] == TRACE_ID for e in spans)

    def test_minted_ids_differ_per_request(self, client):
        client.health()
        first = client.last_trace_id
        client.health()
        assert first and client.last_trace_id
        assert first != client.last_trace_id
        assert len(first) == 32

    def test_malformed_traceparent_gets_a_fresh_context(self, client):
        client.request(
            "GET", "/v1/health", traceparent="00-zz-bogus-01"
        )
        assert client.last_trace_id
        assert len(client.last_trace_id) == 32
        assert client.last_trace_id != "zz"
        # The fresh trace is rootless: its ingress span has no parent.
        (ingress,) = [
            e
            for e in _spans_of(client, client.last_trace_id)
            if e["name"] == "service.request"
        ]
        assert "parent_span_id" not in ingress["args"]

    def test_trace_id_filter_excludes_other_traffic(self, client):
        client.request(
            "POST",
            "/v1/simulate",
            {"trace": TRACE, "memory_cycle": 9.75},
            traceparent=TRACEPARENT,
        )
        other = client.request(
            "POST", "/v1/simulate", {"trace": TRACE, "memory_cycle": 10.25}
        )
        assert other["result"]["cycles"] > 0
        other_id = client.last_trace_id
        assert other_id != TRACE_ID
        spans = _spans_of(client, other_id)
        assert spans
        assert all(e["args"]["trace_id"] == other_id for e in spans)


class TestJoinedViews:
    def test_access_log_lines_carry_the_trace_identity(self, handle, client):
        client.request(
            "POST",
            "/v1/simulate",
            {"trace": TRACE, "memory_cycle": 11.5},
            request_id="traced-req-1",
            traceparent=TRACEPARENT,
        )
        records = read_access_log(handle.server.access_log.path)
        (record,) = [
            r for r in records if r["request_id"] == "traced-req-1"
        ]
        validate_access_log_record(record)
        assert record["trace_id"] == TRACE_ID
        assert len(record["span_id"]) == 16

    def test_metrics_p99_carries_an_exemplar_trace_id(self, client):
        client.request(
            "POST",
            "/v1/simulate",
            {"trace": TRACE, "memory_cycle": 13.5},
            traceparent=TRACEPARENT,
        )
        text = client.metrics_text()
        parse_exposition(text)  # exemplar syntax stays parseable
        p99_lines = [
            line
            for line in text.splitlines()
            if 'quantile="0.99"' in line and 'endpoint="simulate"' in line
        ]
        assert any("trace_id=" in line for line in p99_lines)
