"""The sharded fleet over real processes: identity, restart, merging.

One module-scoped 2-worker fleet serves most tests (worker spawn is the
expensive part); the restart test deliberately SIGKILLs a worker and
runs last-ish but is order-independent — the supervisor restores the
slot either way.
"""

import json
import os
import signal
import time

import pytest

from repro.cache.cache import CacheConfig
from repro.core.stalling import StallPolicy
from repro.cpu.replay import simulate
from repro.memory.mainmem import MainMemory
from repro.obs.schemas import validate_chrome_trace, validate_sweep_stream
from repro.service import (
    FleetConfig,
    FleetThread,
    ServerConfig,
    ServerThread,
    ServiceClient,
)
from repro.service.queries import timing_result_dict
from repro.trace.spec92 import spec92_trace
from repro.util.jsonout import dump_json

TRACE = {"kind": "spec92", "name": "ear", "instructions": 2000, "seed": 13}
CACHES = [
    {"total_bytes": 4096, "line_size": 32, "associativity": 1},
    {"total_bytes": 8192, "line_size": 32, "associativity": 2},
    {"total_bytes": 16384, "line_size": 32, "associativity": 2},
]


@pytest.fixture(scope="module")
def fleet():
    config = FleetConfig(
        base=ServerConfig(batch_window_s=0.001), workers=2
    )
    with FleetThread(config) as handle:
        client = ServiceClient("127.0.0.1", handle.port)
        client.wait_ready(timeout=30.0)
        yield handle, client
        client.close()


class TestForwarding:
    def test_result_byte_identical_to_direct_simulate(self, fleet):
        """The acceptance pin: a fleet-served result is byte-for-byte
        the single-engine serialization, whichever worker computed it."""
        _, client = fleet
        for cache in CACHES:
            envelope = client.simulate(
                trace=TRACE, cache=cache, policy="FS", memory_cycle=8.0
            )
            direct = simulate(
                spec92_trace("ear", 2000, seed=13),
                CacheConfig(
                    cache["total_bytes"],
                    cache["line_size"],
                    cache["associativity"],
                ),
                MainMemory(8.0, 4),
                policy=StallPolicy.FULL_STALL,
            )
            expected = dump_json(timing_result_dict(direct, "replay")).encode()
            assert dump_json(envelope["result"]).encode() == expected

    def test_repeat_hits_the_owning_workers_cache(self, fleet):
        _, client = fleet
        params = dict(trace=TRACE, policy="BNL3", memory_cycle=16.0)
        cold = client.simulate(**params)
        warm = client.simulate(**params)
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert dump_json(cold["result"]) == dump_json(warm["result"])

    def test_error_envelopes_relay_verbatim(self, fleet):
        """A worker's structured error passes through the router
        unchanged (here: a deadline the worker cannot meet)."""
        from repro.service import ServiceError

        _, client = fleet
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(trace={"kind": "matmul", "n": 48}, deadline_ms=1.0)
        assert excinfo.value.status == 504
        assert excinfo.value.code == "deadline_exceeded"


class TestShardedSweep:
    def test_sweep_multiplexes_shards_into_one_valid_stream(self, fleet):
        _, client = fleet
        records = list(
            client.sweep(
                trace=TRACE,
                caches=CACHES,
                policies=["FS", "BNL3"],
                memory_cycles=[8.0, 16.0],
            )
        )
        validate_sweep_stream(records)
        assert records[0]["points"] == 12
        assert records[-1] == {"done": True, "errors": 0, "points": 12}
        by_index = {r["index"]: r for r in records[1:-1]}
        assert sorted(by_index) == list(range(12))
        # Cross-check a few points against the simulate endpoint.
        for index in (0, 5, 11):
            point = by_index[index]["point"]
            envelope = client.simulate(
                trace=TRACE,
                cache=point["cache"],
                policy=point["policy"],
                memory_cycle=point["memory_cycle"],
            )
            assert dump_json(by_index[index]["result"]) == dump_json(
                envelope["result"]
            )


class TestMergedObservability:
    def test_stats_carries_the_fleet_section(self, fleet):
        _, client = fleet
        client.simulate(trace=TRACE, memory_cycle=24.0)
        stats = client.stats_envelope()
        workers = stats["fleet"]["workers"]
        assert sorted(workers) == ["w0", "w1"]
        for info in workers.values():
            assert info["alive"] is True
            assert info["reachable"] is True
            assert isinstance(info["pid"], int)
        forwarded = stats["fleet"]["forward_latency_ms"]
        assert forwarded["p99_ms"] >= forwarded["p50_ms"] >= 0.0

    def test_worker_counters_are_labelled_not_summed(self, fleet):
        _, client = fleet
        client.simulate(trace=TRACE, memory_cycle=32.0)
        counters = client.stats_envelope()["counters"]
        worker_keys = [k for k in counters if "worker=w" in k]
        assert worker_keys, f"no worker-labelled counters in {list(counters)[:8]}"
        assert any(k.startswith("service.requests") for k in worker_keys)
        assert any(
            k.startswith("service.router.forwarded") for k in counters
        )

    def test_metrics_exposes_fleet_gauges(self, fleet):
        _, client = fleet
        text = client.metrics_text()
        assert "repro_fleet_workers 2" in text
        assert "repro_fleet_workers_alive" in text


class TestDistributedTracing:
    # Spans land in the rings asynchronously to the response (the
    # worker's ingress span closes after its body is written), so the
    # merged document is polled briefly before asserting on it.
    def _traced_tree(self, client, memory_cycle, seed=13):
        trace = dict(TRACE, seed=seed)
        envelope = client.simulate(trace=trace, memory_cycle=memory_cycle)
        assert envelope["result"]["cycles"] > 0
        trace_id = client.last_trace_id
        assert trace_id and len(trace_id) == 32
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            document = client.debug_trace(trace_id=trace_id)
            spans = [
                e for e in document["traceEvents"] if e.get("ph") == "X"
            ]
            has_forward = any(
                e["name"] == "service.forward" and e["pid"] == 0
                for e in spans
            )
            if has_forward and any(e["pid"] >= 1 for e in spans):
                return trace_id, document, spans
            time.sleep(0.1)
        pytest.fail("merged trace never assembled router and worker spans")

    def test_forwarded_request_produces_one_stitched_trace(self, fleet):
        """The acceptance pin: one forwarded request, one merged
        Perfetto document with the router's forward span fathering the
        worker's spans, flow events stitching the edge."""
        _, client = fleet
        trace_id, document, spans = self._traced_tree(client, 18.5)
        validate_chrome_trace(document)
        assert all(e["args"]["trace_id"] == trace_id for e in spans)
        assert all(e["ts"] >= 0.0 for e in spans)
        (forward,) = [e for e in spans if e["name"] == "service.forward"]
        children = [
            e
            for e in spans
            if e["pid"] >= 1
            and e["args"].get("parent_span_id") == forward["args"]["span_id"]
        ]
        assert children, "no worker span names the forward span as parent"
        assert {e["name"] for e in children} == {"service.request"}
        # The flow pair rides the forward span's id from pid 0 to the
        # worker's track.
        flows = [
            e
            for e in document["traceEvents"]
            if e.get("cat") == "repro.flow"
            and e["id"] == forward["args"]["span_id"]
        ]
        assert {e["ph"] for e in flows} == {"s", "f"}
        assert {e["pid"] for e in flows if e["ph"] == "s"} == {0}
        assert all(e["pid"] >= 1 for e in flows if e["ph"] == "f")
        # Both workers are first-class fleet members in the document.
        assert sorted(document["fleet"]) == ["w0", "w1"]
        assert all(m["reachable"] for m in document["fleet"].values())

    def test_respawned_worker_realigns_into_the_timeline(self, fleet):
        """Satellite pin: after SIGKILL + respawn, the fresh monotonic
        epoch is re-handshaken, so the new worker's spans still nest
        inside their forward spans instead of landing seconds away."""
        _, client = fleet
        stats = client.stats_envelope()
        victim_pid = stats["fleet"]["workers"]["w1"]["pid"]
        base_restarts = stats["fleet"]["restarts"]
        os.kill(victim_pid, signal.SIGKILL)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            fleet_stats = client.stats_envelope()["fleet"]
            w1 = fleet_stats["workers"]["w1"]
            if (
                w1["alive"]
                and w1["pid"] != victim_pid
                and fleet_stats["restarts"] > base_restarts
            ):
                break
            time.sleep(0.2)
        else:
            pytest.fail("worker w1 was not respawned within 30s")

        # Every post-respawn tree nests: a worker span starts after its
        # forward span opened and ends before it closed, within the
        # handshake's error budget (generous here; an uncorrected fresh
        # epoch would be off by whole seconds).
        slack_us = 250_000.0
        saw_respawned = False
        for step in range(16):
            # Fresh seeds give well-spread cache keys, so the ring
            # shards some of these onto the respawned slot.
            trace_id, document, spans = self._traced_tree(
                client, 40.0, seed=100 + step
            )
            (forward,) = [
                e for e in spans if e["name"] == "service.forward"
            ]
            workers = [e for e in spans if e["pid"] >= 1]
            assert workers
            respawned_pid = document["fleet"]["w1"]["pid"]
            for event in workers:
                assert event["dur"] >= 0.0
                assert event["ts"] >= forward["ts"] - slack_us
                assert (
                    event["ts"] + event["dur"]
                    <= forward["ts"] + forward["dur"] + slack_us
                )
                if event["pid"] == respawned_pid:
                    saw_respawned = True
            if saw_respawned:
                break
        assert saw_respawned, "no request ever sharded to the respawned worker"
        # The full merged timeline stays Perfetto-clean: normalised to
        # ts 0, no negative timestamps or durations anywhere.
        document = client.debug_trace()
        validate_chrome_trace(document)
        timed = [
            e for e in document["traceEvents"] if e.get("ph") in ("X", "s", "f")
        ]
        assert timed
        assert all(e["ts"] >= 0.0 for e in timed)
        assert all(e["dur"] >= 0.0 for e in timed if e["ph"] == "X")
        assert min(e["ts"] for e in timed) == 0.0


class TestWorkerRestart:
    def test_killed_worker_is_respawned_into_its_slot(self, fleet):
        _, client = fleet
        stats = client.stats_envelope()
        victim_pid = stats["fleet"]["workers"]["w0"]["pid"]
        base_restarts = stats["fleet"]["restarts"]
        os.kill(victim_pid, signal.SIGKILL)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            fleet_stats = client.stats_envelope()["fleet"]
            w0 = fleet_stats["workers"]["w0"]
            if (
                w0["alive"]
                and w0["pid"] != victim_pid
                and fleet_stats["restarts"] > base_restarts
            ):
                break
            time.sleep(0.2)
        else:
            pytest.fail("worker w0 was not respawned within 30s")
        # The slot re-owns its range: requests keep working and results
        # stay byte-identical to the pre-kill serialization.
        envelope = client.simulate(
            trace=TRACE, cache=CACHES[0], policy="FS", memory_cycle=8.0
        )
        direct = simulate(
            spec92_trace("ear", 2000, seed=13),
            CacheConfig(4096, 32, 1),
            MainMemory(8.0, 4),
            policy=StallPolicy.FULL_STALL,
        )
        assert dump_json(envelope["result"]) == dump_json(
            timing_result_dict(direct, "replay")
        )


class TestWarmBoot:
    def test_cold_restart_serves_from_the_disk_cache(
        self, tmp_path, monkeypatch
    ):
        """The disk tier outlives the process: a brand-new server over
        the same directory answers the very first request cached, with
        identical result bytes."""
        from repro.service.disk_cache import RESULT_CACHE_DIR_ENV

        monkeypatch.setenv(RESULT_CACHE_DIR_ENV, str(tmp_path))
        params = dict(trace=TRACE, policy="BL", memory_cycle=12.0)
        config = ServerConfig(
            batch_window_s=0.001, disk_cache_dir=str(tmp_path)
        )
        with ServerThread(config) as first:
            client = ServiceClient("127.0.0.1", first.port)
            client.wait_ready()
            cold = client.simulate(**params)
            assert cold["cached"] is False
            client.close()
        with ServerThread(config) as second:
            client = ServiceClient("127.0.0.1", second.port)
            client.wait_ready()
            warm = client.simulate(**params)
            client.close()
        assert warm["cached"] is True
        assert dump_json(warm["result"]) == dump_json(cold["result"])

    def test_kill_switch_forces_recompute(self, tmp_path, monkeypatch):
        from repro.service.disk_cache import (
            RESULT_CACHE_DIR_ENV,
            RESULT_CACHE_ENV,
        )

        monkeypatch.setenv(RESULT_CACHE_DIR_ENV, str(tmp_path))
        params = dict(trace=TRACE, policy="FS", memory_cycle=48.0)
        config = ServerConfig(
            batch_window_s=0.001, disk_cache_dir=str(tmp_path)
        )
        with ServerThread(config) as first:
            client = ServiceClient("127.0.0.1", first.port)
            client.wait_ready()
            cold = client.simulate(**params)
            client.close()
        monkeypatch.setenv(RESULT_CACHE_ENV, "0")
        with ServerThread(config) as second:
            client = ServiceClient("127.0.0.1", second.port)
            client.wait_ready()
            recomputed = client.simulate(**params)
            client.close()
        assert recomputed["cached"] is False
        assert dump_json(recomputed["result"]) == dump_json(cold["result"])
