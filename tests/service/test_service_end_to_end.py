"""The full stack over a real socket: server thread + blocking client.

One module-scoped server serves every test here — starting one per test
would re-pay trace extraction and slow the suite for nothing.
"""

import json
import threading

import pytest

from repro.cache.cache import CacheConfig
from repro.core.execution import execution_breakdown
from repro.core.params import SystemConfig, workload_from_hit_ratio
from repro.core.stalling import StallPolicy
from repro.cpu.replay import simulate
from repro.memory.mainmem import MainMemory
from repro.obs.metrics import MetricsRegistry
from repro.obs.schemas import validate_service_response
from repro.service.queries import timing_result_dict
from repro.service import ServerConfig, ServerThread, ServiceClient, ServiceError
from repro.trace.spec92 import spec92_trace
from repro.util.jsonout import dump_json

TRACE_PARAMS = {"kind": "spec92", "name": "ear", "instructions": 4000, "seed": 7}


@pytest.fixture(scope="module")
def server():
    registry = MetricsRegistry()
    with ServerThread(
        ServerConfig(batch_window_s=0.001), registry=registry
    ) as handle:
        client = ServiceClient("127.0.0.1", handle.port)
        client.wait_ready()
        yield handle, client, registry
        client.close()


class TestAnalyticEndpoints:
    def test_health(self, server):
        _, client, _ = server
        assert client.health() == {"status": "ok"}

    def test_execution_time_matches_library(self, server):
        _, client, _ = server
        result = client.execution_time(hit_ratio=0.95, memory_cycle=8.0)
        config = SystemConfig(4, 32, 8.0)
        workload = workload_from_hit_ratio(0.95, config)
        breakdown = execution_breakdown(workload, config)
        assert result["total_cycles"] == pytest.approx(breakdown.total)
        assert result["cpi"] == pytest.approx(
            breakdown.total / workload.instructions
        )

    def test_tradeoff_and_ranking_consistent(self, server):
        _, client, _ = server
        tradeoff = client.tradeoff(
            feature="doubling-bus", base_hit_ratio=0.9, memory_cycle=8.0
        )
        ranking = client.ranking(base_hit_ratio=0.9, betas=[8.0])
        assert tradeoff["hit_ratio_delta"] == pytest.approx(
            ranking["hit_ratio_traded"]["doubling-bus"][0]
        )

    def test_advise_ranks_features(self, server):
        _, client, _ = server
        result = client.advise(memory_cycle=8.0)
        features = [r["feature"] for r in result["recommendations"]]
        assert len(features) >= 3
        assert 0.0 < result["base_hit_ratio"] < 1.0

    def test_envelopes_validate(self, server):
        _, client, _ = server
        for envelope in (
            client.request("GET", "/v1/health"),
            client.request(
                "POST", "/v1/tradeoff",
                {"feature": "write-buffers", "base_hit_ratio": 0.9},
            ),
            client.stats_envelope(),
            client.simulate(trace=TRACE_PARAMS),
        ):
            validate_service_response(envelope)


class TestSimulateEndpoint:
    def test_result_byte_identical_to_direct_simulate(self, server):
        """The acceptance criterion: the service's result sub-object is
        byte-for-byte what a direct engine call serializes to."""
        _, client, _ = server
        envelope = client.simulate(
            trace=TRACE_PARAMS,
            cache={"total_bytes": 8192, "line_size": 32, "associativity": 2},
            policy="FS",
            memory_cycle=8.0,
            bus_width=4,
        )
        direct = simulate(
            spec92_trace("ear", 4000, seed=7),
            CacheConfig(8192, 32, 2),
            MainMemory(8.0, 4),
            policy=StallPolicy.FULL_STALL,
        )
        expected = dump_json(timing_result_dict(direct, "replay")).encode()
        served = dump_json(envelope["result"]).encode()
        assert served == expected

    def test_repeat_is_cached_with_identical_result(self, server):
        _, client, _ = server
        params = dict(trace=TRACE_PARAMS, policy="BNL3", memory_cycle=16.0)
        cold = client.simulate(**params)
        warm = client.simulate(**params)
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert dump_json(cold["result"]) == dump_json(warm["result"])

    def test_multi_issue_served_by_step_oracle(self, server):
        _, client, _ = server
        envelope = client.simulate(trace=TRACE_PARAMS, issue_rate=2.0)
        assert envelope["result"]["engine"] == "step"
        single = client.simulate(trace=TRACE_PARAMS)
        assert single["result"]["engine"] == "replay"

    def test_concurrent_shared_key_coalesces(self, server):
        """16 concurrent clients over one (trace, geometry) key: phase 1
        runs at most once more, and every beta gets its own answer."""
        handle, _, registry = server
        before = registry.counter("service.phase1.resolves")
        results: dict[float, dict] = {}
        errors: list[Exception] = []
        barrier = threading.Barrier(16)

        def worker(beta):
            c = ServiceClient("127.0.0.1", handle.port)
            try:
                barrier.wait()
                results[beta] = c.simulate(
                    trace={
                        "kind": "spec92",
                        "name": "hydro2d",
                        "instructions": 4000,
                        "seed": 7,
                    },
                    memory_cycle=beta,
                )["result"]
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)
            finally:
                c.close()

        betas = [float(b) for b in range(2, 18)]
        threads = [threading.Thread(target=worker, args=(b,)) for b in betas]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 16
        # Cycle counts strictly increase with the memory cycle time.
        cycles = [results[b]["cycles"] for b in betas]
        assert cycles == sorted(cycles) and len(set(cycles)) == 16
        assert registry.counter("service.phase1.resolves") - before <= 1

    def test_stats_report_queue_caches_and_latency(self, server):
        _, client, _ = server
        stats = client.stats_envelope()
        assert stats["queue"]["limit"] == 64
        assert stats["result_cache"]["capacity_bytes"] == 8 * 1024 * 1024
        assert stats["latency"]["simulate"]["count"] >= 1
        assert (
            stats["latency"]["simulate"]["p50_ms"]
            <= stats["latency"]["simulate"]["p99_ms"]
        )
        assert stats["counters"]["service.batch.requests"] >= 16


class TestErrorMapping:
    def test_unknown_endpoint_404(self, server):
        _, client, _ = server
        with pytest.raises(ServiceError) as excinfo:
            client.request("GET", "/v1/nonsense")
        assert excinfo.value.status == 404

    def test_wrong_method_405(self, server):
        _, client, _ = server
        with pytest.raises(ServiceError) as excinfo:
            client.request("GET", "/v1/simulate")
        assert excinfo.value.status == 405

    def test_error_envelope_validates(self, server):
        _, client, _ = server
        conn_client = ServiceClient("127.0.0.1", server[0].port)
        try:
            conn_client.request("POST", "/v1/simulate", {"warp": 9})
        except ServiceError as error:
            assert error.status == 400
            assert error.code == "schema_error"
        finally:
            conn_client.close()

    def test_query_string_ignored_for_routing(self, server):
        _, client, _ = server
        assert client.request("GET", "/v1/health?probe=1")["result"] == {
            "status": "ok"
        }


class TestByteIdenticalAnalytic:
    def test_same_request_same_bytes(self, server):
        """Two identical requests produce identical response bytes
        (dump_json canonicalization end to end)."""
        _, client, _ = server
        payload = {"feature": "pipelined-memory", "base_hit_ratio": 0.85}
        first = client.request("POST", "/v1/tradeoff", payload)
        second = client.request("POST", "/v1/tradeoff", payload)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
