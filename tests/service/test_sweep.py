"""The streaming sweep endpoint: framing, identity, point-level errors."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.schemas import validate_sweep_stream
from repro.service import ServerConfig, ServerThread, ServiceClient, ServiceError
from repro.util.jsonout import dump_json

TRACE = {"kind": "spec92", "name": "ear", "instructions": 2000, "seed": 11}
CACHES = [
    {"total_bytes": 4096, "line_size": 32, "associativity": 1},
    {"total_bytes": 8192, "line_size": 32, "associativity": 2},
]
GRID = dict(
    trace=TRACE, caches=CACHES, policies=["FS", "BNL3"], memory_cycles=[8.0, 16.0]
)


@pytest.fixture(scope="module")
def server():
    with ServerThread(
        ServerConfig(batch_window_s=0.001), registry=MetricsRegistry()
    ) as handle:
        client = ServiceClient("127.0.0.1", handle.port)
        client.wait_ready()
        yield handle, client
        client.close()


class TestFraming:
    def test_stream_validates_and_covers_the_grid(self, server):
        _, client = server
        records = list(client.sweep(**GRID))
        validate_sweep_stream(records)
        header, summary = records[0], records[-1]
        assert header["points"] == 8
        assert header["grid"] == {"caches": 2, "policies": 2, "memory_cycles": 2}
        assert summary == {"done": True, "errors": 0, "points": 8}
        assert sorted(r["index"] for r in records[1:-1]) == list(range(8))

    def test_point_metadata_reconstructs_the_grid(self, server):
        """index = ((cache_index * len(policies)) + p) * len(betas) + b —
        cache-major enumeration, pinned because clients key plots on it."""
        _, client = server
        for record in list(client.sweep(**GRID))[1:-1]:
            point = record["point"]
            expected = (
                point["cache_index"] * 2 + GRID["policies"].index(point["policy"])
            ) * 2 + GRID["memory_cycles"].index(point["memory_cycle"])
            assert record["index"] == expected
            assert point["cache"] == CACHES[point["cache_index"]]

    def test_invalid_grid_is_an_ordinary_400(self, server):
        """Validation precedes the stream head, so a bad request gets a
        plain error envelope, not a truncated stream."""
        _, client = server
        with pytest.raises(ServiceError) as excinfo:
            list(client.sweep(trace=TRACE, caches=[], policies=["FS"],
                              memory_cycles=[8.0]))
        assert excinfo.value.status == 400


class TestIdentity:
    def test_sweep_results_byte_identical_to_simulate(self, server):
        """Each sweep line's result is exactly what /v1/simulate returns
        for that point — same engine, same caches, same serialization."""
        _, client = server
        for record in list(client.sweep(**GRID))[1:-1]:
            point = record["point"]
            envelope = client.simulate(
                trace=TRACE,
                cache=point["cache"],
                policy=point["policy"],
                memory_cycle=point["memory_cycle"],
            )
            assert dump_json(record["result"]) == dump_json(envelope["result"])

    def test_repeat_sweep_is_fully_cached(self, server):
        _, client = server
        list(client.sweep(**GRID))
        again = list(client.sweep(**GRID))[1:-1]
        assert all(r["cached"] for r in again)


class TestPointErrors:
    def test_expired_deadline_becomes_error_lines_not_a_broken_stream(self):
        """A point that cannot meet its deadline is reported in-stream;
        the stream still terminates with a complete index space."""
        with ServerThread(
            ServerConfig(batch_window_s=0.001), registry=MetricsRegistry()
        ) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            client.wait_ready()
            records = list(
                client.sweep(
                    trace={"kind": "matmul", "n": 48},  # slow cold extraction
                    caches=CACHES[:1],
                    policies=["FS"],
                    memory_cycles=[8.0],
                    deadline_ms=1.0,
                )
            )
            validate_sweep_stream(records)
            summary = records[-1]
            assert summary["errors"] == 1
            (point,) = records[1:-1]
            assert point["error"]["code"] == "deadline_exceeded"
            assert point["error"]["status"] == 504
            client.close()
