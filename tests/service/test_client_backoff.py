"""The client's opt-in busy-server backoff: determinism and policy."""

import itertools

import pytest

from repro.service.client import (
    DEFAULT_BACKOFF_BASE_S,
    DEFAULT_BACKOFF_CAP_S,
    ServiceClient,
    ServiceError,
    backoff_delays,
)


def take(n, iterator):
    return list(itertools.islice(iterator, n))


class TestDelayStream:
    def test_same_seed_same_schedule(self):
        a = take(8, backoff_delays(0.05, 2.0, seed=42))
        b = take(8, backoff_delays(0.05, 2.0, seed=42))
        assert a == b

    def test_different_seeds_differ(self):
        a = take(8, backoff_delays(0.05, 2.0, seed=1))
        b = take(8, backoff_delays(0.05, 2.0, seed=2))
        assert a != b

    def test_capped_exponential_with_equal_jitter(self):
        delays = take(12, backoff_delays(0.05, 2.0, seed=7))
        for attempt, delay in enumerate(delays):
            nominal = min(2.0, 0.05 * 2.0**attempt)
            assert nominal / 2.0 <= delay <= nominal
        # The tail is capped: every late delay fits under the cap.
        assert all(d <= 2.0 for d in delays[-4:])

    def test_delays_grow_until_the_cap(self):
        delays = take(10, backoff_delays(0.05, 2.0, seed=3))
        nominals = [min(2.0, 0.05 * 2.0**k) for k in range(10)]
        assert nominals == sorted(nominals)
        assert max(delays) <= 2.0


def busy_error(status=429, code="backpressure"):
    return ServiceError(status, code, "busy")


class FlakyOnce:
    """Stub transport: fails ``failures`` times, then succeeds."""

    def __init__(self, failures, error=None):
        self.remaining = failures
        self.calls = 0
        self.error = error or busy_error()

    def __call__(self, method, path, params=None, request_id=None, traceparent=None):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error
        return {"result": "ok"}


def make_client(**kwargs) -> tuple[ServiceClient, list]:
    client = ServiceClient("127.0.0.1", 1, **kwargs)
    slept: list[float] = []
    client._sleep = slept.append
    return client, slept


class TestRetryLoop:
    def test_default_is_no_retry(self):
        client, slept = make_client()
        client._request_once = FlakyOnce(1)
        with pytest.raises(ServiceError):
            client.request("POST", "/v1/simulate", {})
        assert slept == []
        assert client.stats.backoffs == 0

    def test_retries_busy_then_succeeds(self):
        client, slept = make_client(busy_retries=3, backoff_seed=42)
        client._request_once = FlakyOnce(2)
        assert client.request("POST", "/v1/simulate", {}) == {"result": "ok"}
        assert client.stats.backoffs == 2
        assert client.stats.backoff_wait_s == pytest.approx(sum(slept))
        # The sleeps are the seeded schedule, reproducible run to run.
        assert slept == take(2, backoff_delays(
            DEFAULT_BACKOFF_BASE_S, DEFAULT_BACKOFF_CAP_S, seed=42
        ))

    def test_gives_up_after_the_retry_budget(self):
        client, slept = make_client(busy_retries=2)
        stub = FlakyOnce(10)
        client._request_once = stub
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/v1/simulate", {})
        assert excinfo.value.status == 429
        assert stub.calls == 3  # the original try plus two retries
        assert len(slept) == 2

    def test_retries_503_draining(self):
        client, slept = make_client(busy_retries=1)
        client._request_once = FlakyOnce(1, busy_error(503, "draining"))
        assert client.request("GET", "/readyz") == {"result": "ok"}
        assert len(slept) == 1

    def test_never_retries_client_errors(self):
        client, slept = make_client(busy_retries=5)
        stub = FlakyOnce(1, busy_error(400, "invalid_params"))
        client._request_once = stub
        with pytest.raises(ServiceError):
            client.request("POST", "/v1/simulate", {})
        assert stub.calls == 1
        assert slept == []

    def test_fresh_schedule_per_logical_request(self):
        """Each request() restarts the seeded delay stream, so two calls
        with the same seed observe the same schedule."""
        client, slept = make_client(busy_retries=2, backoff_seed=9)
        client._request_once = FlakyOnce(2)
        client.request("POST", "/v1/simulate", {})
        first = list(slept)
        slept.clear()
        client._request_once = FlakyOnce(2)
        client.request("POST", "/v1/simulate", {})
        assert slept == first

    def test_summary_surfaces_backoff_stats(self):
        client, _ = make_client(busy_retries=1)
        client._request_once = FlakyOnce(1)
        client.request("POST", "/v1/simulate", {})
        summary = client.stats.summary()
        assert summary["backoffs"] == 1
        assert summary["backoff_wait_s"] > 0.0
