"""The robustness contract: deadlines, backpressure, drain, bad input.

Each test gets its own server — these tests deliberately wedge, drain,
or overflow it.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import ServerConfig, ServerThread, ServiceClient, ServiceError

SLOW_TRACE = {"kind": "matmul", "n": 64}  # ~1s+ of cold phase-1 extraction
QUICK_TRACE = {"kind": "spec92", "name": "swm256", "instructions": 2000, "seed": 7}


def start_server(**overrides):
    config = ServerConfig(**{"batch_window_s": 0.001, **overrides})
    return ServerThread(config, registry=MetricsRegistry()).start()


def raw_request(port, payload: bytes, path="/v1/simulate", method="POST"):
    """Send arbitrary bytes as a request body, return (status, envelope)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30.0)
    try:
        try:
            conn.request(method, path, body=payload)
        except (BrokenPipeError, ConnectionResetError):
            # The server rejects an oversized body from its headers alone
            # and may close before the client finishes sending it; the
            # error response is already on the wire.
            pass
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestDeadlines:
    def test_deadline_timeout_is_a_structured_error(self):
        handle = start_server()
        try:
            client = ServiceClient("127.0.0.1", handle.port)
            client.wait_ready()
            with pytest.raises(ServiceError) as excinfo:
                client.simulate(trace=SLOW_TRACE, deadline_ms=25.0)
            assert excinfo.value.status == 504
            assert excinfo.value.code == "deadline_exceeded"
            # The server survives: the abandoned compute finishes in the
            # background and the connection stays usable.
            assert client.health() == {"status": "ok"}
            client.close()
        finally:
            handle.stop()

    def test_deadline_only_cancels_its_own_request(self):
        handle = start_server()
        try:
            client = ServiceClient("127.0.0.1", handle.port)
            client.wait_ready()
            outcome = {}

            def doomed():
                c = ServiceClient("127.0.0.1", handle.port)
                try:
                    c.simulate(trace=SLOW_TRACE, deadline_ms=25.0)
                    outcome["doomed"] = "completed"
                except ServiceError as error:
                    outcome["doomed"] = error.code
                finally:
                    c.close()

            thread = threading.Thread(target=doomed)
            thread.start()
            survivor = client.simulate(trace=QUICK_TRACE)
            thread.join()
            assert outcome["doomed"] == "deadline_exceeded"
            assert survivor["result"]["cycles"] > 0
            client.close()
        finally:
            handle.stop()


class TestBackpressure:
    def test_full_queue_answers_429_not_hangs(self):
        # queue_limit=1 and a long batch window: the first request parks
        # in the window, the second must bounce immediately.
        handle = start_server(queue_limit=1, batch_window_s=0.5)
        try:
            first_result = {}

            def first():
                c = ServiceClient("127.0.0.1", handle.port)
                try:
                    first_result["envelope"] = c.simulate(trace=QUICK_TRACE)
                finally:
                    c.close()

            client = ServiceClient("127.0.0.1", handle.port)
            client.wait_ready()
            thread = threading.Thread(target=first)
            thread.start()
            time.sleep(0.1)  # first request is now queued in the window
            started = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.simulate(trace=QUICK_TRACE)
            elapsed = time.monotonic() - started
            assert excinfo.value.status == 429
            assert excinfo.value.code == "backpressure"
            assert elapsed < 0.4  # rejected inside the batch window
            thread.join()
            assert first_result["envelope"]["result"]["cycles"] > 0
            client.close()
        finally:
            handle.stop()


class TestDrainOnShutdown:
    def test_in_flight_requests_answered_then_sockets_close(self):
        handle = start_server(batch_window_s=0.3)
        outcome = {}

        def in_flight():
            c = ServiceClient("127.0.0.1", handle.port)
            try:
                outcome["envelope"] = c.simulate(trace=QUICK_TRACE)
            except Exception as error:  # pragma: no cover - surfaced below
                outcome["error"] = error
            finally:
                c.close()

        probe = ServiceClient("127.0.0.1", handle.port)
        probe.wait_ready()
        probe.close()
        thread = threading.Thread(target=in_flight)
        thread.start()
        time.sleep(0.1)  # request now parked in the batch window
        handle.stop()  # the SIGTERM path: drain, then join
        thread.join()
        assert "error" not in outcome
        assert outcome["envelope"]["result"]["cycles"] > 0
        # After the drain the listener is gone.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", handle.server.port), timeout=1.0)

    def test_readyz_flips_during_drain_while_in_flight_completes(self):
        """During the SIGTERM drain window the server is alive but not
        ready: ``/readyz`` answers 503 (``draining``), ``/healthz`` stays
        200, and the request parked in the batch window still completes.
        """
        handle = start_server(batch_window_s=0.5)
        outcome = {}

        def in_flight():
            c = ServiceClient("127.0.0.1", handle.port)
            try:
                outcome["envelope"] = c.simulate(trace=QUICK_TRACE)
            except Exception as error:  # pragma: no cover - surfaced below
                outcome["error"] = error
            finally:
                c.close()

        # The listener closes when the drain starts, so the probes must
        # ride keep-alive connections established while still serving.
        probe_ready = http.client.HTTPConnection(
            "127.0.0.1", handle.port, timeout=10.0
        )
        probe_health = http.client.HTTPConnection(
            "127.0.0.1", handle.port, timeout=10.0
        )
        try:
            for probe in (probe_ready, probe_health):
                probe.request("GET", "/readyz")
                response = probe.getresponse()
                assert response.status == 200
                assert json.loads(response.read()) == {"status": "ready"}

            thread = threading.Thread(target=in_flight)
            thread.start()
            time.sleep(0.15)  # request now parked in the batch window
            handle.begin_shutdown()  # the SIGTERM path, without joining
            time.sleep(0.05)  # let the drain flip the readiness gate

            probe_ready.request("GET", "/readyz")
            response = probe_ready.getresponse()
            envelope = json.loads(response.read())
            assert response.status == 503
            assert envelope["error"]["code"] == "draining"

            probe_health.request("GET", "/healthz")
            response = probe_health.getresponse()
            assert response.status == 200
            assert json.loads(response.read()) == {"status": "ok"}

            thread.join()
            assert "error" not in outcome
            assert outcome["envelope"]["result"]["cycles"] > 0
        finally:
            probe_ready.close()
            probe_health.close()
            handle.stop()

    def test_idle_keep_alive_connections_do_not_block_drain(self):
        handle = start_server()
        client = ServiceClient("127.0.0.1", handle.port)
        client.wait_ready()  # leaves an idle keep-alive connection open
        started = time.monotonic()
        handle.stop(timeout=10.0)
        assert time.monotonic() - started < 5.0
        client.close()


class TestMalformedInput:
    @pytest.fixture()
    def server(self):
        handle = start_server()
        client = ServiceClient("127.0.0.1", handle.port)
        client.wait_ready()
        yield handle
        client.close()
        handle.stop()

    def test_invalid_json_body(self, server):
        status, envelope = raw_request(server.port, b"{not json")
        assert status == 400
        assert envelope["error"]["code"] == "invalid_json"

    def test_non_object_body(self, server):
        status, envelope = raw_request(server.port, b"[1, 2, 3]")
        assert status == 400
        assert envelope["error"]["code"] == "invalid_json"

    def test_unknown_top_level_key(self, server):
        status, envelope = raw_request(server.port, b'{"prams": {}}')
        assert status == 400
        assert "params" in envelope["error"]["message"]

    def test_schema_error_carries_json_path(self, server):
        payload = json.dumps(
            {"params": {"trace": {"kind": "spec92", "name": "doom"}}}
        ).encode()
        status, envelope = raw_request(server.port, payload)
        assert status == 400
        assert envelope["error"]["code"] == "schema_error"
        assert "$.params.trace.name" in envelope["error"]["message"]

    def test_unphysical_params_rejected_not_crashing(self, server):
        # Structurally valid but domain-invalid: pipelined turnaround
        # longer than the memory cycle is rejected by the domain layer.
        payload = json.dumps(
            {"params": {"memory_cycle": 2.0, "pipelined_q": 100.0}}
        ).encode()
        status, envelope = raw_request(server.port, payload)
        assert status == 400
        assert envelope["error"]["code"] in ("invalid_params", "schema_error")

    def test_oversized_body_is_bounded(self, server):
        status, envelope = raw_request(server.port, b" " * (2 * 1024 * 1024))
        assert status == 413
        assert envelope["error"]["code"] == "body_too_large"

    def test_unsupported_method_on_known_path(self, server):
        status, envelope = raw_request(server.port, b"{}", method="PUT")
        assert status == 405


class TestKeepaliveTimeout:
    def test_idle_connection_closed_after_timeout(self):
        handle = start_server(keepalive_timeout_s=0.3)
        try:
            conn = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=10.0
            )
            conn.request("GET", "/v1/health")
            assert conn.getresponse().read()  # first request is served
            # The server closes the idle connection quietly: the raw
            # socket reads EOF instead of another response.
            sock = conn.sock
            sock.settimeout(5.0)
            assert sock.recv(64) == b""
            conn.close()
            # A fresh connection is served normally.
            client = ServiceClient("127.0.0.1", handle.port)
            assert client.health() == {"status": "ok"}
            client.close()
        finally:
            handle.stop()

    def test_active_connection_survives_within_timeout(self):
        handle = start_server(keepalive_timeout_s=1.0)
        try:
            client = ServiceClient("127.0.0.1", handle.port)
            client.wait_ready()
            for _ in range(3):
                time.sleep(0.2)  # idle, but under the timeout each time
                assert client.health() == {"status": "ok"}
            assert client.stats.retries == 0  # one connection throughout
            client.close()
        finally:
            handle.stop()

    def test_timeout_disabled_with_none(self):
        handle = start_server(keepalive_timeout_s=None)
        try:
            client = ServiceClient("127.0.0.1", handle.port)
            client.wait_ready()
            time.sleep(0.5)
            assert client.health() == {"status": "ok"}
            assert client.stats.retries == 0
            client.close()
        finally:
            handle.stop()


class TestAdmissionControl:
    def test_watermark_sheds_cache_miss_work(self):
        """At the watermark, a cache-miss simulate is refused *before*
        joining the queue — 429 with the dedicated "shed" code."""
        handle = start_server(shed_watermark=0)
        try:
            client = ServiceClient("127.0.0.1", handle.port)
            client.wait_ready()
            with pytest.raises(ServiceError) as excinfo:
                client.simulate(trace=QUICK_TRACE)
            assert excinfo.value.status == 429
            assert excinfo.value.code == "shed"
            # Analytic work is never shed — it doesn't queue.
            assert client.execution_time(hit_ratio=0.9)["cpi"] > 0
            stats = client.stats_envelope()
            assert stats["counters"]["service.admission.shed"] >= 1
            client.close()
        finally:
            handle.stop()

    def test_backoff_client_retries_shed_deterministically(self):
        """The opt-in backoff loop pairs with admission control: a
        perpetually shedding server exhausts the budget on the seeded
        schedule."""
        handle = start_server(shed_watermark=0)
        try:
            client = ServiceClient(
                "127.0.0.1", handle.port, busy_retries=2, backoff_seed=5
            )
            waited = []
            client._sleep = waited.append
            client.wait_ready()
            with pytest.raises(ServiceError) as excinfo:
                client.simulate(trace=QUICK_TRACE)
            assert excinfo.value.code == "shed"
            assert client.stats.backoffs == 2
            from repro.service.client import backoff_delays
            import itertools
            expected = list(itertools.islice(
                backoff_delays(client.backoff_base_s, client.backoff_cap_s, 5), 2
            ))
            assert waited == expected
            client.close()
        finally:
            handle.stop()

    def test_no_watermark_means_no_shedding(self):
        handle = start_server()  # shed_watermark defaults to None
        try:
            client = ServiceClient("127.0.0.1", handle.port)
            client.wait_ready()
            assert client.simulate(trace=QUICK_TRACE)["cached"] is False
            client.close()
        finally:
            handle.stop()
