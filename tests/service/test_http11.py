"""The hand-rolled HTTP/1.1 framing layer."""

import asyncio

import pytest

from repro.service.http11 import (
    HttpError,
    read_request,
    render_response,
)


def parse(raw: bytes, **limits):
    """Drive read_request over an in-memory stream."""

    async def run():
        reader = asyncio.StreamReader(limit=limits.get("max_header_bytes", 16384))
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **limits)

    return asyncio.run(run())


class TestReadRequest:
    def test_get_without_body(self):
        request = parse(b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/health"
        assert request.headers["host"] == "x"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body(self):
        body = b'{"params": {}}'
        raw = (
            b"POST /v1/simulate HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.body == body

    def test_connection_close_honoured(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request_line"

    def test_non_http_version_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / SPDY/3\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_method(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"DELETE /v1/simulate HTTP/1.1\r\n\r\n")
        assert excinfo.value.status == 405

    def test_malformed_header_line(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert excinfo.value.code == "bad_header"

    def test_bad_content_length(self):
        for value in (b"banana", b"-5"):
            with pytest.raises(HttpError) as excinfo:
                parse(b"POST / HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n")
            assert excinfo.value.code == "bad_content_length"

    def test_oversized_body_rejected_before_reading(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse(raw, max_body_bytes=1024)
        assert excinfo.value.status == 413

    def test_oversized_headers_rejected(self):
        raw = b"GET / HTTP/1.1\r\nX-Filler: " + b"a" * 4096 + b"\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse(raw, max_header_bytes=1024)
        assert excinfo.value.status == 431

    def test_chunked_encoding_rejected(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse(raw)
        assert excinfo.value.code == "unsupported_transfer_encoding"


class TestRenderResponse:
    def test_roundtrip_fields(self):
        raw = render_response(200, b'{"ok": true}', keep_alive=True)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 12" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"ok": true}'

    def test_close_and_unusual_status(self):
        raw = render_response(429, b"{}", keep_alive=False)
        assert raw.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        assert b"Connection: close" in raw
