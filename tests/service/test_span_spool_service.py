"""The span spool's server lifecycle: seal on drain, pinned off.

Lives in its own module: the server installs a process-global ring
tracer, so these tests need no other module-scoped server holding the
tracer slot while they start and drain their own.
"""

from repro.obs.live import format_traceparent
from repro.obs.span_spool import read_spool, validate_spool
from repro.service import ServerConfig, ServerThread, ServiceClient

TRACE = {"kind": "spec92", "name": "swm256", "instructions": 2000, "seed": 7}
TRACE_ID = "ab" * 16
TRACEPARENT = format_traceparent(TRACE_ID, "cd" * 8)


class TestSpoolLifecycle:
    def test_drained_server_leaves_a_validating_spool(self, tmp_path):
        config = ServerConfig(
            batch_window_s=0.001, span_spool_dir=str(tmp_path)
        )
        with ServerThread(config) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            client.wait_ready()
            client.request(
                "POST",
                "/v1/simulate",
                {"trace": TRACE, "memory_cycle": 5.5},
                traceparent=TRACEPARENT,
            )
            client.close()
        counts = validate_spool(str(tmp_path))
        assert counts["segments"] >= 1  # close() sealed the active file
        names = {r["name"] for r in read_spool(str(tmp_path))}
        assert "service.request" in names
        traced = [
            r
            for r in read_spool(str(tmp_path))
            if r.get("args", {}).get("trace_id") == TRACE_ID
        ]
        assert traced

    def test_tracing_off_means_no_spool_by_contract(self, tmp_path):
        spool_dir = tmp_path / "spans"
        config = ServerConfig(
            batch_window_s=0.001,
            span_ring_capacity=0,  # tracing disabled
            span_spool_dir=str(spool_dir),
        )
        with ServerThread(config) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            client.wait_ready()
            client.simulate(trace=TRACE, memory_cycle=6.75)
            # The trace id still propagates (header echo works without
            # a ring) but nothing records.
            assert client.last_trace_id
            document = client.debug_trace()
            assert document["enabled"] is False
            client.close()
        assert not spool_dir.exists()
