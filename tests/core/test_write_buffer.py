"""Read-bypassing write buffers versus hit ratio (paper Section 4.3)."""

import pytest

from repro.core.params import SystemConfig
from repro.core.write_buffer import (
    write_buffer_miss_volume_ratio,
    write_buffer_tradeoff,
)


@pytest.fixture
def config():
    return SystemConfig(bus_width=4, line_size=32, memory_cycle=8.0)


class TestRatio:
    def test_best_case_hand_computed(self, config):
        # r = ((L/D)(1+alpha)beta - 1) / ((L/D)beta - 1) = 95/63
        r = write_buffer_miss_volume_ratio(config, flush_ratio=0.5)
        assert r == pytest.approx(95.0 / 63.0)

    def test_no_flush_traffic_means_no_gain(self, config):
        assert write_buffer_miss_volume_ratio(config, flush_ratio=0.0) == 1.0

    def test_zero_efficiency_means_no_gain(self, config):
        r = write_buffer_miss_volume_ratio(config, 0.5, hiding_efficiency=0.0)
        assert r == pytest.approx(1.0)

    def test_partial_efficiency_between(self, config):
        full = write_buffer_miss_volume_ratio(config, 0.5, 1.0)
        half = write_buffer_miss_volume_ratio(config, 0.5, 0.5)
        assert 1.0 < half < full

    def test_efficiency_validated(self, config):
        with pytest.raises(ValueError, match="hiding_efficiency"):
            write_buffer_miss_volume_ratio(config, 0.5, hiding_efficiency=1.5)

    def test_asymptotic_ratio(self):
        """For large beta_m, r -> 1 + alpha."""
        config = SystemConfig(4, 32, 1e9)
        r = write_buffer_miss_volume_ratio(config, flush_ratio=0.5)
        assert r == pytest.approx(1.5, rel=1e-6)


class TestTradeoff:
    def test_traded_hit_ratio(self, config):
        result = write_buffer_tradeoff(config, 0.95, flush_ratio=0.5)
        assert result.hit_ratio_delta == pytest.approx((95.0 / 63.0 - 1) * 0.05)

    def test_second_best_ranking_claim(self, config):
        """Section 5.3: write buffers beat BNL but lose to bus doubling."""
        from repro.core.bus_width import doubling_tradeoff
        from repro.core.stall_tradeoff import partial_stall_tradeoff

        buffers = write_buffer_tradeoff(config, 0.95).hit_ratio_delta
        bus = doubling_tradeoff(config, 0.95).hit_ratio_delta
        bnl = partial_stall_tradeoff(
            config, 0.95, measured_stall_factor=0.92 * 8
        ).hit_ratio_delta
        assert bus > buffers > bnl
