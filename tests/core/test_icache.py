"""Instruction-cache and unified-cache tradeoffs (Sections 3.4, 4.5)."""

import pytest

from repro.core.icache import (
    instruction_cache_doubling_tradeoff,
    instruction_miss_cost_factor,
    unified_cache_doubling_tradeoff,
    unified_miss_cost_factor,
)
from repro.core.params import SystemConfig


@pytest.fixture
def config():
    return SystemConfig(4, 32, 8.0)


class TestInstructionCache:
    def test_kappa_has_no_flush_term(self, config):
        # (L/D) beta - 1 = 63
        assert instruction_miss_cost_factor(config) == 63.0

    def test_doubling_r_asymptote_is_two(self):
        config = SystemConfig(4, 32, 1e9)
        r = instruction_cache_doubling_tradeoff(config, 0.99).miss_ratio_of_misses
        assert r == pytest.approx(2.0, rel=1e-6)

    def test_design_limit_wider_than_data_cache(self):
        """Without flushes the beta=2 limit is (2b-1)/(b-1) = 3 > 2.5."""
        config = SystemConfig(4, 8, 2.0)
        r = instruction_cache_doubling_tradeoff(config, 0.99).miss_ratio_of_misses
        assert r == pytest.approx(3.0)

    def test_instruction_r_exceeds_data_r(self, config):
        """Clean traffic gains more from a wider bus than dirty traffic."""
        from repro.core.bus_width import miss_volume_ratio_for_doubling

        data_r = miss_volume_ratio_for_doubling(config, 0.5)
        inst_r = instruction_cache_doubling_tradeoff(
            config, 0.99
        ).miss_ratio_of_misses
        assert inst_r > data_r


class TestUnifiedCache:
    def test_endpoints_match_pure_cases(self, config):
        from repro.core.bus_width import miss_volume_ratio_for_doubling

        pure_data = unified_cache_doubling_tradeoff(
            config, 0.95, data_fraction=1.0
        ).miss_ratio_of_misses
        assert pure_data == pytest.approx(miss_volume_ratio_for_doubling(config, 0.5))
        pure_inst = unified_cache_doubling_tradeoff(
            config, 0.95, data_fraction=0.0
        ).miss_ratio_of_misses
        assert pure_inst == pytest.approx(
            instruction_cache_doubling_tradeoff(config, 0.95).miss_ratio_of_misses
        )

    def test_mixture_between_endpoints(self, config):
        lo = unified_cache_doubling_tradeoff(config, 0.95, 1.0).miss_ratio_of_misses
        hi = unified_cache_doubling_tradeoff(config, 0.95, 0.0).miss_ratio_of_misses
        mid = unified_cache_doubling_tradeoff(config, 0.95, 0.5).miss_ratio_of_misses
        assert min(lo, hi) < mid < max(lo, hi)

    def test_kappa_blend(self, config):
        kappa = unified_miss_cost_factor(config, data_fraction=0.5, flush_ratio=0.5)
        kappa_data = unified_miss_cost_factor(config, 1.0, 0.5)
        kappa_inst = unified_miss_cost_factor(config, 0.0, 0.5)
        assert kappa == pytest.approx(0.5 * kappa_data + 0.5 * kappa_inst)

    def test_custom_data_stall_factor(self, config):
        full = unified_miss_cost_factor(config, 0.5, 0.5)
        partial = unified_miss_cost_factor(config, 0.5, 0.5, data_stall_factor=4.0)
        assert partial < full

    def test_data_fraction_validated(self, config):
        with pytest.raises(ValueError, match="data_fraction"):
            unified_miss_cost_factor(config, 1.5)
