"""Optimal line size and the Smith-criterion equivalence (Section 5.4.2)."""

import pytest

from repro.core.smith import (
    criteria_agree,
    mean_memory_delay_per_reference,
    reduced_memory_delay,
    smith_miss_delay,
    smith_optimal_line,
    tradeoff_optimal_line,
)

TABLE = {8: 0.060, 16: 0.038, 32: 0.026, 64: 0.020, 128: 0.01535}


class TestObjectives:
    def test_mean_delay_eq15(self):
        # MR (c + b L/D) + HR
        assert mean_memory_delay_per_reference(0.05, 10, 2, 32, 4) == pytest.approx(
            0.05 * 26 + 0.95
        )

    def test_smith_delay_eq16(self):
        assert smith_miss_delay(0.05, 10, 2, 32, 4) == pytest.approx(0.05 * 25)

    def test_eq15_and_eq16_differ_by_constant(self):
        """Minimizing either objective picks the same line (hit cost 1)."""
        for line, mr in TABLE.items():
            eq15 = mean_memory_delay_per_reference(mr, 10, 2, line, 4)
            eq16 = smith_miss_delay(mr, 10, 2, line, 4)
            assert eq15 - eq16 == pytest.approx(1.0)


class TestOptimalLine:
    def test_smith_matches_expected_at_figure6a(self):
        assert smith_optimal_line(TABLE, latency=12, transfer=2, bus_width=4) == 32

    def test_tradeoff_criterion_agrees(self):
        assert tradeoff_optimal_line(TABLE, 8, 12, 2, 4) == 32

    def test_agreement_over_bus_speed_sweep(self):
        for beta in [0.5 * k for k in range(1, 21)]:
            assert criteria_agree(TABLE, latency=12, transfer=beta, bus_width=4)

    def test_fast_bus_prefers_larger_lines(self):
        nearly_free = smith_optimal_line(TABLE, 12, 0.01, 4)
        slow = smith_optimal_line(TABLE, 12, 8.0, 4)
        assert nearly_free >= slow

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            smith_optimal_line({}, 12, 2, 4)

    def test_bad_miss_ratio_rejected(self):
        with pytest.raises(ValueError, match="miss ratio"):
            smith_optimal_line({8: 1.5}, 12, 2, 4)


class TestReducedDelay:
    def test_base_line_has_zero_reduced_delay(self):
        points = reduced_memory_delay(TABLE, 8, 12, 2, 4)
        base = next(p for p in points if p.line_size == 8)
        assert base.reduced_delay == pytest.approx(0.0)

    def test_reduced_delay_identity(self):
        """Eq. 19 equals MR0*w0 - MRi*wi (the theorem's algebraic core)."""
        latency, beta, width = 12.0, 2.0, 4.0
        points = reduced_memory_delay(TABLE, 8, latency, beta, width)
        w0 = latency - 1 + beta * 8 / width
        for point in points:
            wi = latency - 1 + beta * point.line_size / width
            direct = TABLE[8] * w0 - TABLE[point.line_size] * wi
            assert point.reduced_delay == pytest.approx(direct)

    def test_negative_at_slow_bus(self):
        """Large lines lose when the bus is slow (Section 5.4.2)."""
        points = reduced_memory_delay(TABLE, 8, 12, 10.0, 4)
        largest = next(p for p in points if p.line_size == 128)
        assert largest.reduced_delay < 0
        assert not largest.beneficial

    def test_candidates_below_base_excluded(self):
        points = reduced_memory_delay(TABLE, 32, 12, 2, 4)
        assert min(p.line_size for p in points) == 32

    def test_unknown_base_rejected(self):
        with pytest.raises(ValueError, match="not in"):
            reduced_memory_delay(TABLE, 12, 12, 2, 4)
