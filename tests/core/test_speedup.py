"""Speedup conversions and the defining equivalence identity."""

import pytest

from repro.core.features import ArchFeature
from repro.core.params import SystemConfig
from repro.core.speedup import (
    equivalence_check,
    feature_speedup,
    hit_ratio_speedup,
)


@pytest.fixture
def config():
    return SystemConfig(4, 32, 8.0, pipeline_turnaround=2.0)


class TestFeatureSpeedup:
    def test_all_features_speed_up(self, config):
        for feature in (
            ArchFeature.DOUBLING_BUS,
            ArchFeature.WRITE_BUFFERS,
            ArchFeature.PIPELINED_MEMORY,
        ):
            assert feature_speedup(feature, config, 0.95) > 1.0

    def test_lower_hit_ratio_bigger_speedup(self, config):
        at_90 = feature_speedup(ArchFeature.DOUBLING_BUS, config, 0.90)
        at_98 = feature_speedup(ArchFeature.DOUBLING_BUS, config, 0.98)
        assert at_90 > at_98

    def test_partial_stalling_needs_phi(self, config):
        with pytest.raises(ValueError, match="stall factor"):
            feature_speedup(ArchFeature.PARTIAL_STALLING, config, 0.95)

    def test_partial_stalling_with_phi(self, config):
        speedup = feature_speedup(
            ArchFeature.PARTIAL_STALLING, config, 0.95, measured_stall_factor=6.0
        )
        assert speedup > 1.0


class TestHitRatioSpeedup:
    def test_raising_hit_ratio_speeds_up(self, config):
        assert hit_ratio_speedup(config, 0.90, 0.95) > 1.0

    def test_no_change_is_unity(self, config):
        assert hit_ratio_speedup(config, 0.95, 0.95) == pytest.approx(1.0)

    def test_lowering_rejected(self, config):
        with pytest.raises(ValueError, match="slowdown"):
            hit_ratio_speedup(config, 0.95, 0.90)


class TestEquivalenceIdentity:
    """The methodology's core: feature speedup == equivalent-HR speedup."""

    @pytest.mark.parametrize(
        "feature",
        [
            ArchFeature.DOUBLING_BUS,
            ArchFeature.WRITE_BUFFERS,
            ArchFeature.PIPELINED_MEMORY,
        ],
    )
    @pytest.mark.parametrize("base_hr", [0.90, 0.95, 0.98])
    def test_identity_holds(self, config, feature, base_hr):
        feature_side, hit_ratio_side = equivalence_check(feature, config, base_hr)
        assert feature_side == pytest.approx(hit_ratio_side, rel=1e-9)

    def test_identity_for_partial_stalling(self, config):
        feature_side, hit_ratio_side = equivalence_check(
            ArchFeature.PARTIAL_STALLING,
            config,
            0.95,
            measured_stall_factor=6.5,
        )
        assert feature_side == pytest.approx(hit_ratio_side, rel=1e-9)

    def test_identity_across_flush_ratios(self, config):
        for alpha in (0.0, 0.3, 0.8):
            a, b = equivalence_check(
                ArchFeature.DOUBLING_BUS, config, 0.95, flush_ratio=alpha
            )
            assert a == pytest.approx(b, rel=1e-9)
