"""Bus width versus hit ratio (paper Section 4.1)."""

import pytest

from repro.core.bus_width import (
    asymptotic_hit_ratio,
    design_limit_hit_ratio,
    doubling_tradeoff,
    hit_ratio_gain_equivalent_to_doubling,
    miss_volume_ratio_for_doubling,
)
from repro.core.params import SystemConfig


class TestPaperLimits:
    """The two closed-form anchors of Section 4.1."""

    def test_design_limit_r_is_2_5(self):
        # L = 2D, beta_m = 2, alpha = 0.5  ->  R' = 2.5 R
        config = SystemConfig(bus_width=4, line_size=8, memory_cycle=2)
        assert miss_volume_ratio_for_doubling(config, 0.5) == pytest.approx(2.5)

    def test_design_limit_hit_ratio_rule(self):
        config = SystemConfig(4, 8, 2)
        result = doubling_tradeoff(config, 0.95, flush_ratio=0.5)
        assert result.feature_hit_ratio == pytest.approx(
            design_limit_hit_ratio(0.95)
        )
        assert design_limit_hit_ratio(0.95) == pytest.approx(0.875)

    def test_asymptotic_r_approaches_2(self):
        config = SystemConfig(4, 8, 1e9)
        assert miss_volume_ratio_for_doubling(config, 0.5) == pytest.approx(
            2.0, rel=1e-6
        )

    def test_asymptotic_hit_ratio_rule(self):
        # Paper's worked numbers: 0.95 -> 0.90 and 0.98 -> 0.96.
        assert asymptotic_hit_ratio(0.95) == pytest.approx(0.90)
        assert asymptotic_hit_ratio(0.98) == pytest.approx(0.96)

    def test_r_between_2_and_2_5_for_all_beta(self):
        for beta in (2, 3, 5, 10, 50, 500):
            config = SystemConfig(4, 8, beta)
            r = miss_volume_ratio_for_doubling(config, 0.5)
            assert 2.0 <= r <= 2.5

    def test_reverse_gain_between_half_and_point_six(self):
        # Eq. 7 limits: 0.5 (1-HR) .. 0.6 (1-HR) for L >= 2D, alpha=0.5.
        for beta in (2, 4, 10, 100):
            config = SystemConfig(4, 8, beta)
            gain = hit_ratio_gain_equivalent_to_doubling(config, 0.95)
            assert 0.5 * 0.05 <= gain <= 0.6 * 0.05 + 1e-12


class TestBehaviour:
    def test_traded_ratio_decreases_with_memory_cycle(self):
        """Section 5.1: hit ratio is more precious at long memory cycles."""
        deltas = []
        for beta in (2, 4, 8, 16):
            config = SystemConfig(4, 32, beta)
            deltas.append(doubling_tradeoff(config, 0.98).hit_ratio_delta)
        assert deltas == sorted(deltas, reverse=True)

    def test_traded_ratio_smaller_for_larger_lines(self):
        """Section 5.1: larger lines trade less hit ratio."""
        small = doubling_tradeoff(SystemConfig(4, 8, 8), 0.98).hit_ratio_delta
        large = doubling_tradeoff(SystemConfig(4, 32, 8), 0.98).hit_ratio_delta
        assert large < small

    def test_lower_base_hit_ratio_trades_more(self):
        config = SystemConfig(4, 32, 8)
        at_90 = doubling_tradeoff(config, 0.90).hit_ratio_delta
        at_98 = doubling_tradeoff(config, 0.98).hit_ratio_delta
        assert at_90 > at_98

    def test_distinct_flush_ratios_supported(self):
        config = SystemConfig(4, 32, 8)
        r_equal = miss_volume_ratio_for_doubling(config, 0.5)
        r_skewed = miss_volume_ratio_for_doubling(
            config, 0.5, flush_ratio_doubled=0.0
        )
        assert r_skewed > r_equal  # no flush on the wide side helps it more

    def test_requires_l_at_least_2d(self):
        config = SystemConfig(8, 8, 8)
        with pytest.raises(ValueError, match="L >= 2D"):
            doubling_tradeoff(config, 0.95)
