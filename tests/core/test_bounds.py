"""Tradeoff envelopes over parameter boxes."""

import pytest

from repro.core.bounds import TradeoffBounds, feature_bounds, guaranteed_winner
from repro.core.features import ArchFeature, feature_miss_ratio
from repro.core.params import SystemConfig


@pytest.fixture
def config():
    return SystemConfig(4, 32, 8.0, pipeline_turnaround=2.0)


class TestFeatureBounds:
    @pytest.mark.parametrize(
        "feature",
        [
            ArchFeature.DOUBLING_BUS,
            ArchFeature.WRITE_BUFFERS,
            ArchFeature.PIPELINED_MEMORY,
        ],
    )
    def test_corners_bound_a_dense_grid(self, config, feature):
        """Exactness check: 11x11 interior samples stay inside the
        corner-derived envelope."""
        bounds = feature_bounds(
            feature, config, 0.95, beta_range=(2.0, 20.0),
            alpha_range=(0.0, 1.0),
        )
        for i in range(11):
            for j in range(11):
                beta = 2.0 + 1.8 * i
                alpha = 0.1 * j
                r = feature_miss_ratio(
                    feature, config.with_memory_cycle(beta), flush_ratio=alpha
                )
                assert bounds.contains(r), (beta, alpha, r)

    def test_point_box_collapses(self, config):
        bounds = feature_bounds(
            ArchFeature.DOUBLING_BUS, config, 0.95, (8.0, 8.0), (0.5, 0.5)
        )
        assert bounds.r_min == bounds.r_max

    def test_traded_hit_ratio_ordering(self, config):
        bounds = feature_bounds(
            ArchFeature.PIPELINED_MEMORY, config, 0.95, (2.0, 20.0)
        )
        assert bounds.traded_min <= bounds.traded_max
        assert bounds.traded_min >= 0.0

    def test_bad_range_rejected(self, config):
        with pytest.raises(ValueError, match="low, high"):
            feature_bounds(ArchFeature.DOUBLING_BUS, config, 0.95, (10.0, 2.0))

    def test_partial_stalling_supported_with_phi(self, config):
        bounds = feature_bounds(
            ArchFeature.PARTIAL_STALLING,
            config,
            0.95,
            (4.0, 12.0),
            measured_stall_factor=7.0,
        )
        assert bounds.r_min >= 1.0


class TestGuaranteedWinner:
    def test_fast_memory_box_guarantees_bus(self, config):
        winner = guaranteed_winner(config, 0.95, beta_range=(2.0, 3.5))
        assert winner is ArchFeature.DOUBLING_BUS

    def test_slow_memory_box_guarantees_pipelining(self, config):
        winner = guaranteed_winner(config, 0.95, beta_range=(10.0, 20.0))
        assert winner is ArchFeature.PIPELINED_MEMORY

    def test_box_straddling_crossover_has_no_winner(self, config):
        # The pipelined-vs-bus crossover sits at ~4.7 cycles.
        winner = guaranteed_winner(config, 0.95, beta_range=(3.0, 8.0))
        assert winner is None


class TestBoundsObject:
    def test_contains(self):
        bounds = TradeoffBounds(ArchFeature.DOUBLING_BUS, 2.0, 2.5, 0.95)
        assert bounds.contains(2.2)
        assert not bounds.contains(2.6)
