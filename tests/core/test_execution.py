"""CPU execution-time model (paper Eq. 2) and mean memory delay (4.5)."""

import pytest

from repro.core.execution import (
    execution_breakdown,
    execution_time,
    full_stall_factor,
    hit_ratio,
    mean_memory_delay,
    memory_delay_cycles,
    miss_ratio,
)
from repro.core.params import SystemConfig, WorkloadCharacter
from repro.core.stalling import StallPolicy


@pytest.fixture
def config():
    return SystemConfig(bus_width=4, line_size=32, memory_cycle=8.0)


@pytest.fixture
def workload():
    # 10 line fills (320 bytes / 32), alpha=0.5, write-allocate.
    return WorkloadCharacter(instructions=1000, read_bytes=320, flush_ratio=0.5)


class TestEq2:
    def test_hand_computed_total(self, config, workload):
        # X = (E - Lambda_m) + (R/L) phi beta + (alpha R/D) beta + W beta
        #   = (1000-10)     + 10*8*8          + (160/4)*8       + 0
        assert execution_time(workload, config) == 990 + 640 + 320

    def test_breakdown_terms(self, config, workload):
        breakdown = execution_breakdown(workload, config)
        assert breakdown.base_cycles == 990
        assert breakdown.read_miss_stall_cycles == 640
        assert breakdown.flush_cycles == 320
        assert breakdown.write_around_cycles == 0
        assert breakdown.total == 1950

    def test_write_around_term(self, config):
        workload = WorkloadCharacter(
            1000, read_bytes=320, write_around_misses=5, flush_ratio=0.5
        )
        breakdown = execution_breakdown(workload, config)
        assert breakdown.write_around_cycles == 5 * 8
        assert breakdown.base_cycles == 1000 - 15

    def test_write_buffers_drop_flush_term(self, config, workload):
        with_buffers = execution_time(workload, config, write_buffers=True)
        without = execution_time(workload, config)
        assert without - with_buffers == 320

    def test_zero_misses_is_pure_e(self, config):
        workload = WorkloadCharacter(instructions=500, read_bytes=0)
        assert execution_time(workload, config) == 500

    def test_full_stall_factor(self, config):
        assert full_stall_factor(config) == 8.0

    def test_partial_policy_requires_phi(self, config, workload):
        with pytest.raises(ValueError, match="stall_factor"):
            execution_time(workload, config, policy=StallPolicy.BUS_LOCKED)

    def test_partial_policy_with_phi(self, config, workload):
        faster = execution_time(
            workload, config, stall_factor=4.0, policy=StallPolicy.BUS_LOCKED
        )
        assert faster == 990 + 10 * 4 * 8 + 320

    def test_invalid_phi_rejected(self, config, workload):
        with pytest.raises(ValueError, match="outside"):
            execution_time(
                workload, config, stall_factor=20.0, policy=StallPolicy.BUS_LOCKED
            )

    def test_instruction_fetch_term(self, config):
        workload = WorkloadCharacter(
            1000, read_bytes=0, instruction_bytes=64, flush_ratio=0.0
        )
        breakdown = execution_breakdown(
            workload, config, include_instruction_fetch=True
        )
        # (RI/L) * (L/D) * beta = 2 * 8 * 8
        assert breakdown.instruction_fetch_cycles == 128

    def test_impossible_workload_rejected(self, config):
        workload = WorkloadCharacter(instructions=5, read_bytes=3200)
        with pytest.raises(ValueError, match="missing"):
            execution_time(workload, config)


class TestDelayAndRatios:
    def test_memory_delay_cycles(self, config, workload):
        assert memory_delay_cycles(workload, config) == 960

    def test_miss_and_hit_ratio(self, config, workload):
        assert miss_ratio(workload, config, data_references=200) == pytest.approx(0.05)
        assert hit_ratio(workload, config, data_references=200) == pytest.approx(0.95)

    def test_miss_ratio_rejects_insufficient_references(self, config, workload):
        with pytest.raises(ValueError, match="exceeds"):
            miss_ratio(workload, config, data_references=5)

    def test_mean_memory_delay_independent_of_alu_count(self, config):
        """Section 4.5: the mean delay per reference must not change when
        non-load/store instructions are added."""
        small = WorkloadCharacter(1000, read_bytes=320, flush_ratio=0.5)
        big = WorkloadCharacter(50_000, read_bytes=320, flush_ratio=0.5)
        refs = 200.0
        assert mean_memory_delay(small, config, refs) == pytest.approx(
            mean_memory_delay(big, config, refs)
        )

    def test_mean_memory_delay_rejects_refs_below_misses(self, config, workload):
        with pytest.raises(ValueError, match="below"):
            mean_memory_delay(workload, config, data_references=5)
