"""The generic tradeoff engine (paper Eqs. 3-7)."""

import pytest

from repro.core.tradeoff import (
    TradeoffResult,
    equivalence,
    hit_ratio_traded,
    miss_cost_factor,
    miss_volume_ratio,
    odds,
    reverse_hit_ratio_traded,
)


class TestMissCostFactor:
    def test_full_stall_write_allocate(self):
        # kappa = (phi + (L/D) alpha) beta - 1 = (8 + 4)*8 - 1
        assert miss_cost_factor(8.0, 0.5, 8.0, 8.0) == 95.0

    def test_no_flush(self):
        assert miss_cost_factor(8.0, 0.0, 8.0, 8.0) == 63.0

    def test_rejects_nonpositive_kappa(self):
        with pytest.raises(ValueError, match="positive"):
            miss_cost_factor(0.0, 0.0, 8.0, 1.0)

    def test_rejects_bad_flush_ratio(self):
        with pytest.raises(ValueError, match="flush_ratio"):
            miss_cost_factor(8.0, 2.0, 8.0, 8.0)

    def test_rejects_negative_phi(self):
        with pytest.raises(ValueError, match="stall_factor"):
            miss_cost_factor(-1.0, 0.5, 8.0, 8.0)


class TestRatios:
    def test_miss_volume_ratio(self):
        assert miss_volume_ratio(10.0, 4.0) == 2.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            miss_volume_ratio(0.0, 4.0)

    def test_odds(self):
        assert odds(0.95) == pytest.approx(19.0)
        assert odds(0.5) == pytest.approx(1.0)

    def test_odds_rejects_one(self):
        with pytest.raises(ValueError):
            odds(1.0)


class TestHitRatioTraded:
    def test_eq6_form(self):
        # delta = (r - 1)(1 - HR)
        assert hit_ratio_traded(2.0, 0.95) == pytest.approx(0.05)
        assert hit_ratio_traded(2.5, 0.95) == pytest.approx(0.075)

    def test_identity_feature_trades_nothing(self):
        assert hit_ratio_traded(1.0, 0.9) == 0.0

    def test_reverse_direction_eq7(self):
        # delta = (1 - 1/r)(1 - HR2); r=2.5 -> 0.6(1-HR2)
        assert reverse_hit_ratio_traded(2.5, 0.95) == pytest.approx(0.6 * 0.05)
        assert reverse_hit_ratio_traded(2.0, 0.95) == pytest.approx(0.5 * 0.05)

    def test_rejects_nonpositive_r(self):
        with pytest.raises(ValueError):
            hit_ratio_traded(0.0, 0.9)
        with pytest.raises(ValueError):
            reverse_hit_ratio_traded(-1.0, 0.9)


class TestTradeoffResult:
    def test_feature_hit_ratio(self):
        result = TradeoffResult(miss_ratio_of_misses=2.0, base_hit_ratio=0.95)
        assert result.hit_ratio_delta == pytest.approx(0.05)
        assert result.feature_hit_ratio == pytest.approx(0.90)
        assert result.is_physical

    def test_unphysical_detected(self):
        # r huge at a low base hit ratio drives HR2 below zero.
        result = TradeoffResult(miss_ratio_of_misses=5.0, base_hit_ratio=0.5)
        assert not result.is_physical

    def test_validation(self):
        with pytest.raises(ValueError):
            TradeoffResult(miss_ratio_of_misses=2.0, base_hit_ratio=1.0)
        with pytest.raises(ValueError):
            TradeoffResult(miss_ratio_of_misses=0.0, base_hit_ratio=0.9)

    def test_equivalence_pipeline(self):
        result = equivalence(10.0, 5.0, 0.98)
        assert result.miss_ratio_of_misses == 2.0
        assert result.hit_ratio_delta == pytest.approx(0.02)
