"""Line size versus hit ratio (paper Section 5.4, Eqs. 11-14)."""

import pytest

from repro.core.line_size import (
    evaluate_line_size,
    line_fill_time,
    line_size_miss_count_ratio,
    required_hit_ratio_gain,
)


class TestFillTime:
    def test_smith_model(self):
        assert line_fill_time(10.0, 2.0, 32, 4) == 10 + 16

    def test_validation(self):
        with pytest.raises(ValueError, match="latency"):
            line_fill_time(0.5, 2.0, 32, 4)
        with pytest.raises(ValueError, match="transfer"):
            line_fill_time(10.0, -1.0, 32, 4)


class TestMissCountRatio:
    def test_below_one_for_larger_line(self):
        r = line_size_miss_count_ratio(8, 32, latency=10, transfer=2, bus_width=4)
        assert 0 < r < 1

    def test_equals_one_for_same_line(self):
        r = line_size_miss_count_ratio(16, 16, latency=10, transfer=2, bus_width=4)
        assert r == pytest.approx(1.0)

    def test_hand_computed(self):
        # alpha=0: r = (c + (L0/D)b - 1)/(c + (L*/D)b - 1) = (10+4-1)/(10+16-1)
        r = line_size_miss_count_ratio(8, 32, 10, 2, 4)
        assert r == pytest.approx(13.0 / 25.0)

    def test_flush_traffic_included_when_asked(self):
        plain = line_size_miss_count_ratio(8, 32, 10, 2, 4)
        with_flush = line_size_miss_count_ratio(8, 32, 10, 2, 4, flush_ratio=0.5)
        assert with_flush != plain

    def test_rejects_shrinking(self):
        with pytest.raises(ValueError, match="larger_line"):
            line_size_miss_count_ratio(32, 8, 10, 2, 4)


class TestRequiredGain:
    def test_eq14_positive(self):
        gain = required_hit_ratio_gain(8, 32, 10, 2, 4, base_hit_ratio=0.9)
        assert gain > 0

    def test_eq14_hand_computed(self):
        # (1 - 13/25) * (1 - 0.9)
        gain = required_hit_ratio_gain(8, 32, 10, 2, 4, 0.9)
        assert gain == pytest.approx((1 - 13 / 25) * 0.1)

    def test_larger_required_gain_for_larger_lines(self):
        gains = [
            required_hit_ratio_gain(8, line, 10, 2, 4, 0.9)
            for line in (16, 32, 64, 128)
        ]
        assert gains == sorted(gains)

    def test_faster_bus_lowers_required_gain(self):
        slow = required_hit_ratio_gain(8, 32, 10, transfer=4, bus_width=4,
                                       base_hit_ratio=0.9)
        fast = required_hit_ratio_gain(8, 32, 10, transfer=1, bus_width=4,
                                       base_hit_ratio=0.9)
        assert fast < slow

    def test_hit_ratio_validated(self):
        with pytest.raises(ValueError, match="base_hit_ratio"):
            required_hit_ratio_gain(8, 32, 10, 2, 4, 1.0)


class TestDecision:
    def test_beneficial_when_actual_beats_required(self):
        decision = evaluate_line_size(
            8, 32, 10, 2, 4, base_hit_ratio=0.9, larger_hit_ratio=0.97
        )
        assert decision.beneficial
        assert decision.margin > 0

    def test_not_beneficial_when_gain_too_small(self):
        """Section 5.4.1: a higher hit ratio alone does not justify the
        larger line when delta_HR < delta_EHR."""
        decision = evaluate_line_size(
            8, 32, 10, 2, 4, base_hit_ratio=0.9, larger_hit_ratio=0.91
        )
        assert not decision.beneficial
        assert decision.margin < 0
