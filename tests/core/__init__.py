"""Test package."""
