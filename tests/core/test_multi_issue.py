"""Multiple-issue extension (paper Section 6 future work)."""

import pytest

from repro.core.bus_width import doubling_tradeoff, miss_volume_ratio_for_doubling
from repro.core.multi_issue import (
    multi_issue_execution_time,
    multi_issue_miss_cost_factor,
    multi_issue_tradeoff,
)
from repro.core.params import SystemConfig, WorkloadCharacter


@pytest.fixture
def config():
    return SystemConfig(4, 32, 8.0)


@pytest.fixture
def workload():
    return WorkloadCharacter(instructions=1000, read_bytes=320, flush_ratio=0.5)


class TestExecutionTime:
    def test_ipc_one_reduces_to_eq2(self, config, workload):
        from repro.core.execution import execution_time

        assert multi_issue_execution_time(workload, config, ipc=1.0) == execution_time(
            workload, config
        )

    def test_wider_issue_is_faster(self, config, workload):
        x1 = multi_issue_execution_time(workload, config, ipc=1.0)
        x2 = multi_issue_execution_time(workload, config, ipc=2.0)
        assert x2 < x1

    def test_memory_terms_do_not_scale(self, config, workload):
        """Only the (E - Lambda_m) term shrinks with issue width."""
        x1 = multi_issue_execution_time(workload, config, ipc=1.0)
        x4 = multi_issue_execution_time(workload, config, ipc=4.0)
        base_cycles = workload.instructions - workload.miss_instructions(32)
        assert x1 - x4 == pytest.approx(base_cycles * (1 - 0.25))

    def test_ipc_below_one_rejected(self, config, workload):
        with pytest.raises(ValueError, match="ipc"):
            multi_issue_execution_time(workload, config, ipc=0.5)


class TestTradeoff:
    def test_ipc_one_matches_single_issue(self, config):
        single = doubling_tradeoff(config, 0.95).miss_ratio_of_misses
        multi = multi_issue_tradeoff(config, 0.95, ipc=1.0).miss_ratio_of_misses
        assert multi == pytest.approx(single)

    def test_r_converges_to_pure_memory_cost_ratio(self, config):
        """As ipc grows, r tends to kappa's memory-only ratio (2.0 here)."""
        pure_ratio = 12.0 / 6.0  # (phi + (L/D) alpha) base over doubled
        r1 = multi_issue_tradeoff(config, 0.95, ipc=1.0).miss_ratio_of_misses
        r4 = multi_issue_tradeoff(config, 0.95, ipc=4.0).miss_ratio_of_misses
        r64 = multi_issue_tradeoff(config, 0.95, ipc=64.0).miss_ratio_of_misses
        assert abs(r4 - pure_ratio) < abs(r1 - pure_ratio)
        assert abs(r64 - pure_ratio) < abs(r4 - pure_ratio)

    def test_r_stays_bounded(self, config):
        """The effect is second order: r moves by far less than 2x."""
        r1 = multi_issue_tradeoff(config, 0.95, ipc=1.0).miss_ratio_of_misses
        r8 = multi_issue_tradeoff(config, 0.95, ipc=8.0).miss_ratio_of_misses
        assert r8 / r1 < 1.05

    def test_kappa_validation(self):
        with pytest.raises(ValueError, match="ipc"):
            multi_issue_miss_cost_factor(8, 0.5, 8, 8, ipc=0.9)
