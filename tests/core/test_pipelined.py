"""Pipelined memory versus hit ratio (paper Section 4.4, Eq. 9)."""

import pytest

from repro.core.params import SystemConfig
from repro.core.pipelined import (
    pipelined_line_fill_time,
    pipelined_miss_volume_ratio,
    pipelined_tradeoff,
    pipelined_vs_doubling_crossover,
)


@pytest.fixture
def config():
    return SystemConfig(4, 32, 8.0, pipeline_turnaround=2.0)


class TestEq9:
    def test_fill_time(self, config):
        assert pipelined_line_fill_time(config) == 8 + 2 * 7

    def test_equals_non_pipelined_at_l_equals_d(self):
        config = SystemConfig(4, 4, 8.0, pipeline_turnaround=2.0)
        assert pipelined_line_fill_time(config) == config.line_fill_time

    def test_no_gain_at_beta_equals_q(self):
        """Figures 3-5: the pipelined curve meets the x axis at beta = q."""
        config = SystemConfig(4, 32, 2.0, pipeline_turnaround=2.0)
        assert pipelined_miss_volume_ratio(config) == pytest.approx(1.0)
        assert pipelined_tradeoff(config, 0.95).hit_ratio_delta == pytest.approx(0.0)


class TestRatio:
    def test_hand_computed(self, config):
        # base kappa = 12*8 - 1 = 95; pipe kappa = 1.5*22 - 1 = 32
        assert pipelined_miss_volume_ratio(config, 0.5) == pytest.approx(95.0 / 32.0)

    def test_gain_grows_with_memory_cycle(self):
        ratios = [
            pipelined_miss_volume_ratio(SystemConfig(4, 32, b, pipeline_turnaround=2.0))
            for b in (2, 4, 8, 16)
        ]
        assert ratios == sorted(ratios)

    def test_large_hit_ratio_traded_at_long_cycles(self):
        """Summary bullet: pipelining 'impacts the hit ratio considerably'."""
        config = SystemConfig(4, 32, 20.0, pipeline_turnaround=2.0)
        delta = pipelined_tradeoff(config, 0.95).hit_ratio_delta
        assert delta > 0.15  # ~19% at the Figure 4 right edge


class TestCrossover:
    def test_closed_form_l32_d4(self):
        # q (L/D - 1) / (L/2D - 1) = 2*7/3
        assert pipelined_vs_doubling_crossover(32, 4, 2.0) == pytest.approx(14 / 3)

    def test_paper_five_to_six_cycle_claim(self):
        value = pipelined_vs_doubling_crossover(32, 4, 2.0)
        assert value < 6.0

    def test_no_crossover_at_l_equals_2d(self):
        """Figure 3: at L = 2D pipelining never overtakes bus doubling."""
        assert pipelined_vs_doubling_crossover(8, 4, 2.0) is None

    def test_crossover_matches_ratio_comparison(self):
        """The closed form agrees with direct kappa comparison."""
        from repro.core.bus_width import miss_volume_ratio_for_doubling

        beta_star = pipelined_vs_doubling_crossover(32, 4, 2.0)
        just_below = SystemConfig(4, 32, beta_star - 0.01, pipeline_turnaround=2.0)
        just_above = SystemConfig(4, 32, beta_star + 0.01, pipeline_turnaround=2.0)
        assert pipelined_miss_volume_ratio(just_below) < miss_volume_ratio_for_doubling(
            just_below
        )
        assert pipelined_miss_volume_ratio(just_above) > miss_volume_ratio_for_doubling(
            just_above
        )

    def test_input_validation(self):
        with pytest.raises(ValueError, match="L >= 2D"):
            pipelined_vs_doubling_crossover(4, 4, 2.0)
