"""Write-around tradeoff equivalence (W > 0 generalization)."""

import pytest

from repro.core.params import SystemConfig
from repro.core.tradeoff import miss_cost_factor
from repro.core.write_around import (
    WriteAroundSystem,
    write_around_buffer_tradeoff,
    write_around_doubling_tradeoff,
    write_around_miss_volume_ratio,
)


@pytest.fixture
def config():
    return SystemConfig(4, 32, 8.0)


class TestDilution:
    def test_zero_write_share_matches_write_allocate(self, config):
        """omega = 0 reduces exactly to the Eq. 3 result."""
        from repro.core.bus_width import doubling_tradeoff

        general = write_around_doubling_tradeoff(config, 0.95, write_share=0.0)
        allocate = doubling_tradeoff(config, 0.95)
        assert general.miss_ratio_of_misses == pytest.approx(
            allocate.miss_ratio_of_misses
        )

    def test_write_share_dilutes_bus_doubling(self, config):
        """r = (1 - omega) r_R + omega: more writes, less feature value."""
        ratios = [
            write_around_doubling_tradeoff(config, 0.95, omega).miss_ratio_of_misses
            for omega in (0.0, 0.2, 0.5, 0.8)
        ]
        assert ratios == sorted(ratios, reverse=True)

    def test_dilution_closed_form(self, config):
        from repro.core.bus_width import miss_volume_ratio_for_doubling

        r_read = miss_volume_ratio_for_doubling(config, 0.5)
        omega = 0.4
        r = write_around_doubling_tradeoff(
            config, 0.95, write_share=omega
        ).miss_ratio_of_misses
        assert r == pytest.approx((1 - omega) * r_read + omega)

    def test_all_writes_means_no_gain(self, config):
        r = write_around_doubling_tradeoff(
            config, 0.95, write_share=0.999
        ).miss_ratio_of_misses
        assert r == pytest.approx(1.0, abs=0.01)


class TestWriteBuffers:
    def test_write_share_still_dilutes_buffers(self, config):
        """W misses cannot convert into cache-size savings, so r falls
        with omega even though the buffers hide W's cycles."""
        ratios = [
            write_around_buffer_tradeoff(config, 0.95, omega).miss_ratio_of_misses
            for omega in (0.0, 0.3, 0.6)
        ]
        assert ratios == sorted(ratios, reverse=True)

    def test_w_hiding_offsets_part_of_the_dilution(self, config):
        """Buffers that also hide W beat the dilution-only value."""
        from repro.core.write_buffer import write_buffer_miss_volume_ratio

        omega = 0.5
        r_read = write_buffer_miss_volume_ratio(config, 0.5)
        dilution_only = (1 - omega) * r_read + omega
        with_w_hiding = write_around_buffer_tradeoff(
            config, 0.95, write_share=omega
        ).miss_ratio_of_misses
        assert dilution_only < with_w_hiding < r_read


class TestEngine:
    def test_same_write_cost_cancels(self, config):
        """When both systems charge writes identically, r is the dilution
        formula regardless of the common write cost."""
        kappa_base = miss_cost_factor(8, 0.5, 8, 8.0)
        kappa_feat = miss_cost_factor(4, 0.5, 4, 8.0)
        for write_cost in (2.0, 8.0, 20.0):
            base = WriteAroundSystem(kappa_base, write_cost)
            feature = WriteAroundSystem(kappa_feat, write_cost)
            r = write_around_miss_volume_ratio(base, feature, 0.3)
            expected = 0.7 * (kappa_base / kappa_feat) + 0.3
            assert r == pytest.approx(expected)

    def test_validation(self):
        good = WriteAroundSystem(10.0, 8.0)
        with pytest.raises(ValueError, match="write_share"):
            write_around_miss_volume_ratio(good, good, 1.0)
        with pytest.raises(ValueError, match="kappa_read"):
            WriteAroundSystem(0.0, 8.0)
        with pytest.raises(ValueError, match="write_cost"):
            WriteAroundSystem(10.0, 0.5)
