"""Numeric equivalence solver vs every closed form."""

import pytest

from repro.core.bus_width import doubling_tradeoff
from repro.core.params import SystemConfig
from repro.core.pipelined import pipelined_tradeoff
from repro.core.solver import SystemUnderTest, solve_equivalent_hit_ratio
from repro.core.stalling import StallPolicy
from repro.core.stall_tradeoff import partial_stall_tradeoff
from repro.core.write_buffer import write_buffer_tradeoff


@pytest.fixture
def config():
    return SystemConfig(4, 32, 8.0, pipeline_turnaround=2.0)


class TestClosedFormAgreement:
    def test_doubling(self, config):
        numeric = solve_equivalent_hit_ratio(
            SystemUnderTest(config), SystemUnderTest(config.doubled_bus()), 0.95
        )
        assert numeric == pytest.approx(
            doubling_tradeoff(config, 0.95).feature_hit_ratio, abs=1e-8
        )

    def test_write_buffers(self, config):
        numeric = solve_equivalent_hit_ratio(
            SystemUnderTest(config),
            SystemUnderTest(config, write_buffers=True),
            0.95,
        )
        assert numeric == pytest.approx(
            write_buffer_tradeoff(config, 0.95).feature_hit_ratio, abs=1e-8
        )

    def test_pipelined(self, config):
        numeric = solve_equivalent_hit_ratio(
            SystemUnderTest(config), SystemUnderTest(config, pipelined=True), 0.95
        )
        assert numeric == pytest.approx(
            pipelined_tradeoff(config, 0.95).feature_hit_ratio, abs=1e-8
        )

    def test_partial_stalling(self, config):
        numeric = solve_equivalent_hit_ratio(
            SystemUnderTest(config),
            SystemUnderTest(
                config, policy=StallPolicy.BUS_NOT_LOCKED_1, stall_factor=6.0
            ),
            0.95,
        )
        assert numeric == pytest.approx(
            partial_stall_tradeoff(
                config, 0.95, measured_stall_factor=6.0
            ).feature_hit_ratio,
            abs=1e-8,
        )

    @pytest.mark.parametrize("base_hr", [0.90, 0.95, 0.98])
    def test_independent_of_trace_scale(self, config, base_hr):
        """Section 4.5: equivalence is independent of instruction count."""
        small = solve_equivalent_hit_ratio(
            SystemUnderTest(config),
            SystemUnderTest(config.doubled_bus()),
            base_hr,
            instructions=10_000.0,
        )
        large = solve_equivalent_hit_ratio(
            SystemUnderTest(config),
            SystemUnderTest(config.doubled_bus()),
            base_hr,
            instructions=100_000_000.0,
        )
        assert small == pytest.approx(large, abs=1e-7)


class TestBeyondClosedForms:
    def test_combined_features_compose(self, config):
        """Doubled bus + write buffers trades more than either alone —
        a case the paper has no closed form for."""
        both = solve_equivalent_hit_ratio(
            SystemUnderTest(config),
            SystemUnderTest(config.doubled_bus(), write_buffers=True),
            0.95,
        )
        bus_only = doubling_tradeoff(config, 0.95).feature_hit_ratio
        buffers_only = write_buffer_tradeoff(config, 0.95).feature_hit_ratio
        assert both < min(bus_only, buffers_only)

    def test_unphysical_case_raises(self):
        """Eq. 6's HR2 > 0 validity bound surfaces as a solver error."""
        config = SystemConfig(4, 8, 2.0)
        with pytest.raises(ValueError, match="useless cache|physical"):
            solve_equivalent_hit_ratio(
                SystemUnderTest(config),
                SystemUnderTest(config.doubled_bus()),
                0.55,  # 2.5 * 0.55 - 1.5 < 0
            )

    def test_pipelined_with_phi_rejected(self, config):
        feature = SystemUnderTest(config, pipelined=True, stall_factor=4.0)
        with pytest.raises(ValueError, match="cannot be combined"):
            solve_equivalent_hit_ratio(SystemUnderTest(config), feature, 0.95)

    def test_bad_base_hit_ratio(self, config):
        with pytest.raises(ValueError, match="base_hit_ratio"):
            solve_equivalent_hit_ratio(
                SystemUnderTest(config), SystemUnderTest(config), 1.0
            )
