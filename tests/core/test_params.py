"""SystemConfig and WorkloadCharacter (paper Table 1)."""

import pytest

from repro.core.params import (
    SystemConfig,
    WorkloadCharacter,
    workload_from_hit_ratio,
)


class TestSystemConfig:
    def test_bus_cycles_per_line(self):
        config = SystemConfig(bus_width=4, line_size=32, memory_cycle=8)
        assert config.bus_cycles_per_line == 8

    def test_line_fill_time_is_ld_times_beta(self):
        config = SystemConfig(bus_width=4, line_size=32, memory_cycle=8)
        assert config.line_fill_time == 64.0

    def test_pipelined_fill_time_eq9(self):
        config = SystemConfig(4, 32, 8, pipeline_turnaround=2)
        assert config.pipelined_line_fill_time == 8 + 2 * 7

    def test_pipelined_equals_plain_when_line_is_bus(self):
        config = SystemConfig(4, 4, 8, pipeline_turnaround=2)
        assert config.pipelined_line_fill_time == config.line_fill_time

    def test_doubled_bus(self):
        config = SystemConfig(4, 32, 8)
        doubled = config.doubled_bus()
        assert doubled.bus_width == 8
        assert doubled.bus_cycles_per_line == 4
        assert doubled.line_size == config.line_size

    def test_doubled_bus_requires_l_at_least_2d(self):
        config = SystemConfig(8, 8, 8)
        with pytest.raises(ValueError, match="L >= 2D"):
            config.doubled_bus()

    def test_line_must_be_multiple_of_bus(self):
        with pytest.raises(ValueError, match="multiple"):
            SystemConfig(bus_width=8, line_size=12, memory_cycle=4)

    def test_memory_cycle_below_one_rejected(self):
        with pytest.raises(ValueError, match="memory_cycle"):
            SystemConfig(4, 32, 0.5)

    def test_with_memory_cycle_creates_new_config(self):
        config = SystemConfig(4, 32, 8)
        faster = config.with_memory_cycle(2)
        assert faster.memory_cycle == 2
        assert config.memory_cycle == 8

    def test_with_line_size(self):
        config = SystemConfig(4, 32, 8)
        assert config.with_line_size(8).line_size == 8

    def test_negative_bus_width_rejected(self):
        with pytest.raises(ValueError, match="bus_width"):
            SystemConfig(-4, 32, 8)


class TestWorkloadCharacter:
    def test_miss_instructions_eq1(self):
        # Lambda_m = R/L + W
        workload = WorkloadCharacter(
            instructions=1000, read_bytes=320, write_around_misses=5,
        )
        assert workload.miss_instructions(32) == 10 + 5

    def test_write_allocate_detection(self):
        assert WorkloadCharacter(100, 32).uses_write_allocate
        assert not WorkloadCharacter(100, 32, write_around_misses=1).uses_write_allocate

    def test_flush_bytes(self):
        workload = WorkloadCharacter(100, 640, flush_ratio=0.5)
        assert workload.flush_bytes() == 320

    def test_flush_ratio_bounds(self):
        with pytest.raises(ValueError, match="flush_ratio"):
            WorkloadCharacter(100, 32, flush_ratio=1.5)

    def test_scaled_preserves_flush_ratio(self):
        workload = WorkloadCharacter(100, 640, instruction_bytes=64, flush_ratio=0.3)
        scaled = workload.scaled(2.0)
        assert scaled.instructions == 200
        assert scaled.read_bytes == 1280
        assert scaled.instruction_bytes == 128
        assert scaled.flush_ratio == 0.3

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            WorkloadCharacter(100, 640).scaled(0)


class TestWorkloadFromHitRatio:
    def test_round_trip_hit_ratio(self):
        config = SystemConfig(4, 32, 8)
        workload = workload_from_hit_ratio(0.95, config, instructions=10_000)
        references = 10_000 * 0.3
        misses = workload.miss_instructions(config.line_size)
        assert misses == pytest.approx(references * 0.05)

    def test_perfect_hit_ratio_means_no_reads(self):
        config = SystemConfig(4, 32, 8)
        workload = workload_from_hit_ratio(1.0, config)
        assert workload.read_bytes == 0

    def test_invalid_hit_ratio(self):
        config = SystemConfig(4, 32, 8)
        with pytest.raises(ValueError, match="hit_ratio"):
            workload_from_hit_ratio(0.0, config)

    def test_invalid_loadstore_fraction(self):
        config = SystemConfig(4, 32, 8)
        with pytest.raises(ValueError, match="loadstore_fraction"):
            workload_from_hit_ratio(0.9, config, loadstore_fraction=1.0)
