"""Partial stalling versus hit ratio (paper Section 4.2)."""

import pytest

from repro.core.params import SystemConfig
from repro.core.stall_tradeoff import (
    partial_stall_miss_volume_ratio,
    partial_stall_tradeoff,
    stall_factor_from_percentage,
)
from repro.core.stalling import StallPolicy


@pytest.fixture
def config():
    return SystemConfig(bus_width=4, line_size=32, memory_cycle=8.0)


class TestRatio:
    def test_full_phi_means_no_gain(self, config):
        r = partial_stall_miss_volume_ratio(config, measured_stall_factor=8.0)
        assert r == pytest.approx(1.0)

    def test_lower_phi_means_more_gain(self, config):
        r_high = partial_stall_miss_volume_ratio(config, 7.0)
        r_low = partial_stall_miss_volume_ratio(config, 4.0)
        assert r_low > r_high > 1.0

    def test_hand_computed(self, config):
        # r = ((8 + 4)*8 - 1) / ((6 + 4)*8 - 1) = 95/79
        r = partial_stall_miss_volume_ratio(config, 6.0, flush_ratio=0.5)
        assert r == pytest.approx(95.0 / 79.0)

    def test_phi_validated_against_policy(self, config):
        with pytest.raises(ValueError, match="outside"):
            partial_stall_miss_volume_ratio(
                config, 0.5, policy=StallPolicy.BUS_LOCKED
            )

    def test_nb_policy_admits_zero_phi(self, config):
        r = partial_stall_miss_volume_ratio(
            config, 0.0, policy=StallPolicy.NON_BLOCKING
        )
        assert r == pytest.approx(95.0 / 31.0)


class TestTradeoff:
    def test_traded_hit_ratio(self, config):
        result = partial_stall_tradeoff(config, 0.95, measured_stall_factor=6.0)
        expected_delta = (95.0 / 79.0 - 1.0) * 0.05
        assert result.hit_ratio_delta == pytest.approx(expected_delta)

    def test_bnl_gain_is_modest(self, config):
        """Section 5.3: the BNL1 payoff is quite limited at realistic phi."""
        result = partial_stall_tradeoff(config, 0.95, measured_stall_factor=7.4)
        assert result.hit_ratio_delta < 0.01


class TestPercentConversion:
    def test_basic(self, config):
        assert stall_factor_from_percentage(config, 50.0) == 4.0

    def test_floor_at_one(self, config):
        assert stall_factor_from_percentage(config, 1.0) == 1.0

    def test_range_check(self, config):
        with pytest.raises(ValueError):
            stall_factor_from_percentage(config, 150.0)
