"""Per-feature dispatch and Table 3 (paper Table 3)."""

import pytest

from repro.core.features import ArchFeature, feature_miss_ratio, table3
from repro.core.params import SystemConfig


@pytest.fixture
def config():
    return SystemConfig(4, 32, 8.0, pipeline_turnaround=2.0)


class TestDispatch:
    def test_doubling(self, config):
        from repro.core.bus_width import miss_volume_ratio_for_doubling

        assert feature_miss_ratio(
            ArchFeature.DOUBLING_BUS, config
        ) == miss_volume_ratio_for_doubling(config)

    def test_write_buffers(self, config):
        from repro.core.write_buffer import write_buffer_miss_volume_ratio

        assert feature_miss_ratio(
            ArchFeature.WRITE_BUFFERS, config
        ) == write_buffer_miss_volume_ratio(config)

    def test_pipelined(self, config):
        from repro.core.pipelined import pipelined_miss_volume_ratio

        assert feature_miss_ratio(
            ArchFeature.PIPELINED_MEMORY, config
        ) == pipelined_miss_volume_ratio(config)

    def test_partial_stalling_needs_phi(self, config):
        with pytest.raises(ValueError, match="stall factor"):
            feature_miss_ratio(ArchFeature.PARTIAL_STALLING, config)

    def test_partial_stalling_with_phi(self, config):
        r = feature_miss_ratio(
            ArchFeature.PARTIAL_STALLING, config, measured_stall_factor=6.0
        )
        assert r == pytest.approx(95.0 / 79.0)


class TestTable3:
    def test_rows_without_phi(self, config):
        rows = table3(config, 0.95)
        features = [row.feature for row in rows]
        assert ArchFeature.PARTIAL_STALLING not in features
        assert len(rows) == 3

    def test_rows_with_phi(self, config):
        rows = table3(config, 0.95, measured_stall_factor=7.0)
        assert [row.feature for row in rows] == [
            ArchFeature.DOUBLING_BUS,
            ArchFeature.PARTIAL_STALLING,
            ArchFeature.WRITE_BUFFERS,
            ArchFeature.PIPELINED_MEMORY,
        ]

    def test_every_r_at_least_one(self, config):
        for row in table3(config, 0.95, measured_stall_factor=7.0):
            assert row.miss_volume_ratio >= 1.0
            assert row.hit_ratio_traded >= 0.0

    def test_ranking_at_moderate_beta(self, config):
        """Section 5.3 at beta_m = 8, L/D = 8: pipelined leads (past the
        crossover), then bus, buffers, BNL."""
        rows = {
            row.feature: row.hit_ratio_traded
            for row in table3(config, 0.95, measured_stall_factor=0.92 * 8)
        }
        assert (
            rows[ArchFeature.PIPELINED_MEMORY]
            > rows[ArchFeature.DOUBLING_BUS]
            > rows[ArchFeature.WRITE_BUFFERS]
            > rows[ArchFeature.PARTIAL_STALLING]
        )
