"""Unified comparison sweeps (paper Section 5.3, Figures 3-5)."""

import pytest

from repro.core.features import ArchFeature
from repro.core.params import SystemConfig
from repro.core.ranking import unified_comparison


@pytest.fixture
def sweep_l32():
    config = SystemConfig(4, 32, 2.0, pipeline_turnaround=2.0)
    return unified_comparison(
        config,
        base_hit_ratio=0.95,
        memory_cycles=[2, 4, 6, 8, 12, 16, 20],
        flush_ratio=0.5,
    )


class TestSweeps:
    def test_three_analytic_features_present(self, sweep_l32):
        assert set(sweep_l32.sweeps) == {
            ArchFeature.DOUBLING_BUS,
            ArchFeature.WRITE_BUFFERS,
            ArchFeature.PIPELINED_MEMORY,
        }

    def test_pipelined_starts_at_zero(self, sweep_l32):
        assert sweep_l32.sweeps[ArchFeature.PIPELINED_MEMORY].value_at(
            2.0
        ) == pytest.approx(0.0)

    def test_pipelined_monotone_increasing(self, sweep_l32):
        values = sweep_l32.sweeps[ArchFeature.PIPELINED_MEMORY].hit_ratio_traded
        assert list(values) == sorted(values)

    def test_bus_and_buffers_roughly_flat(self, sweep_l32):
        """Section 5.3: 'constant performance improvement over a
        relatively large memory cycle times range'."""
        for feature in (ArchFeature.DOUBLING_BUS, ArchFeature.WRITE_BUFFERS):
            values = sweep_l32.sweeps[feature].hit_ratio_traded
            assert max(values) - min(values) < 0.01

    def test_ranking_flips_after_crossover(self, sweep_l32):
        early = sweep_l32.ranking_at(4.0)
        late = sweep_l32.ranking_at(20.0)
        assert early[0] is ArchFeature.DOUBLING_BUS
        assert late[0] is ArchFeature.PIPELINED_MEMORY

    def test_crossover_near_analytic_value(self, sweep_l32):
        crossover = sweep_l32.pipelined_crossover_vs(ArchFeature.DOUBLING_BUS)
        assert crossover == pytest.approx(14 / 3, abs=0.25)

    def test_value_at_unswept_beta_raises(self, sweep_l32):
        with pytest.raises(ValueError, match="not swept"):
            sweep_l32.sweeps[ArchFeature.DOUBLING_BUS].value_at(3.0)


class TestMeasuredStalling:
    def test_stall_curve_included_when_supplied(self):
        config = SystemConfig(4, 32, 2.0)
        comparison = unified_comparison(
            config,
            0.95,
            [2, 8],
            measured_stall_factors={2.0: 7.0, 8.0: 7.5},
        )
        assert ArchFeature.PARTIAL_STALLING in comparison.sweeps

    def test_missing_phi_entry_raises(self):
        config = SystemConfig(4, 32, 2.0)
        with pytest.raises(KeyError):
            unified_comparison(
                config, 0.95, [2, 8], measured_stall_factors={2.0: 7.0}
            )

    def test_empty_sweep_rejected(self):
        config = SystemConfig(4, 32, 2.0)
        with pytest.raises(ValueError, match="non-empty"):
            unified_comparison(config, 0.95, [])

    def test_l8_pipelined_never_beats_bus(self):
        """Figure 3's observation at L = 2D."""
        config = SystemConfig(4, 8, 2.0, pipeline_turnaround=2.0)
        comparison = unified_comparison(config, 0.95, [2, 4, 8, 12, 16, 20])
        pipe = comparison.sweeps[ArchFeature.PIPELINED_MEMORY].hit_ratio_traded
        bus = comparison.sweeps[ArchFeature.DOUBLING_BUS].hit_ratio_traded
        assert all(p < b for p, b in zip(pipe, bus))
