"""Sensitivity analysis of the tradeoff results."""

import pytest

from repro.core.features import ArchFeature
from repro.core.params import SystemConfig
from repro.core.sensitivity import (
    PARAMETER_NAMES,
    OperatingPoint,
    sensitivity,
    sensitivity_report,
)


@pytest.fixture
def point():
    return OperatingPoint(
        config=SystemConfig(4, 32, 8.0, pipeline_turnaround=2.0),
        base_hit_ratio=0.95,
        flush_ratio=0.5,
    )


class TestSigns:
    def test_bus_value_falls_with_memory_cycle(self, point):
        """Figure 2: the traded ratio shrinks as beta_m grows."""
        assert sensitivity(point, ArchFeature.DOUBLING_BUS, "memory_cycle") < 0

    def test_pipelined_value_rises_with_memory_cycle(self, point):
        assert sensitivity(point, ArchFeature.PIPELINED_MEMORY, "memory_cycle") > 0

    def test_every_feature_falls_with_base_hit_ratio(self, point):
        """Higher base HR -> less miss volume to trade, all features."""
        for feature in (
            ArchFeature.DOUBLING_BUS,
            ArchFeature.WRITE_BUFFERS,
            ArchFeature.PIPELINED_MEMORY,
        ):
            assert sensitivity(point, feature, "base_hit_ratio") < 0

    def test_write_buffer_value_rises_with_flush_ratio(self, point):
        assert sensitivity(point, ArchFeature.WRITE_BUFFERS, "flush_ratio") > 0

    def test_pipelined_value_falls_with_turnaround(self, point):
        assert (
            sensitivity(point, ArchFeature.PIPELINED_MEMORY, "pipeline_turnaround")
            < 0
        )


class TestNumerics:
    def test_matches_analytic_slope_for_base_hit_ratio(self, point):
        """delta = (r-1)(1-HR): d/dHR = -(r-1) exactly (linear)."""
        from repro.core.features import feature_miss_ratio

        r = feature_miss_ratio(ArchFeature.DOUBLING_BUS, point.config, 0.5)
        slope = sensitivity(point, ArchFeature.DOUBLING_BUS, "base_hit_ratio")
        assert slope == pytest.approx(-(r - 1.0), rel=1e-6)

    def test_unknown_parameter_rejected(self, point):
        with pytest.raises(ValueError, match="unknown parameter"):
            sensitivity(point, ArchFeature.DOUBLING_BUS, "voltage")


class TestReport:
    def test_report_covers_all_parameters(self, point):
        report = sensitivity_report(point, ArchFeature.DOUBLING_BUS)
        assert set(report) == set(PARAMETER_NAMES)

    def test_turnaround_zero_for_non_pipelined_features(self, point):
        report = sensitivity_report(point, ArchFeature.WRITE_BUFFERS)
        assert report["pipeline_turnaround"] == 0.0

    def test_turnaround_nonzero_for_pipelined(self, point):
        report = sensitivity_report(point, ArchFeature.PIPELINED_MEMORY)
        assert report["pipeline_turnaround"] != 0.0
