"""Memory traffic model and the Section 2 warning."""

import pytest

from repro.core.params import SystemConfig, WorkloadCharacter, workload_from_hit_ratio
from repro.core.traffic import (
    ranking_disagreement,
    traffic_optimal_line,
    traffic_report,
)


@pytest.fixture
def config():
    return SystemConfig(4, 32, 8.0)


class TestReport:
    def test_components(self, config):
        workload = WorkloadCharacter(
            1000, read_bytes=320, write_around_misses=5, flush_ratio=0.5
        )
        report = traffic_report(workload, config)
        assert report.fill_bytes == 320
        assert report.flush_bytes == 160
        assert report.write_around_bytes == 20
        assert report.total_bytes == 500

    def test_bytes_per_instruction(self, config):
        workload = WorkloadCharacter(1000, read_bytes=320, flush_ratio=0.5)
        report = traffic_report(workload, config)
        assert report.bytes_per_instruction == pytest.approx(0.48)

    def test_utilization_in_unit_interval(self, config):
        workload = workload_from_hit_ratio(0.95, config)
        report = traffic_report(workload, config)
        assert 0.0 < report.bus_utilization <= 1.0

    def test_utilization_consistent_with_eq2(self, config):
        """Busy cycles never exceed the execution time Eq. 2 predicts for
        a full-stalling system (every transfer stalls the processor)."""
        workload = workload_from_hit_ratio(0.90, config)
        report = traffic_report(workload, config)
        assert report.bus_busy_cycles <= report.execution_cycles


class TestTrafficCriterion:
    TABLE = {8: 0.060, 16: 0.038, 32: 0.026, 64: 0.020, 128: 0.01535}

    def test_traffic_prefers_small_lines(self):
        """MR*L grows with L on realistic tables (MR falls slower than
        L grows), so the traffic criterion picks the smallest line."""
        assert traffic_optimal_line(self.TABLE) == 8

    def test_disagreement_with_delay_criterion(self):
        traffic_line, delay_line, differ = ranking_disagreement(
            self.TABLE, latency=12.0, transfer=2.0, bus_width=4
        )
        assert differ
        assert traffic_line < delay_line

    def test_agreement_possible_when_lines_halve_miss(self):
        """A table where doubling the line halves the miss ratio makes
        the traffic criterion indifferent; ties go small, and a fast
        memory keeps the delay optimum small too."""
        table = {8: 0.08, 16: 0.04, 32: 0.02}
        traffic_line, delay_line, differ = ranking_disagreement(
            table, latency=1.0, transfer=4.0, bus_width=4
        )
        assert traffic_line == 8
        assert delay_line == 8
        assert not differ

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            traffic_optimal_line({})
