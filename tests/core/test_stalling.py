"""Stalling features and stall-factor bounds (paper Table 2)."""

import pytest

from repro.core.stalling import (
    MEASURED_POLICIES,
    StallPolicy,
    stall_factor_bounds,
    validate_stall_factor,
)


class TestBounds:
    def test_full_stall_pins_phi_to_ld(self):
        bounds = stall_factor_bounds(StallPolicy.FULL_STALL, 8)
        assert bounds.minimum == bounds.maximum == 8.0

    @pytest.mark.parametrize(
        "policy",
        [
            StallPolicy.BUS_LOCKED,
            StallPolicy.BUS_NOT_LOCKED_1,
            StallPolicy.BUS_NOT_LOCKED_2,
            StallPolicy.BUS_NOT_LOCKED_3,
        ],
    )
    def test_partial_policies_floor_at_one(self, policy):
        bounds = stall_factor_bounds(policy, 8)
        assert bounds.minimum == 1.0
        assert bounds.maximum == 8.0

    def test_non_blocking_floor_at_zero(self):
        bounds = stall_factor_bounds(StallPolicy.NON_BLOCKING, 8)
        assert bounds.minimum == 0.0

    def test_invalid_ratio(self):
        with pytest.raises(ValueError, match="L/D"):
            stall_factor_bounds(StallPolicy.FULL_STALL, 0.5)

    def test_contains_and_clamp(self):
        bounds = stall_factor_bounds(StallPolicy.BUS_LOCKED, 8)
        assert bounds.contains(4.0)
        assert not bounds.contains(0.5)
        assert bounds.clamp(0.5) == 1.0
        assert bounds.clamp(10.0) == 8.0


class TestValidate:
    def test_accepts_valid(self):
        assert validate_stall_factor(StallPolicy.BUS_NOT_LOCKED_1, 4.5, 8) == 4.5

    def test_rejects_too_low_for_bl(self):
        with pytest.raises(ValueError, match="outside"):
            validate_stall_factor(StallPolicy.BUS_LOCKED, 0.5, 8)

    def test_rejects_non_full_for_fs(self):
        with pytest.raises(ValueError, match="outside"):
            validate_stall_factor(StallPolicy.FULL_STALL, 4.0, 8)


class TestClassification:
    def test_fs_is_full_stalling(self):
        assert StallPolicy.FULL_STALL.is_full_stalling
        assert not StallPolicy.FULL_STALL.is_partially_stalling

    def test_others_are_partially_stalling(self):
        for policy in StallPolicy:
            if policy is not StallPolicy.FULL_STALL:
                assert policy.is_partially_stalling

    def test_measured_policies_are_the_figure1_set(self):
        assert [p.value for p in MEASURED_POLICIES] == ["BL", "BNL1", "BNL2", "BNL3"]
