"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.events_store import EVENTS_CACHE_DIR_ENV
from repro.campaign.registry import CAMPAIGN_DIR_ENV
from repro.core.params import SystemConfig
from repro.service.disk_cache import RESULT_CACHE_DIR_ENV
from repro.trace.record import ALU_OP, Instruction, OpKind


@pytest.fixture(autouse=True, scope="session")
def _isolated_events_cache(tmp_path_factory):
    """Point the on-disk event-stream cache at a per-session temp dir.

    Tests must never read (or pollute) the user's real cache: a stale
    entry there could mask an extraction bug, and test entries would
    leak into real runs.
    """
    directory = tmp_path_factory.mktemp("events-cache")
    previous = os.environ.get(EVENTS_CACHE_DIR_ENV)
    os.environ[EVENTS_CACHE_DIR_ENV] = str(directory)
    yield
    if previous is None:
        os.environ.pop(EVENTS_CACHE_DIR_ENV, None)
    else:
        os.environ[EVENTS_CACHE_DIR_ENV] = previous


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    """Point the disk-backed result cache at a per-session temp dir.

    The cache is off unless a server configures a directory, but the
    env override wins over any configured path — redirecting it keeps a
    test server with ``disk_cache_dir`` set (and worker subprocesses,
    which inherit the environment) out of the user's real cache.
    """
    directory = tmp_path_factory.mktemp("result-cache")
    previous = os.environ.get(RESULT_CACHE_DIR_ENV)
    os.environ[RESULT_CACHE_DIR_ENV] = str(directory)
    yield
    if previous is None:
        os.environ.pop(RESULT_CACHE_DIR_ENV, None)
    else:
        os.environ[RESULT_CACHE_DIR_ENV] = previous


@pytest.fixture(autouse=True, scope="session")
def _isolated_campaign_registry(tmp_path_factory):
    """Point the campaign registry at a per-session temp dir.

    The env override beats any configured ``--registry`` /
    ``campaign_dir`` path, so even a test server configured with a
    real-looking directory stays out of ``~/.cache/repro/campaigns``.
    Tests that need a private registry monkeypatch the same variable.
    """
    directory = tmp_path_factory.mktemp("campaigns")
    previous = os.environ.get(CAMPAIGN_DIR_ENV)
    os.environ[CAMPAIGN_DIR_ENV] = str(directory)
    yield
    if previous is None:
        os.environ.pop(CAMPAIGN_DIR_ENV, None)
    else:
        os.environ[CAMPAIGN_DIR_ENV] = previous


@pytest.fixture
def paper_config() -> SystemConfig:
    """The Figure 4/5 operating point: D=4, L=32, beta_m=8, q=2."""
    return SystemConfig(
        bus_width=4, line_size=32, memory_cycle=8.0, pipeline_turnaround=2.0
    )


@pytest.fixture
def small_config() -> SystemConfig:
    """The Figure 3 operating point: D=4, L=8 (L/D = 2)."""
    return SystemConfig(
        bus_width=4, line_size=8, memory_cycle=8.0, pipeline_turnaround=2.0
    )


@pytest.fixture
def figure1_cache() -> CacheConfig:
    """The Figure 1 cache: 8K, 2-way, 32-byte lines, write-allocate."""
    return CacheConfig(total_bytes=8192, line_size=32, associativity=2)


def sequential_trace(
    n_instructions: int,
    loads_every: int = 3,
    element_size: int = 8,
    base: int = 0,
) -> list[Instruction]:
    """Deterministic sequential-load trace for hand-checkable timing."""
    trace = []
    address = base
    for i in range(n_instructions):
        if i % loads_every == 0:
            trace.append(Instruction(OpKind.LOAD, address, 4))
            address += element_size
        else:
            trace.append(ALU_OP)
    return trace


@pytest.fixture
def seq_trace() -> list[Instruction]:
    """3000-instruction sequential trace (1000 loads, 8-byte stride)."""
    return sequential_trace(3000)
