"""Pipelined memory timing (Eq. 9)."""

import pytest

from repro.memory.pipelined import PipelinedMemory


@pytest.fixture
def memory():
    return PipelinedMemory(memory_cycle=8.0, bus_width=4, turnaround=2.0)


class TestEq9:
    def test_line_fill_duration(self, memory):
        # beta_p = 8 + 2*(8-1)
        assert memory.line_fill_duration(32) == 22.0

    def test_matches_non_pipelined_at_single_chunk(self, memory):
        assert memory.line_fill_duration(4) == 8.0

    def test_copy_back_pipelines(self, memory):
        assert memory.copy_back_duration(32) == 22.0

    def test_turnaround_cannot_exceed_cycle(self):
        with pytest.raises(ValueError, match="turnaround"):
            PipelinedMemory(4.0, 4, turnaround=8.0)

    def test_turnaround_floor(self):
        with pytest.raises(ValueError, match="turnaround"):
            PipelinedMemory(8.0, 4, turnaround=0.5)


class TestSchedule:
    def test_chunk_cadence(self, memory):
        schedule = memory.schedule_fill(0, 32, 0, 0.0)
        arrivals = [schedule.arrival_for_offset(4 * k, 4) for k in range(8)]
        assert arrivals == [8.0 + 2.0 * k for k in range(8)]

    def test_end_time_is_eq9(self, memory):
        schedule = memory.schedule_fill(0, 32, 0, 10.0)
        assert schedule.end_time == 10.0 + 22.0

    def test_critical_word_first_preserved(self, memory):
        schedule = memory.schedule_fill(0, 32, critical_offset=16, start_time=0.0)
        assert schedule.first_arrival == schedule.arrival_for_offset(16, 4) == 8.0

    def test_faster_than_plain_fill(self, memory):
        from repro.memory.mainmem import MainMemory

        plain = MainMemory(8.0, 4)
        assert memory.line_fill_duration(32) < plain.line_fill_duration(32)
