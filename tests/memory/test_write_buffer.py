"""Read-bypassing write buffer."""

import pytest

from repro.memory.write_buffer import WriteBuffer


class TestPosting:
    def test_post_is_free_with_space(self):
        buffer = WriteBuffer(depth=2)
        assert buffer.post(0x100, 64.0, now=0.0) == 0.0
        assert len(buffer) == 1

    def test_full_buffer_stalls_for_head_drain(self):
        buffer = WriteBuffer(depth=1)
        buffer.post(0x100, 64.0, now=0.0)
        stall = buffer.post(0x200, 64.0, now=10.0)
        assert stall == 64.0  # must drain the head first
        assert len(buffer) == 1

    def test_depth_validated(self):
        with pytest.raises(ValueError, match="depth"):
            WriteBuffer(depth=0)

    def test_is_full(self):
        buffer = WriteBuffer(depth=2)
        buffer.post(0x100, 1.0, 0.0)
        assert not buffer.is_full
        buffer.post(0x200, 1.0, 0.0)
        assert buffer.is_full


class TestDraining:
    def test_drain_idle_empties_when_window_allows(self):
        buffer = WriteBuffer(depth=4)
        buffer.post(0x100, 10.0, 0.0)
        buffer.post(0x200, 10.0, 0.0)
        end = buffer.drain_idle(now=0.0, idle_until=100.0)
        assert end == 20.0
        assert len(buffer) == 0
        assert buffer.total_drained == 2

    def test_drain_idle_respects_window(self):
        buffer = WriteBuffer(depth=4)
        buffer.post(0x100, 10.0, 0.0)
        buffer.post(0x200, 10.0, 0.0)
        end = buffer.drain_idle(now=0.0, idle_until=15.0)
        assert end == 10.0
        assert len(buffer) == 1

    def test_no_partial_drain(self):
        buffer = WriteBuffer(depth=4)
        buffer.post(0x100, 10.0, 0.0)
        end = buffer.drain_idle(now=0.0, idle_until=5.0)
        assert end == 0.0
        assert len(buffer) == 1


class TestConflicts:
    def test_conflict_detection(self):
        buffer = WriteBuffer(depth=4)
        buffer.post(0x100, 10.0, 0.0)
        assert buffer.conflicts_with(0x100)
        assert not buffer.conflicts_with(0x200)

    def test_flush_all_drains_everything(self):
        buffer = WriteBuffer(depth=4)
        buffer.post(0x100, 10.0, 0.0)
        buffer.post(0x200, 15.0, 0.0)
        done = buffer.flush_all(now=5.0)
        assert done == 30.0
        assert len(buffer) == 0
        assert buffer.conflict_stalls == 1
