"""Non-pipelined main memory timing."""

import pytest

from repro.memory.mainmem import MainMemory


@pytest.fixture
def memory():
    return MainMemory(memory_cycle=8.0, bus_width=4)


class TestDurations:
    def test_line_fill_duration(self, memory):
        assert memory.line_fill_duration(32) == 64.0

    def test_copy_back_matches_fill(self, memory):
        assert memory.copy_back_duration(32) == memory.line_fill_duration(32)

    def test_write_duration_small_operand(self, memory):
        assert memory.write_duration(4) == 8.0
        assert memory.write_duration(1) == 8.0

    def test_write_duration_wide_operand(self, memory):
        assert memory.write_duration(8) == 16.0
        assert memory.write_duration(10) == 24.0  # ceil(10/4) chunks

    def test_bad_line_size(self, memory):
        with pytest.raises(ValueError, match="multiple"):
            memory.line_fill_duration(30)

    def test_validation(self):
        with pytest.raises(ValueError, match="memory_cycle"):
            MainMemory(0.5, 4)
        with pytest.raises(ValueError, match="bus_width"):
            MainMemory(8, 0)


class TestFillSchedule:
    def test_critical_word_first(self, memory):
        schedule = memory.schedule_fill(0x100, 32, critical_offset=20, start_time=10.0)
        # Chunk 5 (offset 20) must be the first arrival.
        assert schedule.arrival_for_offset(20, 4) == 18.0
        assert schedule.first_arrival == 18.0

    def test_wraparound_order(self, memory):
        schedule = memory.schedule_fill(0, 32, critical_offset=20, start_time=0.0)
        # Transfer order: chunks 5,6,7,0,1,2,3,4.
        assert schedule.arrival_for_offset(24, 4) == 16.0  # chunk 6, 2nd
        assert schedule.arrival_for_offset(0, 4) == 32.0  # chunk 0, 4th

    def test_end_time(self, memory):
        schedule = memory.schedule_fill(0, 32, 0, 0.0)
        assert schedule.end_time == 64.0
        assert schedule.complete_at(64.0)
        assert not schedule.complete_at(63.9)

    def test_zero_offset_is_sequential(self, memory):
        schedule = memory.schedule_fill(0, 32, 0, 0.0)
        arrivals = [schedule.arrival_for_offset(4 * k, 4) for k in range(8)]
        assert arrivals == [8.0 * (k + 1) for k in range(8)]

    def test_offset_out_of_line_rejected(self, memory):
        schedule = memory.schedule_fill(0, 32, 0, 0.0)
        with pytest.raises(ValueError, match="outside"):
            schedule.arrival_for_offset(40, 4)

    def test_single_chunk_line(self):
        memory = MainMemory(8.0, 4)
        schedule = memory.schedule_fill(0, 4, 0, 0.0)
        assert schedule.end_time == schedule.first_arrival == 8.0
