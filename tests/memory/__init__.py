"""Test package."""
