"""Interleaved (banked) memory."""

import pytest

from repro.memory.interleaved import (
    InterleavedMemory,
    banks_for_turnaround,
    effective_turnaround,
)
from repro.memory.pipelined import PipelinedMemory


class TestEffectiveTurnaround:
    def test_enough_banks_hit_the_bus_limit(self):
        assert effective_turnaround(8.0, banks=16) == 1.0

    def test_few_banks_limited_by_bank_busy(self):
        assert effective_turnaround(8.0, banks=2) == 4.0

    def test_one_bank_is_non_pipelined(self):
        assert effective_turnaround(8.0, banks=1) == 8.0

    def test_banks_for_turnaround(self):
        assert banks_for_turnaround(8.0, 2.0) == 4
        assert banks_for_turnaround(20.0, 2.0) == 10
        assert banks_for_turnaround(4.0, 8.0) == 1

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError, match="unreachable"):
            banks_for_turnaround(8.0, 0.5, transfer_cycles=1.0)


class TestInterleavedTiming:
    def test_sequential_fill_matches_eq9(self):
        """For sequential fills, banking == Eq. (9) at q_eff exactly."""
        for beta in (4.0, 8.0, 12.0):
            for banks in (1, 2, 4, 8):
                interleaved = InterleavedMemory(beta, 4, banks)
                q_eff = interleaved.as_pipelined_turnaround()
                pipelined = PipelinedMemory(beta, 4, turnaround=q_eff)
                assert interleaved.line_fill_duration(
                    32
                ) == pipelined.line_fill_duration(32), (beta, banks)

    def test_schedule_within_envelope(self):
        """The exact per-bank schedule never exceeds the Eq. 9 envelope
        and never beats the physical floor (beta_m + bus cadence)."""
        memory = InterleavedMemory(8.0, 4, banks=4)
        schedule = memory.schedule_fill(0, 32, 0, 0.0)
        assert schedule.end_time <= memory.line_fill_duration(32)
        assert schedule.end_time >= 8.0 + 7 * 1.0

    def test_bank_conflicts_counted(self):
        memory = InterleavedMemory(8.0, 4, banks=2)
        memory.schedule_fill(0, 32, 0, 0.0)
        assert memory.bank_conflicts > 0

    def test_many_banks_no_conflicts_in_one_line(self):
        memory = InterleavedMemory(8.0, 4, banks=8)
        memory.schedule_fill(0, 32, 0, 0.0)
        assert memory.bank_conflicts == 0

    def test_power_of_two_banks_required(self):
        with pytest.raises(ValueError, match="power of two"):
            InterleavedMemory(8.0, 4, banks=3)

    def test_usable_by_timing_simulator(self):
        from repro.cache.cache import CacheConfig
        from repro.cpu.processor import TimingSimulator
        from tests.conftest import sequential_trace

        interleaved = InterleavedMemory(8.0, 4, banks=4)
        plain_result = TimingSimulator(
            CacheConfig(8192, 32, 2),
            InterleavedMemory(8.0, 4, banks=1),
        ).run(sequential_trace(2000))
        banked_result = TimingSimulator(
            CacheConfig(8192, 32, 2), interleaved
        ).run(sequential_trace(2000))
        assert banked_result.cycles < plain_result.cycles
