"""Page-mode DRAM model."""

import pytest

from repro.memory.dram import PageModeDram


@pytest.fixture
def dram():
    return PageModeDram(page_hit_cycle=4.0, page_miss_cycle=12.0,
                        row_bytes=2048, bus_width=4)


class TestTiming:
    def test_first_fill_pays_page_miss(self, dram):
        schedule = dram.schedule_fill(0, 32, 0, 0.0)
        # chunk 0: page miss (12), chunks 1-7: page hits (4 each).
        assert schedule.arrival_for_offset(0, 4) == 12.0
        assert schedule.arrival_for_offset(4, 4) == 16.0
        assert schedule.end_time == 12.0 + 7 * 4.0

    def test_same_row_refill_all_hits(self, dram):
        dram.schedule_fill(0, 32, 0, 0.0)
        schedule = dram.schedule_fill(64, 32, 0, 100.0)  # same 2KB row
        assert schedule.arrival_for_offset(0, 4) == 104.0
        assert schedule.end_time == 100.0 + 8 * 4.0

    def test_row_change_pays_miss_again(self, dram):
        dram.schedule_fill(0, 32, 0, 0.0)
        schedule = dram.schedule_fill(4096, 32, 0, 100.0)  # new row
        assert schedule.arrival_for_offset(4096 % 32, 4) == 112.0

    def test_worst_case_duration(self, dram):
        assert dram.line_fill_duration(32) == 12.0 + 7 * 4.0

    def test_write_duration(self, dram):
        assert dram.write_duration(4) == 12.0
        assert dram.write_duration(8) == 16.0


class TestAccounting:
    def test_page_hit_ratio(self, dram):
        dram.schedule_fill(0, 32, 0, 0.0)
        dram.schedule_fill(32, 32, 0, 50.0)
        # 1 miss + 15 hits over 16 chunks.
        assert dram.page_hit_ratio == pytest.approx(15 / 16)

    def test_effective_memory_cycle_between_extremes(self, dram):
        dram.schedule_fill(0, 32, 0, 0.0)
        dram.schedule_fill(8192, 32, 0, 50.0)
        effective = dram.effective_memory_cycle()
        assert 4.0 < effective < 12.0

    def test_effective_cycle_before_any_traffic(self, dram):
        assert dram.effective_memory_cycle() == 12.0


class TestValidation:
    def test_miss_cannot_be_cheaper_than_hit(self):
        with pytest.raises(ValueError, match="page_miss_cycle"):
            PageModeDram(8.0, 4.0, 2048, 4)

    def test_row_must_be_bus_multiple(self):
        with pytest.raises(ValueError, match="row_bytes"):
            PageModeDram(4.0, 12.0, 2046, 4)

    def test_hit_cycle_floor(self):
        with pytest.raises(ValueError, match="page_hit_cycle"):
            PageModeDram(0.5, 12.0, 2048, 4)


class TestSimulatorIntegration:
    def test_runs_under_timing_simulator(self):
        from repro.cache.cache import CacheConfig
        from repro.cpu.processor import TimingSimulator
        from tests.conftest import sequential_trace

        dram = PageModeDram(4.0, 12.0, 2048, 4)
        sim = TimingSimulator(CacheConfig(8192, 32, 2), dram)
        result = sim.run(sequential_trace(3000))
        assert result.cycles > 0
        assert dram.page_hit_ratio > 0.5  # sequential: mostly open-row
