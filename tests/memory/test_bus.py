"""Bus occupancy model."""

import pytest

from repro.memory.bus import Bus


class TestBus:
    def test_idle_bus_starts_immediately(self):
        bus = Bus()
        assert bus.reserve(5.0, 10.0) == 5.0
        assert bus.busy_until == 15.0

    def test_busy_bus_delays(self):
        bus = Bus()
        bus.reserve(0.0, 10.0)
        assert bus.reserve(5.0, 4.0) == 10.0
        assert bus.busy_until == 14.0

    def test_serialization_order(self):
        bus = Bus()
        starts = [bus.reserve(0.0, 3.0) for _ in range(4)]
        assert starts == [0.0, 3.0, 6.0, 9.0]

    def test_idle_at(self):
        bus = Bus()
        bus.reserve(0.0, 10.0)
        assert not bus.idle_at(9.9)
        assert bus.idle_at(10.0)

    def test_utilization(self):
        bus = Bus()
        bus.reserve(0.0, 25.0)
        assert bus.utilization(100.0) == pytest.approx(0.25)

    def test_utilization_capped_at_one(self):
        bus = Bus()
        bus.reserve(0.0, 50.0)
        assert bus.utilization(10.0) == 1.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            Bus().reserve(0.0, -1.0)

    def test_utilization_needs_positive_elapsed(self):
        with pytest.raises(ValueError, match="elapsed"):
            Bus().utilization(0.0)
