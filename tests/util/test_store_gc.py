"""Shared store eviction: scanning, planning, the ``cache gc`` CLI."""

import os
import time

import pytest

from repro.util import store_gc
from repro.util.store_gc import (
    ORPHAN_GRACE_S,
    StoreEntry,
    StoreSpec,
    gc_store,
    plan_evictions,
    scan_store,
)


def _pair(directory, key, size, age_s, payload_suffix=".bin"):
    payload = directory / f"{key}{payload_suffix}"
    sidecar = directory / f"{key}.json"
    payload.write_bytes(b"x" * size)
    sidecar.write_text("{}")
    stamp = time.time() - age_s
    os.utime(sidecar, (stamp, stamp))
    os.utime(payload, (stamp, stamp))
    return payload, sidecar


class TestScan:
    def test_pairs_and_orphans(self, tmp_path):
        _pair(tmp_path, "aa", 10, 100)
        _pair(tmp_path, "bb", 20, 50)
        (tmp_path / "cc.bin").write_bytes(b"orphan")  # no sidecar
        entries, orphans = scan_store(tmp_path, ".bin", ".json")
        assert sorted(e.key for e in entries) == ["aa", "bb"]
        assert {e.key: e.size for e in entries} == {"aa": 10, "bb": 20}
        assert [p.name for p in orphans] == ["cc.bin"]

    def test_exclude_suffix_skips_colocated_store(self, tmp_path):
        # The reuse store's .profile.npz files live in the events dir.
        _pair(tmp_path, "ev", 10, 10, payload_suffix=".npz")
        (tmp_path / "pr.profile.npz").write_bytes(b"x")
        (tmp_path / "pr.profile.json").write_text("{}")
        entries, orphans = scan_store(
            tmp_path, ".npz", ".json", exclude_suffix=".profile.npz"
        )
        assert [e.key for e in entries] == ["ev"]
        assert orphans == []

    def test_missing_directory_is_empty(self, tmp_path):
        entries, orphans = scan_store(tmp_path / "nope", ".bin", ".json")
        assert entries == [] and orphans == []


class TestPlan:
    def _entries(self, sizes_and_mtimes):
        return [
            StoreEntry(
                key=f"k{i}",
                payload=None,
                sidecar=None,
                size=size,
                mtime=mtime,
            )
            for i, (size, mtime) in enumerate(sizes_and_mtimes)
        ]

    def test_under_budget_evicts_nothing(self):
        assert plan_evictions(self._entries([(50, 1.0), (50, 2.0)]), 100) == []

    def test_oldest_sidecar_first(self):
        entries = self._entries([(40, 3.0), (40, 1.0), (40, 2.0)])
        plan = plan_evictions(entries, 80)
        assert [e.key for e in plan] == ["k1"]
        plan = plan_evictions(entries, 40)
        assert [e.key for e in plan] == ["k1", "k2"]

    def test_keep_is_never_planned(self):
        entries = self._entries([(60, 1.0), (60, 2.0)])
        plan = plan_evictions(entries, 60, keep="k0")
        assert [e.key for e in plan] == ["k1"]


class TestGcStore:
    def _spec(self, directory):
        return StoreSpec("results", directory, ".bin", ".json")

    def test_dry_run_reports_without_unlinking(self, tmp_path):
        _pair(tmp_path, "old", 100, 1000)
        _pair(tmp_path, "new", 100, 1)
        report = gc_store(self._spec(tmp_path), 100, dry_run=True)
        assert report["evicted"] == 1
        assert report["evicted_bytes"] == 100
        assert report["bytes_after"] == 100
        assert (tmp_path / "old.bin").exists()

    def test_evicts_pairs_oldest_first(self, tmp_path):
        _pair(tmp_path, "old", 100, 1000)
        _pair(tmp_path, "new", 100, 1)
        report = gc_store(self._spec(tmp_path), 100)
        assert report["evicted"] == 1
        assert not (tmp_path / "old.bin").exists()
        assert not (tmp_path / "old.json").exists()
        assert (tmp_path / "new.bin").exists()

    def test_orphans_respect_the_grace_window(self, tmp_path):
        now = time.time()
        stale = tmp_path / "stale.bin"
        stale.write_bytes(b"x")
        os.utime(stale, (now - ORPHAN_GRACE_S - 5, now - ORPHAN_GRACE_S - 5))
        fresh = tmp_path / "fresh.bin"
        fresh.write_bytes(b"x")  # an atomic write in flight, maybe
        report = gc_store(self._spec(tmp_path), 10**9, now=now)
        assert report["orphans_removed"] == 1
        assert not stale.exists()
        assert fresh.exists()


class TestCli:
    def test_gc_all_stores_reports_each(self, capsys):
        # The session fixtures point every store at temp dirs.
        assert store_gc.main(["gc", "--budget-mib", "64", "--dry-run"]) == 0
        out = capsys.readouterr().out
        for store in ("events", "reuse", "results"):
            assert f"{store}: " in out

    def test_gc_single_store_evicts_to_budget(self, tmp_path, monkeypatch):
        from repro.service.disk_cache import RESULT_CACHE_DIR_ENV

        monkeypatch.setenv(RESULT_CACHE_DIR_ENV, str(tmp_path))
        _pair(tmp_path, "a" * 64, 2 * 1024 * 1024, 100)
        _pair(tmp_path, "b" * 64, 2 * 1024 * 1024, 1)
        assert (
            store_gc.main(["gc", "--budget-mib", "2", "--store", "results"])
            == 0
        )
        assert not (tmp_path / ("a" * 64 + ".bin")).exists()
        assert (tmp_path / ("b" * 64 + ".bin")).exists()

    def test_budget_must_be_positive(self):
        with pytest.raises(SystemExit):
            store_gc.main(["gc", "--budget-mib", "0"])

    def test_shares_the_planner_with_the_disk_cache(self):
        from repro.service import disk_cache

        # The online and offline paths must agree on "oldest first":
        # both route through the same plan_evictions.
        assert disk_cache.store_gc is store_gc
