"""CSV emission."""

import pytest

from repro.util.csvout import series_to_csv, write_csv


class TestSeriesToCsv:
    def test_header_and_rows(self):
        csv_text = series_to_csv("x", [1, 2], {"a": [10, 20], "b": [30, 40]})
        lines = csv_text.strip().splitlines()
        assert lines[0] == "x,a,b"
        assert lines[1] == "1,10,30"
        assert lines[2] == "2,20,40"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="column"):
            series_to_csv("x", [1, 2], {"a": [10]})

    def test_empty_series(self):
        assert series_to_csv("x", [], {}).strip() == "x"


class TestWriteCsv:
    def test_creates_directories(self, tmp_path):
        target = write_csv(tmp_path / "a" / "b.csv", "x\n1\n")
        assert target.exists()
        assert target.read_text() == "x\n1\n"
