"""Stable JSON serialization helpers."""

from repro.util.jsonout import dump_json, read_json, write_json


class TestDumpJson:
    def test_sorted_keys_and_trailing_newline(self):
        text = dump_json({"b": 1, "a": 2})
        assert text.index('"a"') < text.index('"b"')
        assert text.endswith("}\n")

    def test_byte_stable_across_insertion_orders(self):
        assert dump_json({"x": 1, "y": [2, 3]}) == dump_json({"y": [2, 3], "x": 1})


class TestWriteJson:
    def test_round_trip_and_parent_creation(self, tmp_path):
        target = tmp_path / "nested" / "dir" / "doc.json"
        path = write_json(target, {"k": [1, 2.5, "s"]})
        assert path == target
        assert read_json(path) == {"k": [1, 2.5, "s"]}
