"""Test package."""
