"""Interpolation helpers."""

import pytest

from repro.util.interp import crossover, linear_interp


class TestLinearInterp:
    def test_midpoint(self):
        assert linear_interp(0, 0, 10, 10, 5) == 5.0

    def test_extrapolation(self):
        assert linear_interp(0, 0, 1, 2, 2) == 4.0

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            linear_interp(1, 0, 1, 5, 1)


class TestCrossover:
    def test_exact_intersection(self):
        xs = [0, 1, 2, 3]
        rising = [0, 1, 2, 3]
        flat = [1.5, 1.5, 1.5, 1.5]
        assert crossover(xs, rising, flat) == pytest.approx(1.5)

    def test_no_crossover(self):
        xs = [0, 1, 2]
        low = [0, 0, 0]
        high = [1, 1, 1]
        assert crossover(xs, low, high) is None

    def test_already_above_returns_first_x(self):
        assert crossover([5, 6], [2, 2], [1, 1]) == 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            crossover([0, 1], [0], [1, 1])

    def test_pipelined_vs_bus_case(self):
        """Matches the closed-form crossover from the paper's Figure 4."""
        from repro.core.bus_width import miss_volume_ratio_for_doubling
        from repro.core.params import SystemConfig
        from repro.core.pipelined import pipelined_miss_volume_ratio
        from repro.core.tradeoff import hit_ratio_traded

        xs = [2.0, 4.0, 6.0, 8.0]
        pipe, bus = [], []
        for beta in xs:
            config = SystemConfig(4, 32, beta, pipeline_turnaround=2.0)
            pipe.append(hit_ratio_traded(pipelined_miss_volume_ratio(config), 0.95))
            bus.append(
                hit_ratio_traded(miss_volume_ratio_for_doubling(config), 0.95)
            )
        value = crossover(xs, pipe, bus)
        assert value == pytest.approx(14 / 3, abs=0.3)
