"""Text table rendering."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        output = format_table(["name", "value"], [("a", 1), ("long-name", 2.5)])
        lines = output.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in output
        assert "2.5" in output

    def test_title(self):
        output = format_table(["c"], [("x",)], title="caption")
        assert output.splitlines()[0] == "caption"

    def test_float_formatting(self):
        output = format_table(["v"], [(0.123456789,)])
        assert "0.1235" in output

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["a", "b"], [("only-one",)])

    def test_empty_rows_ok(self):
        output = format_table(["a", "b"], [])
        assert "a" in output
