"""ASCII plot rendering."""

import pytest

from repro.util.ascii_plot import AsciiPlot, render_series


class TestAsciiPlot:
    def test_renders_title_axes_and_legend(self):
        plot = AsciiPlot(title="demo", xlabel="time", ylabel="value")
        plot.add_series("linear", [0, 1, 2], [0.0, 1.0, 2.0])
        output = plot.render()
        assert "demo" in output
        assert "x: time" in output
        assert "y: value" in output
        assert "* = linear" in output

    def test_multiple_series_get_distinct_glyphs(self):
        plot = AsciiPlot()
        plot.add_series("a", [0, 1], [0, 1])
        plot.add_series("b", [0, 1], [1, 0])
        output = plot.render()
        assert "* = a" in output
        assert "o = b" in output

    def test_extremes_land_on_grid_edges(self):
        plot = AsciiPlot(width=10, height=5)
        plot.add_series("s", [0, 10], [0.0, 5.0])
        lines = plot.render().splitlines()
        grid = [line for line in lines if line.startswith(" " * 13 + "|")]
        assert grid[0].rstrip().endswith("*|")  # max at top right
        assert grid[-1][14] == "*"  # min at bottom left

    def test_flat_series_does_not_crash(self):
        plot = AsciiPlot()
        plot.add_series("flat", [0, 1, 2], [3.0, 3.0, 3.0])
        assert "flat" in plot.render()

    def test_empty_plot(self):
        assert "(no data)" in AsciiPlot(title="t").render()

    def test_mismatched_lengths_rejected(self):
        plot = AsciiPlot()
        with pytest.raises(ValueError, match="len"):
            plot.add_series("bad", [0, 1], [0.0])

    def test_empty_series_rejected(self):
        plot = AsciiPlot()
        with pytest.raises(ValueError, match="empty"):
            plot.add_series("bad", [], [])

    def test_nan_values_skipped(self):
        plot = AsciiPlot()
        plot.add_series("s", [0, 1, 2], [0.0, float("nan"), 2.0])
        assert plot.render()  # must not raise


class TestRenderSeries:
    def test_one_shot_helper(self):
        output = render_series("t", {"a": ([0, 1], [0.0, 1.0])})
        assert "* = a" in output
