"""Instruction records."""

import pytest

from repro.trace.record import ALU_OP, Instruction, OpKind, load, store


class TestOpKind:
    def test_memory_classification(self):
        assert OpKind.LOAD.is_memory
        assert OpKind.STORE.is_memory
        assert not OpKind.ALU.is_memory


class TestInstruction:
    def test_load_constructor(self):
        inst = load(0x1000, 8)
        assert inst.kind is OpKind.LOAD
        assert inst.address == 0x1000
        assert inst.size == 8

    def test_store_constructor(self):
        inst = store(0x2000)
        assert inst.kind is OpKind.STORE
        assert inst.size == 4

    def test_alu_singleton(self):
        assert ALU_OP.kind is OpKind.ALU

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            load(-1)

    def test_zero_size_memory_op_rejected(self):
        with pytest.raises(ValueError, match="size"):
            Instruction(OpKind.LOAD, 0x100, 0)

    def test_frozen(self):
        inst = load(0x100)
        with pytest.raises(AttributeError):
            inst.address = 0x200
