"""Affine loop-nest trace generators."""

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.trace.loops import (
    Matrix,
    matmul,
    matmul_instructions,
    matvec,
    square_matmul_profile_arrays,
    square_matmul_trace,
    with_compute,
)
from repro.trace.record import OpKind


class TestMatrix:
    def test_row_major_addressing(self):
        m = Matrix(base=1000, rows=4, cols=8, element_size=8)
        assert m.address(0, 0) == 1000
        assert m.address(0, 1) == 1008
        assert m.address(1, 0) == 1000 + 64
        assert m.bytes == 256

    def test_bounds_checked(self):
        m = Matrix(0, 2, 2)
        with pytest.raises(IndexError):
            m.address(2, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Matrix(0, 0, 4)


class TestMatvec:
    def test_reference_count(self):
        m = Matrix(0, 4, 8)
        refs = list(matvec(m, vector_base=1 << 16, result_base=1 << 17))
        # 2 loads per element + 1 store per row.
        assert len(refs) == 4 * 8 * 2 + 4

    def test_stores_only_to_result(self):
        m = Matrix(0, 4, 8)
        refs = list(matvec(m, 1 << 16, 1 << 17))
        stores = [r for r in refs if r.kind is OpKind.STORE]
        assert len(stores) == 4
        assert all(r.address >= 1 << 17 for r in stores)


class TestMatmul:
    def test_reference_count(self):
        n = 6
        a = Matrix(0, n, n)
        b = Matrix(a.bytes, n, n)
        c = Matrix(a.bytes + b.bytes, n, n)
        refs = list(matmul(a, b, c))
        # Per (i, j): 2n loads + 1 C load + 1 C store.
        assert len(refs) == n * n * (2 * n + 2)

    def test_tiling_preserves_operand_reference_multiset(self):
        """Tiling reorders the computation: A and B references appear
        exactly as often as untiled, while C is re-accumulated once per
        k-tile (3x here for n=6, tile=2)."""
        n = 6
        a = Matrix(0, n, n)
        b = Matrix(a.bytes, n, n)
        c = Matrix(a.bytes + b.bytes, n, n)
        c_start = c.base

        def split(refs):
            operands = sorted(
                (r.kind.value, r.address) for r in refs if r.address < c_start
            )
            c_refs = [r for r in refs if r.address >= c_start]
            return operands, len(c_refs)

        untiled_ops, untiled_c = split(list(matmul(a, b, c)))
        tiled_ops, tiled_c = split(list(matmul(a, b, c, tile=2)))
        assert untiled_ops == tiled_ops
        assert tiled_c == untiled_c * 3  # one accumulate per k-tile

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            list(matmul(Matrix(0, 2, 3), Matrix(100, 2, 3), Matrix(200, 2, 3)))

    def test_tile_validated(self):
        a = Matrix(0, 2, 2)
        with pytest.raises(ValueError, match="tile"):
            list(matmul(a, Matrix(64, 2, 2), Matrix(128, 2, 2), tile=0))


class TestVectorizedMatmul:
    """The array path is pinned element-identical to the iterator,
    which stays in the module as the executable specification."""

    @pytest.mark.parametrize(
        "rows,inner,cols,tile",
        [
            (5, 5, 5, None),
            (7, 5, 9, 3),  # non-square, tile not dividing any axis
            (8, 8, 8, 4),
            (6, 6, 6, 8),  # tile larger than the matrices
            (1, 1, 1, None),
            (4, 4, 4, 1),
        ],
    )
    def test_matches_iterator(self, rows, inner, cols, tile):
        a = Matrix(0, rows, inner)
        b = Matrix(a.bytes, inner, cols)
        c = Matrix(a.bytes + b.bytes, rows, cols)
        assert matmul_instructions(a, b, c, tile) == list(matmul(a, b, c, tile))

    def test_matches_iterator_mixed_element_sizes(self):
        a = Matrix(0, 6, 4, element_size=8)
        b = Matrix(a.bytes, 4, 5, element_size=4)
        c = Matrix(a.bytes + b.bytes, 6, 5, element_size=2)
        assert matmul_instructions(a, b, c, 3) == list(matmul(a, b, c, 3))

    @pytest.mark.parametrize(
        "n,tile,alu", [(9, None, 2), (9, 4, 2), (8, 8, 0), (6, 4, 3)]
    )
    def test_square_trace_matches_generator_composition(self, n, tile, alu):
        a = Matrix(0, n, n)
        b = Matrix(a.bytes, n, n)
        c = Matrix(a.bytes + b.bytes, n, n)
        expected = list(with_compute(matmul(a, b, c, tile), alu))
        assert square_matmul_trace(n, tile, 8, alu) == expected

    def test_validation_matches_iterator(self):
        a = Matrix(0, 2, 2)
        with pytest.raises(ValueError, match="shape"):
            matmul_instructions(a, Matrix(100, 3, 2), Matrix(200, 2, 2))
        with pytest.raises(ValueError, match="tile"):
            matmul_instructions(a, Matrix(64, 2, 2), Matrix(128, 2, 2), tile=0)
        with pytest.raises(ValueError):
            square_matmul_trace(4, alu_per_reference=-1)


class TestProfileArrays:
    """The analytic reuse-profile path is pinned byte-identical to
    profiling the materialized trace (the reuse engine depends on it)."""

    @pytest.mark.parametrize(
        "n,tile,alu", [(9, None, 2), (9, 4, 2), (8, 8, 0), (6, 4, 3), (1, None, 2)]
    )
    def test_matches_build_profile(self, n, tile, alu):
        import numpy as np

        from repro.cache.reuse import PROFILE_ARRAYS, build_profile

        built = build_profile(
            square_matmul_trace(n, tile, alu_per_reference=alu)
        )
        n_instructions, index, address, is_store, size = (
            square_matmul_profile_arrays(n, tile, alu_per_reference=alu)
        )
        assert n_instructions == built.n_instructions
        analytic = dict(
            index=index, address=address, is_store=is_store, size=size
        )
        for name in PROFILE_ARRAYS:
            assert analytic[name].dtype == getattr(built, name).dtype, name
            np.testing.assert_array_equal(
                analytic[name], getattr(built, name), err_msg=name
            )

    def test_element_size_respected(self):
        import numpy as np

        _, _, address4, _, size4 = square_matmul_profile_arrays(
            4, element_size=4
        )
        _, _, address8, _, size8 = square_matmul_profile_arrays(
            4, element_size=8
        )
        assert np.all(size4 == 4) and np.all(size8 == 8)
        assert address8.max() > address4.max()  # larger matrices

    def test_rejects_negative_alu(self):
        with pytest.raises(ValueError):
            square_matmul_profile_arrays(4, alu_per_reference=-1)


class TestCacheBehaviour:
    def _miss_ratio(self, trace, cache_bytes=8192):
        cache = Cache(CacheConfig(cache_bytes, 32, 2))
        for inst in trace:
            if inst.kind is OpKind.LOAD:
                cache.read(inst.address)
            elif inst.kind is OpKind.STORE:
                cache.write(inst.address)
        return cache.stats.miss_ratio

    def test_tiling_cuts_miss_ratio(self):
        """The textbook result, reproduced on the simulator: a tiled
        matmul misses far less once the matrices outgrow the cache."""
        n = 48  # 3 matrices x 48x48 x 8B = 55 KB >> 8 KB cache
        untiled = self._miss_ratio(square_matmul_trace(n, alu_per_reference=0))
        tiled = self._miss_ratio(
            square_matmul_trace(n, tile=8, alu_per_reference=0)
        )
        assert tiled < untiled * 0.5

    def test_small_matmul_fits(self):
        n = 8  # 1.5 KB total: everything resident after cold misses
        miss_ratio = self._miss_ratio(square_matmul_trace(n, alu_per_reference=0))
        assert miss_ratio < 0.05


class TestWithCompute:
    def test_density(self):
        m = Matrix(0, 4, 4)
        trace = list(with_compute(matvec(m, 1 << 16, 1 << 17), 2))
        memory_ops = sum(1 for i in trace if i.kind.is_memory)
        assert memory_ops * 3 == len(trace)

    def test_zero_alu(self):
        m = Matrix(0, 2, 2)
        trace = list(with_compute(matvec(m, 1 << 16, 1 << 17), 0))
        assert all(i.kind.is_memory for i in trace)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(with_compute(iter([]), -1))
