"""Trace file round trips."""

import pytest

from repro.trace.io import read_trace, write_trace
from repro.trace.record import ALU_OP, load, store


class TestRoundTrip:
    def test_write_read_identity(self, tmp_path):
        trace = [load(0x1000, 4), ALU_OP, store(0xDEADBEE0, 8), ALU_OP, ALU_OP]
        path = tmp_path / "t.uat"
        assert write_trace(path, trace) == 5
        assert list(read_trace(path)) == trace

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.uat"
        write_trace(path, [])
        assert list(read_trace(path)) == []

    def test_large_round_trip(self, tmp_path):
        from repro.trace.spec92 import spec92_trace

        trace = spec92_trace("ear", 2000, seed=5)
        path = tmp_path / "ear.uat"
        write_trace(path, trace)
        assert list(read_trace(path)) == trace

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.uat"
        write_trace(path, [ALU_OP])
        assert path.exists()


class TestErrors:
    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.uat"
        path.write_text("#WRONG\na\n")
        with pytest.raises(ValueError, match="header"):
            list(read_trace(path))

    def test_malformed_record_names_line(self, tmp_path):
        path = tmp_path / "bad.uat"
        path.write_text("#UAT1\na\nz 100 4\n")
        with pytest.raises(ValueError, match=":3"):
            list(read_trace(path))

    def test_bad_numbers(self, tmp_path):
        path = tmp_path / "bad.uat"
        path.write_text("#UAT1\nl xyz four\n")
        with pytest.raises(ValueError, match="address/size"):
            list(read_trace(path))

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ok.uat"
        path.write_text("#UAT1\n\n# a comment\nl 40 4\n")
        assert list(read_trace(path)) == [load(0x40, 4)]
