"""Markov-phase workload generator."""

import random

import pytest

from repro.trace.markov import MarkovWorkload, Phase, three_phase_example
from repro.trace.stats import summarize
from repro.trace.synthetic import sequential_sweep


def single_phase(mean=500, loadstore=0.4):
    return MarkovWorkload(
        phases=[
            Phase(
                "only",
                lambda rng: sequential_sweep(0, 1 << 16, 8),
                mean_instructions=mean,
                loadstore_fraction=loadstore,
            )
        ]
    )


class TestBuild:
    def test_length_exact(self):
        trace = single_phase().build(5000, seed=1)
        assert len(trace) == 5000

    def test_reproducible(self):
        workload = three_phase_example()
        assert workload.build(2000, seed=4) == workload.build(2000, seed=4)

    def test_seeds_differ(self):
        workload = three_phase_example()
        assert workload.build(2000, seed=4) != workload.build(2000, seed=5)

    def test_loadstore_density(self):
        trace = single_phase(loadstore=0.4).build(20_000, seed=2)
        stats = summarize(trace)
        assert stats.loadstore_fraction == pytest.approx(0.4, abs=0.02)

    def test_phase_log_accounts_for_everything(self):
        workload = three_phase_example()
        trace = workload.build(10_000, seed=3)
        assert sum(n for _, n in workload.phase_log) == len(trace)

    def test_all_phases_visited(self):
        workload = three_phase_example()
        workload.build(30_000, seed=3)
        names = {name for name, _ in workload.phase_log}
        assert names == {"init-sweep", "compute", "update-lists"}

    def test_transition_matrix_respected(self):
        """A chain that can never reach phase 2 never logs it."""
        phases = [
            Phase("a", lambda rng: sequential_sweep(0, 4096, 8), 100),
            Phase("b", lambda rng: sequential_sweep(8192, 4096, 8), 100),
            Phase("c", lambda rng: sequential_sweep(16384, 4096, 8), 100),
        ]
        workload = MarkovWorkload(
            phases,
            transitions=[
                [0.0, 1.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.5, 0.5, 0.0],
            ],
        )
        # Start phase is random; exclude runs that *start* in c.
        random.seed(0)
        trace = workload.build(20_000, seed=11)
        names = [name for name, _ in workload.phase_log]
        assert trace
        assert "c" not in names[1:]


class TestValidation:
    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError, match="at least one phase"):
            MarkovWorkload(phases=[])

    def test_bad_matrix_shape(self):
        with pytest.raises(ValueError, match="transition matrix"):
            MarkovWorkload(phases=single_phase().phases, transitions=[[0.5, 0.5]])

    def test_rows_must_sum_to_one(self):
        phases = single_phase().phases * 2
        with pytest.raises(ValueError, match="sum to 1"):
            MarkovWorkload(
                phases=phases, transitions=[[0.5, 0.4], [0.5, 0.5]]
            )

    def test_phase_validation(self):
        with pytest.raises(ValueError, match="mean_instructions"):
            Phase("x", lambda rng: sequential_sweep(0, 64, 8), 0)
        with pytest.raises(ValueError, match="loadstore_fraction"):
            Phase("x", lambda rng: sequential_sweep(0, 64, 8), 10, 0.0)

    def test_zero_instructions_rejected(self):
        with pytest.raises(ValueError, match="n_instructions"):
            single_phase().build(0)


class TestCharacter:
    def test_phases_shift_locality(self):
        """Aggregate spatial locality sits between the phases' extremes."""
        workload = three_phase_example()
        trace = workload.build(20_000, seed=6)
        stats = summarize(trace, line_size=32)
        assert 0.0 < stats.spatial_locality < 0.9

    def test_usable_by_timing_simulator(self):
        from repro.cache.cache import CacheConfig
        from repro.cpu.processor import TimingSimulator
        from repro.memory.mainmem import MainMemory

        trace = three_phase_example().build(5000, seed=6)
        result = TimingSimulator(
            CacheConfig(8192, 32, 2), MainMemory(8.0, 4)
        ).run(trace)
        assert result.cycles > result.instructions
