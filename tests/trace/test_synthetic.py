"""Synthetic reference patterns."""

import itertools
import random

import pytest

from repro.trace.record import OpKind
from repro.trace.synthetic import (
    SyntheticTraceBuilder,
    mix,
    pointer_chase,
    random_uniform,
    sequential_sweep,
    strided_sweep,
    working_set,
)


def take(iterator, n):
    return list(itertools.islice(iterator, n))


class TestPatterns:
    def test_sequential_sweep_steps_and_wraps(self):
        addresses = take(sequential_sweep(100, 32, element_size=8), 6)
        assert addresses == [100, 108, 116, 124, 100, 108]

    def test_strided_sweep(self):
        addresses = take(strided_sweep(0, 1024, stride=256), 5)
        assert addresses == [0, 256, 512, 768, 0]

    def test_random_uniform_stays_in_region(self):
        rng = random.Random(1)
        addresses = take(random_uniform(1000, 4096, rng, align=8), 200)
        assert all(1000 <= a < 1000 + 4096 for a in addresses)
        assert all((a - 1000) % 8 == 0 for a in addresses)

    def test_working_set_hot_share(self):
        rng = random.Random(2)
        stream = working_set(0, 1024, 1 << 20, hot_probability=0.9, rng=rng)
        addresses = take(stream, 5000)
        hot = sum(1 for a in addresses if a < 1024)
        assert 0.85 < hot / len(addresses) < 0.95

    def test_pointer_chase_visits_every_node(self):
        rng = random.Random(3)
        addresses = take(pointer_chase(0, nodes=16, node_bytes=64, rng=rng), 16)
        assert sorted(addresses) == [64 * i for i in range(16)]

    def test_pointer_chase_is_a_cycle(self):
        rng = random.Random(3)
        stream = pointer_chase(0, 16, 64, rng)
        first_pass = take(stream, 16)
        second_pass = take(stream, 16)
        assert first_pass == second_pass

    def test_mix_draws_from_all_streams(self):
        rng = random.Random(4)
        stream = mix(
            [sequential_sweep(0, 64), sequential_sweep(1 << 20, 64)],
            weights=[0.5, 0.5],
            rng=rng,
        )
        addresses = take(stream, 100)
        assert any(a < 1 << 20 for a in addresses)
        assert any(a >= 1 << 20 for a in addresses)

    def test_mix_run_length_creates_bursts(self):
        rng = random.Random(5)
        stream = mix(
            [sequential_sweep(0, 1 << 16, 8), sequential_sweep(1 << 20, 1 << 16, 8)],
            weights=[0.5, 0.5],
            rng=rng,
            run_length=32,
        )
        addresses = take(stream, 2000)
        switches = sum(
            1
            for a, b in zip(addresses, addresses[1:])
            if (a < 1 << 20) != (b < 1 << 20)
        )
        # Mean run 32 -> about 2000/32 switches; far fewer than per-ref.
        assert switches < 200

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            take(sequential_sweep(0, 0), 1)
        with pytest.raises(ValueError):
            take(strided_sweep(0, 64, stride=0), 1)
        with pytest.raises(ValueError):
            mix([], [], rng)
        with pytest.raises(ValueError):
            next(mix([sequential_sweep(0, 64)], [1.0], rng, run_length=0))


class TestBuilder:
    def test_density_and_mix(self):
        builder = SyntheticTraceBuilder(
            seed=1, loadstore_fraction=0.3, store_fraction=0.3
        )
        trace = builder.build(sequential_sweep(0, 1 << 20, 8), 20_000)
        assert len(trace) == 20_000
        memory_ops = [i for i in trace if i.kind.is_memory]
        stores = [i for i in memory_ops if i.kind is OpKind.STORE]
        assert 0.27 < len(memory_ops) / len(trace) < 0.33
        assert 0.25 < len(stores) / len(memory_ops) < 0.35

    def test_reproducible(self):
        def build():
            builder = SyntheticTraceBuilder(seed=9)
            return builder.build(sequential_sweep(0, 4096, 8), 500)

        assert build() == build()

    def test_memory_ops_consume_pattern_in_order(self):
        builder = SyntheticTraceBuilder(seed=1, loadstore_fraction=1.0)
        trace = builder.build(sequential_sweep(0, 1 << 20, 8), 10)
        assert [i.address for i in trace] == [8 * k for k in range(10)]

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraceBuilder(loadstore_fraction=0.0)
        with pytest.raises(ValueError):
            SyntheticTraceBuilder(store_fraction=1.5)
        builder = SyntheticTraceBuilder()
        with pytest.raises(ValueError):
            builder.build(sequential_sweep(0, 64), 0)


class TestReferenceArrays:
    """build_reference_arrays is the array twin of build(): same RNG
    draws, so profiling the arrays == profiling the materialized trace."""

    def _pair(self, **kwargs):
        pattern_args = (0, 1 << 20, 8)
        first = SyntheticTraceBuilder(seed=5, **kwargs)
        second = SyntheticTraceBuilder(seed=5, **kwargs)
        trace = first.build(sequential_sweep(*pattern_args), 3000)
        arrays = second.build_reference_arrays(
            sequential_sweep(*pattern_args), 3000
        )
        return trace, arrays

    def test_matches_materialized_trace(self):
        import numpy as np

        from repro.cache.reuse import PROFILE_ARRAYS, build_profile

        trace, (index, address, is_store, size) = self._pair(
            loadstore_fraction=0.3, store_fraction=0.3
        )
        built = build_profile(trace)
        analytic = dict(
            index=index, address=address, is_store=is_store, size=size
        )
        for name in PROFILE_ARRAYS:
            assert analytic[name].dtype == getattr(built, name).dtype, name
            np.testing.assert_array_equal(
                analytic[name], getattr(built, name), err_msg=name
            )

    def test_all_memory_all_store_edges(self):
        trace, (index, _, is_store, _) = self._pair(
            loadstore_fraction=1.0, store_fraction=1.0
        )
        assert index.shape[0] == len(trace)
        assert bool(is_store.all())

    def test_rejects_empty(self):
        builder = SyntheticTraceBuilder()
        with pytest.raises(ValueError):
            builder.build_reference_arrays(sequential_sweep(0, 64), 0)
