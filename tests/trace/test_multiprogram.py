"""Multiprogramming interleave and cache pollution (Section 3.4)."""

import pytest

from repro.cache.cache import CacheConfig
from repro.trace.multiprogram import (
    disjoint_address_spaces,
    interleave,
    measure_pollution,
    rebase,
)
from repro.trace.record import ALU_OP, load
from repro.trace.spec92 import spec92_trace


class TestRebase:
    def test_memory_addresses_shift(self):
        trace = [load(0x100), ALU_OP]
        shifted = rebase(trace, 0x1000)
        assert shifted[0].address == 0x1100
        assert shifted[1] is ALU_OP

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="offset"):
            rebase([load(0)], -4)

    def test_disjoint_spaces_do_not_overlap(self):
        a = [load(i * 8) for i in range(100)]
        b = [load(i * 8) for i in range(100)]
        spaced = disjoint_address_spaces([a, b], region_bytes=1 << 20)
        max_a = max(inst.address for inst in spaced[0])
        min_b = min(inst.address for inst in spaced[1])
        assert max_a < min_b


class TestInterleave:
    def test_total_length_preserved(self):
        a = [ALU_OP] * 70
        b = [ALU_OP] * 30
        merged = interleave([a, b], quantum=20)
        assert len(merged) == 100

    def test_round_robin_order(self):
        a = [load(0x0)] * 4
        b = [load(0x1000)] * 4
        merged = interleave([a, b], quantum=2)
        addresses = [inst.address for inst in merged]
        assert addresses == [0x0, 0x0, 0x1000, 0x1000, 0x0, 0x0, 0x1000, 0x1000]

    def test_short_tasks_drop_out(self):
        a = [load(0x0)] * 6
        b = [load(0x1000)] * 2
        merged = interleave([a, b], quantum=2)
        # b exhausts after the first rotation; a finishes alone.
        assert [i.address for i in merged][-4:] == [0x0] * 4

    def test_validation(self):
        with pytest.raises(ValueError, match="quantum"):
            interleave([[ALU_OP]], quantum=0)
        with pytest.raises(ValueError, match="at least one"):
            interleave([], quantum=10)


class TestPollution:
    @pytest.fixture(scope="class")
    def traces(self):
        return [
            spec92_trace(name, 4000, seed=7)
            for name in ("ear", "doduc", "swm256")
        ]

    def test_interleaving_inflates_miss_ratio(self, traces):
        comparison = measure_pollution(traces, CacheConfig(8192, 32, 2), 100)
        assert comparison.pollution_factor > 1.0

    def test_longer_quanta_pollute_less(self, traces):
        config = CacheConfig(8192, 32, 2)
        short = measure_pollution(traces, config, 50).pollution_factor
        long = measure_pollution(traces, config, 2000).pollution_factor
        assert long < short

    def test_single_task_has_no_pollution(self):
        trace = spec92_trace("ear", 4000, seed=7)
        comparison = measure_pollution([trace], CacheConfig(8192, 32, 2), 100)
        assert comparison.pollution_factor == pytest.approx(1.0)


class TestPollutionSweep:
    """pollution_sweep shares the solo baseline across quanta; results
    must equal independent measure_pollution calls exactly."""

    @pytest.fixture(scope="class")
    def traces(self):
        return [
            spec92_trace(name, 3000, seed=7)
            for name in ("ear", "doduc", "swm256")
        ]

    def test_matches_per_quantum_measurement(self, traces):
        from repro.trace.multiprogram import pollution_sweep

        config = CacheConfig(8192, 32, 2)
        quanta = [50, 100, 2000]
        swept = pollution_sweep(traces, config, quanta)
        for quantum, comparison in zip(quanta, swept):
            single = measure_pollution(traces, config, quantum)
            assert comparison == single

    def test_empty_quanta(self, traces):
        from repro.trace.multiprogram import pollution_sweep

        assert pollution_sweep(traces, CacheConfig(8192, 32, 2), []) == []
