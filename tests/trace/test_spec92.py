"""SPEC92 stand-in profiles."""

import pytest

from repro.trace.spec92 import SPEC92_PROFILES, spec92_trace
from repro.trace.stats import summarize


class TestProfiles:
    def test_all_six_programs_present(self):
        assert sorted(SPEC92_PROFILES) == [
            "doduc",
            "ear",
            "hydro2d",
            "nasa7",
            "swm256",
            "wave5",
        ]

    def test_traces_have_requested_length(self):
        trace = spec92_trace("nasa7", 5000)
        assert len(trace) == 5000

    def test_reproducible_per_seed(self):
        assert spec92_trace("ear", 1000, seed=3) == spec92_trace("ear", 1000, seed=3)

    def test_different_seeds_differ(self):
        assert spec92_trace("ear", 1000, seed=3) != spec92_trace("ear", 1000, seed=4)

    def test_programs_differ_from_each_other(self):
        a = spec92_trace("nasa7", 1000, seed=1)
        b = spec92_trace("doduc", 1000, seed=1)
        assert a != b

    def test_unknown_program_rejected(self):
        with pytest.raises(KeyError, match="unknown"):
            spec92_trace("gcc", 1000)


class TestCharacter:
    def test_loadstore_density_matches_profile(self):
        for name, profile in SPEC92_PROFILES.items():
            stats = summarize(profile.trace(8000, seed=2))
            assert stats.loadstore_fraction == pytest.approx(
                profile.loadstore_fraction, abs=0.03
            ), name

    def test_sequential_programs_have_high_spatial_locality(self):
        seq = summarize(spec92_trace("swm256", 8000, seed=2), line_size=32)
        scattered = summarize(spec92_trace("doduc", 8000, seed=2), line_size=32)
        assert seq.spatial_locality > scattered.spatial_locality

    def test_ear_has_smallest_footprint(self):
        """ear's hot working set keeps its unique-line count low."""
        footprints = {
            name: summarize(profile.trace(8000, seed=2), 32).unique_lines
            for name, profile in SPEC92_PROFILES.items()
        }
        assert footprints["ear"] <= min(
            footprints[name] for name in ("nasa7", "swm256", "wave5", "hydro2d")
        )


class TestProfileArrays:
    """profile_arrays shares trace()'s RNG draws: profiling the arrays
    is byte-identical to profiling the materialized stand-in trace."""

    @pytest.mark.parametrize("name", sorted(SPEC92_PROFILES))
    def test_matches_materialized_trace(self, name):
        import numpy as np

        from repro.cache.reuse import PROFILE_ARRAYS, ReuseProfile, build_profile

        built = build_profile(spec92_trace(name, 1500, seed=7))
        analytic = ReuseProfile(
            *SPEC92_PROFILES[name].profile_arrays(1500, seed=7)
        )
        assert analytic.n_instructions == built.n_instructions
        for field in PROFILE_ARRAYS:
            assert (
                getattr(analytic, field).dtype == getattr(built, field).dtype
            ), field
            np.testing.assert_array_equal(
                getattr(analytic, field), getattr(built, field), err_msg=field
            )

    def test_seed_changes_arrays(self):
        profile = SPEC92_PROFILES["ear"]
        _, _, a0, _, _ = profile.profile_arrays(800, seed=0)
        _, _, a1, _, _ = profile.profile_arrays(800, seed=1)
        assert a0.tolist() != a1.tolist()
