"""Test package."""
