"""Trace summary statistics."""

import pytest

from repro.trace.record import ALU_OP, load, store
from repro.trace.stats import summarize


class TestSummarize:
    def test_counts(self):
        stats = summarize([load(0), ALU_OP, store(64), load(4)])
        assert stats.instructions == 4
        assert stats.loads == 2
        assert stats.stores == 1
        assert stats.memory_references == 3

    def test_fractions(self):
        stats = summarize([load(0), ALU_OP, store(64), load(4)])
        assert stats.loadstore_fraction == pytest.approx(0.75)
        assert stats.store_fraction == pytest.approx(1 / 3)

    def test_unique_lines(self):
        stats = summarize([load(0), load(4), load(32), load(64)], line_size=32)
        assert stats.unique_lines == 3

    def test_spatial_locality_sequential(self):
        stats = summarize([load(0), load(4), load(8), load(12)], line_size=32)
        assert stats.spatial_locality == 1.0

    def test_spatial_locality_scattered(self):
        stats = summarize([load(0), load(64), load(128)], line_size=32)
        assert stats.spatial_locality == 0.0

    def test_empty_trace(self):
        stats = summarize([])
        assert stats.instructions == 0
        assert stats.loadstore_fraction == 0.0
        assert stats.spatial_locality == 0.0
        assert stats.store_fraction == 0.0

    def test_line_size_validated(self):
        with pytest.raises(ValueError, match="line_size"):
            summarize([load(0)], line_size=0)
