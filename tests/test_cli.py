"""Unified CLI (python -m repro)."""

import pytest

from repro.__main__ import main


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "t.uat"
    assert main(
        [
            "generate-trace",
            str(path),
            "--workload",
            "ear",
            "--instructions",
            "3000",
        ]
    ) == 0
    return path


class TestGenerateTrace:
    def test_writes_file(self, trace_file):
        assert trace_file.exists()
        assert trace_file.read_text().startswith("#UAT1")

    def test_markov_workload(self, tmp_path, capsys):
        path = tmp_path / "m.uat"
        assert main(
            ["generate-trace", str(path), "--workload", "markov3",
             "--instructions", "2000"]
        ) == 0
        assert "wrote 2000 instructions" in capsys.readouterr().out

    def test_unknown_workload_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate-trace", str(tmp_path / "x"), "--workload", "gcc"])


class TestCharacterize:
    def test_reports_table1_parameters(self, trace_file, capsys):
        assert main(["characterize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "E      = 3000" in out
        assert "alpha" in out
        assert "HR" in out

    def test_phi_measurement(self, trace_file, capsys):
        assert main(["characterize", str(trace_file), "--measure-phi"]) == 0
        out = capsys.readouterr().out
        assert "phi[BNL1]" in out
        assert "phi[BNL3]" in out


class TestSimulate:
    def test_basic_run(self, trace_file, capsys):
        assert main(["simulate", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "100.0% of L/D" in out  # FS default

    def test_policy_selection(self, trace_file, capsys):
        assert main(["simulate", str(trace_file), "--policy", "BNL3"]) == 0
        out = capsys.readouterr().out
        assert "100.0% of L/D" not in out

    def test_pipelined_memory(self, trace_file, capsys):
        assert main(
            ["simulate", str(trace_file), "--pipelined-q", "2"]
        ) == 0
        out = capsys.readouterr().out
        # beta_p/beta_m = 22/8 = 2.75 -> 34.4% of L/D
        assert "34.4% of L/D" in out

    def test_write_buffers_reduce_flush(self, trace_file, capsys):
        main(["simulate", str(trace_file)])
        plain = capsys.readouterr().out
        main(["simulate", str(trace_file), "--write-buffer-depth", "8"])
        buffered = capsys.readouterr().out

        def flush_of(text):
            return float(
                next(l for l in text.splitlines() if "flush stall" in l)
                .split("=")[1]
            )

        assert flush_of(buffered) < flush_of(plain)


class TestAdvise:
    def test_ranking_printed(self, capsys):
        assert main(["advise", "--memory-cycle", "12"]) == 0
        out = capsys.readouterr().out
        assert "1. pipelined-memory" in out

    def test_fast_memory_prefers_bus(self, capsys):
        assert main(["advise", "--memory-cycle", "2.5"]) == 0
        assert "1. doubling-bus" in capsys.readouterr().out

    def test_stall_factor_row(self, capsys):
        assert main(
            ["advise", "--memory-cycle", "8", "--stall-factor", "7.0"]
        ) == 0
        assert "partially-stalling" in capsys.readouterr().out


class TestExperimentsDelegation:
    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        assert "figure1" in capsys.readouterr().out
