"""Property-based tests on the timing simulator (hypothesis).

Random instruction streams are generated and the simulator's invariants
are checked: Eq. (2) exactness, Table 2 bounds, and policy dominance.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheConfig
from repro.core.execution import execution_time
from repro.core.params import SystemConfig
from repro.core.stalling import StallPolicy
from repro.cpu.processor import TimingSimulator
from repro.memory.mainmem import MainMemory
from repro.trace.record import ALU_OP, Instruction, OpKind

CACHE = CacheConfig(total_bytes=512, line_size=32, associativity=2)


@st.composite
def instruction_streams(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    stream = []
    for _ in range(n):
        roll = draw(st.integers(min_value=0, max_value=9))
        if roll < 6:
            stream.append(ALU_OP)
        else:
            kind = OpKind.STORE if roll == 9 else OpKind.LOAD
            address = draw(st.integers(min_value=0, max_value=0x7FF)) * 4
            stream.append(Instruction(kind, address, 4))
    return stream


def characterize(sim, count):
    from repro.core.params import WorkloadCharacter

    stats = sim.cache.stats
    return WorkloadCharacter(
        instructions=count,
        read_bytes=stats.read_miss_bytes,
        write_around_misses=stats.write_around_count,
        flush_ratio=stats.flush_ratio,
    )


@settings(max_examples=60, deadline=None)
@given(stream=instruction_streams(), beta=st.sampled_from([2.0, 4.0, 8.0]))
def test_eq2_exact_for_full_stall(stream, beta):
    sim = TimingSimulator(CACHE, MainMemory(beta, 4))
    result = sim.run(stream)
    predicted = execution_time(
        characterize(sim, result.instructions), SystemConfig(4, 32, beta)
    )
    assert abs(result.cycles - predicted) < 1e-6


@settings(max_examples=60, deadline=None)
@given(
    stream=instruction_streams(),
    policy=st.sampled_from(
        [
            StallPolicy.BUS_LOCKED,
            StallPolicy.BUS_NOT_LOCKED_1,
            StallPolicy.BUS_NOT_LOCKED_2,
            StallPolicy.BUS_NOT_LOCKED_3,
        ]
    ),
)
def test_measured_phi_within_table2_bounds(stream, policy):
    sim = TimingSimulator(CACHE, MainMemory(8.0, 4), policy=policy)
    result = sim.run(stream)
    if result.line_fills:
        assert 1.0 - 1e-9 <= result.stall_factor <= 8.0 + 1e-9


@settings(max_examples=60, deadline=None)
@given(stream=instruction_streams())
def test_fs_dominates_every_partial_policy(stream):
    """FS is the slowest configuration on any stream."""
    fs = TimingSimulator(CACHE, MainMemory(8.0, 4)).run(stream).cycles
    for policy in (
        StallPolicy.BUS_LOCKED,
        StallPolicy.BUS_NOT_LOCKED_1,
        StallPolicy.BUS_NOT_LOCKED_3,
        StallPolicy.NON_BLOCKING,
    ):
        other = TimingSimulator(CACHE, MainMemory(8.0, 4), policy=policy).run(
            stream
        )
        assert other.cycles <= fs + 1e-9


@settings(max_examples=60, deadline=None)
@given(stream=instruction_streams())
def test_bnl_refinements_are_ordered(stream):
    """BNL1 >= BNL2 >= BNL3 in cycles on every stream."""
    cycles = []
    for policy in (
        StallPolicy.BUS_NOT_LOCKED_1,
        StallPolicy.BUS_NOT_LOCKED_2,
        StallPolicy.BUS_NOT_LOCKED_3,
    ):
        cycles.append(
            TimingSimulator(CACHE, MainMemory(8.0, 4), policy=policy)
            .run(stream)
            .cycles
        )
    assert cycles[0] >= cycles[1] >= cycles[2]


@settings(max_examples=60, deadline=None)
@given(stream=instruction_streams())
def test_write_buffers_never_slow_things_down(stream):
    plain = TimingSimulator(CACHE, MainMemory(8.0, 4)).run(stream).cycles
    buffered = (
        TimingSimulator(CACHE, MainMemory(8.0, 4), write_buffer_depth=8)
        .run(stream)
        .cycles
    )
    assert buffered <= plain + 1e-9


@settings(max_examples=60, deadline=None)
@given(stream=instruction_streams())
def test_cycles_at_least_instruction_count_minus_misses(stream):
    """Time is bounded below by the non-miss instruction count."""
    sim = TimingSimulator(CACHE, MainMemory(8.0, 4))
    result = sim.run(stream)
    stats = sim.cache.stats
    lower = result.instructions - stats.line_fills - stats.write_around_count
    assert result.cycles >= lower - 1e-9
