"""Property-based tests on the fleet's consistent-hash ring (hypothesis).

These pin the contract the router relies on: ownership is a pure
function of the node set, membership changes move the minimum set of
keys, and every key always has exactly one owner.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.shard import HashRing, worker_names

node_sets = st.integers(min_value=1, max_value=8).map(worker_names)
keys = st.lists(
    st.text(min_size=1, max_size=40), min_size=1, max_size=200, unique=True
)


@settings(max_examples=60)
@given(names=node_sets, ks=keys)
def test_ownership_is_stable(names, ks):
    """Two independently built rings over the same nodes agree on every
    key — ownership depends only on the node set."""
    a = HashRing(names)
    b = HashRing(list(reversed(names)))  # insertion order must not matter
    assert [a.owner(k) for k in ks] == [b.owner(k) for k in ks]


@settings(max_examples=60)
@given(names=node_sets, ks=keys)
def test_every_key_has_exactly_one_member_owner(names, ks):
    ring = HashRing(names)
    for key in ks:
        assert ring.owner(key) in ring.nodes


@settings(max_examples=60)
@given(n=st.integers(min_value=2, max_value=8), ks=keys)
def test_join_moves_keys_only_to_the_joiner(n, ks):
    """Adding a node reassigns keys *to* it and nowhere else."""
    names = worker_names(n)
    ring = HashRing(names[:-1])
    before = {k: ring.owner(k) for k in ks}
    joiner = names[-1]
    ring.add(joiner)
    moved = 0
    for key in ks:
        after = ring.owner(key)
        if after != before[key]:
            assert after == joiner
            moved += 1
    # Expected movement is K/n; the hash split is noisy for small K, so
    # bound it loosely — well under "everything moved" (the mod-N
    # failure mode this structure exists to avoid).
    assert moved <= math.ceil(len(ks) / n) + 8 + len(ks) // 4


@settings(max_examples=60)
@given(n=st.integers(min_value=2, max_value=8), ks=keys)
def test_leave_moves_only_the_leavers_keys(n, ks):
    """Removing a node strands only that node's keys; no key migrates
    between two surviving nodes."""
    names = worker_names(n)
    ring = HashRing(names)
    before = {k: ring.owner(k) for k in ks}
    leaver = names[0]
    ring.remove(leaver)
    for key in ks:
        after = ring.owner(key)
        if before[key] == leaver:
            assert after != leaver
        else:
            assert after == before[key]


@settings(max_examples=60)
@given(n=st.integers(min_value=1, max_value=8), ks=keys)
def test_leave_then_rejoin_is_identity(n, ks):
    """The worker-restart invariant: a slot that leaves and rejoins
    re-owns exactly the keys it had."""
    names = worker_names(n)
    ring = HashRing(names)
    before = {k: ring.owner(k) for k in ks}
    ring.remove(names[-1])
    if len(names) > 1:  # an empty ring has no owners to compare
        for key in ks:
            assert ring.owner(key) in ring.nodes
    ring.add(names[-1])
    assert {k: ring.owner(k) for k in ks} == before
