"""Property-based tests for envelopes and the numeric solver (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import feature_bounds
from repro.core.bus_width import doubling_tradeoff
from repro.core.features import ArchFeature, feature_miss_ratio
from repro.core.params import SystemConfig
from repro.core.solver import SystemUnderTest, solve_equivalent_hit_ratio

features = st.sampled_from(
    [
        ArchFeature.DOUBLING_BUS,
        ArchFeature.WRITE_BUFFERS,
        ArchFeature.PIPELINED_MEMORY,
    ]
)
line_exponents = st.integers(min_value=1, max_value=4)  # L = 8..64, D = 4


@st.composite
def boxes(draw):
    beta_low = draw(st.floats(min_value=2.0, max_value=30.0))
    beta_high = beta_low + draw(st.floats(min_value=0.0, max_value=30.0))
    alpha_low = draw(st.floats(min_value=0.0, max_value=0.9))
    alpha_high = alpha_low + draw(st.floats(min_value=0.0, max_value=1.0 - alpha_low))
    return (beta_low, beta_high), (alpha_low, alpha_high)


@settings(max_examples=100)
@given(feature=features, box=boxes(), line_exp=line_exponents)
def test_envelope_contains_random_interior_points(feature, box, line_exp):
    (beta_low, beta_high), (alpha_low, alpha_high) = box
    config = SystemConfig(4, 4 * 2**line_exp, beta_low, pipeline_turnaround=2.0)
    bounds = feature_bounds(
        feature, config, 0.95, (beta_low, beta_high), (alpha_low, alpha_high)
    )
    for i in range(4):
        t = i / 3.0
        beta = beta_low + t * (beta_high - beta_low)
        alpha = alpha_high - t * (alpha_high - alpha_low)  # anti-diagonal
        r = feature_miss_ratio(
            feature, config.with_memory_cycle(beta), flush_ratio=alpha
        )
        assert bounds.contains(r)


@settings(max_examples=60, deadline=None)
@given(
    beta=st.floats(min_value=2.0, max_value=50.0),
    flush=st.floats(min_value=0.0, max_value=1.0),
    hr=st.floats(min_value=0.80, max_value=0.99),
    line_exp=line_exponents,
)
def test_solver_matches_closed_form_everywhere(beta, flush, hr, line_exp):
    """The bisection solver and Eq. 6 agree at random operating points."""
    config = SystemConfig(4, 4 * 2**line_exp, beta, pipeline_turnaround=2.0)
    closed = doubling_tradeoff(config, hr, flush_ratio=flush)
    if closed.feature_hit_ratio <= 0.01:
        return  # outside Eq. 6 physical validity
    numeric = solve_equivalent_hit_ratio(
        SystemUnderTest(config),
        SystemUnderTest(config.doubled_bus()),
        hr,
        flush_ratio=flush,
    )
    assert math.isclose(numeric, closed.feature_hit_ratio, abs_tol=1e-7)
