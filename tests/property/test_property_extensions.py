"""Property-based tests for the extension substrate (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache, CacheConfig
from repro.cache.prefetch import PrefetchingCache, PrefetchPolicy
from repro.cache.victim import VictimCache
from repro.memory.interleaved import InterleavedMemory, effective_turnaround
from repro.memory.pipelined import PipelinedMemory
from repro.trace.multiprogram import interleave
from repro.trace.record import ALU_OP, Instruction, OpKind

CONFIG = CacheConfig(512, 32, 2)

mem_ops = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=0x3FF)),
    min_size=1,
    max_size=200,
)


def to_instructions(ops):
    return [
        Instruction(OpKind.STORE if w else OpKind.LOAD, a * 4, 4)
        for w, a in ops
    ]


@settings(max_examples=80)
@given(ops=mem_ops)
def test_victim_never_lowers_effective_hit_ratio(ops):
    """A victim buffer can only turn misses into rescues."""
    plain = Cache(CONFIG)
    combined = VictimCache(CONFIG, victim_lines=4)
    for inst in to_instructions(ops):
        if inst.kind is OpKind.LOAD:
            plain.read(inst.address)
        else:
            plain.write(inst.address)
        combined.access(inst)
    assert combined.stats.effective_hit_ratio >= plain.stats.hit_ratio - 1e-12


@settings(max_examples=80)
@given(ops=mem_ops)
def test_victim_buffer_capacity_respected(ops):
    combined = VictimCache(CONFIG, victim_lines=3)
    for inst in to_instructions(ops):
        combined.access(inst)
        assert len(combined) <= 3


@settings(max_examples=80)
@given(ops=mem_ops)
def test_victim_accounting_identity(ops):
    combined = VictimCache(CONFIG, victim_lines=4)
    instructions = to_instructions(ops)
    for inst in instructions:
        combined.access(inst)
    stats = combined.stats
    assert stats.accesses == len(instructions)
    assert stats.main_hits + stats.rescues + stats.memory_fills == stats.accesses


@settings(max_examples=80)
@given(ops=mem_ops, policy=st.sampled_from(list(PrefetchPolicy)))
def test_prefetch_coverage_and_accuracy_bounded(ops, policy):
    prefetcher = PrefetchingCache(CONFIG, policy)
    for inst in to_instructions(ops):
        prefetcher.access(inst)
    assert 0.0 <= prefetcher.stats.coverage <= 1.0
    assert 0.0 <= prefetcher.stats.accuracy <= 1.0
    assert prefetcher.stats.useful <= prefetcher.stats.issued


@settings(max_examples=80)
@given(
    beta=st.floats(min_value=2.0, max_value=64.0),
    banks_exp=st.integers(min_value=0, max_value=5),
)
def test_interleaved_fill_between_pipelined_extremes(beta, banks_exp):
    """Banked fill time sits between perfect pipelining and no pipelining."""
    banks = 2**banks_exp
    memory = InterleavedMemory(beta, 4, banks)
    duration = memory.line_fill_duration(32)
    best = PipelinedMemory(beta, 4, turnaround=1.0).line_fill_duration(32)
    worst = 8 * beta  # non-pipelined
    assert best - 1e-9 <= duration <= worst + 1e-9


@settings(max_examples=80)
@given(
    beta=st.floats(min_value=2.0, max_value=64.0),
    banks_exp=st.integers(min_value=0, max_value=6),
)
def test_more_banks_never_slow_fills(beta, banks_exp):
    banks = 2**banks_exp
    few = effective_turnaround(beta, banks)
    more = effective_turnaround(beta, banks * 2)
    assert more <= few


@settings(max_examples=60)
@given(
    lengths=st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=5),
    quantum=st.integers(min_value=1, max_value=30),
)
def test_interleave_is_a_permutation_of_inputs(lengths, quantum):
    rng = random.Random(1)
    traces = [
        [Instruction(OpKind.LOAD, rng.randrange(1024) * 4, 4)] * n
        for n in lengths
    ]
    merged = interleave(traces, quantum)
    assert len(merged) == sum(lengths)


@settings(max_examples=60)
@given(quantum=st.integers(min_value=1, max_value=50))
def test_interleave_preserves_per_task_order(quantum):
    a = [Instruction(OpKind.LOAD, i * 4, 4) for i in range(40)]
    b = [ALU_OP] * 25
    merged = interleave([a, b], quantum)
    addresses = [inst.address for inst in merged if inst.kind is OpKind.LOAD]
    assert addresses == sorted(addresses)
