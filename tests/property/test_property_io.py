"""Property-based tests for IO and rendering utilities (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.io import read_trace, write_trace
from repro.trace.record import ALU_OP, Instruction, OpKind
from repro.util.ascii_plot import AsciiPlot
from repro.util.csvout import series_to_csv
from repro.util.tables import format_table

instructions_strategy = st.lists(
    st.one_of(
        st.just(ALU_OP),
        st.builds(
            Instruction,
            kind=st.sampled_from([OpKind.LOAD, OpKind.STORE]),
            address=st.integers(min_value=0, max_value=2**48),
            size=st.integers(min_value=1, max_value=64),
        ),
    ),
    max_size=200,
)


@settings(max_examples=60)
@given(trace=instructions_strategy)
def test_trace_io_round_trip(tmp_path_factory, trace):
    path = tmp_path_factory.mktemp("io") / "trace.uat"
    count = write_trace(path, trace)
    assert count == len(trace)
    assert list(read_trace(path)) == trace


finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


@settings(max_examples=60)
@given(
    ys=st.lists(finite_floats, min_size=1, max_size=50),
)
def test_ascii_plot_never_crashes(ys):
    plot = AsciiPlot(title="t", width=40, height=10)
    plot.add_series("s", list(range(len(ys))), ys)
    rendered = plot.render()
    assert "s" in rendered
    # Grid lines have consistent width.
    grid = [line for line in rendered.splitlines() if line.startswith(" " * 13 + "|")]
    assert len({len(line) for line in grid}) == 1


@settings(max_examples=60)
@given(
    xs=st.lists(finite_floats, min_size=1, max_size=30, unique=True),
    names=st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
            min_size=1,
            max_size=8,
        ),
        min_size=1,
        max_size=4,
        unique=True,
    ),
)
def test_csv_round_trips_through_header(xs, names):
    columns = {name: [float(i) for i in range(len(xs))] for name in names}
    text = series_to_csv("x", xs, columns)
    lines = text.strip().splitlines()
    assert lines[0].split(",") == ["x", *names]
    assert len(lines) == len(xs) + 1


@settings(max_examples=60)
@given(
    rows=st.lists(
        st.tuples(st.text(max_size=12), st.integers(), finite_floats),
        max_size=20,
    )
)
def test_format_table_alignment(rows):
    # Cells are padded to per-column widths, so every rendered line
    # (header, separator, data) has exactly the same length — unless a
    # cell embeds its own newline, which the renderer does not split.
    if any(
        len((str(cell) + "x").splitlines()) > 1 for row in rows for cell in row
    ):
        return  # cell embeds a line boundary (\n, \r, \x85, ...)
    output = format_table(["a", "b", "c"], rows)
    widths = {len(line) for line in output.splitlines()}
    assert len(widths) == 1
