"""Property-based tests on the cache simulator (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache, CacheConfig
from repro.cache.replacement import LRUPolicy
from repro.cache.write_policy import AllocatePolicy

addresses = st.integers(min_value=0, max_value=0xFFFF)
operations = st.lists(
    st.tuples(st.booleans(), addresses), min_size=1, max_size=300
)


def run_ops(cache: Cache, ops) -> None:
    for is_write, address in ops:
        if is_write:
            cache.write(address)
        else:
            cache.read(address)


@settings(max_examples=100)
@given(ops=operations)
def test_accounting_identity(ops):
    """hits + misses == accesses, always."""
    cache = Cache(CacheConfig(1024, 32, 2))
    run_ops(cache, ops)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses == len(ops)


@settings(max_examples=100)
@given(ops=operations)
def test_capacity_never_exceeded(ops):
    cache = Cache(CacheConfig(512, 32, 2))
    run_ops(cache, ops)
    assert len(cache.resident_lines()) <= cache.config.n_lines


@settings(max_examples=100)
@given(ops=operations)
def test_immediate_rereference_always_hits(ops):
    """Any address just accessed must be resident."""
    cache = Cache(CacheConfig(1024, 32, 2))
    for is_write, address in ops:
        if is_write:
            cache.write(address)
        else:
            cache.read(address)
        assert cache.contains(address)


@settings(max_examples=100)
@given(ops=operations)
def test_write_around_never_caches_missing_stores(ops):
    cache = Cache(
        CacheConfig(1024, 32, 2, allocate_policy=AllocatePolicy.WRITE_AROUND)
    )
    for is_write, address in ops:
        if is_write and not cache.contains(address):
            cache.write(address)
            assert not cache.contains(address)
        elif is_write:
            cache.write(address)
        else:
            cache.read(address)


@settings(max_examples=100)
@given(ops=operations)
def test_flush_accounting_consistent(ops):
    """Flushed lines never exceed fills + write-allocate installs; alpha
    stays in [0, 1] territory for write-back write-allocate caches."""
    cache = Cache(CacheConfig(512, 32, 2))
    run_ops(cache, ops)
    stats = cache.stats
    assert stats.flushed_lines <= stats.line_fills
    if stats.line_fills:
        assert 0.0 <= stats.flush_ratio <= 1.0


@settings(max_examples=100)
@given(ops=operations)
def test_bigger_cache_never_misses_more(ops):
    """Inclusion-style sanity: with the same line size and full LRU sets,
    a 2x cache (same associativity scale-up) has <= misses.

    Holds here because doubling total bytes doubles the sets while the
    reference stream and line size stay fixed -- we assert the weaker,
    always-true form: miss count does not increase when associativity
    doubles at fixed set count (a pure LRU-stack property)."""
    small = Cache(CacheConfig(512, 32, 2))
    large = Cache(CacheConfig(1024, 32, 4))  # same 8 sets, 4-way
    run_ops(small, ops)
    run_ops(large, ops)
    assert large.stats.misses <= small.stats.misses


@settings(max_examples=50)
@given(
    touches=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60)
)
def test_lru_victim_is_least_recent(touches):
    """The LRU victim is exactly the way whose last touch is oldest."""
    policy = LRUPolicy(8)
    last_touch = {way: -1 for way in range(8)}
    for step, way in enumerate(touches):
        policy.touch(way)
        last_touch[way] = step
    victim = policy.victim()
    assert last_touch[victim] == min(last_touch.values())
