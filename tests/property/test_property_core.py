"""Property-based tests on the analytic core (hypothesis).

The central theorem (Eq. 19 == Eq. 16 on any miss table) and the
structural invariants of the tradeoff algebra are checked over random
inputs, not just the paper's operating points.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bus_width import miss_volume_ratio_for_doubling
from repro.core.params import SystemConfig, WorkloadCharacter
from repro.core.execution import execution_time
from repro.core.pipelined import pipelined_miss_volume_ratio
from repro.core.smith import criteria_agree, reduced_memory_delay
from repro.core.tradeoff import (
    hit_ratio_traded,
    miss_cost_factor,
    reverse_hit_ratio_traded,
)
from repro.core.write_buffer import write_buffer_miss_volume_ratio

# -- strategies ----------------------------------------------------------

betas = st.floats(min_value=2.0, max_value=200.0, allow_nan=False)
hit_ratios = st.floats(min_value=0.5, max_value=0.999, allow_nan=False)
flushes = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
line_exponents = st.integers(min_value=1, max_value=5)  # L = 4 * 2^e


def config_from(beta: float, line_exp: int) -> SystemConfig:
    return SystemConfig(4, 4 * 2**line_exp, beta, pipeline_turnaround=2.0)


@st.composite
def miss_tables(draw):
    """A strictly decreasing miss-ratio table over doubling line sizes."""
    n_lines = draw(st.integers(min_value=2, max_value=6))
    top = draw(st.floats(min_value=0.01, max_value=0.5))
    ratios = {}
    current = top
    line = 8
    for _ in range(n_lines):
        ratios[line] = current
        current *= draw(st.floats(min_value=0.4, max_value=0.99))
        line *= 2
    return ratios


# -- the Smith equivalence theorem ----------------------------------------


@settings(max_examples=200)
@given(
    table=miss_tables(),
    latency=st.floats(min_value=1.0, max_value=50.0),
    beta=st.floats(min_value=0.1, max_value=20.0),
    bus_width=st.sampled_from([4, 8, 16]),
)
def test_smith_equivalence_on_random_tables(table, latency, beta, bus_width):
    """Eq. (19) picks Smith's optimal line for ANY miss-ratio table."""
    assert criteria_agree(table, latency, beta, bus_width)


@settings(max_examples=100)
@given(
    table=miss_tables(),
    latency=st.floats(min_value=1.5, max_value=50.0),
    beta=st.floats(min_value=0.1, max_value=20.0),
)
def test_reduced_delay_identity(table, latency, beta):
    """Eq. (19) value == MR0*w0 - MRi*wi for every candidate."""
    base = min(table)
    points = reduced_memory_delay(table, base, latency, beta, 4)
    w0 = latency - 1 + beta * base / 4
    for point in points:
        wi = latency - 1 + beta * point.line_size / 4
        direct = table[base] * w0 - table[point.line_size] * wi
        assert math.isclose(point.reduced_delay, direct, abs_tol=1e-9)


# -- tradeoff algebra ------------------------------------------------------


@settings(max_examples=200)
@given(beta=betas, hr=hit_ratios, flush=flushes, line_exp=line_exponents)
def test_doubling_r_always_above_one(beta, hr, flush, line_exp):
    """Doubling the bus never hurts: r >= 1, so delta_HR >= 0."""
    config = config_from(beta, line_exp)
    r = miss_volume_ratio_for_doubling(config, flush)
    assert r >= 1.0
    assert hit_ratio_traded(r, hr) >= 0.0


@settings(max_examples=200)
@given(beta=betas, flush=flushes, line_exp=line_exponents)
def test_doubling_r_within_global_bounds(beta, flush, line_exp):
    """For any geometry/flush, 1 <= r <= 3: the supremum 3 occurs at the
    flush-free design limit (alpha=0, beta_m=2, L=2D); the paper's 2.5
    bound is the alpha=0.5 special case, checked separately."""
    config = config_from(beta, line_exp)
    r = miss_volume_ratio_for_doubling(config, flush)
    assert 1.0 <= r <= 3.0 + 1e-9
    r_half = miss_volume_ratio_for_doubling(config, 0.5)
    assert 1.0 <= r_half <= 2.5 + 1e-9


@settings(max_examples=200)
@given(beta=betas, hr=hit_ratios, flush=flushes, line_exp=line_exponents)
def test_forward_reverse_consistency(beta, hr, flush, line_exp):
    """Applying Eq. (6) forward then Eq. (7) backward round-trips:
    HR1 -(r)-> HR2, then the gain HR2 needs to get back is HR1 - HR2."""
    config = config_from(beta, line_exp)
    r = miss_volume_ratio_for_doubling(config, flush)
    delta_forward = hit_ratio_traded(r, hr)
    hr2 = hr - delta_forward
    if hr2 <= 0.0:
        return  # outside Eq. (6) validity (paper: HR2 > 0)
    delta_back = reverse_hit_ratio_traded(r, hr2)
    assert math.isclose(delta_back, delta_forward, rel_tol=1e-9)


@settings(max_examples=200)
@given(beta=betas, flush=flushes, line_exp=line_exponents)
def test_pipelined_r_at_least_one_and_grows(beta, flush, line_exp):
    config = config_from(beta, line_exp)
    r = pipelined_miss_volume_ratio(config, flush)
    assert r >= 1.0 - 1e-12
    slower = config.with_memory_cycle(beta * 2)
    assert pipelined_miss_volume_ratio(slower, flush) >= r - 1e-12


@settings(max_examples=200)
@given(beta=betas, flush=flushes, line_exp=line_exponents)
def test_write_buffer_r_monotone_in_flush_traffic(beta, flush, line_exp):
    """More copy-back traffic -> more to hide -> larger r."""
    config = config_from(beta, line_exp)
    r_low = write_buffer_miss_volume_ratio(config, flush * 0.5)
    r_high = write_buffer_miss_volume_ratio(config, flush)
    assert r_high >= r_low - 1e-12


@settings(max_examples=200)
@given(beta=betas, flush=flushes, line_exp=line_exponents, hr=hit_ratios)
def test_equal_execution_time_at_traded_hit_ratio(beta, flush, line_exp, hr):
    """The defining property of Eq. (6): a D-wide system at HR1 and a
    2D-wide system at HR2 = HR1 - delta run the SAME execution time."""
    config = config_from(beta, line_exp)
    r = miss_volume_ratio_for_doubling(config, flush)
    delta = hit_ratio_traded(r, hr)
    hr2 = hr - delta
    if hr2 <= 0.01:
        return
    instructions = 1_000_000.0
    references = instructions * 0.3
    line = config.line_size

    def workload(h):
        misses = references * (1.0 - h)
        return WorkloadCharacter(
            instructions=instructions,
            read_bytes=misses * line,
            flush_ratio=flush,
        )

    narrow = execution_time(workload(hr), config)
    wide = execution_time(workload(hr2), config.doubled_bus())
    assert math.isclose(narrow, wide, rel_tol=1e-9)


@settings(max_examples=150)
@given(
    phi=st.floats(min_value=1.0, max_value=8.0),
    flush=flushes,
    beta=betas,
)
def test_kappa_positive_and_monotone_in_phi(phi, flush, beta):
    """For any BL/BNL-admissible phi (>= 1) and beta_m >= 2, the per-miss
    cost is positive and grows with phi."""
    kappa_low = miss_cost_factor(phi, flush, 8.0, beta)
    kappa_high = miss_cost_factor(phi + 0.5, flush, 8.0, beta)
    assert 0.0 < kappa_low < kappa_high
