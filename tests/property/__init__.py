"""Test package."""
