"""Test package."""
