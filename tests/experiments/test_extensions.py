"""Extension experiments: shape claims."""

import pytest

from repro.experiments.registry import run_experiment


class TestMshrExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("extension_mshr", quick=True)

    def test_table_covers_all_programs(self, result):
        for program in ("nasa7", "ear", "doduc"):
            assert program in result.tables[0]

    def test_single_bus_headline(self, result):
        note = next(n for n in result.notes if "largest phi change" in n)
        spread = float(note.split(": ")[1].split(" ")[0])
        assert spread < 1.0


class TestInterleavingExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("extension_interleaving", quick=True)

    def test_eq9_agreement(self, result):
        assert "for every cell: yes" in " ".join(result.notes)

    def test_q_eff_monotone_in_banks(self, result):
        for name, values in result.series.items():
            assert values == sorted(values, reverse=True), name

    def test_bank_budget_table(self, result):
        assert "banks needed" in result.tables[0]


class TestTrafficExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("extension_traffic", quick=True)

    def test_criteria_disagree_somewhere(self, result):
        note = next(n for n in result.notes if "disagree" in n)
        count = int(note.split("disagree at ")[1].split("/")[0])
        assert count >= 3

    def test_equal_performance_pair_reported(self, result):
        assert "equal performance" in result.tables[1]


class TestMultiprogrammingExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("extension_multiprogramming", quick=True)

    def test_inflation_above_one(self, result):
        series = result.series["miss-ratio inflation (x)"]
        assert all(v >= 1.0 for v in series)

    def test_decays_with_quantum(self, result):
        series = result.series["miss-ratio inflation (x)"]
        assert series[0] >= series[-1]


class TestNbDependencyExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("extension_nb_dependency", quick=True)

    def test_phi_monotone_in_distance(self, result):
        for name, values in result.series.items():
            assert values == sorted(values, reverse=True), name

    def test_phi_stays_well_above_zero(self, result):
        """The headline: scheduling headroom cannot reach Table 2's
        lower bound on locality-rich codes."""
        for values in result.series.values():
            assert values[-1] > 25.0

    def test_within_table2_interval(self, result):
        for values in result.series.values():
            assert all(0.0 <= v <= 100.0 for v in values)


class TestMultilevelExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("extension_multilevel", quick=True)

    def test_winner_flips_for_l2_sized_working_sets(self, result):
        table = result.tables[0]
        ws_rows = [l for l in table.splitlines() if l.startswith("ws-")]
        assert ws_rows
        assert all("doubling bus" in row for row in ws_rows)

    def test_streaming_keeps_pipelining(self, result):
        table = result.tables[0]
        row = next(l for l in table.splitlines() if l.startswith("swm256"))
        assert "pipelined" in row


class TestSoftwareTilingExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("extension_software_tiling", quick=True)

    def test_tiling_always_gains(self, result):
        table = result.tables[0]
        gains = [
            line.split("|")[2].strip()
            for line in table.splitlines()
            if line.startswith("tile")
        ]
        assert gains
        assert all(g.startswith("+") and g != "+0.0%" for g in gains)

    def test_feature_worth_shrinks_after_tiling(self, result):
        note = next(n for n in result.notes if "drops by" in n)
        drop = float(note.split("drops by ")[1].split("%")[0])
        assert drop > 0.0
