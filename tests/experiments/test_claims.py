"""Claims checker and the reproduction scorecard."""

import pytest

from repro.experiments.claims import CLAIMS, evaluate_claims
from repro.experiments.registry import run_experiment
from repro.experiments.report import PAPER_EXPERIMENT_IDS, build_report, write_report


@pytest.fixture(scope="module")
def results():
    return {
        experiment_id: run_experiment(experiment_id, quick=True)
        for experiment_id in PAPER_EXPERIMENT_IDS
    }


class TestClaims:
    def test_every_claim_passes(self, results):
        """The reproduction's headline assertion: all claims hold."""
        outcomes = evaluate_claims(results)
        failing = [o.claim.claim_id for o in outcomes if not o.passed]
        assert not failing, f"failing claims: {failing}"

    def test_claims_cover_every_paper_figure(self):
        referenced = {e for claim in CLAIMS for e in claim.experiments}
        for artifact in ("figure1", "figure2", "figure3", "figure4",
                         "figure5", "figure6", "example1"):
            assert artifact in referenced

    def test_missing_experiment_reported_not_crashed(self, results):
        partial = {k: v for k, v in results.items() if k != "figure6"}
        outcomes = evaluate_claims(partial)
        fig6 = [o for o in outcomes if o.claim.claim_id == "fig6-smith"]
        assert fig6 and not fig6[0].passed
        assert "missing" in fig6[0].error

    def test_check_exception_becomes_failure(self, results):
        """A broken result object fails its claim instead of crashing."""
        from repro.experiments.base import ExperimentResult

        broken = dict(results)
        broken["figure2"] = ExperimentResult("figure2", "broken")
        outcomes = evaluate_claims(broken)
        anchor = next(o for o in outcomes if o.claim.claim_id == "fig2-anchor")
        assert not anchor.passed
        assert anchor.error

    def test_claim_ids_unique(self):
        ids = [claim.claim_id for claim in CLAIMS]
        assert len(ids) == len(set(ids))


class TestReport:
    def test_build_report_all_pass(self):
        report = build_report(quick=True)
        assert f"{len(CLAIMS)}/{len(CLAIMS)} claims reproduced" in report
        assert "FAIL" not in report

    def test_write_report(self, tmp_path):
        target = write_report(tmp_path / "scorecard.md", quick=True)
        assert target.exists()
        assert "Reproduction scorecard" in target.read_text()

    def test_runner_report_flag(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(["--report", str(tmp_path / "r.md"), "--quick"]) == 0
        out = capsys.readouterr().out
        assert "claims reproduced" in out
