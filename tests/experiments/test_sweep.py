"""Generic parameter-sweep driver."""

import pytest

from repro.core.features import ArchFeature
from repro.experiments.sweep import parse_range, records_to_csv, sweep


class TestParseRange:
    def test_colon_inclusive(self):
        assert parse_range("2:8:2") == [2.0, 4.0, 6.0, 8.0]

    def test_colon_non_multiple_end(self):
        assert parse_range("2:7:2") == [2.0, 4.0, 6.0]

    def test_comma_list(self):
        assert parse_range("0.9,0.95,0.98") == [0.9, 0.95, 0.98]

    def test_bad_specs(self):
        with pytest.raises(ValueError):
            parse_range("1:2")
        with pytest.raises(ValueError):
            parse_range("5:1:1")
        with pytest.raises(ValueError):
            parse_range("1:5:0")


class TestSweep:
    def test_cartesian_size(self):
        records = sweep(
            ArchFeature.DOUBLING_BUS,
            {"memory_cycle": [2.0, 4.0], "line_size": [8.0, 16.0, 32.0]},
        )
        assert len(records) == 6

    def test_values_match_direct_evaluation(self):
        from repro.core.bus_width import doubling_tradeoff
        from repro.core.params import SystemConfig

        records = sweep(ArchFeature.DOUBLING_BUS, {"memory_cycle": [8.0]})
        direct = doubling_tradeoff(SystemConfig(4, 32, 8.0), 0.95)
        assert records[0].miss_volume_ratio == pytest.approx(
            direct.miss_ratio_of_misses
        )
        assert records[0].hit_ratio_traded == pytest.approx(
            direct.hit_ratio_delta
        )

    def test_invalid_grid_points_skipped(self):
        # line_size 4 with bus doubling violates L >= 2D: skipped.
        records = sweep(
            ArchFeature.DOUBLING_BUS, {"line_size": [4.0, 8.0, 32.0]}
        )
        assert len(records) == 2

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unsweepable"):
            sweep(ArchFeature.DOUBLING_BUS, {"voltage": [1.0]})

    def test_empty_ranges_rejected(self):
        with pytest.raises(ValueError, match="nothing"):
            sweep(ArchFeature.DOUBLING_BUS, {})

    def test_csv_output(self):
        records = sweep(
            ArchFeature.PIPELINED_MEMORY, {"memory_cycle": [4.0, 8.0]}
        )
        csv_text = records_to_csv(records)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "memory_cycle,r,hit_ratio_traded"
        assert len(lines) == 3

    def test_empty_records_csv(self):
        assert records_to_csv([]) == ""


class TestCli:
    def test_sweep_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(
            ["sweep", "doubling-bus", "--range", "memory_cycle=2:4:2"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("memory_cycle,")
        assert "2.0909" in out  # r at beta=2, L=32 (default line size)

    def test_sweep_default_range(self, capsys):
        from repro.__main__ import main

        assert main(["sweep", "write-buffers"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 11

    def test_sweep_to_file(self, tmp_path, capsys):
        from repro.__main__ import main

        target = tmp_path / "sweep.csv"
        assert main(
            ["sweep", "pipelined-memory", "--range", "memory_cycle=2:6:2",
             "--out", str(target)]
        ) == 0
        assert target.exists()
        assert "grid points" in capsys.readouterr().out

    def test_bad_range_spec(self, capsys):
        from repro.__main__ import main

        assert main(["sweep", "doubling-bus", "--range", "oops"]) == 2
        assert "expected NAME=SPEC" in capsys.readouterr().err
