"""CLI runner behaviour."""

import pytest

from repro.experiments.runner import main


class TestRunner:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "table3" in out

    def test_no_args_is_error(self, capsys):
        assert main([]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_unknown_id_is_error(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_and_prints(self, capsys):
        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "finished in" in out

    def test_out_directory(self, tmp_path, capsys):
        assert main(["figure2", "--quick", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "figure2.txt").exists()
        assert (tmp_path / "figure2.csv").exists()


class TestJobs:
    def test_invalid_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure2", "--quick", "--jobs", "0"])

    def test_parallel_output_matches_sequential(self, tmp_path, capsys):
        """--jobs must not change a single byte of the saved results."""
        ids = ["figure2", "table2"]
        sequential, parallel = tmp_path / "seq", tmp_path / "par"
        assert main([*ids, "--quick", "--out", str(sequential)]) == 0
        assert main([*ids, "--quick", "--jobs", "2", "--out", str(parallel)]) == 0
        produced = sorted(path.name for path in sequential.iterdir())
        assert produced  # at least the .txt renders
        assert sorted(path.name for path in parallel.iterdir()) == produced
        for name in produced:
            assert (parallel / name).read_bytes() == (
                sequential / name
            ).read_bytes()

    def test_single_experiment_jobs(self, capsys):
        """--jobs with one id routes to phase-1 parallelism and resets it."""
        from repro.experiments import _phi

        assert main(["figure1", "--quick", "--jobs", "2"]) == 0
        assert _phi._PHASE1_JOBS == 1
        out = capsys.readouterr().out
        assert "figure1 finished" in out
