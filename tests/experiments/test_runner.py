"""CLI runner behaviour."""

from repro.experiments.runner import main


class TestRunner:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "table3" in out

    def test_no_args_is_error(self, capsys):
        assert main([]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_unknown_id_is_error(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_and_prints(self, capsys):
        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "finished in" in out

    def test_out_directory(self, tmp_path, capsys):
        assert main(["figure2", "--quick", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "figure2.txt").exists()
        assert (tmp_path / "figure2.csv").exists()
