"""CLI runner behaviour."""

import json

import pytest

from repro.cache.events_store import EVENTS_CACHE_ENV
from repro.experiments.runner import main
from repro.obs import schemas, stable_view


class TestRunner:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "table3" in out

    def test_no_args_is_error(self, capsys):
        assert main([]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_unknown_id_is_error(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_and_prints(self, capsys):
        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "finished in" in out

    def test_out_directory(self, tmp_path, capsys):
        assert main(["figure2", "--quick", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "figure2.txt").exists()
        assert (tmp_path / "figure2.csv").exists()
        # Every --out run also writes a validating run manifest.
        manifest = json.loads((tmp_path / "figure2.meta.json").read_text())
        schemas.validate_manifest(manifest)


class TestJobs:
    def test_invalid_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure2", "--quick", "--jobs", "0"])

    def test_parallel_output_matches_sequential(self, tmp_path, capsys):
        """--jobs must not change a single byte of the saved results.

        Manifests are compared on their stable view — wall time and
        provenance timestamps legitimately differ between runs.
        """
        ids = ["figure2", "table2"]
        sequential, parallel = tmp_path / "seq", tmp_path / "par"
        assert main([*ids, "--quick", "--out", str(sequential)]) == 0
        assert main([*ids, "--quick", "--jobs", "2", "--out", str(parallel)]) == 0
        produced = sorted(path.name for path in sequential.iterdir())
        assert produced  # at least the .txt renders
        assert sorted(path.name for path in parallel.iterdir()) == produced
        for name in produced:
            seq_bytes = (sequential / name).read_bytes()
            par_bytes = (parallel / name).read_bytes()
            if name.endswith(".meta.json"):
                seq_manifest = stable_view(json.loads(seq_bytes))
                par_manifest = stable_view(json.loads(par_bytes))
                # jobs is part of the config on purpose; normalize it.
                seq_manifest["config"].pop("jobs")
                par_manifest["config"].pop("jobs")
                assert par_manifest == seq_manifest
            else:
                assert par_bytes == seq_bytes

    def test_single_experiment_jobs(self, capsys):
        """--jobs with one id routes to phase-1 parallelism and resets it."""
        from repro.experiments import _phi

        assert main(["figure1", "--quick", "--jobs", "2"]) == 0
        assert _phi._PHASE1_JOBS == 1
        out = capsys.readouterr().out
        assert "figure1 finished" in out


class TestObservability:
    def test_trace_file_is_valid_chrome_trace(self, tmp_path, capsys, monkeypatch):
        # A warm on-disk events cache would (correctly) skip phase-1
        # extraction; disable it so every instrumentation point fires.
        monkeypatch.setenv(EVENTS_CACHE_ENV, "0")
        trace_path = tmp_path / "trace.json"
        assert main(["figure1", "--quick", "--trace", str(trace_path)]) == 0
        document = json.loads(trace_path.read_text())
        schemas.validate_chrome_trace(document)
        names = {event["name"] for event in document["traceEvents"]}
        # The advertised instrumentation points all fired.
        assert {"runner.run", "phase1.extract", "phase2.replay"} <= names

    def test_metrics_byte_identical_across_jobs(self, tmp_path, capsys):
        """The merged --metrics aggregate is byte-identical for any N."""
        ids = ["figure1", "figure2", "table2"]
        seq, par = tmp_path / "seq.json", tmp_path / "par.json"
        assert main([*ids, "--quick", "--metrics", str(seq)]) == 0
        assert main(
            [*ids, "--quick", "--jobs", "4", "--metrics", str(par)]
        ) == 0
        assert par.read_bytes() == seq.read_bytes()
        document = json.loads(seq.read_text())
        schemas.validate_metrics(document)
        assert document["counters"]["engine.replay.calls"] > 0

    def test_manifest_deterministic_across_runs(self, tmp_path, capsys):
        """Two runs agree on everything but timestamps/wall time."""
        first, second = tmp_path / "a", tmp_path / "b"
        assert main(["figure1", "--quick", "--out", str(first)]) == 0
        assert main(["figure1", "--quick", "--out", str(second)]) == 0
        load = lambda d: json.loads((d / "figure1.meta.json").read_text())
        assert stable_view(load(first)) == stable_view(load(second))

    def test_manifest_eq2_terms_sum_to_total(self, tmp_path, capsys):
        assert main(["figure1", "--quick", "--out", str(tmp_path)]) == 0
        manifest = json.loads((tmp_path / "figure1.meta.json").read_text())
        eq2 = manifest["eq2"]
        terms = (
            eq2["execute_cycles"]
            + eq2["read_stall_cycles"]
            + eq2["flush_stall_cycles"]
            + eq2["write_buffer_stall_cycles"]
        )
        assert terms == eq2["total_cycles"]  # exact, not approximate
        assert eq2["total_cycles"] > 0
        assert manifest["engine"]["path"] == "replay"

    def test_quiet_by_default_verbose_opt_in(self, capsys, caplog):
        """-v surfaces runner diagnostics; default stays warnings-only."""
        import logging

        with caplog.at_level(logging.INFO, logger="repro"):
            assert main(["table2", "--quick"]) == 0
            quiet_records = [
                r for r in caplog.records if r.levelno < logging.WARNING
            ]
            caplog.clear()
            assert main(["table2", "--quick", "-v"]) == 0
            verbose_err = capsys.readouterr().err
        assert not quiet_records
        assert "finished" in verbose_err

    def test_report_honours_jobs(self, tmp_path, capsys):
        """--report fans out over --jobs workers (same scorecard)."""
        from repro.experiments.report import build_report

        sequential = build_report(quick=True, jobs=1)
        parallel = build_report(quick=True, jobs=4)
        strip = lambda text: [
            line
            for line in text.splitlines()
            if "s)" not in line  # drop wall-time suffixed lines
        ]
        assert strip(parallel) == strip(sequential)
        assert "claims reproduced" in parallel


class TestReuseProfileFlag:
    def test_no_reuse_profile_steps_the_oracle(self, tmp_path, capsys):
        """--no-reuse-profile forces every phase-1 dispatch to the
        stepping engine (results stay byte-identical; see the cache
        suites for the equivalence pins)."""
        import os

        from repro.cache.reuse_store import REUSE_PROFILE_ENV

        metrics_path = tmp_path / "metrics.json"
        os.environ[EVENTS_CACHE_ENV] = "0"  # force cold extraction
        try:
            assert (
                main(
                    [
                        "figure1",
                        "--quick",
                        "--no-reuse-profile",
                        "--metrics",
                        str(metrics_path),
                    ]
                )
                == 0
            )
        finally:
            os.environ.pop(EVENTS_CACHE_ENV, None)
            os.environ.pop(REUSE_PROFILE_ENV, None)
        counters = json.loads(metrics_path.read_text())["counters"]
        dispatches = {
            key: value
            for key, value in counters.items()
            if key.startswith("engine.phase1.dispatches")
        }
        assert dispatches  # cold run reached the dispatcher
        assert all("engine=step" in key for key in dispatches)
        assert counters[
            "engine.phase1.dispatches{engine=step,reason=disabled}"
        ] > 0

    def test_default_lru_sweep_never_steps(self, tmp_path, capsys):
        """Zero Cache stepping on an LRU-only sweep: every cold phase-1
        dispatch goes to the reuse engine."""
        import os

        metrics_path = tmp_path / "metrics.json"
        os.environ[EVENTS_CACHE_ENV] = "0"
        try:
            assert (
                main(
                    ["figure1", "--quick", "--metrics", str(metrics_path)]
                )
                == 0
            )
        finally:
            os.environ.pop(EVENTS_CACHE_ENV, None)
        counters = json.loads(metrics_path.read_text())["counters"]
        dispatches = {
            key: value
            for key, value in counters.items()
            if key.startswith("engine.phase1.dispatches")
        }
        assert dispatches
        assert all("engine=reuse" in key for key in dispatches)
