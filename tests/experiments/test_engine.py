"""Two-phase engine plumbing in the experiment layer (_phi helpers)."""

import pytest

from repro.core.stalling import StallPolicy
from repro.experiments._phi import (
    floor_phi_to_table2,
    measured_phi_map,
    measured_phi_percentages,
    set_phase1_jobs,
    spec92_event_streams,
)


class TestPhiFloor:
    """Table 2's admissible interval: ``1 <= phi <= L/D``."""

    def test_values_below_one_are_floored(self):
        assert floor_phi_to_table2(0.0) == 1.0
        assert floor_phi_to_table2(0.62) == 1.0

    def test_boundary_is_exact(self):
        assert floor_phi_to_table2(1.0) == 1.0

    def test_values_above_one_pass_through(self):
        assert floor_phi_to_table2(1.0000001) == 1.0000001
        assert floor_phi_to_table2(7.35) == 7.35

    def test_measured_map_respects_floor(self):
        phi = measured_phi_map(
            StallPolicy.BUS_NOT_LOCKED_3, 32, (2.0, 8.0), quick=True
        )
        assert all(value >= 1.0 for value in phi.values())


class TestPhase1Memoization:
    def test_event_streams_cover_all_programs(self):
        streams = spec92_event_streams(2000, 8192, 32, 2)
        assert sorted(streams) == [
            "doduc", "ear", "hydro2d", "nasa7", "swm256", "wave5",
        ]
        for events in streams.values():
            assert events.n_instructions == 2000

    def test_replay_and_oracle_paths_agree(self):
        """The NB fallback and the replay fast path share accounting.

        FS through the replay path must equal FS forced through the
        step-simulator path (they are pinned equal instruction by
        instruction in tests/cpu/test_replay_equivalence.py; here we
        check the experiment-layer wiring preserves that).
        """
        from repro.cache.cache import CacheConfig
        from repro.cpu.stall_measure import average_stall_percentages
        from repro.experiments._phi import spec92_traces

        betas = (4.0, 16.0)
        via_replay = measured_phi_percentages(
            StallPolicy.FULL_STALL, 32, 8192, 2, betas, 4, 2000
        )
        traces = spec92_traces(2000)
        via_oracle = average_stall_percentages(
            traces, CacheConfig(8192, 32, 2), (StallPolicy.NON_BLOCKING,),
            betas, 4,
        )
        assert len(via_replay) == len(betas)
        # NB overlaps misses, so it must sit strictly below FULL_STALL.
        for fs, nb in zip(via_replay, via_oracle[StallPolicy.NON_BLOCKING]):
            assert nb < fs

    def test_set_phase1_jobs_validates(self):
        with pytest.raises(ValueError, match="jobs"):
            set_phase1_jobs(0)
