"""Two-phase engine plumbing in the experiment layer (_phi helpers)."""

import pytest

from repro.core.stalling import StallPolicy
from repro.experiments._phi import (
    floor_phi_to_table2,
    measured_phi_map,
    measured_phi_percentages,
    set_phase1_jobs,
    spec92_event_streams,
)


class TestPhiFloor:
    """Table 2's admissible interval: ``1 <= phi <= L/D``."""

    def test_values_below_one_are_floored(self):
        assert floor_phi_to_table2(0.0) == 1.0
        assert floor_phi_to_table2(0.62) == 1.0

    def test_boundary_is_exact(self):
        assert floor_phi_to_table2(1.0) == 1.0

    def test_values_above_one_pass_through(self):
        assert floor_phi_to_table2(1.0000001) == 1.0000001
        assert floor_phi_to_table2(7.35) == 7.35

    def test_measured_map_respects_floor(self):
        phi = measured_phi_map(
            StallPolicy.BUS_NOT_LOCKED_3, 32, (2.0, 8.0), quick=True
        )
        assert all(value >= 1.0 for value in phi.values())


class TestPhase1Memoization:
    def test_event_streams_cover_all_programs(self):
        streams = spec92_event_streams(2000, 8192, 32, 2)
        assert sorted(streams) == [
            "doduc", "ear", "hydro2d", "nasa7", "swm256", "wave5",
        ]
        for events in streams.values():
            assert events.n_instructions == 2000

    def test_replay_and_oracle_paths_agree(self):
        """The NB fallback and the replay fast path share accounting.

        FS through the replay path must equal FS forced through the
        step-simulator path (they are pinned equal instruction by
        instruction in tests/cpu/test_replay_equivalence.py; here we
        check the experiment-layer wiring preserves that).
        """
        from repro.cache.cache import CacheConfig
        from repro.cpu.stall_measure import average_stall_percentages
        from repro.experiments._phi import spec92_traces

        betas = (4.0, 16.0)
        via_replay = measured_phi_percentages(
            StallPolicy.FULL_STALL, 32, 8192, 2, betas, 4, 2000
        )
        traces = spec92_traces(2000)
        via_oracle = average_stall_percentages(
            traces, CacheConfig(8192, 32, 2), (StallPolicy.NON_BLOCKING,),
            betas, 4,
        )
        assert len(via_replay) == len(betas)
        # NB overlaps misses, so it must sit strictly below FULL_STALL.
        for fs, nb in zip(via_replay, via_oracle[StallPolicy.NON_BLOCKING]):
            assert nb < fs

    def test_set_phase1_jobs_validates(self):
        with pytest.raises(ValueError, match="jobs"):
            set_phase1_jobs(0)


class TestPhiPointMemo:
    """Regression: the phi memo must hit across *overlapping* grids.

    The memo used to key on the whole ``betas`` tuple, so the Figure 1
    grid and the unified-tradeoff grid never shared entries even where
    they requested identical points — BENCH_engine.json showed
    ``phi.phi_memo.miss: 8`` with zero hits.  Keying per point fixes
    that; this test locks the behavior in.
    """

    def _measure(self, betas):
        return measured_phi_percentages(
            StallPolicy.BUS_NOT_LOCKED_1, 32, 8192, 2, betas, 4, 2000
        )

    def test_overlapping_grids_share_points(self):
        from repro.experiments._phi import clear_caches
        from repro.obs import metrics

        clear_caches()
        registry = metrics.enable_metrics()
        try:
            first = self._measure((4.0, 8.0, 16.0))
            second = self._measure((8.0, 16.0, 24.0))
        finally:
            metrics.disable_metrics()
        counters = registry.snapshot()["counters"]
        assert counters["phi.phi_memo.miss"] == 4  # 3 cold + 1 new point
        assert counters["phi.phi_memo.hit"] == 2  # 8.0 and 16.0 reused
        # Shared points are literally the same memoized value.
        assert second[0] == first[1]
        assert second[1] == first[2]

    def test_values_independent_of_request_grouping(self):
        from repro.experiments._phi import clear_caches

        clear_caches()
        together = self._measure((2.0, 8.0, 24.0))
        clear_caches()
        split = self._measure((2.0,)) + self._measure((8.0, 24.0))
        assert together == split
