"""Every registered experiment runs (quick mode) and reproduces its
paper-shape claims."""

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment


@pytest.fixture(scope="module")
def results():
    """Run everything once in quick mode; figures 1/3/4/5 share traces."""
    return {
        experiment_id: run_experiment(experiment_id, quick=True)
        for experiment_id in EXPERIMENTS
    }


class TestHarness:
    def test_all_ids_run(self, results):
        assert set(results) == set(EXPERIMENTS)

    def test_ids_match(self, results):
        for experiment_id, result in results.items():
            assert result.experiment_id == experiment_id

    def test_render_produces_text(self, results):
        for result in results.values():
            text = result.render()
            assert result.title in text

    def test_series_lengths_consistent(self, results):
        for result in results.values():
            for name, values in result.series.items():
                assert len(values) == len(result.x_values), name

    def test_save_writes_files(self, results, tmp_path):
        paths = results["figure2"].save(tmp_path)
        assert any(p.suffix == ".txt" for p in paths)
        assert any(p.suffix == ".csv" for p in paths)

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="unknown"):
            run_experiment("figure99")


class TestFigure1Claims:
    def test_partial_policies_below_full(self, results):
        for values in results["figure1"].series.values():
            assert all(v <= 100.0 for v in values)

    def test_monotone_in_memory_cycle(self, results):
        for name, values in results["figure1"].series.items():
            assert values == sorted(values), name

    def test_bnl3_is_lowest(self, results):
        series = results["figure1"].series
        for i in range(len(results["figure1"].x_values)):
            assert series["BNL3"][i] <= min(
                series["BL"][i], series["BNL1"][i], series["BNL2"][i]
            )

    def test_bl_is_highest(self, results):
        series = results["figure1"].series
        for i in range(len(results["figure1"].x_values)):
            assert series["BL"][i] >= max(series["BNL1"][i], series["BNL2"][i])


class TestFigure2Claims:
    def test_anchor_3_percent_at_design_limit(self, results):
        series = results["figure2"].series["HR=98% L=8"]
        assert series[0] == pytest.approx(3.0, abs=0.1)

    def test_larger_line_trades_less(self, results):
        series = results["figure2"].series
        for i in range(len(results["figure2"].x_values)):
            assert series["HR=98% L=32"][i] < series["HR=98% L=8"][i]

    def test_lower_base_trades_more(self, results):
        series = results["figure2"].series
        for i in range(len(results["figure2"].x_values)):
            assert series["HR=90% L=8"][i] > series["HR=98% L=8"][i]


class TestFigures345Claims:
    def test_figure3_bus_always_beats_pipelining(self, results):
        series = results["figure3"].series
        for pipe, bus in zip(series["pipelined mem"], series["doubling bus"]):
            assert pipe < bus

    def test_figure4_pipelining_wins_late(self, results):
        series = results["figure4"].series
        assert series["pipelined mem"][-1] > series["doubling bus"][-1]

    def test_figure4_ranking_bus_buffers_bnl(self, results):
        series = results["figure4"].series
        for i in range(len(results["figure4"].x_values)):
            assert (
                series["doubling bus"][i]
                > series["write buffers"][i]
                > series["BNL1"][i]
            )

    def test_figure5_bnl3_beats_figure4_bnl1(self, results):
        """BNL3's curve lies above BNL1's at small memory cycles."""
        bnl3 = results["figure5"].series["BNL3"]
        bnl1 = results["figure4"].series["BNL1"]
        assert bnl3[0] >= bnl1[0]

    def test_pipelined_zero_at_beta_two(self, results):
        for fig in ("figure3", "figure4", "figure5"):
            result = results[fig]
            index = result.x_values.index(2.0)
            assert result.series["pipelined mem"][index] == pytest.approx(0.0)


class TestFigure6Claims:
    def test_agreement_note_positive(self, results):
        notes = " ".join(results["figure6"].notes)
        assert "agree at every swept bus speed: yes" in notes

    def test_all_panels_match_paper(self, results):
        table = results["figure6"].tables[0]
        assert "NO" not in table.replace("NO — INVESTIGATE", "")


class TestTableClaims:
    def test_table2_has_two_ld_variants(self, results):
        assert len(results["table2"].tables) == 2

    def test_table3_lists_four_features(self, results):
        assert "pipelined-memory" in results["table3"].tables[0]
        assert "doubling-bus" in results["table3"].tables[0]

    def test_example1_reports_pairs(self, results):
        rendered = results["example1"].render()
        assert "32K + 32-bit bus" in rendered
        assert "8K + 64-bit bus" in rendered
