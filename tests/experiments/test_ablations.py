"""Ablation experiments: shape claims."""

import pytest

from repro.experiments.registry import run_experiment


@pytest.fixture(scope="module")
def flush():
    return run_experiment("ablation_flush", quick=True)


@pytest.fixture(scope="module")
def turnaround():
    return run_experiment("ablation_turnaround", quick=True)


class TestFlushAblation:
    def test_bus_beats_buffers_strictly_inside(self, flush):
        bus = flush.series["doubling-bus"]
        buffers = flush.series["write-buffers"]
        for b, w, alpha in zip(bus, buffers, flush.x_values):
            if 0.0 < alpha < 1.0:
                assert b > w

    def test_tie_at_alpha_one(self, flush):
        assert flush.series["doubling-bus"][-1] == pytest.approx(
            flush.series["write-buffers"][-1]
        )

    def test_buffers_zero_at_alpha_zero(self, flush):
        assert flush.series["write-buffers"][0] == pytest.approx(0.0)

    def test_crossover_alpha_invariant(self, flush):
        notes = " ".join(flush.notes)
        assert "spread 0.000" in notes


class TestTurnaroundAblation:
    def test_traded_hr_falls_with_q(self, turnaround):
        values = turnaround.series["pipelined traded HR (%)"]
        assert values == sorted(values, reverse=True)

    def test_crossover_linear_in_q(self, turnaround):
        qs = turnaround.x_values
        crossings = turnaround.series["crossover beta_m"]
        slope = crossings[0] / qs[0]
        for q, crossing in zip(qs, crossings):
            assert crossing == pytest.approx(slope * q)

    def test_q2_matches_closed_form(self, turnaround):
        index = turnaround.x_values.index(2.0)
        assert turnaround.series["crossover beta_m"][index] == pytest.approx(14 / 3)


class TestGeometryAblation:
    def test_phi_less_sensitive_than_miss_ratio(self):
        result = run_experiment("ablation_cache_geometry", quick=True)
        assert "less geometry-sensitive" in " ".join(result.notes)
        assert result.tables


class TestDramAblation:
    def test_abstraction_error_small(self):
        result = run_experiment("ablation_dram", quick=True)
        note = next(n for n in result.notes if "abstraction error" in n)
        error = float(note.split("error ")[1].split("%")[0])
        assert error < 15.0


class TestLatencyHidingAblation:
    def test_table_produced(self):
        result = run_experiment("ablation_latency_hiding", quick=True)
        table = result.tables[0]
        for program in ("swm256", "doduc"):
            assert program in table


class TestEq8Companion:
    def test_eq8_tracks_simulation(self):
        result = run_experiment("figure1_eq8", quick=True)
        analytic = result.series["Eq. (8) analytic"]
        simulated = result.series["simulated"]
        for a, s in zip(analytic, simulated):
            assert a >= s - 1e-9  # Eq. 8 is the conservative side
            assert abs(a - s) < 10.0  # and stays close


class TestWriteBufferDepthAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ablation_write_buffer_depth", quick=True)

    def test_efficiency_monotone_in_depth(self, result):
        for name, values in result.series.items():
            assert values == sorted(values), name

    def test_efficiency_bounded(self, result):
        for values in result.series.values():
            assert all(0.0 <= v <= 100.0 for v in values)

    def test_locality_rich_workload_approaches_bound(self, result):
        assert result.series["ear"][-1] > 80.0

    def test_streaming_is_bus_bound(self, result):
        assert result.series["swm256"][-1] < 70.0
