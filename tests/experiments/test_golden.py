"""Golden-file regression tests for the deterministic experiments.

Figure 2, Figure 6 and Table 3 are pure analytics — bit-identical across
runs — so their quick-mode outputs are pinned verbatim.  A diff here
means the *model* changed, not noise; regenerate the goldens only after
confirming the change is intended:

    python - <<'PY'
    from repro.experiments.registry import run_experiment
    for exp in ("figure2", "figure6"):
        r = run_experiment(exp, quick=True)
        open(f"tests/data/golden_{exp}_quick.csv", "w").write(r.to_csv())
    r = run_experiment("table3", quick=True)
    open("tests/data/golden_table3_quick.txt", "w").write("\\n\\n".join(r.tables))
    PY
"""

from pathlib import Path

import pytest

from repro.experiments.registry import run_experiment

DATA = Path(__file__).resolve().parent.parent / "data"


def _normalize(text: str) -> str:
    """Neutralize csv's \\r\\n vs text-mode-read \\n."""
    return text.replace("\r\n", "\n")


@pytest.mark.parametrize("experiment_id", ["figure2", "figure6"])
def test_analytic_figure_matches_golden(experiment_id):
    result = run_experiment(experiment_id, quick=True)
    golden = (DATA / f"golden_{experiment_id}_quick.csv").read_text()
    assert _normalize(result.to_csv()) == _normalize(golden)


def test_table3_matches_golden():
    result = run_experiment("table3", quick=True)
    golden = (DATA / "golden_table3_quick.txt").read_text()
    assert "\n\n".join(result.tables) == golden


def test_goldens_are_nontrivial():
    for name in ("golden_figure2_quick.csv", "golden_figure6_quick.csv"):
        content = (DATA / name).read_text()
        assert len(content.splitlines()) > 3
