"""The bench-history regression gate (``python -m repro.obs.bench_history``)."""

import json
import pathlib

import pytest

from repro.obs import bench_history, schemas
from repro.obs.bench_history import (
    Regression,
    baseline_of,
    collect_metrics,
    gate,
    load_history,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _phase_table(self_times):
    total = sum(self_times.values()) or 1.0
    return {
        name: {
            "samples": int(self_s * 500),
            "self_s": self_s,
            "fraction": round(self_s / total, 6),
        }
        for name, self_s in self_times.items()
    }


def _engine_document(phases=None, **benchmark_overrides):
    benchmarks = {
        "phase1_extract_60k_s": 0.06,
        "phase1_reuse_s": 0.03,
        "phase1_derive_marginal_s": 0.005,
        "phase2_replay_point_s": 0.002,
        "step_simulator_point_s": 0.1,
        "figure1_quick_s": 0.14,
        "all_quick_s": 2.8,
    }
    benchmarks.update(benchmark_overrides)
    return {
        "schema": schemas.BENCH_ENGINE_SCHEMA,
        "benchmarks": benchmarks,
        "speedup_replay_vs_step": 50.0,
        "dispatch": {
            "replay_calls": 288,
            "step_calls": 0,
            "step_fallback_reasons": {},
            "phase1": {
                "reuse_calls": 42,
                "step_calls": 0,
                "step_reasons": {},
            },
        },
        "phase_breakdown": {
            "source": "all_quick_cold",
            "profile_id": "prof-test00000001",
            "hz": 500,
            "duration_s": 2.8,
            "phases": _phase_table(
                phases
                if phases is not None
                else {"phase1.extract": 1.0, "phase2.replay": 1.2}
            ),
        },
        "profiler_overhead": {
            "off_s": 0.9,
            "on_s": 0.92,
            "ratio": 1.0222,
            "hz": 97,
        },
        "metrics": {"counters": {}, "histograms": {}},
        "provenance": {
            "git_sha": "0" * 40,
            "python": "3.11.7",
            "platform": "Linux-test",
            "cpu_count": 8,
        },
    }


def _history_entry(metrics, phases=None):
    entry = {
        "schema": schemas.BENCH_HISTORY_SCHEMA,
        "recorded_at": "2026-08-01T00:00:00+00:00",
        "git_sha": "0" * 40,
        "sources": {"engine": "BENCH_engine.json"},
        "metrics": metrics,
    }
    if phases is not None:
        entry["phases"] = phases
    return entry


def _write_history(path, entries):
    path.write_text(
        "".join(json.dumps(entry) + "\n" for entry in entries),
        encoding="utf-8",
    )


class TestCollectMetrics:
    def test_extracts_engine_headlines(self):
        metrics = collect_metrics(_engine_document(), None)
        assert metrics["engine.phase1_extract_60k_s"] == 0.06
        assert metrics["engine.all_quick_s"] == 2.8
        assert not any(name.startswith("service.") for name in metrics)

    def test_extracts_service_headlines(self):
        service = {
            "warm_cache": {"p50_ms": 0.4},
            "levels": {
                "16": {"latency_ms": {"p50": 1.5}, "throughput_rps": 900.0}
            },
        }
        metrics = collect_metrics(None, service)
        assert metrics == {
            "service.warm_cache.p50_ms": 0.4,
            "service.levels.16.latency_p50_ms": 1.5,
            "service.levels.16.throughput_rps": 900.0,
        }

    def test_missing_paths_are_skipped_not_fatal(self):
        metrics = collect_metrics({"benchmarks": {}}, {"levels": {}})
        assert metrics == {}


class TestBaseline:
    def test_median_over_recent_entries(self):
        history = [
            _history_entry({"m": value}) for value in (1.0, 100.0, 3.0)
        ]
        assert baseline_of(history, "m") == 3.0

    def test_depth_limits_the_window(self):
        history = [
            _history_entry({"m": value}) for value in (100.0, 1.0, 2.0, 3.0)
        ]
        assert baseline_of(history, "m", depth=3) == 2.0

    def test_absent_metric_has_no_baseline(self):
        assert baseline_of([_history_entry({"other": 1.0})], "m") is None


class TestGate:
    def test_within_tolerance_passes(self):
        history = [_history_entry({"engine.phase1_extract_60k_s": 0.06})]
        assert gate({"engine.phase1_extract_60k_s": 0.07}, history) == []

    def test_lower_is_better_regression(self):
        history = [_history_entry({"engine.phase1_extract_60k_s": 0.06})]
        regressions = gate({"engine.phase1_extract_60k_s": 0.12}, history)
        assert [r.name for r in regressions] == [
            "engine.phase1_extract_60k_s"
        ]
        assert regressions[0].ratio == pytest.approx(2.0)
        assert "2.00x" in regressions[0].describe()

    def test_higher_is_better_regression(self):
        history = [
            _history_entry({"service.levels.16.throughput_rps": 1000.0})
        ]
        assert gate({"service.levels.16.throughput_rps": 900.0}, history) == []
        regressions = gate(
            {"service.levels.16.throughput_rps": 400.0}, history
        )
        assert len(regressions) == 1
        assert "below" in regressions[0].describe()

    def test_improvement_is_not_a_regression(self):
        history = [_history_entry({"engine.phase1_extract_60k_s": 0.06})]
        assert gate({"engine.phase1_extract_60k_s": 0.01}, history) == []

    def test_no_history_passes_trivially(self):
        assert gate({"engine.phase1_extract_60k_s": 1e9}, []) == []


class TestLoadHistory:
    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_bad_line_reports_its_number(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _write_history(path, [_history_entry({"m": 1.0})])
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": "wrong"}\n')
        with pytest.raises(schemas.SchemaError, match="line 2"):
            load_history(path)


class TestMainGate:
    """End-to-end CLI behaviour, including the pinned regression fixture."""

    def _setup(self, tmp_path, phase1_s=0.06, history_values=(0.06, 0.06, 0.06)):
        engine = tmp_path / "BENCH_engine.json"
        engine.write_text(
            json.dumps(_engine_document(phase1_extract_60k_s=phase1_s))
        )
        history = tmp_path / "bench_history.jsonl"
        _write_history(
            history,
            [
                _history_entry({"engine.phase1_extract_60k_s": value})
                for value in history_values
            ],
        )
        return engine, history

    def _run(self, engine, history, *extra):
        return bench_history.main(
            [
                "--engine",
                str(engine),
                "--service",
                str(engine.parent / "absent_service.json"),
                "--history",
                str(history),
                *extra,
            ]
        )

    def test_synthetic_2x_regression_exits_2(self, tmp_path, capsys):
        engine, history = self._setup(tmp_path, phase1_s=0.12)
        assert self._run(engine, history, "--check") == 2
        assert "FAIL" in capsys.readouterr().out
        # A failing run must not poison the baseline even without --check.
        before = history.read_text()
        assert self._run(engine, history) == 2
        assert history.read_text() == before

    def test_regression_report_names_the_regressed_phase(
        self, tmp_path, capsys
    ):
        # Synthetic regression: the phase1 headline doubles AND the
        # profiler's phase table shows phase1.extract absorbing the
        # extra self-time. The exit-2 report must attribute the drift
        # to that phase by name.
        engine = tmp_path / "BENCH_engine.json"
        engine.write_text(
            json.dumps(
                _engine_document(
                    phase1_extract_60k_s=0.12,
                    phases={"phase1.extract": 2.5, "phase2.replay": 1.2},
                )
            )
        )
        history = tmp_path / "bench_history.jsonl"
        _write_history(
            history,
            [
                _history_entry(
                    {"engine.phase1_extract_60k_s": 0.06},
                    phases={
                        "engine.phase1.extract": 1.0,
                        "engine.phase2.replay": 1.2,
                    },
                )
                for _ in range(3)
            ],
        )
        assert self._run(engine, history, "--check") == 2
        out = capsys.readouterr().out
        assert "attribution" in out
        lines = [l for l in out.splitlines() if "engine.phase1.extract" in l]
        assert lines, out
        assert "+1.500s" in lines[0]
        # The unchanged phase must rank below the regressed one.
        attribution_block = out[out.index("attribution") :]
        assert attribution_block.index("engine.phase1.extract") < (
            attribution_block.index("engine.phase2.replay")
            if "engine.phase2.replay" in attribution_block
            else len(attribution_block)
        )

    def test_regression_without_history_phases_prints_fallback(
        self, tmp_path, capsys
    ):
        # Old history entries carry no phase table; attribution still
        # ranks against a 0.0 baseline rather than crashing or going
        # silent.
        engine, history = self._setup(tmp_path, phase1_s=0.12)
        assert self._run(engine, history, "--check") == 2
        out = capsys.readouterr().out
        assert "attribution" in out
        assert "engine.phase2.replay" in out

    def test_passing_run_records_phases_for_future_attribution(
        self, tmp_path
    ):
        engine, history = self._setup(tmp_path)
        assert self._run(engine, history) == 0
        entries = load_history(history)
        assert entries[-1]["phases"]["engine.phase1.extract"] == 1.0
        assert entries[-1]["phases"]["engine.phase2.replay"] == 1.2

    def test_passing_run_appends_a_valid_entry(self, tmp_path, capsys):
        engine, history = self._setup(tmp_path)
        assert self._run(engine, history) == 0
        assert "PASS" in capsys.readouterr().out
        entries = load_history(history)
        assert len(entries) == 4
        schemas.validate_bench_history_entry(entries[-1])
        assert entries[-1]["metrics"]["engine.phase1_extract_60k_s"] == 0.06

    def test_check_mode_does_not_append(self, tmp_path):
        engine, history = self._setup(tmp_path)
        before = history.read_text()
        assert self._run(engine, history, "--check") == 0
        assert history.read_text() == before

    def test_missing_history_passes_and_seeds_it(self, tmp_path):
        engine, _ = self._setup(tmp_path)
        fresh = tmp_path / "results" / "bench_history.jsonl"
        assert self._run(engine, fresh) == 0
        assert len(load_history(fresh)) == 1

    def test_missing_engine_scoreboard_is_bad_input(self, tmp_path):
        history = tmp_path / "bench_history.jsonl"
        assert (
            self._run(tmp_path / "absent_engine.json", history) == 1
        )

    def test_threshold_is_tunable(self, tmp_path):
        engine, history = self._setup(tmp_path, phase1_s=0.07)
        assert self._run(engine, history, "--check") == 0
        assert self._run(engine, history, "--check", "--threshold", "0.1") == 2


class TestCommittedArtifacts:
    """The CI gate must pass on what the repo actually commits."""

    def test_committed_scoreboards_pass_the_gate(self):
        assert bench_history.main(
            [
                "--engine",
                str(REPO_ROOT / "BENCH_engine.json"),
                "--service",
                str(REPO_ROOT / "BENCH_service.json"),
                "--history",
                str(REPO_ROOT / "results" / "bench_history.jsonl"),
                "--check",
            ]
        ) == 0

    def test_committed_history_validates(self):
        entries = load_history(REPO_ROOT / "results" / "bench_history.jsonl")
        assert entries, "results/bench_history.jsonl must seed the baseline"
        for entry in entries:
            schemas.validate_bench_history_entry(entry)
