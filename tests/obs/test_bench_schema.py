"""The BENCH_engine.json scoreboard schema and its CLI hook."""

import copy
import json
import pathlib

import pytest

from repro.obs import schemas, validate

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _document():
    return {
        "schema": schemas.BENCH_ENGINE_SCHEMA,
        "benchmarks": {
            "phase1_extract_60k_s": 0.06,
            "phase1_reuse_s": 0.03,
            "phase1_derive_marginal_s": 0.005,
            "phase2_replay_point_s": 0.002,
            "step_simulator_point_s": 0.1,
            "figure1_quick_s": 0.14,
            "all_quick_s": 2.8,
        },
        "speedup_replay_vs_step": 50.0,
        "dispatch": {
            "replay_calls": 288,
            "step_calls": 0,
            "step_fallback_reasons": {},
            "phase1": {
                "reuse_calls": 42,
                "step_calls": 0,
                "step_reasons": {},
            },
        },
        "phase_breakdown": {
            "source": "all_quick_cold",
            "profile_id": "prof-test00000001",
            "hz": 500,
            "duration_s": 2.8,
            "phases": {
                "phase1.extract": {
                    "samples": 500,
                    "self_s": 1.0,
                    "fraction": 0.4545,
                },
                "phase2.replay": {
                    "samples": 600,
                    "self_s": 1.2,
                    "fraction": 0.5455,
                },
            },
        },
        "profiler_overhead": {
            "off_s": 0.9,
            "on_s": 0.92,
            "ratio": 1.0222,
            "hz": 97,
        },
        "metrics": {"counters": {}, "histograms": {}},
        "provenance": {
            "git_sha": "0" * 40,
            "python": "3.11.7",
            "platform": "Linux-test",
            "cpu_count": 8,
        },
    }


class TestValidateBenchEngine:
    def test_accepts_valid_document(self):
        schemas.validate_bench_engine(_document())

    def test_committed_scoreboard_validates(self):
        document = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
        schemas.validate_bench_engine(document)
        assert document["dispatch"]["step_calls"] == 0

    def test_rejects_step_calls(self):
        document = _document()
        document["dispatch"]["step_calls"] = 3
        with pytest.raises(schemas.SchemaError, match="step_calls"):
            schemas.validate_bench_engine(document)

    def test_rejects_missing_all_quick(self):
        document = _document()
        del document["benchmarks"]["all_quick_s"]
        with pytest.raises(schemas.SchemaError, match="all_quick_s"):
            schemas.validate_bench_engine(document)

    def test_rejects_old_schema_version(self):
        document = _document()
        document["schema"] = "repro.bench.engine/1"
        with pytest.raises(schemas.SchemaError, match="schema"):
            schemas.validate_bench_engine(document)

    def test_rejects_zero_replay_calls(self):
        document = _document()
        document["dispatch"]["replay_calls"] = 0
        with pytest.raises(schemas.SchemaError, match="replay_calls"):
            schemas.validate_bench_engine(document)

    def test_rejects_missing_provenance(self):
        document = _document()
        del document["provenance"]
        with pytest.raises(schemas.SchemaError, match="provenance"):
            schemas.validate_bench_engine(document)

    def test_rejects_bad_cpu_count(self):
        document = _document()
        document["provenance"]["cpu_count"] = 0
        with pytest.raises(schemas.SchemaError, match="cpu_count"):
            schemas.validate_bench_engine(document)

    def test_rejects_missing_phase1_reuse_headline(self):
        document = _document()
        del document["benchmarks"]["phase1_reuse_s"]
        with pytest.raises(schemas.SchemaError, match="phase1_reuse_s"):
            schemas.validate_bench_engine(document)

    def test_rejects_phase1_stepping(self):
        """The CI perf-smoke contract: an LRU-only sweep must never
        step Cache in phase 1."""
        document = _document()
        document["dispatch"]["phase1"]["step_calls"] = 2
        document["dispatch"]["phase1"]["step_reasons"] = {"disabled": 2}
        with pytest.raises(schemas.SchemaError, match="phase1.step_calls"):
            schemas.validate_bench_engine(document)

    def test_rejects_zero_reuse_calls(self):
        document = _document()
        document["dispatch"]["phase1"]["reuse_calls"] = 0
        with pytest.raises(schemas.SchemaError, match="reuse_calls"):
            schemas.validate_bench_engine(document)

    def test_rejects_missing_phase1_section(self):
        document = _document()
        del document["dispatch"]["phase1"]
        with pytest.raises(schemas.SchemaError, match="phase1"):
            schemas.validate_bench_engine(document)

    def test_rejects_missing_phase_breakdown(self):
        """Schema /5 makes the profiler's phase table mandatory."""
        document = _document()
        del document["phase_breakdown"]
        with pytest.raises(schemas.SchemaError, match="phase_breakdown"):
            schemas.validate_bench_engine(document)

    def test_rejects_empty_phase_table(self):
        document = _document()
        document["phase_breakdown"]["phases"] = {}
        with pytest.raises(schemas.SchemaError, match="phases"):
            schemas.validate_bench_engine(document)

    def test_rejects_bad_phase_fraction(self):
        document = _document()
        document["phase_breakdown"]["phases"]["phase1.extract"][
            "fraction"
        ] = 1.5
        with pytest.raises(schemas.SchemaError, match="fraction"):
            schemas.validate_bench_engine(document)

    def test_rejects_nonpositive_overhead_ratio(self):
        document = _document()
        document["profiler_overhead"]["ratio"] = 0
        with pytest.raises(schemas.SchemaError, match="ratio"):
            schemas.validate_bench_engine(document)

    def test_overhead_above_budget_still_validates(self):
        """The 5% budget is enforced by the bench script's exit code,
        not the schema: a noisy machine must not retro-invalidate a
        committed scoreboard."""
        document = _document()
        document["profiler_overhead"]["ratio"] = 1.3
        schemas.validate_bench_engine(document)


class TestValidateCli:
    def test_bench_flag(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_document()))
        assert validate.main(["--bench", str(good)]) == 0

        bad_document = copy.deepcopy(_document())
        bad_document["dispatch"]["step_calls"] = 1
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(bad_document))
        assert validate.main(["--bench", str(bad)]) == 1
