"""Run manifests: construction, determinism, schema validity."""

import json

import pytest

from repro.obs import manifest, schemas
from repro.util.jsonout import read_json


def _snapshot(replay_calls=3, step_calls=0):
    counters = {
        "eq2.execute_cycles": 900.0,
        "eq2.read_stall_cycles": 60.0,
        "eq2.flush_stall_cycles": 30.0,
        "eq2.write_buffer_stall_cycles": 10.0,
        "eq2.total_cycles": 1000.0,
    }
    if replay_calls:
        counters["engine.replay.calls"] = replay_calls
    if step_calls:
        counters["engine.step.calls"] = step_calls
    return {"counters": counters, "histograms": {}}


def _build(**overrides):
    kwargs = dict(
        experiment_id="figure1",
        title="Figure 1",
        quick=True,
        jobs=1,
        seed=7,
        n_instructions=8_000,
        wall_time_s=0.25,
        outputs=["figure1.txt", "figure1.csv"],
        metrics_snapshot=_snapshot(),
    )
    kwargs.update(overrides)
    return manifest.build_manifest(**kwargs)


class TestBuild:
    def test_validates_against_schema(self):
        schemas.validate_manifest(_build())

    def test_eq2_lifted_from_snapshot(self):
        document = _build()
        assert document["eq2"]["total_cycles"] == 1000.0
        assert document["eq2"]["execute_cycles"] == 900.0

    def test_engine_path_classification(self):
        assert _build()["engine"]["path"] == "replay"
        step = _build(metrics_snapshot=_snapshot(replay_calls=0, step_calls=2))
        assert step["engine"]["path"] == "step"
        mixed = _build(metrics_snapshot=_snapshot(replay_calls=1, step_calls=1))
        assert mixed["engine"]["path"] == "mixed"

    def test_analytic_experiment_without_metrics(self):
        document = _build(metrics_snapshot=None)
        assert document["engine"]["path"] == "analytic"
        assert document["eq2"]["total_cycles"] == 0
        schemas.validate_manifest(document)

    def test_outputs_sorted(self):
        document = _build(outputs=["b.csv", "a.txt"])
        assert document["outputs"] == ["a.txt", "b.csv"]

    def test_provenance_populated(self):
        provenance = _build()["provenance"]
        assert provenance["python"].count(".") >= 1
        assert provenance["created_at"].endswith("+00:00")
        assert provenance["numpy"]


class TestStability:
    def test_stable_view_strips_only_volatile_keys(self):
        document = _build()
        stable = manifest.stable_view(document)
        for key in manifest.VOLATILE_KEYS:
            assert key in document and key not in stable
        assert stable["eq2"] == document["eq2"]

    def test_two_builds_agree_on_stable_view(self):
        first = _build(wall_time_s=0.1)
        second = _build(wall_time_s=99.9)
        assert manifest.stable_view(first) == manifest.stable_view(second)

    def test_diagnostic_counters_stripped(self):
        """Cold/warm determinism: diagnostic-only counters — including
        labeled ones, matched on the base name before '{' — vanish from
        the stable view; everything else survives untouched."""
        snapshot = _snapshot()
        snapshot["counters"]["events_store.corrupt_reextract"] = 1
        snapshot["counters"]["reuse_store.corrupt_reextract"] = 2
        snapshot["counters"][
            "engine.phase1.dispatches{engine=reuse,reason=lru_wb_wa}"
        ] = 7
        snapshot["counters"][
            "engine.phase1.dispatches{engine=step,reason=disabled}"
        ] = 3
        document = _build(metrics_snapshot=snapshot)
        stable = manifest.stable_view(document)
        remaining = stable["metrics"]["counters"]
        for key in remaining:
            assert manifest._counter_base(key) not in (
                manifest.DIAGNOSTIC_COUNTERS
            )
        assert remaining["eq2.total_cycles"] == 1000.0
        # The input document is not mutated.
        assert (
            "reuse_store.corrupt_reextract"
            in document["metrics"]["counters"]
        )

    def test_cold_and_warm_snapshots_agree(self):
        """A cold run counts phase-1 dispatches; a warm run never reaches
        the dispatcher.  Their stable views must still be equal."""
        cold = _snapshot()
        cold["counters"][
            "engine.phase1.dispatches{engine=reuse,reason=lru_wb_wa}"
        ] = 42
        warm = _snapshot()
        assert manifest.stable_view(
            _build(metrics_snapshot=cold)
        ) == manifest.stable_view(_build(metrics_snapshot=warm))


class TestWrite:
    def test_write_path_and_round_trip(self, tmp_path):
        path = manifest.write_manifest(tmp_path, "figure1", _build())
        assert path == tmp_path / "figure1.meta.json"
        loaded = read_json(path)
        schemas.validate_manifest(loaded)
        assert loaded == json.loads(path.read_text())


class TestSchemaRejects:
    def test_eq2_terms_must_sum(self):
        document = _build()
        document["eq2"]["execute_cycles"] += 1.0
        with pytest.raises(schemas.SchemaError, match="sum"):
            schemas.validate_manifest(document)

    def test_bad_engine_path(self):
        document = _build()
        document["engine"]["path"] = "quantum"
        with pytest.raises(schemas.SchemaError, match="path"):
            schemas.validate_manifest(document)
