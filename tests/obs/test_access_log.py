"""Structured access logs: record shape, writer, validation, CLI."""

import json

import pytest

from repro.obs import validate as validate_cli
from repro.obs.access_log import (
    ACCESS_LOG_SCHEMA,
    AccessLog,
    access_record,
    read_access_log,
)
from repro.obs.schemas import (
    SchemaError,
    validate_access_log,
    validate_access_log_record,
)


def _record(**overrides):
    record = access_record(
        request_id="req-1",
        method="POST",
        path="/v1/simulate",
        endpoint="simulate",
        status=200,
        latency_ms=12.3456,
    )
    record.update(overrides)
    return record


class TestAccessRecord:
    def test_shape_and_schema_tag(self):
        record = _record()
        assert record["schema"] == ACCESS_LOG_SCHEMA
        assert record["latency_ms"] == 12.346  # rounded to 3 places
        assert record["ts"] > 0
        validate_access_log_record(record)

    def test_none_annotations_are_dropped(self):
        record = access_record(
            request_id="req-2",
            method="GET",
            path="/v1/stats",
            endpoint="stats",
            status=200,
            latency_ms=0.5,
            cache=None,
            batched=None,
            deadline_ms=None,
        )
        assert "cache" not in record
        assert "batched" not in record
        assert "deadline_ms" not in record
        validate_access_log_record(record)

    def test_error_code_and_annotations_kept(self):
        record = access_record(
            request_id="req-3",
            method="POST",
            path="/v1/simulate",
            endpoint="simulate",
            status=504,
            latency_ms=30.0,
            error_code="deadline_exceeded",
            cache="miss",
            batched=True,
            deadline_ms=25.0,
            deadline_left_ms=-5.0,
        )
        assert record["error_code"] == "deadline_exceeded"
        assert record["cache"] == "miss"
        validate_access_log_record(record)


class TestRecordValidation:
    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            ({"schema": "bogus/9"}, "schema"),
            ({"request_id": ""}, "request_id"),
            ({"status": "200"}, "status"),
            ({"status": 99}, "status"),
            ({"status": True}, "status"),
            ({"latency_ms": -1.0}, "latency_ms"),
            ({"cache": "warm"}, "cache"),
            ({"batched": "yes"}, "batched"),
            ({"error_code": ""}, "error_code"),
            ({"deadline_ms": "25"}, "deadline_ms"),
        ],
    )
    def test_rejects_bad_records(self, overrides, fragment):
        with pytest.raises(SchemaError) as excinfo:
            validate_access_log_record(_record(**overrides))
        assert fragment in str(excinfo.value)

    def test_rejects_missing_required_field(self):
        record = _record()
        del record["endpoint"]
        with pytest.raises(SchemaError):
            validate_access_log_record(record)

    def test_list_wrapper_reports_line_numbers(self):
        with pytest.raises(SchemaError) as excinfo:
            validate_access_log([_record(), _record(status=99)])
        assert str(excinfo.value).startswith("line 2:")


class TestAccessLogWriter:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "logs" / "access.jsonl"  # parent auto-created
        with AccessLog(path) as log:
            log.log(_record())
            log.log(_record(request_id="req-2"))
            assert log.lines_written == 2
        records = read_access_log(path)
        assert [r["request_id"] for r in records] == ["req-1", "req-2"]
        for record in records:
            validate_access_log_record(record)

    def test_appends_to_existing_file(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with AccessLog(path) as log:
            log.log(_record())
        with AccessLog(path) as log:
            log.log(_record(request_id="req-2"))
        assert len(read_access_log(path)) == 2

    def test_close_is_idempotent_and_drops_late_writes(self, tmp_path):
        log = AccessLog(tmp_path / "access.jsonl")
        log.log(_record())
        log.close()
        log.close()
        log.log(_record(request_id="late"))  # silently dropped
        assert log.lines_written == 1
        assert len(read_access_log(log.path)) == 1


class TestValidateCli:
    def _write(self, path, records):
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )

    def test_valid_log_passes(self, tmp_path, capsys):
        path = tmp_path / "access.jsonl"
        self._write(path, [_record(), _record(request_id="req-2")])
        assert validate_cli.main(["--access-log", str(path)]) == 0
        assert "ok (2 records)" in capsys.readouterr().out

    def test_bad_line_fails_with_line_number(self, tmp_path, capsys):
        path = tmp_path / "access.jsonl"
        self._write(path, [_record(), _record(status=99)])
        assert validate_cli.main(["--access-log", str(path)]) == 1
        assert "line 2" in capsys.readouterr().err

    def test_unparseable_line_fails(self, tmp_path, capsys):
        path = tmp_path / "access.jsonl"
        path.write_text("{not json}\n", encoding="utf-8")
        assert validate_cli.main(["--access-log", str(path)]) == 1
        assert "line 1" in capsys.readouterr().err
