"""The sampling profiler (``repro.obs.profile``)."""

import threading
import time

import pytest

from repro.obs import tracing
from repro.obs.profile import (
    DEFAULT_HZ,
    OTHER_PHASE,
    PROFILE_SCHEMA,
    ProfilerActiveError,
    SamplingProfiler,
    _frame_label,
    active_profiler,
    chrome_trace,
    folded_text,
    main,
    new_profile_id,
    phase_self_seconds,
)
from repro.obs.schemas import validate_chrome_trace, validate_profile
from repro.util.jsonout import write_json


def _spin(seconds):
    """Burn CPU so the sampler has frames to catch."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(i * i for i in range(1000))


def _profile_once(hz=500, work=None, **kwargs):
    profiler = SamplingProfiler(hz=hz, **kwargs)
    with profiler:
        (work or (lambda: _spin(0.15)))()
    return profiler


class TestLifecycle:
    def test_no_sampler_thread_while_off(self):
        assert active_profiler() is None
        assert not any(
            t.name == "repro-profiler" for t in threading.enumerate()
        )
        assert tracing.phase_stacks() is None
        assert not tracing.spans_active()

    def test_start_stop_releases_the_process(self):
        profiler = SamplingProfiler(hz=100)
        profiler.start()
        try:
            assert active_profiler() is profiler
            assert tracing.phase_stacks() is not None
            assert tracing.spans_active()
        finally:
            profiler.stop()
        assert active_profiler() is None
        assert tracing.phase_stacks() is None
        assert not any(
            t.name == "repro-profiler" for t in threading.enumerate()
        )

    def test_second_profiler_is_rejected(self):
        with SamplingProfiler(hz=100):
            with pytest.raises(ProfilerActiveError, match="already sampling"):
                SamplingProfiler(hz=100).start()

    def test_stop_is_idempotent(self):
        profiler = _profile_once()
        profiler.stop()
        assert active_profiler() is None

    def test_hz_bounds(self):
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=1001)
        assert 1 <= DEFAULT_HZ <= 1000

    def test_profile_ids_are_fresh(self):
        first, second = new_profile_id(), new_profile_id()
        assert first != second
        assert first.startswith("prof-")


class TestDocument:
    def test_document_validates_and_catches_samples(self):
        profiler = _profile_once()
        document = profiler.document()
        validate_profile(document)
        assert document["schema"] == PROFILE_SCHEMA
        assert document["samples"] > 0
        assert document["thread_samples"] > 0
        assert document["duration_s"] > 0
        assert document["heap"] is None

    def test_zero_sample_window_still_validates(self):
        """A window too short to catch one sample (fast --quick runs)
        must still produce a valid document: zeroed (other) row, empty
        folded stacks."""
        profiler = SamplingProfiler(hz=1)
        profiler.start()
        profiler.stop()
        document = profiler.document()
        validate_profile(document)
        assert document["phases"] == {
            "(other)": {"samples": 0, "self_s": 0.0, "fraction": 0.0}
        }
        assert document["folded"] == []

    def test_folded_lines_are_sorted_and_parseable(self):
        document = _profile_once().document()
        assert document["folded"] == sorted(document["folded"])
        for line in document["folded"]:
            frames, _, count = line.rpartition(" ")
            assert int(count) > 0
            assert frames.split(";")[0]  # thread name
        text = folded_text(document)
        assert text.endswith("\n")
        assert text.splitlines() == document["folded"]

    def test_phase_attribution_joins_spans(self):
        def work():
            with tracing.span("test.hot_phase"):
                _spin(0.2)

        document = _profile_once(work=work).document()
        phases = document["phases"]
        assert "test.hot_phase" in phases
        # The worker spends essentially the whole window inside the span.
        assert phases["test.hot_phase"]["samples"] > 0
        table = phase_self_seconds(document)
        assert table["test.hot_phase"] == phases["test.hot_phase"]["self_s"]
        total_fraction = sum(p["fraction"] for p in phases.values())
        assert total_fraction == pytest.approx(1.0, abs=0.01)

    def test_innermost_span_wins(self):
        def work():
            with tracing.span("outer"):
                with tracing.span("inner"):
                    _spin(0.2)

        phases = _profile_once(work=work).document()["phases"]
        assert phases["inner"]["samples"] > 0
        assert phases.get("outer", {"samples": 0})["samples"] <= phases[
            "inner"
        ]["samples"]

    def test_unspanned_samples_fall_into_other(self):
        phases = _profile_once().document()["phases"]
        assert OTHER_PHASE in phases

    def test_heap_snapshot_reports_top_sites(self):
        def work():
            keep = [bytearray(4096) for _ in range(200)]
            _spin(0.1)
            return keep

        document = _profile_once(work=work, heap=True, heap_top=5).document()
        validate_profile(document)
        heap = document["heap"]
        assert heap["peak_kib"] > 0
        assert 1 <= len(heap["top"]) <= 5
        assert all(":" in site["site"] for site in heap["top"])

    def test_frame_labels_are_repo_relative(self):
        assert (
            _frame_label("/home/x/repo/src/repro/cpu/replay.py", "replay")
            == "repro/cpu/replay.py:replay"
        )
        assert (
            _frame_label("/usr/lib/python3.11/threading.py", "run")
            == "threading.py:run"
        )
        assert ";" not in _frame_label("/a/b.py", "has;semi colon")


class TestChromeTrace:
    def test_export_validates_and_conserves_samples(self):
        document = _profile_once().document()
        trace = chrome_trace(document)
        validate_chrome_trace(trace)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert events
        period_us = 1e6 / document["hz"]
        meta = {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M"
        }
        # Each track tiles its thread's samples contiguously from ts=0, so
        # the track extent equals that thread's sample count.
        for tid, name in meta.items():
            extent = max(
                e["ts"] + e["dur"] for e in events if e["tid"] == tid
            )
            assert extent == pytest.approx(
                document["threads"][name] * period_us
            )
        # And every event's width is a whole number of sampling periods.
        for event in events:
            assert event["dur"] / period_us == pytest.approx(
                event["args"]["samples"]
            )

    def test_thread_tracks_are_labeled(self):
        trace = chrome_trace(_profile_once().document())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert any(e["args"]["name"] == "MainThread" for e in meta)


class TestExportCli:
    def test_cli_validates_and_exports(self, tmp_path, capsys):
        document = _profile_once().document()
        profile_path = tmp_path / "run.profile.json"
        write_json(profile_path, document)
        folded_path = tmp_path / "run.folded"
        trace_path = tmp_path / "run.trace.json"
        assert (
            main(
                [
                    str(profile_path),
                    "--folded",
                    str(folded_path),
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        assert "ok" in capsys.readouterr().out
        assert folded_path.read_text() == folded_text(document)
        import json

        validate_chrome_trace(json.loads(trace_path.read_text()))

    def test_cli_rejects_invalid_documents(self, tmp_path, capsys):
        bad = tmp_path / "bad.profile.json"
        write_json(bad, {"schema": "wrong"})
        assert main([str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestValidateCliProfileFlag:
    """``python -m repro.obs.validate --profile PATH``."""

    def test_accepts_a_real_profiler_document(self, tmp_path, capsys):
        from repro.obs import validate as validate_cli

        path = tmp_path / "run.profile.json"
        write_json(path, _profile_once().document())
        assert validate_cli.main(["--profile", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_rejects_a_tampered_document(self, tmp_path, capsys):
        from repro.obs import validate as validate_cli

        document = _profile_once().document()
        document["phases"] = {}  # empty phase table is invalid
        path = tmp_path / "tampered.profile.json"
        write_json(path, document)
        assert validate_cli.main(["--profile", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_flag_repeats(self, tmp_path):
        from repro.obs import validate as validate_cli

        first = tmp_path / "a.profile.json"
        second = tmp_path / "b.profile.json"
        write_json(first, _profile_once().document())
        write_json(second, _profile_once().document())
        assert (
            validate_cli.main(
                ["--profile", str(first), "--profile", str(second)]
            )
            == 0
        )


class TestPhaseSpans:
    """The tracing hook the profiler installs (``set_phase_stacks``)."""

    def test_span_is_null_object_when_everything_off(self):
        first = tracing.span("a")
        second = tracing.span("b")
        assert first is second  # the shared no-op instance

    def test_phase_span_needs_no_tracer(self):
        stacks = {}
        tracing.set_phase_stacks(stacks)
        try:
            assert tracing.spans_active()
            assert not tracing.tracing_enabled()
            with tracing.span("only.phase") as span:
                ident = threading.get_ident()
                assert stacks[ident] == ["only.phase"]
                span.set(late="args")  # accepted and dropped
            assert stacks[ident] == []
        finally:
            tracing.set_phase_stacks(None)

    def test_live_span_also_pushes_phase(self):
        stacks = {}
        tracer = tracing.enable_tracing()
        tracing.set_phase_stacks(stacks)
        try:
            with tracing.span("traced.phase"):
                assert stacks[threading.get_ident()] == ["traced.phase"]
            assert stacks[threading.get_ident()] == []
            assert tracer.events[-1]["name"] == "traced.phase"
        finally:
            tracing.set_phase_stacks(None)
            tracing.disable_tracing()
