"""The on-disk span spool and its offline consumers.

Write discipline mirrors the events store: append-only active file,
atomic rotation into checksummed segments, byte-budget pruning, and a
crash-tolerant read side (an active file without a sidecar still
validates line by line).  Appends must never raise — a broken spool
costs observability, not serving.
"""

import json
import os

from repro.obs.cli import assemble_timeline, main as obs_cli_main
from repro.obs.span_spool import (
    SPANS_SCHEMA,
    SpanSpool,
    read_spool,
    spool_files,
    validate_spool,
)
from repro.obs.schemas import SchemaError, validate_chrome_trace
from repro.obs.validate import main as validate_main

TRACE_ID = "c0ffee" + "0" * 26


def span_event(name="service.request", ts=10.0, dur=5.0, **args):
    return {
        "name": name,
        "cat": "service",
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": 1234,
        "tid": 1,
        "args": args,
    }


class TestSpoolWrites:
    def test_append_then_close_leaves_a_valid_spool(self, tmp_path):
        spool = SpanSpool(str(tmp_path))
        for i in range(5):
            spool.append(span_event(ts=float(i)))
        spool.close()
        counts = validate_spool(str(tmp_path))
        assert counts == {"segments": 1, "records": 5}
        records = list(read_spool(str(tmp_path)))
        assert [r["seq"] for r in records] == list(range(5))
        assert all(r["schema"] == SPANS_SCHEMA for r in records)
        assert all("wall_end" in r for r in records)

    def test_rotation_seals_segments_with_checksums(self, tmp_path):
        spool = SpanSpool(str(tmp_path), segment_bytes=256)
        for i in range(20):
            spool.append(span_event(ts=float(i)))
        spool.close()
        segments = [
            name
            for name in os.listdir(tmp_path)
            if name.startswith("segment-") and name.endswith(".jsonl")
        ]
        assert len(segments) > 1
        for name in segments:
            sidecar = tmp_path / (name + ".sha256.json")
            assert sidecar.exists()
            doc = json.loads(sidecar.read_text())
            assert doc["schema"] == "repro.obs.spans.segment/1"
        assert validate_spool(str(tmp_path))["records"] == 20

    def test_budget_prunes_oldest_segments(self, tmp_path):
        spool = SpanSpool(str(tmp_path), budget_bytes=600, segment_bytes=200)
        for i in range(60):
            spool.append(span_event(ts=float(i)))
        spool.close()
        counts = validate_spool(str(tmp_path))
        assert counts["records"] < 60  # the oldest segments are gone
        records = list(read_spool(str(tmp_path)))
        # What survives is the newest suffix, in order.
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 59

    def test_active_file_without_sidecar_still_validates(self, tmp_path):
        spool = SpanSpool(str(tmp_path))
        spool.append(span_event())
        # No close(): the process "died" with an unsealed active file.
        counts = validate_spool(str(tmp_path))
        assert counts == {"segments": 0, "records": 1}

    def test_fresh_spool_seals_a_predecessors_leftover(self, tmp_path):
        first = SpanSpool(str(tmp_path))
        first.append(span_event(ts=1.0))
        # Simulate SIGKILL: never closed.  A successor over the same
        # directory must seal the orphan before spooling its own spans.
        second = SpanSpool(str(tmp_path))
        second.append(span_event(ts=2.0))
        second.close()
        counts = validate_spool(str(tmp_path))
        assert counts["segments"] == 2
        assert counts["records"] == 2

    def test_unserializable_span_is_dropped_not_raised(self, tmp_path):
        spool = SpanSpool(str(tmp_path))
        spool.append(span_event(bad=object()))  # not JSON-serializable
        spool.append(span_event())
        spool.close()
        assert spool.dropped == 1
        assert validate_spool(str(tmp_path))["records"] == 1

    def test_corrupt_segment_fails_validation(self, tmp_path):
        spool = SpanSpool(str(tmp_path), segment_bytes=64)
        for i in range(4):
            spool.append(span_event(ts=float(i)))
        spool.close()
        segment = sorted(
            p for p in tmp_path.iterdir() if p.name.startswith("segment-")
            and p.suffix == ".jsonl"
        )[0]
        segment.write_text(segment.read_text().replace("service", "corrupt"))
        try:
            validate_spool(str(tmp_path))
        except SchemaError as error:
            assert "checksum" in str(error)
        else:
            raise AssertionError("tampered segment validated")

    def test_validate_cli_accepts_and_rejects(self, tmp_path, capsys):
        spool_dir = tmp_path / "spans"
        spool_dir.mkdir()
        spool = SpanSpool(str(spool_dir))
        spool.append(span_event(trace_id=TRACE_ID, span_id="b" * 16))
        spool.close()
        assert validate_main(["--spans", str(spool_dir)]) == 0
        assert "1 spans" in capsys.readouterr().out
        (spool_dir / "active.jsonl").write_text('{"schema": "nope"}\n')
        assert validate_main(["--spans", str(spool_dir)]) == 1


class TestOfflineTimeline:
    def _fleet_spools(self, root):
        for name, base_wall in (("router", 100.0), ("w0", 100.002)):
            spool = SpanSpool(str(root / name))
            event = span_event(
                name="service.forward" if name == "router" else "service.request",
                ts=0.0,
                dur=2000.0,
                trace_id=TRACE_ID,
            )
            spool.append(event)
            # Pin wall_end deterministically after append stamped it.
            spool.close()
        return root

    def test_merges_spools_into_process_tracks(self, tmp_path):
        self._fleet_spools(tmp_path)
        document = assemble_timeline(str(tmp_path))
        validate_chrome_trace(document)
        names = {
            event["args"]["name"]: event["pid"]
            for event in document["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert names["router"] == 0  # the router track leads
        assert names["w0"] == 1
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2
        assert all(e["ts"] >= 0.0 for e in spans)
        assert min(e["ts"] for e in spans) == 0.0
        assert {e["pid"] for e in spans} == {0, 1}
        assert document["sources"] == {"router": 1, "w0": 1}

    def test_single_spool_directory_is_one_track(self, tmp_path):
        spool = SpanSpool(str(tmp_path))
        spool.append(span_event())
        spool.close()
        document = assemble_timeline(str(tmp_path))
        assert sum(document["sources"].values()) == 1

    def test_campaign_filter_keeps_the_cross_process_tree(self, tmp_path):
        from repro.campaign import spec as spec_mod

        campaign_dir = tmp_path / "campaign"
        campaign_dir.mkdir()
        spec = {"traces": [], "caches": [], "policies": []}
        tag = spec_mod.campaign_id(spec)[:12]
        (campaign_dir / "spec.json").write_text(json.dumps(spec))

        spool_root = tmp_path / "spans"
        router = SpanSpool(str(spool_root / "router"))
        router.append(
            span_event(name="campaign.point", campaign=tag, trace_id=TRACE_ID)
        )
        router.append(span_event(name="unrelated", trace_id="f" * 32))
        router.close()
        worker = SpanSpool(str(spool_root / "w0"))
        # Same tree as the campaign point (shared trace id), no tag —
        # the forwarded point's worker-side span must ride along.
        worker.append(span_event(trace_id=TRACE_ID))
        worker.append(span_event(name="other", trace_id="e" * 32))
        worker.close()

        document = assemble_timeline(str(spool_root), str(campaign_dir))
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        names = sorted(e["name"] for e in spans)
        assert names == ["campaign.point", "service.request"]
        assert document["otherData"]["campaign"] == tag

    def test_cli_writes_the_document(self, tmp_path, capsys):
        self._fleet_spools(tmp_path / "spans")
        out = tmp_path / "timeline.json"
        status = obs_cli_main(
            ["timeline", "--spool", str(tmp_path / "spans"), "--out", str(out)]
        )
        assert status == 0
        assert "2 spans across 2 process tracks" in capsys.readouterr().out
        validate_chrome_trace(json.loads(out.read_text()))

    def test_cli_fails_cleanly_on_an_empty_root(self, tmp_path):
        assert obs_cli_main(["timeline", "--spool", str(tmp_path)]) == 1

    def test_spool_files_orders_segments_before_active(self, tmp_path):
        spool = SpanSpool(str(tmp_path), segment_bytes=64)
        for i in range(4):
            spool.append(span_event(ts=float(i)))
        files = [os.path.basename(str(f)) for f in spool_files(str(tmp_path))]
        assert files[-1] == "active.jsonl"
        assert all(f.startswith("segment-") for f in files[:-1])
