"""Span tracing: nesting, disabled no-ops, export schema, worker merge."""

import json

import pytest

from repro.obs import schemas, tracing


@pytest.fixture(autouse=True)
def _clean_tracer():
    tracing.disable_tracing()
    yield
    tracing.disable_tracing()


class TestDisabled:
    def test_span_is_shared_noop(self):
        assert not tracing.tracing_enabled()
        first = tracing.span("a", x=1)
        second = tracing.span("b")
        assert first is second  # one shared object, nothing allocated

    def test_noop_span_accepts_usage(self):
        with tracing.span("a", x=1) as sp:
            sp.set(y=2)
        assert tracing.current_tracer() is None


class TestSpans:
    def test_nesting_by_containment(self):
        tracer = tracing.enable_tracing()
        with tracing.span("outer", kind="parent"):
            with tracing.span("inner"):
                pass
            with tracing.span("inner"):
                pass
        inner_a, inner_b, outer = tracer.events
        assert outer["name"] == "outer"
        # Children close before the parent and lie within its interval.
        for inner in (inner_a, inner_b):
            assert inner["ts"] >= outer["ts"]
            assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
        assert inner_a["ts"] + inner_a["dur"] <= inner_b["ts"]

    def test_args_and_late_set(self):
        tracer = tracing.enable_tracing()
        with tracing.span("work", trace="nasa7") as sp:
            sp.set(fills=42)
        (event,) = tracer.events
        assert event["args"] == {"trace": "nasa7", "fills": 42}

    def test_span_helper_routes_to_active_tracer(self):
        tracer = tracing.enable_tracing()
        assert tracing.tracing_enabled()
        with tracing.span("x"):
            pass
        assert len(tracer.events) == 1
        tracing.disable_tracing()
        with tracing.span("y"):
            pass
        assert len(tracer.events) == 1  # nothing recorded after disable


class TestExport:
    def test_chrome_trace_validates_and_round_trips(self, tmp_path):
        tracer = tracing.enable_tracing()
        with tracing.span("phase1.extract", trace="swm256", line_size=32):
            pass
        path = tracer.write(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        schemas.validate_chrome_trace(document)
        names = [e["name"] for e in document["traceEvents"]]
        assert "phase1.extract" in names
        assert "thread_name" in names  # viewer track label
        assert document["displayTimeUnit"] == "ms"

    def test_complete_events_have_nonnegative_duration(self):
        tracer = tracing.enable_tracing()
        with tracing.span("a"):
            pass
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["cat"] == tracing.CATEGORY

    def test_adopt_moves_worker_events_to_own_track(self):
        tracer = tracing.enable_tracing()
        worker_events = [
            {
                "name": "runner.run",
                "cat": "repro",
                "ph": "X",
                "ts": 0.0,
                "dur": 10.0,
                "pid": 0,
                "tid": 0,
                "args": {},
            }
        ]
        tracer.adopt(worker_events, tid=3, name="worker:figure1")
        assert tracer.events[-1]["tid"] == 3
        document = tracer.chrome_trace()
        schemas.validate_chrome_trace(document)
        labels = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert "worker:figure1" in labels


class TestSchemaRejects:
    def test_missing_trace_events(self):
        with pytest.raises(schemas.SchemaError, match="traceEvents"):
            schemas.validate_chrome_trace({})

    def test_bad_duration(self):
        bad = {
            "traceEvents": [
                {
                    "name": "x",
                    "ph": "X",
                    "ts": 0,
                    "dur": -1,
                    "pid": 0,
                    "tid": 0,
                }
            ]
        }
        with pytest.raises(schemas.SchemaError, match="dur"):
            schemas.validate_chrome_trace(bad)
