"""Live observability primitives: context, ring tracer, SLIs, exposition."""

import pytest

from repro.obs import live, tracing
from repro.obs.live import (
    QuantileSketch,
    RingTracer,
    RollingWindow,
    parse_exposition,
    render_prometheus,
    request_id_from_header,
    trace_tail_document,
)


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    tracing.disable_tracing()
    yield
    tracing.disable_tracing()


class TestRequestIds:
    def test_minted_ids_are_distinct_hex(self):
        a, b = live.new_request_id(), live.new_request_id()
        assert a != b
        assert len(a) == 16
        int(a, 16)  # hex

    def test_header_value_honoured(self):
        assert request_id_from_header("abc-123.X:y") == "abc-123.X:y"

    def test_header_sanitized_and_clamped(self):
        assert request_id_from_header("a b\r\nc") == "abc"
        long = "x" * 200
        assert request_id_from_header(long) == "x" * live.MAX_REQUEST_ID_LEN

    def test_garbage_header_mints_fresh_id(self):
        minted = request_id_from_header("\r\n  ")
        assert len(minted) == 16

    def test_missing_header_mints_fresh_id(self):
        assert len(request_id_from_header(None)) == 16


class TestRequestContext:
    def test_current_id_inside_and_outside(self):
        assert live.current_request_id() is None
        with live.request_context("req-1"):
            assert live.current_request_id() == "req-1"
            with live.request_context("req-2"):
                assert live.current_request_id() == "req-2"
            assert live.current_request_id() == "req-1"
        assert live.current_request_id() is None

    def test_none_context_is_a_no_op(self):
        with live.request_context(None) as context:
            assert context is None
            assert live.current_request_id() is None

    def test_annotations_accumulate_per_request(self):
        live.annotate(lost="outside a request, dropped")
        assert live.current_annotations() == {}
        with live.request_context("req-3"):
            live.annotate(cache="miss")
            live.annotate(batched=True)
            assert live.current_annotations() == {
                "cache": "miss",
                "batched": True,
            }
        assert live.current_annotations() == {}

    def test_span_args_carry_the_request_id(self):
        tracer = tracing.install_tracer(RingTracer(capacity=16))
        with live.request_context("req-4"):
            with tracing.span("unit.work", step=1):
                pass
        with tracing.span("unit.outside"):
            pass
        events = {e["name"]: e for e in tracer.events}
        assert events["unit.work"]["args"] == {
            "request_id": "req-4",
            "step": 1,
        }
        assert "request_id" not in events["unit.outside"]["args"]

    def test_explicit_span_arg_wins_over_ambient(self):
        tracer = tracing.install_tracer(RingTracer(capacity=16))
        with live.request_context("ambient"):
            with tracing.span("unit.explicit", request_id="explicit"):
                pass
        assert tracer.events[0]["args"]["request_id"] == "explicit"


class TestRingTracer:
    def test_capacity_bounds_events_but_counts_all(self):
        tracer = RingTracer(capacity=4)
        for i in range(10):
            with tracer.span("s", i=i):
                pass
        assert len(tracer.events) == 4
        assert tracer.recorded == 10
        assert [e["args"]["i"] for e in tracer.tail()] == [6, 7, 8, 9]
        assert [e["args"]["i"] for e in tracer.tail(2)] == [8, 9]
        assert tracer.tail(0) == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)

    def test_tail_document_is_a_chrome_trace(self):
        tracer = RingTracer(capacity=8)
        with tracer.span("a"):
            pass
        document = trace_tail_document(tracer, last=5)
        assert document["schema"] == live.TRACE_TAIL_SCHEMA
        assert document["enabled"] is True
        assert document["ring"] == {"capacity": 8, "recorded": 1}
        names = [e["name"] for e in document["traceEvents"]]
        assert "thread_name" in names and "a" in names

    def test_tail_document_without_tracer(self):
        document = trace_tail_document(None)
        assert document["enabled"] is False
        assert document["traceEvents"] == []

    def test_tail_document_plain_tracer(self):
        tracer = tracing.Tracer()
        with tracer.span("b"):
            pass
        document = trace_tail_document(tracer, last=10)
        assert document["ring"]["capacity"] is None
        assert document["ring"]["recorded"] == 1


class TestQuantileSketch:
    def test_empty_sketch_reports_zero(self):
        assert QuantileSketch().quantile(0.99) == 0.0

    def test_quantiles_within_bin_resolution(self):
        sketch = QuantileSketch()
        values = [float(v) for v in range(1, 101)]  # 1..100 ms
        for value in values:
            sketch.add(value)
        for q, expected in ((0.5, 50.0), (0.95, 95.0), (0.99, 99.0)):
            reported = sketch.quantile(q)
            assert expected <= reported <= expected * QuantileSketch.GROWTH * 1.01

    def test_monotone_in_q(self):
        sketch = QuantileSketch()
        for value in (0.1, 1.0, 10.0, 100.0, 1000.0):
            sketch.add(value)
        quantiles = [sketch.quantile(q) for q in (0.1, 0.5, 0.9, 1.0)]
        assert quantiles == sorted(quantiles)

    def test_out_of_range_values_clamp(self):
        sketch = QuantileSketch()
        sketch.add(0.0)
        sketch.add(1e9)
        assert sketch.total == 2
        assert sketch.quantile(1.0) == sketch.upper_edge(QuantileSketch.N_BINS - 1)

    def test_merge_matches_combined(self):
        a, b, combined = QuantileSketch(), QuantileSketch(), QuantileSketch()
        for value in (1.0, 2.0, 3.0):
            a.add(value)
            combined.add(value)
        for value in (10.0, 20.0):
            b.add(value)
            combined.add(value)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.total == combined.total

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            QuantileSketch().quantile(1.5)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestRollingWindow:
    def test_counts_and_errors_within_window(self):
        clock = FakeClock()
        window = RollingWindow(window_s=60.0, bucket_s=1.0, clock=clock)
        window.record("simulate", 200, 5.0)
        window.record("simulate", 504, 25.0)
        window.record("health", 200, 0.1)
        summary = window.summary()
        assert summary["simulate"]["count"] == 2
        assert summary["simulate"]["errors"] == 1
        assert summary["health"]["errors"] == 0
        assert list(summary) == sorted(summary)

    def test_4xx_is_not_an_error(self):
        clock = FakeClock()
        window = RollingWindow(clock=clock)
        window.record("simulate", 429, 1.0)
        assert window.summary()["simulate"]["errors"] == 0

    def test_old_buckets_expire(self):
        clock = FakeClock()
        window = RollingWindow(window_s=10.0, bucket_s=1.0, clock=clock)
        window.record("simulate", 200, 1.0)
        clock.now += 5.0
        window.record("simulate", 200, 2.0)
        assert window.summary()["simulate"]["count"] == 2
        clock.now += 6.0  # first record now outside the 10 s window
        assert window.summary()["simulate"]["count"] == 1
        clock.now += 20.0
        assert window.summary() == {}

    def test_quantiles_reflect_window_only(self):
        clock = FakeClock()
        window = RollingWindow(window_s=10.0, bucket_s=1.0, clock=clock)
        window.record("simulate", 200, 1000.0)  # will expire
        clock.now += 11.0
        for _ in range(20):
            window.record("simulate", 200, 1.0)
        p99 = window.summary()["simulate"]["quantiles_ms"]["0.99"]
        assert p99 < 2.0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            RollingWindow(window_s=1.0, bucket_s=2.0)


class TestExposition:
    def _snapshot(self):
        return {
            "counters": {
                "service.requests{endpoint=simulate,status=200}": 7,
                "engine.replay.calls": 3,
            },
            "histograms": {
                "service.latency_ms{endpoint=simulate}": {
                    "count": 7,
                    "sum": 35.0,
                    "min": 1.0,
                    "max": 20.0,
                }
            },
        }

    def _window(self):
        clock = FakeClock()
        window = RollingWindow(clock=clock)
        for latency in (1.0, 2.0, 50.0):
            window.record("simulate", 200, latency)
        return window.summary()

    def test_round_trips_through_parser(self):
        text = render_prometheus(
            self._snapshot(), self._window(), {"service.ready": 1.0}
        )
        assert text.endswith("\n")
        samples = parse_exposition(text)
        assert samples["repro_service_requests_total"] == [
            ({"endpoint": "simulate", "status": "200"}, 7.0)
        ]
        assert samples["repro_engine_replay_calls_total"] == [({}, 3.0)]
        assert samples["repro_service_latency_ms_count"] == [
            ({"endpoint": "simulate"}, 7.0)
        ]
        assert samples["repro_service_ready"] == [({}, 1.0)]
        quantiles = {
            labels["quantile"]: value
            for labels, value in samples["repro_sli_request_latency_ms"]
            if labels["endpoint"] == "simulate"
        }
        assert set(quantiles) == {"0.5", "0.95", "0.99"}
        assert quantiles["0.5"] <= quantiles["0.99"]
        assert samples["repro_sli_requests_window"] == [
            ({"endpoint": "simulate"}, 3.0)
        ]

    def test_every_family_is_typed(self):
        text = render_prometheus(self._snapshot(), self._window(), {})
        typed = {
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE")
        }
        sampled = set(parse_exposition(text))
        # every sampled family has a TYPE line (summary children _count/
        # _sum are covered by their parent family declaration)
        for name in sampled:
            base = name
            for suffix in ("_count", "_sum", "_min", "_max"):
                if name.endswith(suffix) and name not in typed:
                    base = name[: -len(suffix)]
                    break
            assert base in typed or name in typed

    def test_label_values_escaped(self):
        text = render_prometheus(
            {"counters": {'weird{path=a"b\\c}': 1}, "histograms": {}}
        )
        samples = parse_exposition(text)
        [(labels, value)] = samples["repro_weird_total"]
        assert labels == {"path": 'a"b\\c'}

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("this is not a metric line\n")
        with pytest.raises(ValueError):
            parse_exposition("repro_ok 1")  # missing trailing newline


class TestEngineCounterExposition:
    """Audit: the engine's dispatch and corruption counters must render
    as labelled Prometheus families, exactly as the emit sites write
    them (events_store, replay, reuse_store)."""

    def _registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        # The same (name, labels) shapes the engine emits:
        registry.inc(
            "engine.phase1.dispatches", engine="reuse", reason="lru_wb_wa"
        )
        registry.inc(
            "engine.phase1.dispatches", engine="step", reason="disabled"
        )
        registry.inc("engine.step_fallback.dispatches", reason="bus_locked")
        registry.inc("events_store.corrupt_reextract")
        registry.inc("reuse_store.corrupt_reextract")
        return registry

    def test_dispatch_counters_render_with_labels(self):
        text = render_prometheus(self._registry().snapshot())
        samples = parse_exposition(text)
        phase1 = dict(
            (tuple(sorted(labels.items())), value)
            for labels, value in samples["repro_engine_phase1_dispatches_total"]
        )
        assert phase1[
            (("engine", "reuse"), ("reason", "lru_wb_wa"))
        ] == 1.0
        assert phase1[(("engine", "step"), ("reason", "disabled"))] == 1.0
        assert samples["repro_engine_step_fallback_dispatches_total"] == [
            ({"reason": "bus_locked"}, 1.0)
        ]

    def test_corruption_counters_render(self):
        samples = parse_exposition(
            render_prometheus(self._registry().snapshot())
        )
        assert samples["repro_events_store_corrupt_reextract_total"] == [
            ({}, 1.0)
        ]
        assert samples["repro_reuse_store_corrupt_reextract_total"] == [
            ({}, 1.0)
        ]

    def test_module_level_inc_reaches_the_exposition(self):
        """The engines emit through ``metrics.inc(...)`` with keyword
        labels; that path must land in the exposition verbatim."""
        from repro.obs import metrics as metrics_mod

        registry = metrics_mod.enable_metrics()
        try:
            metrics_mod.inc(
                "engine.phase1.dispatches", engine="reuse", reason="lru_wb_wa"
            )
        finally:
            metrics_mod.disable_metrics()
        samples = parse_exposition(render_prometheus(registry.snapshot()))
        assert samples["repro_engine_phase1_dispatches_total"] == [
            ({"engine": "reuse", "reason": "lru_wb_wa"}, 1.0)
        ]
