"""Trace context: W3C traceparent parsing, propagation, exemplars.

The hardening contract is all-or-nothing: a traceparent that fails any
check — shape, length, hex case, all-zero ids — is ignored wholesale
and a fresh context minted, unlike request ids (which are cleaned
character-wise).  A garbage header must never corrupt the span tree.
"""

import pytest

from repro.obs import live, tracing
from repro.obs.live import (
    MAX_TRACEPARENT_LEN,
    RollingWindow,
    current_traceparent,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
    render_prometheus,
    trace_context_from_header,
)

TRACE_ID = "4bf92f3577b34da6a3ce929d0e0e4736"
SPAN_ID = "00f067aa0ba902b7"
VALID = f"00-{TRACE_ID}-{SPAN_ID}-01"


class TestParseTraceparent:
    def test_valid_header_parses(self):
        assert parse_traceparent(VALID) == (TRACE_ID, SPAN_ID)

    def test_flags_byte_is_accepted_but_ignored(self):
        assert parse_traceparent(f"00-{TRACE_ID}-{SPAN_ID}-00") == (
            TRACE_ID,
            SPAN_ID,
        )

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "00",
            "garbage",
            VALID + "-extra",  # oversized: trailing field
            "01-" + VALID[3:],  # unknown version
            f"00-{TRACE_ID.upper()}-{SPAN_ID}-01",  # uppercase hex
            f"00-{TRACE_ID}-{SPAN_ID.upper()}-01",
            f"00-{TRACE_ID[:-1]}-{SPAN_ID}-01",  # short trace id
            f"00-{TRACE_ID}x-{SPAN_ID}-01",  # long trace id
            f"00-{TRACE_ID}-{SPAN_ID[:-1]}-01",  # short span id
            f"00-{'0' * 32}-{SPAN_ID}-01",  # all-zero trace id
            f"00-{TRACE_ID}-{'0' * 16}-01",  # all-zero span id
            f"00-{TRACE_ID}-{SPAN_ID}-1",  # short flags
            f"00_{TRACE_ID}_{SPAN_ID}_01",  # wrong separators
            "x" * 1000,  # oversized garbage
        ],
    )
    def test_malformed_headers_are_rejected(self, header):
        assert parse_traceparent(header) is None

    def test_valid_header_is_exactly_the_max_length(self):
        assert len(VALID) == MAX_TRACEPARENT_LEN

    def test_roundtrip_through_format(self):
        assert parse_traceparent(format_traceparent(TRACE_ID, SPAN_ID)) == (
            TRACE_ID,
            SPAN_ID,
        )


class TestTraceContextFromHeader:
    def test_valid_header_adopts_both_ids(self):
        assert trace_context_from_header(VALID) == (TRACE_ID, SPAN_ID)

    def test_invalid_header_mints_a_fresh_rootless_context(self):
        trace_id, parent = trace_context_from_header("not-a-traceparent")
        assert len(trace_id) == 32
        assert int(trace_id, 16) != 0
        assert parent == ""

    def test_missing_header_mints_too(self):
        trace_id, parent = trace_context_from_header(None)
        assert len(trace_id) == 32
        assert parent == ""

    def test_fresh_mints_are_distinct(self):
        assert new_trace_id() != new_trace_id()


class TestContextPropagation:
    def test_no_ambient_context_by_default(self):
        assert tracing.current_trace_context() is None
        assert current_traceparent() is None

    def test_context_manager_installs_and_restores(self):
        with tracing.trace_context((TRACE_ID, SPAN_ID)):
            assert tracing.current_trace_context() == (TRACE_ID, SPAN_ID)
        assert tracing.current_trace_context() is None

    def test_none_context_is_a_no_op(self):
        with tracing.trace_context(None):
            assert tracing.current_trace_context() is None

    def test_spans_mint_ids_and_chain_parents(self):
        tracer = tracing.enable_tracing()
        try:
            with tracing.trace_context((TRACE_ID, SPAN_ID)):
                with tracing.span("outer"):
                    outer_ctx = tracing.current_trace_context()
                    with tracing.span("inner"):
                        pass
        finally:
            tracing.disable_tracing()
        events = {e["name"]: e for e in tracer.events}
        outer, inner = events["outer"], events["inner"]
        assert outer["args"]["trace_id"] == TRACE_ID
        assert outer["args"]["parent_span_id"] == SPAN_ID
        assert inner["args"]["trace_id"] == TRACE_ID
        # The inner span's parent is the outer span, which re-pointed
        # the ambient context at itself while open.
        assert inner["args"]["parent_span_id"] == outer["args"]["span_id"]
        assert outer_ctx == (TRACE_ID, outer["args"]["span_id"])
        assert len(outer["args"]["span_id"]) == 16
        assert outer["args"]["span_id"] != inner["args"]["span_id"]

    def test_rootless_context_has_no_parent_field(self):
        tracer = tracing.enable_tracing()
        try:
            with tracing.trace_context((TRACE_ID, "")):
                with tracing.span("root"):
                    pass
        finally:
            tracing.disable_tracing()
        (event,) = [e for e in tracer.events if e["name"] == "root"]
        assert event["args"]["trace_id"] == TRACE_ID
        assert "parent_span_id" not in event["args"]

    def test_spans_outside_a_context_stay_untagged(self):
        tracer = tracing.enable_tracing()
        try:
            with tracing.span("plain"):
                pass
        finally:
            tracing.disable_tracing()
        (event,) = [e for e in tracer.events if e["name"] == "plain"]
        assert "trace_id" not in event.get("args", {})

    def test_current_traceparent_names_the_open_span(self):
        tracing.enable_tracing()
        try:
            with tracing.trace_context((TRACE_ID, SPAN_ID)):
                with tracing.span("forward"):
                    header = current_traceparent()
        finally:
            tracing.disable_tracing()
        trace_id, span_id = parse_traceparent(header)
        assert trace_id == TRACE_ID
        assert span_id != SPAN_ID  # the forward span, not the inbound parent

    def test_current_traceparent_mints_a_span_id_when_rootless(self):
        # Ring disabled: no live span ever opens, but the trace id must
        # still cross the wire with a well-formed parent field.
        with tracing.trace_context((TRACE_ID, "")):
            header = current_traceparent()
        trace_id, span_id = parse_traceparent(header)
        assert trace_id == TRACE_ID
        assert len(span_id) == 16


class TestLatencyExemplars:
    def test_p99_line_carries_the_slowest_trace_id(self):
        window = RollingWindow(window_s=60.0, bucket_s=60.0)
        for i in range(10):
            window.record("simulate", 200, float(i), trace_id=None)
        window.record("simulate", 200, 80.0, trace_id=TRACE_ID)
        window.record("simulate", 200, 5.0, trace_id="a" * 32)
        summary = window.summary()
        exemplar = summary["simulate"]["exemplar"]
        assert exemplar["trace_id"] == TRACE_ID
        assert exemplar["latency_ms"] == pytest.approx(80.0)
        text = render_prometheus(
            {"counters": {}, "histograms": {}}, summary, {}
        )
        (p99_line,) = [
            line
            for line in text.splitlines()
            if 'quantile="0.99"' in line and "simulate" in line
        ]
        assert f'# {{trace_id="{TRACE_ID}"}}' in p99_line
        live.parse_exposition(text)  # exemplar syntax stays parseable

    def test_untraced_windows_have_no_exemplar(self):
        window = RollingWindow(window_s=60.0, bucket_s=60.0)
        window.record("simulate", 200, 3.0)
        assert "exemplar" not in window.summary()["simulate"]
