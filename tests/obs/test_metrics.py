"""Metrics registry: keys, merge determinism, Eq. (2) breakdown."""

import json

import pytest

from repro.cache.cache import CacheConfig
from repro.core.stalling import StallPolicy
from repro.cpu.replay import simulate
from repro.memory.mainmem import MainMemory
from repro.obs import metrics, schemas
from repro.trace.spec92 import spec92_trace


@pytest.fixture(autouse=True)
def _clean_registry():
    metrics.disable_metrics()
    yield
    metrics.disable_metrics()


class TestRegistry:
    def test_key_canonicalizes_label_order(self):
        registry = metrics.MetricsRegistry()
        registry.inc("cache.hits", 3, trace="swm256", geometry="8192B")
        registry.inc("cache.hits", 2, geometry="8192B", trace="swm256")
        key = "cache.hits{geometry=8192B,trace=swm256}"
        assert registry.snapshot()["counters"] == {key: 5}

    def test_histograms_track_count_sum_min_max(self):
        registry = metrics.MetricsRegistry()
        for value in (4.0, 1.0, 9.0):
            registry.observe("phi", value)
        hist = registry.snapshot()["histograms"]["phi"]
        assert hist == {"count": 3, "sum": 14.0, "min": 1.0, "max": 9.0}

    def test_merge_equals_recording_in_one_registry(self):
        parts = []
        for chunk in ((1.0, 2.0), (3.0,)):
            registry = metrics.MetricsRegistry()
            for value in chunk:
                registry.inc("calls")
                registry.observe("latency", value)
            parts.append(registry.snapshot())
        merged = metrics.MetricsRegistry()
        for snapshot in parts:
            merged.merge(snapshot)
        whole = metrics.MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            whole.inc("calls")
            whole.observe("latency", value)
        assert merged.to_json() == whole.to_json()

    def test_to_json_is_sorted_and_validates(self):
        registry = metrics.MetricsRegistry()
        registry.inc("z.last")
        registry.inc("a.first")
        registry.observe("h", 1.5)
        document = json.loads(registry.to_json())
        schemas.validate_metrics(document)
        assert list(document["counters"]) == ["a.first", "z.last"]

    def test_counter_reads_back_with_labels(self):
        registry = metrics.MetricsRegistry()
        registry.inc("hits", 7, trace="nasa7")
        assert registry.counter("hits", trace="nasa7") == 7
        assert registry.counter("hits") == 0


class TestModuleHelpers:
    def test_noop_when_disabled(self):
        assert not metrics.metrics_enabled()
        metrics.inc("anything", 5)
        metrics.observe("anything", 5.0)
        assert metrics.current_metrics() is None

    def test_records_when_enabled(self):
        registry = metrics.enable_metrics()
        metrics.inc("calls")
        metrics.observe("latency", 2.0)
        assert registry.counter("calls") == 1
        assert metrics.current_metrics() is registry
        metrics.disable_metrics()
        metrics.inc("calls")
        assert registry.counter("calls") == 1


def _simulated(beta, policy=StallPolicy.FULL_STALL, depth=None):
    trace = spec92_trace("swm256", 2_000, seed=3)
    return simulate(
        trace,
        CacheConfig(total_bytes=1024, line_size=32, associativity=2),
        MainMemory(beta, 4),
        policy=policy,
        write_buffer_depth=depth,
    )


class TestEq2:
    def test_breakdown_sums_to_total_on_real_replay(self):
        result = _simulated(8.0)
        breakdown = metrics.eq2_breakdown(result)
        terms = (
            breakdown["execute_cycles"]
            + breakdown["read_stall_cycles"]
            + breakdown["flush_stall_cycles"]
            + breakdown["write_buffer_stall_cycles"]
        )
        assert terms == breakdown["total_cycles"] == result.cycles

    def test_breakdown_holds_for_fractional_beta(self):
        # Dyadic beta keeps every term exactly representable.
        result = _simulated(2.5)
        breakdown = metrics.eq2_breakdown(result)
        assert breakdown["total_cycles"] == result.cycles

    def test_breakdown_holds_with_write_buffer(self):
        result = _simulated(8.0, depth=4)
        breakdown = metrics.eq2_breakdown(result)
        assert breakdown["total_cycles"] == result.cycles
        assert breakdown["write_buffer_stall_cycles"] >= 0

    def test_mismatch_raises(self):
        class Broken:
            cycles = 100.0
            read_miss_stall_cycles = 10.0
            flush_stall_cycles = float("nan")  # poisons reconstruction
            write_stall_cycles = 0.0
            instructions = 50

        with pytest.raises(metrics.Eq2MismatchError):
            metrics.eq2_breakdown(Broken())

    def test_record_timing_accumulates_counters(self):
        registry = metrics.enable_metrics()
        result = _simulated(8.0)
        # simulate() already recorded once; record again explicitly.
        metrics.record_timing("replay", result)
        assert registry.counter("engine.replay.calls") >= 1
        assert registry.counter("eq2.total_cycles") > 0
        for name in metrics.EQ2_TERMS:
            assert name in registry.snapshot()["counters"]

    def test_record_timing_noop_when_disabled(self):
        result = _simulated(8.0)
        metrics.record_timing("replay", result)  # must not raise
        assert metrics.current_metrics() is None


class TestSchemaRejects:
    def test_wrong_schema_tag(self):
        with pytest.raises(schemas.SchemaError, match="schema"):
            schemas.validate_metrics(
                {"schema": "other/9", "counters": {}, "histograms": {}}
            )

    def test_histogram_min_above_max(self):
        bad = {
            "schema": metrics.SNAPSHOT_SCHEMA,
            "counters": {},
            "histograms": {
                "h": {"count": 1, "sum": 1.0, "min": 5.0, "max": 1.0}
            },
        }
        with pytest.raises(schemas.SchemaError, match="min"):
            schemas.validate_metrics(bad)
