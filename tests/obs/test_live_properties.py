"""Property tests for the SLI primitives (hypothesis).

Pins the boundary behaviour the example tests can't sweep: quantile
extremes (empty sketch, ``q`` exactly 0 and 1, bin-edge values) and
rolling-window pruning across arbitrary clock schedules.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.obs.live import QuantileSketch, RollingWindow

# Latencies across the sketch's full dynamic range, plus exact bin
# edges (MIN * GROWTH**k) where float rounding in the log-bin mapping
# is likeliest to slip by one.
_EDGE_VALUES = [
    QuantileSketch.MIN_VALUE_MS * QuantileSketch.GROWTH**k
    for k in range(0, QuantileSketch.N_BINS + 2, 7)
]
latencies = st.one_of(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
    st.sampled_from(_EDGE_VALUES),
)
qs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestQuantileSketchProperties:
    @given(q=qs)
    def test_empty_sketch_is_zero_for_any_q(self, q):
        assert QuantileSketch().quantile(q) == 0.0

    @given(values=st.lists(latencies, min_size=1, max_size=64), q=qs)
    def test_quantile_bounded_by_extremes(self, values, q):
        sketch = QuantileSketch()
        for value in values:
            sketch.add(value)
        assert (
            sketch.quantile(0.0)
            <= sketch.quantile(q)
            <= sketch.quantile(1.0)
        )

    @given(values=st.lists(latencies, min_size=1, max_size=64))
    def test_q1_covers_the_maximum(self, values):
        """quantile(1.0) reports a bin upper edge at or above every
        observation (modulo float rounding at exact bin edges)."""
        sketch = QuantileSketch()
        for value in values:
            sketch.add(value)
        top = min(max(values), sketch.upper_edge(QuantileSketch.N_BINS - 1))
        assert sketch.quantile(1.0) >= top * (1.0 - 1e-9)

    @given(values=st.lists(latencies, min_size=1, max_size=64))
    def test_q0_is_positive_and_at_most_one_bin_above_the_minimum(
        self, values
    ):
        sketch = QuantileSketch()
        for value in values:
            sketch.add(value)
        q0 = sketch.quantile(0.0)
        assert q0 > 0.0
        floor = max(min(values), QuantileSketch.MIN_VALUE_MS)
        # rank-1 lands in the minimum's bin: one GROWTH step of slack.
        assert q0 <= floor * QuantileSketch.GROWTH * (1.0 + 1e-9)

    @given(
        values=st.lists(latencies, min_size=1, max_size=64),
        split=st.integers(min_value=0, max_value=64),
    )
    def test_merge_equals_bulk_add(self, values, split):
        split = min(split, len(values))
        a, b, combined = QuantileSketch(), QuantileSketch(), QuantileSketch()
        for value in values[:split]:
            a.add(value)
        for value in values[split:]:
            b.add(value)
        for value in values:
            combined.add(value)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.total == combined.total == len(values)

    @given(values=st.lists(latencies, min_size=1, max_size=32))
    def test_monotone_in_q(self, values):
        sketch = QuantileSketch()
        for value in values:
            sketch.add(value)
        grid = [i / 10 for i in range(11)]
        reported = [sketch.quantile(q) for q in grid]
        assert reported == sorted(reported)


# A schedule is a list of (advance_s, endpoint) ops: march the clock,
# then record one 200 with 1 ms latency.
schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        st.sampled_from(["simulate", "health"]),
    ),
    min_size=1,
    max_size=40,
)


class _Clock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestRollingWindowProperties:
    @settings(deadline=None)
    @given(ops=schedules)
    def test_summary_counts_match_bucket_arithmetic(self, ops):
        """The window keeps exactly the records whose bucket index is
        within ``n_buckets`` of the current one — the model the pruning
        code must implement without off-by-ones."""
        clock = _Clock()
        window = RollingWindow(window_s=10.0, bucket_s=1.0, clock=clock)
        recorded = []  # (bucket_index, endpoint)
        for advance, endpoint in ops:
            clock.now += advance
            window.record(endpoint, 200, 1.0)
            recorded.append((int(clock.now / 1.0), endpoint))
        now_index = int(clock.now / 1.0)
        floor = now_index - window.n_buckets + 1
        expected = {}
        for index, endpoint in recorded:
            if index >= floor:
                expected[endpoint] = expected.get(endpoint, 0) + 1
        summary = window.summary()
        assert {
            endpoint: entry["count"] for endpoint, entry in summary.items()
        } == expected

    @given(ops=schedules)
    def test_fresh_record_is_always_visible(self, ops):
        clock = _Clock()
        window = RollingWindow(window_s=5.0, bucket_s=0.5, clock=clock)
        for advance, endpoint in ops:
            clock.now += advance
            window.record(endpoint, 200, 1.0)
            assert window.summary()[endpoint]["count"] >= 1

    @given(ops=schedules, advance=st.floats(min_value=11.0, max_value=1e6))
    def test_window_eventually_empties(self, ops, advance):
        clock = _Clock()
        window = RollingWindow(window_s=10.0, bucket_s=1.0, clock=clock)
        for step, endpoint in ops:
            clock.now += step
            window.record(endpoint, 200, 1.0)
        clock.now += advance
        assert window.summary() == {}

    @given(
        window_s=st.floats(min_value=0.1, max_value=120.0),
        bucket_s=st.floats(min_value=0.05, max_value=120.0),
    )
    def test_geometry_validation_is_total(self, window_s, bucket_s):
        """Any (window_s, bucket_s) pair either constructs a usable
        window or raises ValueError — never a broken instance."""
        try:
            window = RollingWindow(window_s=window_s, bucket_s=bucket_s)
        except ValueError:
            assert window_s < bucket_s
            return
        assert window.n_buckets >= 1
        assert not math.isnan(window.window_s)
