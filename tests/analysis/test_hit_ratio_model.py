"""Hit-ratio versus cache-size models."""

import pytest

from repro.analysis.hit_ratio_model import (
    HitRatioCurve,
    PowerLawMissModel,
    fit_power_law,
)


class TestPowerLaw:
    def test_reference_point_exact(self):
        model = PowerLawMissModel(8192, 0.09, 0.5)
        assert model.miss_ratio(8192) == pytest.approx(0.09)

    def test_halving_rule(self):
        model = PowerLawMissModel(8192, 0.08, exponent=1.0)
        assert model.miss_ratio(16384) == pytest.approx(0.04)

    def test_inversion_round_trip(self):
        model = PowerLawMissModel(8192, 0.09, 0.5)
        hr = model.hit_ratio(65536)
        assert model.size_for_hit_ratio(hr) == pytest.approx(65536)

    def test_miss_ratio_clipped_at_one(self):
        model = PowerLawMissModel(8192, 0.5, 2.0)
        assert model.miss_ratio(64) == 1.0

    def test_flat_model_not_invertible(self):
        model = PowerLawMissModel(8192, 0.09, 0.0)
        with pytest.raises(ValueError, match="flat"):
            model.size_for_hit_ratio(0.95)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerLawMissModel(0, 0.1, 0.5)
        with pytest.raises(ValueError):
            PowerLawMissModel(8192, 1.5, 0.5)


class TestFit:
    def test_exact_fit_recovers_exponent(self):
        truth = PowerLawMissModel(8192, 0.09, 0.43)
        points = {s: truth.miss_ratio(s) for s in (8192, 16384, 32768, 65536)}
        fitted = fit_power_law(points)
        assert fitted.exponent == pytest.approx(0.43, abs=1e-9)
        assert fitted.reference_miss == pytest.approx(0.09, rel=1e-9)

    def test_short_levy_fit_is_reasonable(self):
        from repro.analysis.short_levy import SHORT_LEVY_HIT_RATIOS

        points = {s: 1 - hr for s, hr in SHORT_LEVY_HIT_RATIOS.items()}
        model = fit_power_law(points)
        assert 0.2 < model.exponent < 1.0
        for size, mr in points.items():
            assert model.miss_ratio(size) == pytest.approx(mr, rel=0.15)

    def test_needs_two_points(self):
        with pytest.raises(ValueError, match="two"):
            fit_power_law({8192: 0.09})


class TestCurve:
    CURVE = HitRatioCurve({8192: 0.91, 32768: 0.955, 131072: 0.9775})

    def test_exact_at_knots(self):
        assert self.CURVE.hit_ratio(8192) == pytest.approx(0.91)
        assert self.CURVE.hit_ratio(131072) == pytest.approx(0.9775)

    def test_monotone_between_knots(self):
        values = [self.CURVE.hit_ratio(2 ** k) for k in range(13, 18)]
        assert values == sorted(values)

    def test_clamps_outside_range(self):
        assert self.CURVE.hit_ratio(1024) == pytest.approx(0.91)
        assert self.CURVE.hit_ratio(1 << 30) == pytest.approx(0.9775)

    def test_size_inversion(self):
        assert self.CURVE.size_for_hit_ratio(0.955) == pytest.approx(32768)

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError, match="above"):
            self.CURVE.size_for_hit_ratio(0.999)

    def test_non_monotone_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            HitRatioCurve({8192: 0.95, 32768: 0.90})
