"""Design advisor."""

import pytest

from repro.analysis.design_advisor import DesignBrief, best_single_feature, recommend
from repro.analysis.short_levy import short_levy_curve
from repro.core.features import ArchFeature
from repro.core.params import SystemConfig

KIB = 1024


def brief(memory_cycle=8.0, cache_kib=8, phi=None):
    return DesignBrief(
        config=SystemConfig(4, 32, memory_cycle, pipeline_turnaround=2.0),
        cache_bytes=cache_kib * KIB,
        hit_ratio_curve=short_levy_curve(),
        measured_stall_factor=phi,
    )


class TestRecommend:
    def test_sorted_best_first(self):
        recs = recommend(brief())
        values = [r.hit_ratio_value for r in recs]
        assert values == sorted(values, reverse=True)

    def test_slow_memory_prefers_pipelining(self):
        assert (
            best_single_feature(brief(memory_cycle=12.0)).feature
            is ArchFeature.PIPELINED_MEMORY
        )

    def test_fast_memory_prefers_bus(self):
        assert (
            best_single_feature(brief(memory_cycle=2.5)).feature
            is ArchFeature.DOUBLING_BUS
        )

    def test_partial_stalling_needs_measured_phi(self):
        without = {r.feature for r in recommend(brief())}
        with_phi = {r.feature for r in recommend(brief(phi=7.0))}
        assert ArchFeature.PARTIAL_STALLING not in without
        assert ArchFeature.PARTIAL_STALLING in with_phi

    def test_bus_has_pin_cost_others_do_not(self):
        recs = {r.feature: r for r in recommend(brief())}
        assert recs[ArchFeature.DOUBLING_BUS].pin_cost > 0
        assert recs[ArchFeature.PIPELINED_MEMORY].pin_cost == 0

    def test_write_buffers_priced_in_area(self):
        recs = {r.feature: r for r in recommend(brief())}
        assert recs[ArchFeature.WRITE_BUFFERS].area_cost_rbe > 0

    def test_equivalent_cache_positive_when_curve_has_headroom(self):
        recs = recommend(brief(cache_kib=8))
        for rec in recs:
            assert rec.equivalent_cache_bytes >= 0

    def test_summary_renders(self):
        rec = best_single_feature(brief())
        assert rec.feature.value in rec.summary
        assert "hit ratio" in rec.summary


class TestBaseHitRatio:
    def test_brief_reads_curve(self):
        assert brief(cache_kib=8).base_hit_ratio == pytest.approx(0.91)
        assert brief(cache_kib=32).base_hit_ratio == pytest.approx(0.955)
