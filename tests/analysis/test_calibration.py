"""Workload calibration tools."""

import pytest

from repro.analysis.calibration import (
    bisect_knob,
    calibrate_hit_ratio,
    calibrate_spatial_locality,
)
from repro.cache.cache import CacheConfig


class TestBisect:
    def test_exact_monotone_function(self):
        result = bisect_knob(
            lambda x: x * x, target=9.0, low=0.0, high=10.0,
            increasing=True, tolerance=1e-6,
        )
        assert result.knob == pytest.approx(3.0, abs=1e-3)
        assert result.error <= 1e-6

    def test_decreasing_function(self):
        result = bisect_knob(
            lambda x: 10.0 - x, target=4.0, low=0.0, high=10.0,
            increasing=False, tolerance=1e-6,
        )
        assert result.knob == pytest.approx(6.0, abs=1e-3)

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError, match="outside achievable"):
            bisect_knob(
                lambda x: x, target=20.0, low=0.0, high=10.0, increasing=True
            )

    def test_bad_bracket_rejected(self):
        with pytest.raises(ValueError, match="low < high"):
            bisect_knob(lambda x: x, 1.0, 5.0, 5.0, True)

    def test_returns_best_seen_even_without_convergence(self):
        result = bisect_knob(
            lambda x: x, target=3.3333, low=0.0, high=10.0,
            increasing=True, tolerance=1e-12, max_iterations=5,
        )
        assert result.iterations == 5
        assert result.error < 1.0


class TestHitRatioCalibration:
    CACHE = CacheConfig(8192, 32, 2)

    @pytest.mark.parametrize("target", [0.6, 0.8])
    def test_hits_target(self, target):
        result = calibrate_hit_ratio(
            target, self.CACHE, n_instructions=8000, tolerance=0.04
        )
        assert result.error <= 0.04

    def test_bigger_target_needs_smaller_working_set(self):
        low = calibrate_hit_ratio(0.55, self.CACHE, n_instructions=8000,
                                  tolerance=0.05)
        high = calibrate_hit_ratio(0.85, self.CACHE, n_instructions=8000,
                                   tolerance=0.05)
        assert high.knob < low.knob

    def test_target_validated(self):
        with pytest.raises(ValueError, match="target_hit_ratio"):
            calibrate_hit_ratio(1.0, self.CACHE)


class TestSpatialLocalityCalibration:
    def test_hits_target(self):
        result = calibrate_spatial_locality(
            0.5, n_instructions=8000, tolerance=0.05
        )
        assert result.error <= 0.05

    def test_higher_target_needs_longer_runs(self):
        low = calibrate_spatial_locality(0.3, n_instructions=8000,
                                         tolerance=0.05)
        high = calibrate_spatial_locality(0.65, n_instructions=8000,
                                          tolerance=0.05)
        assert high.knob > low.knob

    def test_target_validated(self):
        with pytest.raises(ValueError, match="target_locality"):
            calibrate_spatial_locality(0.99)
