"""Pareto frontier over feature bundles."""

import pytest

from repro.analysis.pareto import (
    Bundle,
    design_frontier,
    evaluate_bundles,
    pareto_front,
)
from repro.core.params import SystemConfig


@pytest.fixture
def config():
    return SystemConfig(4, 32, 8.0, pipeline_turnaround=2.0)


class TestEvaluate:
    def test_eight_bundles(self, config):
        assert len(evaluate_bundles(config, 0.95)) == 8

    def test_baseline_speedup_is_one(self, config):
        points = evaluate_bundles(config, 0.95)
        baseline = next(p for p in points if p.bundle.label == "baseline")
        assert baseline.speedup == pytest.approx(1.0)

    def test_every_feature_adds_speedup(self, config):
        points = {p.bundle: p for p in evaluate_bundles(config, 0.95)}
        baseline = points[Bundle(False, False, False)]
        for bundle, point in points.items():
            if bundle != baseline.bundle:
                assert point.speedup > baseline.speedup

    def test_all_features_is_fastest(self, config):
        points = evaluate_bundles(config, 0.95)
        best = max(points, key=lambda p: p.speedup)
        assert best.bundle == Bundle(True, True, True)

    def test_monotone_composition(self, config):
        """Adding a feature to a bundle never slows it down."""
        points = {p.bundle: p.speedup for p in evaluate_bundles(config, 0.95)}
        for bundle, speedup in points.items():
            for flag in ("double_bus", "write_buffers", "pipelined"):
                if not getattr(bundle, flag):
                    bigger = Bundle(
                        **{
                            f: (True if f == flag else getattr(bundle, f))
                            for f in ("double_bus", "write_buffers", "pipelined")
                        }
                    )
                    assert points[bigger] >= speedup

    def test_costs_assigned(self, config):
        points = {p.bundle: p for p in evaluate_bundles(config, 0.95)}
        assert points[Bundle(True, False, False)].pin_cost > 0
        assert points[Bundle(False, True, False)].area_cost_rbe > 0
        assert points[Bundle(False, False, True)].pin_cost == 0


class TestFront:
    def test_front_is_subset_and_nonempty(self, config):
        points = evaluate_bundles(config, 0.95)
        front = pareto_front(points)
        assert front
        assert all(p in points for p in front)

    def test_baseline_always_on_front(self, config):
        """Zero cost, lowest speedup: nothing dominates it."""
        front = design_frontier(config, 0.95)
        assert any(p.bundle.label == "baseline" for p in front)

    def test_front_sorted_by_speedup(self, config):
        front = design_frontier(config, 0.95)
        speedups = [p.speedup for p in front]
        assert speedups == sorted(speedups, reverse=True)

    def test_nothing_on_front_is_dominated(self, config):
        points = evaluate_bundles(config, 0.95)
        front = pareto_front(points)
        for member in front:
            assert not any(other.dominates(member) for other in points)

    def test_slow_memory_pipelining_out_speeds_bus(self):
        """Past the crossover, pipelined-only out-speeds bus-only; both
        can stay on the frontier (pins vs banks are incomparable), but
        the speedup ordering must match Figures 4-5."""
        config = SystemConfig(4, 32, 16.0, pipeline_turnaround=2.0)
        points = {p.bundle.label: p for p in evaluate_bundles(config, 0.95)}
        assert points["pipelined mem"].speedup > points["2x bus"].speedup
        front_labels = [p.bundle.label for p in design_frontier(config, 0.95)]
        assert "pipelined mem" in front_labels

    def test_banks_priced_for_pipelined_bundles(self, config):
        points = {p.bundle.label: p for p in evaluate_bundles(config, 0.95)}
        assert points["pipelined mem"].memory_banks == 4  # beta=8, q=2
        assert points["baseline"].memory_banks == 1


class TestCacheGrowthPoints:
    def test_growth_points_added_with_curve(self, config):
        from repro.analysis.pareto import Bundle
        from repro.analysis.short_levy import short_levy_curve

        points = evaluate_bundles(
            config,
            0.955,
            hit_ratio_curve=short_levy_curve(),
            cache_bytes=32 * 1024,
        )
        assert len(points) == 10
        labels = {p.bundle.label for p in points}
        assert "2x cache" in labels and "4x cache" in labels

    def test_curve_without_cache_bytes_rejected(self, config):
        from repro.analysis.short_levy import short_levy_curve

        with pytest.raises(ValueError, match="cache_bytes"):
            evaluate_bundles(
                config, 0.955, hit_ratio_curve=short_levy_curve()
            )

    def test_large_cache_growth_dominated_by_cheap_features(self, config):
        """Section 5.2 via the frontier: at a 32K cache, doubling the
        cache is dominated (write buffers beat it on speedup AND area)."""
        from repro.analysis.short_levy import short_levy_curve

        points = evaluate_bundles(
            config,
            0.955,
            hit_ratio_curve=short_levy_curve(),
            cache_bytes=32 * 1024,
        )
        front_labels = {p.bundle.label for p in pareto_front(points)}
        assert "2x cache" not in front_labels
