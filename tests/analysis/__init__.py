"""Test package."""
