"""Chip-area and pin-count models (Section 5.2)."""

import pytest

from repro.analysis.chip_area import (
    CacheAreaModel,
    PackageModel,
    bus_width_pin_delta,
)

KIB = 1024


class TestArea:
    MODEL = CacheAreaModel()

    def test_tag_bits(self):
        # 8K, 32B lines, 2-way: 128 sets -> 32 - 5 - 7 = 20 tag bits.
        assert self.MODEL.tag_bits(8 * KIB, 32, 2) == 20

    def test_area_scales_with_size(self):
        small = self.MODEL.area(8 * KIB, 32, 2)
        large = self.MODEL.area(32 * KIB, 32, 2)
        assert 3.5 < large / small < 4.5

    def test_larger_lines_are_cheaper_per_byte(self):
        """Alpert & Flynn: larger lines amortize tag storage."""
        narrow = self.MODEL.area(8 * KIB, 16, 2)
        wide = self.MODEL.area(8 * KIB, 64, 2)
        assert wide < narrow

    def test_area_ratio(self):
        assert self.MODEL.area_ratio(32 * KIB, 8 * KIB, 32, 2) == pytest.approx(
            self.MODEL.area(32 * KIB, 32, 2) / self.MODEL.area(8 * KIB, 32, 2)
        )

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            self.MODEL.tag_bits(0, 32, 2)
        with pytest.raises(ValueError, match="too small"):
            self.MODEL.tag_bits(64, 64, 2)


class TestPins:
    def test_total_pins(self):
        package = PackageModel(address_pins=32, control_pins=24)
        assert package.total_pins(32) == pytest.approx((32 + 32 + 24) * 1.125)

    def test_doubling_delta_positive(self):
        delta = bus_width_pin_delta(32, 64)
        assert delta == pytest.approx(32 * 1.125)

    def test_validation(self):
        package = PackageModel()
        with pytest.raises(ValueError, match="multiple of 8"):
            package.total_pins(33)
        with pytest.raises(ValueError, match="exceed"):
            bus_width_pin_delta(64, 32)
