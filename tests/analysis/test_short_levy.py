"""Short & Levy anchors behind Example 1."""

import pytest

from repro.analysis.short_levy import SHORT_LEVY_HIT_RATIOS, short_levy_curve
from repro.core.bus_width import asymptotic_hit_ratio

KIB = 1024


class TestAnchors:
    def test_case1_pair(self):
        """64-bit + 8K == 32-bit + 32K via HR2 = 2 HR1 - 1."""
        hr_32k = SHORT_LEVY_HIT_RATIOS[32 * KIB]
        assert asymptotic_hit_ratio(hr_32k) == pytest.approx(
            SHORT_LEVY_HIT_RATIOS[8 * KIB]
        )

    def test_case2_pair(self):
        """64-bit + 32K == 32-bit + 128K."""
        hr_128k = SHORT_LEVY_HIT_RATIOS[128 * KIB]
        assert asymptotic_hit_ratio(hr_128k) == pytest.approx(
            SHORT_LEVY_HIT_RATIOS[32 * KIB]
        )

    def test_paper_quoted_values(self):
        assert SHORT_LEVY_HIT_RATIOS[8 * KIB] == 0.91
        assert SHORT_LEVY_HIT_RATIOS[32 * KIB] == 0.955

    def test_curve_interpolates(self):
        curve = short_levy_curve()
        middle = curve.hit_ratio(16 * KIB)
        assert 0.91 < middle < 0.955
