"""Design-target miss-ratio tables (Figure 6 calibration)."""

import pytest

from repro.analysis.smith_targets import DESIGN_TARGET_MISS_RATIOS, design_target_table
from repro.core.smith import smith_optimal_line

KIB = 1024


class TestTableShape:
    @pytest.mark.parametrize("cache", [8 * KIB, 16 * KIB])
    def test_miss_ratio_falls_with_line_size(self, cache):
        table = design_target_table(cache)
        lines = sorted(table)
        ratios = [table[line] for line in lines]
        assert ratios == sorted(ratios, reverse=True)

    @pytest.mark.parametrize("cache", [8 * KIB, 16 * KIB])
    def test_diminishing_returns_per_doubling(self, cache):
        """The miss-ratio ratio per doubling approaches 1 (less benefit)."""
        table = design_target_table(cache)
        lines = sorted(table)
        ratios = [
            table[b] / table[a] for a, b in zip(lines, lines[1:])
        ]
        assert all(0.4 < r < 1.0 for r in ratios)
        assert ratios[-1] > ratios[0]

    def test_bigger_cache_misses_less(self):
        small = design_target_table(8 * KIB)
        big = design_target_table(16 * KIB)
        for line in small:
            assert big[line] < small[line]

    def test_copies_are_independent(self):
        table = design_target_table(8 * KIB)
        table[8] = 0.5
        assert DESIGN_TARGET_MISS_RATIOS[8 * KIB][8] != 0.5

    def test_unknown_size_rejected(self):
        with pytest.raises(KeyError, match="design-target"):
            design_target_table(4 * KIB)


class TestPaperCalibration:
    """The four Figure 6 annotated optima."""

    def test_panel_a(self):
        assert smith_optimal_line(design_target_table(16 * KIB), 12.0, 2.0, 4) == 32

    def test_panel_b(self):
        assert smith_optimal_line(design_target_table(16 * KIB), 4.0, 3.0, 8) == 16

    def test_panel_c(self):
        optimum = smith_optimal_line(design_target_table(16 * KIB), 18.75, 1.0, 8)
        assert optimum in (64, 128)  # paper: "64 or 128 bytes"

    def test_panel_d(self):
        assert smith_optimal_line(design_target_table(8 * KIB), 6.0, 2.0, 8) == 32
