"""Trace characterization into Table 1 parameters."""

import pytest

from repro.analysis.characterize import characterize
from repro.cache.cache import CacheConfig
from repro.core.execution import execution_time
from repro.core.params import SystemConfig
from repro.core.stalling import StallPolicy
from repro.trace.spec92 import spec92_trace

CACHE = CacheConfig(total_bytes=8192, line_size=32, associativity=2)


@pytest.fixture(scope="module")
def run():
    trace = spec92_trace("ear", 8000, seed=11)
    return characterize(trace, CACHE)


class TestCharacterize:
    def test_instruction_count(self, run):
        assert run.workload.instructions == 8000

    def test_hit_ratio_in_range(self, run):
        assert 0.0 < run.hit_ratio < 1.0

    def test_write_allocate_means_w_zero(self, run):
        assert run.workload.write_around_misses == 0

    def test_r_is_line_multiples(self, run):
        assert run.workload.read_bytes % 32 == 0

    def test_miss_count_consistent_with_hit_ratio(self, run):
        misses = run.workload.miss_instructions(32)
        assert misses == pytest.approx(run.references * (1.0 - run.hit_ratio))

    def test_flush_ratio_in_bounds(self, run):
        assert 0.0 <= run.workload.flush_ratio <= 1.0

    def test_no_phi_by_default(self, run):
        assert run.stall_factors == {}


class TestPhiMeasurement:
    def test_measured_phi_usable_in_eq2(self):
        """The characterization + Eq. (2) reproduces the simulated time."""
        from repro.cpu.processor import TimingSimulator
        from repro.memory.mainmem import MainMemory

        trace = spec92_trace("swm256", 6000, seed=4)
        run = characterize(
            trace,
            CACHE,
            measure_phi=True,
            policies=(StallPolicy.BUS_NOT_LOCKED_1,),
            memory_cycle=8.0,
            bus_width=4,
        )
        phi = run.stall_factors[StallPolicy.BUS_NOT_LOCKED_1]
        predicted = execution_time(
            run.workload,
            SystemConfig(4, 32, 8.0),
            stall_factor=phi,
            policy=StallPolicy.BUS_NOT_LOCKED_1,
        )
        simulated = TimingSimulator(
            CACHE, MainMemory(8.0, 4), policy=StallPolicy.BUS_NOT_LOCKED_1
        ).run(trace)
        assert predicted == pytest.approx(simulated.cycles)

    def test_phi_respects_bounds(self):
        trace = spec92_trace("doduc", 4000, seed=4)
        run = characterize(
            trace,
            CACHE,
            measure_phi=True,
            policies=(StallPolicy.BUS_LOCKED, StallPolicy.BUS_NOT_LOCKED_3),
        )
        for phi in run.stall_factors.values():
            assert 1.0 <= phi <= 8.0
