"""Test package."""
