"""Split instruction/data cache organization."""

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import SplitCacheSystem
from repro.trace.record import ALU_OP, load, store


def make_system(with_icache=True):
    data = CacheConfig(256, 32, 2)
    inst = CacheConfig(256, 32, 2) if with_icache else None
    return SplitCacheSystem(data, inst)


class TestRouting:
    def test_loads_go_to_dcache(self):
        system = make_system(with_icache=False)
        result = system.execute(load(0x40))
        assert result.data_outcome is not None
        assert result.instruction_outcome is None
        assert system.dcache.stats.read_misses == 1

    def test_stores_go_to_dcache(self):
        system = make_system(with_icache=False)
        system.execute(store(0x40))
        assert system.dcache.stats.write_misses == 1

    def test_alu_touches_only_icache(self):
        system = make_system()
        result = system.execute(ALU_OP)
        assert result.data_outcome is None
        assert result.instruction_outcome is not None
        assert system.dcache.stats.accesses == 0


class TestInstructionStream:
    def test_sequential_pc_gives_high_icache_hit_ratio(self):
        """Section 3.4: instruction hit ratios are usually very high."""
        system = make_system()
        system.run([ALU_OP] * 1000)
        assert system.icache.stats.hit_ratio > 0.85

    def test_icache_wraps_with_small_footprint(self):
        system = make_system()
        # 64 instructions * 4B = 256 bytes: exactly the icache capacity.
        system.run([ALU_OP] * 64)
        assert system.icache.stats.read_misses == 8  # 8 lines of 32 bytes

    def test_run_accumulates(self):
        system = make_system(with_icache=False)
        system.run([load(0x00), load(0x04), store(0x20), ALU_OP])
        assert system.dcache.stats.accesses == 3
