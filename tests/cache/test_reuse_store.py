"""The content-addressed on-disk ReuseProfile store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cache import events_store, reuse_store
from repro.cache.cache import CacheConfig
from repro.cache.events import EVENT_ARRAYS
from repro.cache.events_store import EVENTS_CACHE_DIR_ENV, EVENTS_CACHE_ENV
from repro.cache.reuse import PROFILE_ARRAYS, build_profile, derive_events
from repro.cache.reuse_store import (
    REUSE_PROFILE_ENV,
    entry_key,
    get_or_build,
    key_material,
    load,
    reuse_enabled,
    save,
)
from repro.obs import metrics
from repro.trace.spec92 import spec92_trace, trace_fingerprint

FP = trace_fingerprint("swm256", 1200, seed=7)


@pytest.fixture(autouse=True)
def _own_cache_dir(tmp_path, monkeypatch):
    """Every test gets a private, initially empty store and a cold memo."""
    monkeypatch.setenv(EVENTS_CACHE_DIR_ENV, str(tmp_path))
    reuse_store.clear_memory()
    yield tmp_path
    reuse_store.clear_memory()


def _trace():
    return spec92_trace("swm256", 1200, seed=7)


def _fresh_profile():
    return build_profile(_trace())


def assert_profiles_equal(a, b):
    assert a.n_instructions == b.n_instructions
    for name in PROFILE_ARRAYS:
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        np.testing.assert_array_equal(left, right, err_msg=name)


class TestRoundTrip:
    def test_save_then_load(self):
        profile = _fresh_profile()
        save(FP, profile)
        loaded = load(FP)
        assert loaded is not None
        assert_profiles_equal(profile, loaded)

    def test_loaded_profile_derives_identically(self):
        """A persisted profile must yield the same event streams."""
        profile = _fresh_profile()
        save(FP, profile)
        loaded = load(FP)
        for config in (CacheConfig(8192, 32, 2), CacheConfig(512, 64, 4)):
            cold = derive_events(profile, config)
            warm = derive_events(loaded, config)
            for name in EVENT_ARRAYS:
                np.testing.assert_array_equal(
                    getattr(cold, name), getattr(warm, name)
                )
            assert warm.stats == cold.stats

    def test_miss_returns_none(self):
        assert load(FP) is None


class TestGetOrBuild:
    def test_trace_factory_called_once(self):
        calls = []

        def factory():
            calls.append(1)
            return _trace()

        first = get_or_build(FP, factory)
        second = get_or_build(FP, factory)  # memo hit
        assert len(calls) == 1
        assert_profiles_equal(first, second)

    def test_disk_hit_survives_memo_clear(self):
        get_or_build(FP, _trace)
        reuse_store.clear_memory()
        again = get_or_build(
            FP, lambda: pytest.fail("factory must not run on a disk hit")
        )
        assert_profiles_equal(_fresh_profile(), again)

    def test_profile_factory_replaces_build_on_cold_path(self):
        built = get_or_build(
            FP,
            lambda: pytest.fail("trace_factory must not run"),
            profile_factory=_fresh_profile,
        )
        assert_profiles_equal(_fresh_profile(), built)

    def test_profile_factory_ignored_on_hits(self):
        get_or_build(FP, _trace)
        get_or_build(
            FP,
            _trace,
            profile_factory=lambda: pytest.fail(
                "profile_factory must not run on a hit"
            ),
        )

    def test_memo_bound(self):
        for i in range(reuse_store._MAX_MEMO + 2):
            get_or_build(f"{FP}/bound/{i}", lambda: [_trace()[0]])
        assert len(reuse_store._memo) == reuse_store._MAX_MEMO


class TestKeyDerivation:
    def test_material_is_human_readable(self):
        material = key_material(FP)
        assert FP in material
        assert material.startswith("reuse/")

    def test_key_varies_with_trace(self):
        other = trace_fingerprint("swm256", 1200, seed=8)
        assert entry_key(FP) != entry_key(other)

    def test_version_bump_invalidates(self, monkeypatch):
        save(FP, _fresh_profile())
        assert load(FP) is not None
        monkeypatch.setattr(reuse_store, "PROFILE_STORE_VERSION", 999)
        assert load(FP) is None  # new key => clean miss

    def test_sidecar_version_mismatch_rejected(self, tmp_path):
        save(FP, _fresh_profile())
        meta_path = tmp_path / f"{entry_key(FP)}.profile.json"
        meta = json.loads(meta_path.read_text())
        meta["profile_schema_version"] = -1
        meta_path.write_text(json.dumps(meta))
        assert load(FP) is None

    def test_shares_directory_with_events_store(self, tmp_path):
        """One cache dir: wiping the events store cold-starts profiles."""
        save(FP, _fresh_profile())
        assert events_store.cache_dir() == tmp_path
        assert list(tmp_path.glob("*.profile.npz"))


class TestOptOut:
    def test_events_cache_env_disables_persistence_and_memo(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(EVENTS_CACHE_ENV, "0")
        save(FP, _fresh_profile())
        assert list(tmp_path.iterdir()) == []
        assert load(FP) is None
        calls = []

        def factory():
            calls.append(1)
            return _trace()

        get_or_build(FP, factory)
        get_or_build(FP, factory)
        assert len(calls) == 2  # REPRO_EVENTS_CACHE=0 promises recomputation

    def test_reuse_profile_disabled_spellings(self, monkeypatch):
        for value in ("0", "off", "FALSE", " no "):
            monkeypatch.setenv(REUSE_PROFILE_ENV, value)
            assert not reuse_enabled()
        monkeypatch.setenv(REUSE_PROFILE_ENV, "1")
        assert reuse_enabled()
        monkeypatch.delenv(REUSE_PROFILE_ENV)
        assert reuse_enabled()  # on by default


class TestCorruption:
    def test_truncated_payload_rebuilds_and_counts(self, tmp_path):
        profile = _fresh_profile()
        save(FP, profile)
        npz_path = tmp_path / f"{entry_key(FP)}.profile.npz"
        npz_path.write_bytes(npz_path.read_bytes()[:40])
        registry = metrics.enable_metrics()
        try:
            assert load(FP) is None
            recovered = get_or_build(FP, _trace)
        finally:
            metrics.disable_metrics()
        assert_profiles_equal(profile, recovered)
        counters = registry.snapshot()["counters"]
        # Diagnostic-only: stable_view strips it (see test_manifest).
        assert counters["reuse_store.corrupt_reextract"] >= 1

    def test_garbage_sidecar_falls_back(self, tmp_path):
        save(FP, _fresh_profile())
        (tmp_path / f"{entry_key(FP)}.profile.json").write_text("{not json")
        assert load(FP) is None

    def test_clean_miss_not_counted_as_corruption(self):
        registry = metrics.enable_metrics()
        try:
            assert load(FP) is None
        finally:
            metrics.disable_metrics()
        counters = registry.snapshot()["counters"]
        assert "reuse_store.corrupt_reextract" not in counters

    def test_no_tmp_files_left_behind(self, tmp_path):
        save(FP, _fresh_profile())
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestEngineDispatch:
    """events_store._extract routes through the reuse engine and says so."""

    def _get(self, config):
        return events_store.get_or_extract(FP, config, _trace)

    def test_lru_wb_wa_dispatches_reuse(self):
        registry = metrics.enable_metrics()
        try:
            self._get(CacheConfig(8192, 32, 2))
        finally:
            metrics.disable_metrics()
        counters = registry.snapshot()["counters"]
        assert (
            counters["engine.phase1.dispatches{engine=reuse,reason=lru_wb_wa}"]
            == 1
        )

    def test_unsupported_geometry_dispatches_step(self):
        from repro.cache.write_policy import WritePolicy

        config = CacheConfig(
            8192, 32, 2, write_policy=WritePolicy.WRITE_THROUGH
        )
        registry = metrics.enable_metrics()
        try:
            self._get(config)
        finally:
            metrics.disable_metrics()
        counters = registry.snapshot()["counters"]
        key = (
            "engine.phase1.dispatches"
            "{engine=step,reason=write_policy=write-through}"
        )
        assert counters[key] == 1

    def test_env_opt_out_dispatches_step(self, monkeypatch):
        monkeypatch.setenv(REUSE_PROFILE_ENV, "0")
        registry = metrics.enable_metrics()
        try:
            stepped = self._get(CacheConfig(8192, 32, 2))
        finally:
            metrics.disable_metrics()
        counters = registry.snapshot()["counters"]
        assert (
            counters["engine.phase1.dispatches{engine=step,reason=disabled}"]
            == 1
        )
        monkeypatch.delenv(REUSE_PROFILE_ENV)
        # Byte-identical either way: warm load now returns the stepped
        # stream; a fresh reuse-path extraction must match it.
        monkeypatch.setenv(EVENTS_CACHE_ENV, "0")
        fast = events_store._extract(FP, CacheConfig(8192, 32, 2), _trace)
        for name in EVENT_ARRAYS:
            np.testing.assert_array_equal(
                getattr(stepped, name), getattr(fast, name)
            )
        assert fast.stats == stepped.stats
