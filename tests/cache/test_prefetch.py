"""Sequential prefetching cache (Section 3.3 latency hiding)."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.prefetch import (
    PrefetchingCache,
    PrefetchPolicy,
    prefetch_covered_fraction,
)
from repro.trace.record import ALU_OP, load
from repro.trace.spec92 import spec92_trace
from tests.conftest import sequential_trace

CONFIG = CacheConfig(8192, 32, 2)


class TestOnMiss:
    def test_sequential_stream_mostly_covered(self):
        prefetcher = PrefetchingCache(CONFIG, PrefetchPolicy.ON_MISS)
        for inst in sequential_trace(6000):
            if inst.kind.is_memory:
                prefetcher.access(inst)
        # On-miss prefetching alternates: covered, demand, covered, ...
        assert prefetcher.stats.coverage >= 0.4

    def test_tagged_beats_on_miss_on_sequential(self):
        """Tagged prefetching keeps the chain alive through covered hits."""
        results = {}
        for policy in PrefetchPolicy:
            prefetcher = PrefetchingCache(CONFIG, policy)
            for inst in sequential_trace(6000):
                if inst.kind.is_memory:
                    prefetcher.access(inst)
            results[policy] = prefetcher.stats.coverage
        assert results[PrefetchPolicy.TAGGED] > results[PrefetchPolicy.ON_MISS]

    def test_tagged_covers_nearly_everything_sequential(self):
        coverage = prefetch_covered_fraction(
            sequential_trace(6000), CONFIG, PrefetchPolicy.TAGGED
        )
        assert coverage > 0.9


class TestAccounting:
    def test_effective_read_bytes_counts_demand_only(self):
        prefetcher = PrefetchingCache(CONFIG)
        for inst in sequential_trace(3000):
            if inst.kind.is_memory:
                prefetcher.access(inst)
        stats = prefetcher.stats
        assert prefetcher.effective_read_bytes() == stats.demand_misses * 32

    def test_accuracy_bounds(self):
        prefetcher = PrefetchingCache(CONFIG)
        for inst in sequential_trace(3000):
            if inst.kind.is_memory:
                prefetcher.access(inst)
        assert 0.0 <= prefetcher.stats.accuracy <= 1.0

    def test_demand_stats_not_polluted_by_prefetches(self):
        """Cache hit/miss counters reflect demand accesses only."""
        prefetcher = PrefetchingCache(CONFIG)
        demand = 0
        for inst in sequential_trace(3000):
            if inst.kind.is_memory:
                prefetcher.access(inst)
                demand += 1
        assert prefetcher.cache.stats.accesses == demand

    def test_alu_rejected(self):
        with pytest.raises(ValueError, match="memory operations"):
            PrefetchingCache(CONFIG).access(ALU_OP)


class TestWorkloadDependence:
    def test_random_workload_gets_little_coverage(self):
        trace = spec92_trace("doduc", 5000, seed=5)
        coverage = prefetch_covered_fraction(trace, CONFIG, PrefetchPolicy.TAGGED)
        sequential = prefetch_covered_fraction(
            sequential_trace(5000), CONFIG, PrefetchPolicy.TAGGED
        )
        assert coverage < sequential

    def test_single_access_no_crash(self):
        prefetcher = PrefetchingCache(CONFIG)
        assert prefetcher.access(load(0x40)) is False
        assert prefetcher.stats.demand_misses == 1
