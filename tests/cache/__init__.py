"""Test package."""
