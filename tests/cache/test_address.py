"""Address decomposition."""

import pytest

from repro.cache.address import AddressMap


class TestAddressMap:
    def test_line_address(self):
        amap = AddressMap(line_size=32, n_sets=64)
        assert amap.line_address(0x1234) == 0x1220

    def test_offset(self):
        amap = AddressMap(32, 64)
        assert amap.offset(0x1234) == 0x14

    def test_set_index_wraps(self):
        amap = AddressMap(32, 64)
        assert amap.set_index(0) == 0
        assert amap.set_index(32) == 1
        assert amap.set_index(32 * 64) == 0

    def test_tag(self):
        amap = AddressMap(32, 64)
        assert amap.tag(32 * 64) == 1
        assert amap.tag(31) == 0

    def test_rebuild_round_trip(self):
        amap = AddressMap(32, 64)
        for address in (0x0, 0x1234, 0xDEADBEE0, 0x7FFF_FFFF):
            line = amap.line_address(address)
            rebuilt = amap.rebuild_address(amap.tag(address), amap.set_index(address))
            assert rebuilt == line

    def test_fully_associative_single_set(self):
        amap = AddressMap(32, 1)
        assert amap.set_index(0x12345) == 0
        assert amap.tag(64) == 2

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            AddressMap(line_size=24, n_sets=64)
        with pytest.raises(ValueError, match="power of two"):
            AddressMap(line_size=32, n_sets=3)
