"""Two-level cache hierarchy."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.multilevel import (
    TwoLevelCache,
    effective_memory_cycle,
    single_level_equivalent,
    single_level_equivalent_from_events,
    stats_via_events,
)
from repro.trace.record import ALU_OP, load, store
from repro.trace.spec92 import spec92_trace

L1 = CacheConfig(256, 32, 2)
L2 = CacheConfig(2048, 32, 4)


class TestHierarchy:
    def test_l1_hit_skips_l2(self):
        hierarchy = TwoLevelCache(L1, L2)
        hierarchy.access(load(0x40))
        l2_before = hierarchy.l2.stats.accesses
        assert hierarchy.access(load(0x44))  # L1 hit
        assert hierarchy.l2.stats.accesses == l2_before

    def test_l1_miss_probes_l2(self):
        hierarchy = TwoLevelCache(L1, L2)
        hierarchy.access(load(0x40))
        before = hierarchy.l2.stats.accesses
        hierarchy.access(load(0x4000))
        assert hierarchy.l2.stats.accesses == before + 1

    def test_l2_catches_l1_capacity_victims(self):
        """Lines bouncing out of a tiny L1 stay resident in the L2."""
        hierarchy = TwoLevelCache(L1, L2)
        addresses = [0x000, 0x080, 0x100, 0x180]  # one L1 set, 4 lines
        for _ in range(5):
            for address in addresses:
                hierarchy.access(load(address))
        stats = hierarchy.stats()
        assert stats.l1_miss_ratio > 0.5  # L1 thrashes
        assert stats.l2_local_miss_ratio < 0.5  # L2 holds them all

    def test_dirty_l1_victims_written_back_to_l2(self):
        hierarchy = TwoLevelCache(L1, L2)
        hierarchy.access(store(0x000))
        hierarchy.access(load(0x080))
        hierarchy.access(load(0x100))  # evicts dirty 0x000 into L2
        assert hierarchy.l2.is_dirty(0x000)

    def test_alu_rejected(self):
        with pytest.raises(ValueError, match="memory operations"):
            TwoLevelCache(L1, L2).access(ALU_OP)

    def test_geometry_validated(self):
        with pytest.raises(ValueError, match="at least as large"):
            TwoLevelCache(L2, L1)
        with pytest.raises(ValueError, match="L2 line"):
            TwoLevelCache(
                CacheConfig(256, 64, 2), CacheConfig(2048, 32, 4)
            )


class TestEffectiveCycle:
    def test_between_l2_and_memory_cost(self):
        trace = spec92_trace("ear", 6000, seed=7)
        stats, beta_eff = single_level_equivalent(
            trace, CacheConfig(8192, 32, 2), CacheConfig(65536, 32, 4), 2.0, 12.0
        )
        assert 2.0 <= beta_eff <= 2.0 + 12.0

    def test_perfect_l2_gives_sram_cost(self):
        from repro.cache.multilevel import MultilevelStats

        stats = MultilevelStats(
            l1_accesses=100, l1_misses=10, l2_accesses=10, l2_misses=0
        )
        assert effective_memory_cycle(stats, 2.0, 12.0) == 2.0

    def test_useless_l2_adds_lookup_tax(self):
        from repro.cache.multilevel import MultilevelStats

        stats = MultilevelStats(
            l1_accesses=100, l1_misses=10, l2_accesses=10, l2_misses=10
        )
        assert effective_memory_cycle(stats, 2.0, 12.0) == 14.0

    def test_no_misses_defaults_to_l2_cost(self):
        from repro.cache.multilevel import MultilevelStats

        stats = MultilevelStats(100, 0, 0, 0)
        assert effective_memory_cycle(stats, 2.0, 12.0) == 2.0

    def test_bigger_l2_never_raises_effective_cycle(self):
        trace = spec92_trace("doduc", 8000, seed=7)
        small = single_level_equivalent(
            trace, CacheConfig(8192, 32, 2), CacheConfig(32768, 32, 4), 2.0, 12.0
        )[1]
        large = single_level_equivalent(
            trace, CacheConfig(8192, 32, 2), CacheConfig(262144, 32, 4), 2.0, 12.0
        )[1]
        assert large <= small + 1e-9


class TestStatsViaEvents:
    """The events-driven L2 derivation == stepping the full hierarchy.

    The L1 EventStream records exactly the miss/copy-back traffic the
    L1 hands the L2, so replaying only that short stream through a
    fresh L2 must reproduce ``TwoLevelCache``'s stats bit for bit.
    """

    @pytest.mark.parametrize("name", ["ear", "swm256", "doduc"])
    def test_matches_stepped_hierarchy(self, name):
        from repro.cache.events import extract_events

        trace = spec92_trace(name, 5000, seed=7)
        l1, l2 = CacheConfig(1024, 32, 2), CacheConfig(8192, 32, 4)
        hierarchy = TwoLevelCache(l1, l2)
        for inst in trace:
            if inst.kind.is_memory:
                hierarchy.access(inst)
        oracle = hierarchy.stats()
        derived = stats_via_events(extract_events(trace, l1), l2)
        assert derived == oracle

    def test_matches_single_level_equivalent(self):
        from repro.cache.events import extract_events

        trace = spec92_trace("hydro2d", 4000, seed=7)
        l1, l2 = CacheConfig(8192, 32, 2), CacheConfig(65536, 32, 4)
        stepped_stats, stepped_beta = single_level_equivalent(
            trace, l1, l2, 2.0, 12.0
        )
        fast_stats, fast_beta = single_level_equivalent_from_events(
            extract_events(trace, l1), l2, 2.0, 12.0
        )
        assert fast_stats == stepped_stats
        assert fast_beta == stepped_beta

    def test_geometry_validated(self):
        from repro.cache.events import extract_events

        events = extract_events([load(0)], CacheConfig(2048, 32, 2))
        with pytest.raises(ValueError, match="L2 line"):
            stats_via_events(events, CacheConfig(8192, 16, 4))
        with pytest.raises(ValueError, match="at least as large"):
            stats_via_events(events, CacheConfig(1024, 32, 4))
        with pytest.raises(ValueError):
            single_level_equivalent_from_events(
                events, CacheConfig(8192, 32, 4), 0.5, 12.0
            )
