"""CacheStats derived quantities."""

import pytest

from repro.cache.stats import CacheStats


class TestDerived:
    def test_empty_stats_are_zero(self):
        stats = CacheStats(line_size=32)
        assert stats.accesses == 0
        assert stats.hit_ratio == 0.0
        assert stats.miss_ratio == 0.0
        assert stats.flush_ratio == 0.0

    def test_hit_and_miss_ratio(self):
        stats = CacheStats(line_size=32, read_hits=90, read_misses=10)
        assert stats.hit_ratio == pytest.approx(0.9)
        assert stats.miss_ratio == pytest.approx(0.1)

    def test_r_includes_write_allocate_fills(self):
        stats = CacheStats(
            line_size=32, read_misses=10, write_misses=5, write_allocate_fills=5
        )
        assert stats.line_fills == 15
        assert stats.read_miss_bytes == 480

    def test_write_around_not_in_r(self):
        stats = CacheStats(
            line_size=32, read_misses=10, write_misses=5, write_around_count=5
        )
        assert stats.line_fills == 10

    def test_flush_ratio_is_alpha(self):
        stats = CacheStats(line_size=32, read_misses=10, flushed_lines=5)
        assert stats.flush_ratio == pytest.approx(0.5)
        assert stats.flush_bytes == 160
