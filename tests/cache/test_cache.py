"""Set-associative cache behaviour."""

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.cache.write_policy import AllocatePolicy, WritePolicy


def small_cache(**overrides) -> Cache:
    """A 4-set, 2-way, 32-byte-line cache (256 bytes total)."""
    defaults = dict(total_bytes=256, line_size=32, associativity=2)
    defaults.update(overrides)
    return Cache(CacheConfig(**defaults))


class TestConfig:
    def test_geometry(self):
        config = CacheConfig(8192, 32, 2)
        assert config.n_sets == 128
        assert config.n_lines == 256

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(8000, 32, 2)
        with pytest.raises(ValueError):
            CacheConfig(8192, 24, 2)

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            CacheConfig(8192, 32, 3)

    def test_fully_associative_allowed(self):
        config = CacheConfig(256, 32, 8)
        assert config.n_sets == 1


class TestReads:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        first = cache.read(0x40)
        assert not first.hit and first.fill_line
        second = cache.read(0x44)  # same line
        assert second.hit and not second.fill_line

    def test_line_address_reported(self):
        cache = small_cache()
        outcome = cache.read(0x47)
        assert outcome.line_address == 0x40

    def test_conflict_eviction(self):
        cache = small_cache()  # 4 sets * 32B; addresses 128 apart collide
        cache.read(0x000)
        cache.read(0x080)
        cache.read(0x100)  # third line in a 2-way set evicts LRU (0x000)
        assert not cache.contains(0x000)
        assert cache.contains(0x080)
        assert cache.contains(0x100)

    def test_clean_eviction_has_no_flush(self):
        cache = small_cache()
        cache.read(0x000)
        cache.read(0x080)
        outcome = cache.read(0x100)
        assert outcome.flush_line_address is None
        assert cache.stats.flushed_lines == 0


class TestWriteBack:
    def test_store_hit_marks_dirty(self):
        cache = small_cache()
        cache.read(0x40)
        outcome = cache.write(0x44)
        assert outcome.hit
        assert cache.is_dirty(0x40)

    def test_dirty_eviction_flushes(self):
        cache = small_cache()
        cache.write(0x000)  # write-allocate: fill + dirty
        cache.read(0x080)
        outcome = cache.read(0x100)  # evicts dirty 0x000
        assert outcome.flush_line_address == 0x000
        assert cache.stats.flushed_lines == 1

    def test_write_allocate_fill_counts_in_r(self):
        cache = small_cache()
        cache.write(0x40)
        assert cache.stats.write_allocate_fills == 1
        assert cache.stats.read_miss_bytes == 32

    def test_no_write_through_traffic(self):
        cache = small_cache()
        cache.read(0x40)
        outcome = cache.write(0x44)
        assert not outcome.write_through


class TestWriteThrough:
    def test_store_hit_propagates(self):
        cache = small_cache(write_policy=WritePolicy.WRITE_THROUGH)
        cache.read(0x40)
        outcome = cache.write(0x44)
        assert outcome.hit and outcome.write_through
        assert not cache.is_dirty(0x40)

    def test_allocate_miss_also_writes_through(self):
        cache = small_cache(write_policy=WritePolicy.WRITE_THROUGH)
        outcome = cache.write(0x40)
        assert outcome.fill_line and outcome.write_through

    def test_evictions_never_flush(self):
        cache = small_cache(write_policy=WritePolicy.WRITE_THROUGH)
        cache.write(0x000)
        cache.write(0x080)
        cache.write(0x100)
        assert cache.stats.flushed_lines == 0


class TestWriteAround:
    def test_store_miss_bypasses(self):
        cache = small_cache(allocate_policy=AllocatePolicy.WRITE_AROUND)
        outcome = cache.write(0x40)
        assert outcome.write_around and not outcome.fill_line
        assert not cache.contains(0x40)
        assert cache.stats.write_around_count == 1

    def test_store_hit_still_updates_cache(self):
        cache = small_cache(allocate_policy=AllocatePolicy.WRITE_AROUND)
        cache.read(0x40)
        outcome = cache.write(0x44)
        assert outcome.hit and not outcome.write_around


class TestInvalidate:
    def test_clean_invalidate(self):
        cache = small_cache()
        cache.read(0x40)
        assert cache.invalidate(0x40) is None
        assert not cache.contains(0x40)

    def test_dirty_invalidate_returns_flush(self):
        cache = small_cache()
        cache.write(0x40)
        assert cache.invalidate(0x40) == 0x40
        assert cache.stats.flushed_lines == 1

    def test_absent_invalidate_is_noop(self):
        cache = small_cache()
        assert cache.invalidate(0x40) is None
        assert cache.stats.invalidations == 0


class TestAccounting:
    def test_hits_plus_misses_equals_accesses(self):
        cache = small_cache()
        addresses = [0x00, 0x20, 0x40, 0x00, 0x24, 0x80, 0x100, 0x180, 0x00]
        for i, address in enumerate(addresses):
            if i % 2:
                cache.write(address)
            else:
                cache.read(address)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(addresses)

    def test_resident_lines_within_capacity(self):
        cache = small_cache()
        for address in range(0, 4096, 32):
            cache.read(address)
        assert len(cache.resident_lines()) <= cache.config.n_lines

    def test_flush_ratio_definition(self):
        cache = small_cache()
        cache.write(0x000)
        cache.read(0x080)
        cache.read(0x100)  # flushes 0x000
        stats = cache.stats
        assert stats.flush_ratio == pytest.approx(
            stats.flush_bytes / stats.read_miss_bytes
        )

    def test_lru_within_set(self):
        cache = small_cache()
        cache.read(0x000)
        cache.read(0x080)
        cache.read(0x000)  # refresh 0x000; 0x080 is now LRU
        cache.read(0x100)
        assert cache.contains(0x000)
        assert not cache.contains(0x080)
