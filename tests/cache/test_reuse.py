"""The reuse-distance phase-1 engine vs. the stepping oracle: bitwise.

``derive_events`` promises *byte identity* with ``extract_events`` for
every LRU/write-back/write-allocate geometry — event arrays and
``CacheStats`` both.  This suite pins that promise across the registry
grid (sizes, associativities, line sizes; matmul, SPEC92 stand-in and
adversarial synthetic traces), checks the fallback classification for
everything else, and property-tests the stack-distance arithmetic the
derivation rests on against brute-force oracles.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheConfig
from repro.cache.events import EVENT_ARRAYS, extract_events
from repro.cache.reuse import (
    _count_greater_left,
    build_profile,
    derive_events,
    supports,
    unsupported_reason,
)
from repro.cache.write_policy import AllocatePolicy, WritePolicy
from repro.trace.loops import square_matmul_trace
from repro.trace.record import ALU_OP, Instruction, OpKind, load, store
from repro.trace.spec92 import spec92_trace

#: LRU/write-back/write-allocate registry grid: sizes from thrashing to
#: Figure 1's 8K, associativities 1..8, line sizes 16..128.
GEOMETRIES = [
    CacheConfig(8192, 32, 2),  # the paper's Figure 1 cache
    CacheConfig(1024, 16, 1),  # direct-mapped, short lines
    CacheConfig(512, 64, 4),  # tiny + long lines: heavy thrashing
    CacheConfig(4096, 32, 4),
    CacheConfig(256, 16, 2),
    CacheConfig(2048, 64, 8),
    CacheConfig(16384, 128, 4),
]


def assert_streams_equal(oracle, fast):
    assert fast.n_instructions == oracle.n_instructions
    assert fast.config == oracle.config
    for name in EVENT_ARRAYS:
        a, b = getattr(oracle, name), getattr(fast, name)
        assert a.dtype == b.dtype, name
        np.testing.assert_array_equal(a, b, err_msg=name)
    assert dataclasses.asdict(fast.stats) == dataclasses.asdict(oracle.stats)


def _store_thrash():
    trace = []
    for i in range(300):
        trace.append(store((i * 32) % 1024))
        trace.append(ALU_OP)
        trace.append(load(((i + 3) * 32) % 1024))
    return trace


def _traces():
    return {
        "ear": spec92_trace("ear", 2500, seed=7),
        "swm256": spec92_trace("swm256", 2500, seed=7),
        "doduc": spec92_trace("doduc", 2500, seed=7),
        "wave5": spec92_trace("wave5", 2500, seed=7),
        "matmul": square_matmul_trace(12, tile=4),
        "matmul-untiled": square_matmul_trace(10),
        "store-thrash": _store_thrash(),
        "single-line": [load(0), store(4), load(8)] * 50,
        "alu-only": [ALU_OP] * 40,
        "empty": [],
    }


class TestBitwiseEquivalence:
    """reuse-derived EventStream == stepped EventStream, everywhere."""

    @pytest.fixture(scope="class")
    def traces(self):
        return _traces()

    @pytest.fixture(scope="class")
    def profiles(self, traces):
        return {name: build_profile(trace) for name, trace in traces.items()}

    @pytest.mark.parametrize("config", GEOMETRIES, ids=str)
    def test_registry_grid(self, traces, profiles, config):
        for name, trace in traces.items():
            oracle = extract_events(trace, config)
            fast = derive_events(profiles[name], config)
            assert_streams_equal(oracle, fast)

    def test_one_profile_serves_every_geometry(self, traces):
        """The per-trace profile is geometry-independent by design."""
        profile = build_profile(traces["doduc"])
        for config in GEOMETRIES:
            assert_streams_equal(
                extract_events(traces["doduc"], config),
                derive_events(profile, config),
            )

    def test_stats_match_field_by_field(self, traces, profiles):
        config = CacheConfig(512, 32, 2)
        oracle = extract_events(traces["store-thrash"], config).stats
        fast = derive_events(profiles["store-thrash"], config).stats
        assert fast.flushed_lines == oracle.flushed_lines
        assert fast.evictions == oracle.evictions
        assert fast.write_allocate_fills == oracle.write_allocate_fills


class TestFallbackClassification:
    """Everything outside LRU/WB/WA steps the oracle, with a reason."""

    def test_lru_wb_wa_supported(self):
        assert supports(CacheConfig(8192, 32, 2))
        assert unsupported_reason(CacheConfig(8192, 32, 2)) is None

    def test_reason_tokens(self):
        assert (
            unsupported_reason(CacheConfig(8192, 32, 2, replacement="fifo"))
            == "replacement=fifo"
        )
        assert (
            unsupported_reason(
                CacheConfig(
                    8192, 32, 2, write_policy=WritePolicy.WRITE_THROUGH
                )
            )
            == "write_policy=write-through"
        )
        assert (
            unsupported_reason(
                CacheConfig(
                    8192, 32, 2, allocate_policy=AllocatePolicy.WRITE_AROUND
                )
            )
            == "allocate=write-around"
        )

    def test_derive_rejects_unsupported(self):
        profile = build_profile([load(0)])
        with pytest.raises(ValueError, match="reuse engine cannot derive"):
            derive_events(
                profile, CacheConfig(8192, 32, 2, replacement="random")
            )


# -- property tests for the stack-distance arithmetic --------------------


def _naive_greater_left(values):
    return [
        sum(1 for k in range(i) if values[k] > values[i])
        for i in range(len(values))
    ]


class TestCountGreaterLeft:
    @settings(max_examples=150, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=-5, max_value=5), min_size=0, max_size=200
        )
    )
    def test_matches_brute_force(self, values):
        """Ties and negatives included; sizes straddle the block width."""
        got = _count_greater_left(np.asarray(values, dtype=np.int64))
        assert got.tolist() == _naive_greater_left(values)

    @pytest.mark.parametrize("n", [0, 1, 31, 32, 33, 63, 64, 65, 257])
    def test_block_boundaries(self, n):
        rng = np.random.default_rng(n)
        values = rng.integers(-3, 4, size=n).astype(np.int64)
        got = _count_greater_left(values)
        assert got.tolist() == _naive_greater_left(values.tolist())

    def test_descending_is_worst_case(self):
        values = np.arange(100, 0, -1, dtype=np.int64)
        assert _count_greater_left(values).tolist() == list(range(100))


def _naive_stack_distances(line_ids, set_ids):
    """Per reference: distinct same-set lines touched since the previous
    touch of its line; ``None`` for cold references."""
    last_seen: dict[int, int] = {}
    distances: list[int | None] = []
    for i, (line, set_id) in enumerate(zip(line_ids, set_ids)):
        prev = last_seen.get(line)
        if prev is None:
            distances.append(None)
        else:
            window = {
                line_ids[k]
                for k in range(prev + 1, i)
                if set_ids[k] == set_id
            }
            window.discard(line)
            distances.append(len(window))
        last_seen[line] = i
    return distances


addresses = st.lists(
    st.integers(min_value=0, max_value=0x3FF), min_size=1, max_size=250
)


class TestStackDistances:
    @settings(max_examples=100, deadline=None)
    @given(addrs=addresses, line_shift=st.sampled_from([4, 5, 6]))
    def test_set_view_matches_naive(self, addrs, line_shift):
        n_sets = 4
        trace = [load(a * 4) for a in addrs]
        profile = build_profile(trace)
        view = profile.set_view(1 << line_shift, n_sets)
        line_ids = [(a * 4) >> line_shift for a in addrs]
        set_ids = [line & (n_sets - 1) for line in line_ids]
        naive = _naive_stack_distances(line_ids, set_ids)
        for i, expected in enumerate(naive):
            if expected is None:
                assert view.sd[i] >= len(addrs)  # cold sentinel
            else:
                assert view.sd[i] == expected

    @settings(max_examples=100, deadline=None)
    @given(
        addrs=addresses,
        config=st.sampled_from(
            [
                CacheConfig(256, 16, 1),
                CacheConfig(256, 32, 2),
                CacheConfig(512, 32, 2),
                CacheConfig(1024, 64, 4),
            ]
        ),
        store_mask=st.integers(min_value=0, max_value=7),
    )
    def test_mattson_inclusion_vs_oracle(self, addrs, config, store_mask):
        """Hit iff stack distance < associativity — checked end to end
        (miss flags, victims, dirtiness, stats) against stepping."""
        trace = [
            Instruction(
                OpKind.STORE if (i & 7) == store_mask else OpKind.LOAD,
                a * 4,
                4,
            )
            for i, a in enumerate(addrs)
        ]
        assert_streams_equal(
            extract_events(trace, config),
            derive_events(build_profile(trace), config),
        )


@settings(max_examples=80, deadline=None)
@given(
    stream=st.lists(
        st.one_of(
            st.just(ALU_OP),
            st.builds(
                Instruction,
                st.sampled_from([OpKind.LOAD, OpKind.STORE]),
                st.integers(min_value=0, max_value=0x7FF).map(lambda a: a * 4),
                st.just(4),
            ),
        ),
        min_size=0,
        max_size=250,
    ),
    config=st.sampled_from(GEOMETRIES),
)
def test_derive_equals_extract_property(stream, config):
    """Random mixed ALU/load/store streams over the whole grid."""
    assert_streams_equal(
        extract_events(stream, config),
        derive_events(build_profile(stream), config),
    )
