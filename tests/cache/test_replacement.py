"""Replacement policies."""

import pytest

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PLRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_untouched_evicts_way_zero(self):
        assert LRUPolicy(4).victim() == 0

    def test_least_recent_evicted(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        policy.touch(0)  # order now 1,2,3,0
        assert policy.victim() == 1

    def test_touch_reorders(self):
        policy = LRUPolicy(2)
        policy.touch(0)
        policy.touch(1)
        policy.touch(0)
        assert policy.victim() == 1

    def test_reset_makes_way_victim(self):
        policy = LRUPolicy(4)
        for way in range(4):
            policy.touch(way)
        policy.reset_way(2)
        assert policy.victim() == 2

    def test_way_range_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            LRUPolicy(4).touch(4)


class TestFIFO:
    def test_round_robin_fill_order(self):
        policy = FIFOPolicy(2)
        policy.touch(0)
        assert policy.victim() == 1
        policy.touch(1)
        assert policy.victim() == 0

    def test_hits_do_not_reorder(self):
        policy = FIFOPolicy(2)
        policy.touch(0)
        policy.touch(1)
        policy.touch(0)  # a hit, not a new fill
        assert policy.victim() == 0

    def test_reset_targets_freed_way(self):
        policy = FIFOPolicy(4)
        for way in range(4):
            policy.touch(way)
        policy.reset_way(2)
        assert policy.victim() == 2


class TestRandom:
    def test_victims_within_range_and_deterministic(self):
        policy_a = RandomPolicy(4, seed=42)
        policy_b = RandomPolicy(4, seed=42)
        seq_a = [policy_a.victim() for _ in range(20)]
        seq_b = [policy_b.victim() for _ in range(20)]
        assert seq_a == seq_b
        assert all(0 <= v < 4 for v in seq_a)

    def test_covers_all_ways_eventually(self):
        policy = RandomPolicy(4, seed=1)
        assert {policy.victim() for _ in range(200)} == {0, 1, 2, 3}


class TestPLRU:
    def test_single_way(self):
        policy = PLRUPolicy(1)
        policy.touch(0)
        assert policy.victim() == 0

    def test_victim_is_not_most_recent(self):
        policy = PLRUPolicy(4)
        for way in range(4):
            policy.touch(way)
            assert policy.victim() != way

    def test_tree_behaviour_two_ways_matches_lru(self):
        plru = PLRUPolicy(2)
        lru = LRUPolicy(2)
        for way in (0, 1, 0, 0, 1):
            plru.touch(way)
            lru.touch(way)
            assert plru.victim() == lru.victim()

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError, match="power-of-two"):
            PLRUPolicy(3)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy),
        ("fifo", FIFOPolicy),
        ("random", RandomPolicy),
        ("plru", PLRUPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU", 2), LRUPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            make_policy("mru", 4)

    def test_nonpositive_ways_rejected(self):
        with pytest.raises(ValueError, match="n_ways"):
            make_policy("lru", 0)
