"""The content-addressed on-disk EventStream cache."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.cache import events_store
from repro.cache.cache import CacheConfig
from repro.cache.events import EVENT_ARRAYS, extract_events
from repro.cache.events_store import (
    EVENTS_CACHE_DIR_ENV,
    EVENTS_CACHE_ENV,
    entry_key,
    get_or_extract,
    key_material,
    load,
    save,
)
from repro.cache.write_policy import WritePolicy
from repro.core.stalling import StallPolicy
from repro.cpu.replay import replay
from repro.memory.mainmem import MainMemory
from repro.trace.loops import matmul_fingerprint, square_matmul_trace
from repro.trace.spec92 import spec92_trace, trace_fingerprint

CONFIG = CacheConfig(8192, 32, 2)
FP = trace_fingerprint("swm256", 1200, seed=7)


@pytest.fixture(autouse=True)
def _own_cache_dir(tmp_path, monkeypatch):
    """Every test gets a private, initially empty store."""
    monkeypatch.setenv(EVENTS_CACHE_DIR_ENV, str(tmp_path))
    return tmp_path


def _fresh_events():
    return extract_events(spec92_trace("swm256", 1200, seed=7), CONFIG)


def assert_streams_equal(a, b):
    assert a.n_instructions == b.n_instructions
    assert a.config == b.config
    for name in EVENT_ARRAYS:
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name))
    assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)


class TestRoundTrip:
    def test_save_then_load(self):
        events = _fresh_events()
        save(FP, CONFIG, events)
        loaded = load(FP, CONFIG)
        assert loaded is not None
        assert_streams_equal(events, loaded)

    def test_loaded_stream_replays_identically(self):
        """Warm runs must be bitwise-identical to cold runs."""
        events = _fresh_events()
        save(FP, CONFIG, events)
        loaded = load(FP, CONFIG)
        memory = MainMemory(8.0, 4)
        for policy in (StallPolicy.FULL_STALL, StallPolicy.BUS_NOT_LOCKED_3):
            cold = replay(events, memory, policy)
            warm = replay(loaded, memory, policy)
            assert warm.cycles == cold.cycles
            assert warm.read_miss_stall_cycles == cold.read_miss_stall_cycles
            assert warm.flush_stall_cycles == cold.flush_stall_cycles

    def test_miss_returns_none(self):
        assert load(FP, CONFIG) is None


class TestGetOrExtract:
    def test_factory_called_once(self):
        calls = []

        def factory():
            calls.append(1)
            return spec92_trace("swm256", 1200, seed=7)

        first = get_or_extract(FP, CONFIG, factory)
        second = get_or_extract(FP, CONFIG, factory)
        assert len(calls) == 1  # warm hit skips trace generation entirely
        assert_streams_equal(first, second)

    def test_matmul_fingerprints(self):
        fp = matmul_fingerprint(12, tile=4)
        stream = get_or_extract(fp, CONFIG, lambda: square_matmul_trace(12, tile=4))
        again = get_or_extract(
            fp, CONFIG, lambda: pytest.fail("factory must not run on a hit")
        )
        assert_streams_equal(stream, again)


class TestKeyDerivation:
    def test_material_is_human_readable(self):
        material = key_material(FP, CONFIG)
        assert FP in material
        assert "cache/8192/32/2" in material

    def test_key_varies_with_every_input(self):
        base = entry_key(FP, CONFIG)
        assert entry_key(trace_fingerprint("swm256", 1200, seed=8), CONFIG) != base
        assert entry_key(FP, CacheConfig(8192, 32, 4)) != base
        assert (
            entry_key(
                FP, CacheConfig(8192, 32, 2, write_policy=WritePolicy.WRITE_THROUGH)
            )
            != base
        )

    def test_version_bump_invalidates(self, monkeypatch):
        save(FP, CONFIG, _fresh_events())
        assert load(FP, CONFIG) is not None
        monkeypatch.setattr(events_store, "STORE_VERSION", 999)
        assert load(FP, CONFIG) is None  # new key => clean miss

    def test_sidecar_version_mismatch_rejected(self, tmp_path):
        """Even a key collision can't resurrect an old-schema payload."""
        save(FP, CONFIG, _fresh_events())
        meta_path = tmp_path / f"{entry_key(FP, CONFIG)}.json"
        meta = json.loads(meta_path.read_text())
        meta["event_schema_version"] = -1
        meta_path.write_text(json.dumps(meta))
        assert load(FP, CONFIG) is None


class TestOptOut:
    def test_env_disables_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(EVENTS_CACHE_ENV, "0")
        save(FP, CONFIG, _fresh_events())
        assert list(tmp_path.iterdir()) == []
        assert load(FP, CONFIG) is None
        calls = []

        def factory():
            calls.append(1)
            return spec92_trace("swm256", 1200, seed=7)

        get_or_extract(FP, CONFIG, factory)
        get_or_extract(FP, CONFIG, factory)
        assert len(calls) == 2  # no persistence while disabled

    def test_disabled_spellings(self, monkeypatch):
        for value in ("0", "off", "FALSE", " no "):
            monkeypatch.setenv(EVENTS_CACHE_ENV, value)
            assert not events_store.cache_enabled()
        monkeypatch.setenv(EVENTS_CACHE_ENV, "1")
        assert events_store.cache_enabled()


class TestCorruption:
    def test_truncated_payload_falls_back(self, tmp_path):
        events = _fresh_events()
        save(FP, CONFIG, events)
        npz_path = tmp_path / f"{entry_key(FP, CONFIG)}.npz"
        npz_path.write_bytes(npz_path.read_bytes()[:40])
        assert load(FP, CONFIG) is None
        recovered = get_or_extract(
            FP, CONFIG, lambda: spec92_trace("swm256", 1200, seed=7)
        )
        assert_streams_equal(events, recovered)

    def test_garbage_sidecar_falls_back(self, tmp_path):
        save(FP, CONFIG, _fresh_events())
        (tmp_path / f"{entry_key(FP, CONFIG)}.json").write_text("{not json")
        assert load(FP, CONFIG) is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        save(FP, CONFIG, _fresh_events())
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
