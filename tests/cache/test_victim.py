"""Victim cache (Jouppi reference [7])."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.victim import VictimCache, victim_hit_ratio_gain
from repro.trace.record import ALU_OP, load, store
from repro.trace.spec92 import spec92_trace

# 4 sets x 2 ways x 32B lines; addresses 128 apart conflict.
CONFIG = CacheConfig(256, 32, 2)


def conflict_trace(rounds=10):
    """Three lines fighting over one 2-way set — the victim sweet spot."""
    trace = []
    for _ in range(rounds):
        trace.extend([load(0x000), load(0x080), load(0x100)])
    return trace


class TestRescues:
    def test_conflict_misses_get_rescued(self):
        victim = VictimCache(CONFIG, victim_lines=4)
        for inst in conflict_trace():
            victim.access(inst)
        assert victim.stats.rescues > 0
        assert victim.stats.effective_hit_ratio > 0.5

    def test_rescue_reports_no_fill(self):
        victim = VictimCache(CONFIG, victim_lines=4)
        victim.access(load(0x000))
        victim.access(load(0x080))
        victim.access(store(0x100))  # evicts 0x000 (dirty path via store later)
        # 0x000 was clean -> vanished; store 0x000 to dirty then evict:
        victim.access(store(0x000))  # miss; fills; evicts something dirty
        outcome = victim.access(load(0x080))
        assert outcome.line_address == 0x080

    def test_dirty_line_survives_round_trip(self):
        victim = VictimCache(CONFIG, victim_lines=4)
        victim.access(store(0x000))  # dirty in main
        victim.access(load(0x080))
        victim.access(load(0x100))  # evicts dirty 0x000 into buffer
        assert victim.holds(0x000)
        outcome = victim.access(load(0x000))  # rescue
        assert outcome.hit and not outcome.fill_line
        assert victim.main.is_dirty(0x000)

    def test_buffer_overflow_flushes_dirty(self):
        victim = VictimCache(CONFIG, victim_lines=1)
        victim.access(store(0x000))
        victim.access(load(0x080))
        victim.access(load(0x100))  # dirty 0x000 -> buffer
        victim.access(store(0x200))  # set 0 again: evicts 0x080? (clean)
        # Fill the one-slot buffer with another dirty line.
        victim.access(store(0x280))
        victim.access(load(0x300))
        flushes = victim.stats.flushes_to_memory
        assert len(victim) <= 1
        assert flushes >= 0  # overflow path exercised without error


class TestAccounting:
    def test_effective_hit_ratio_bounds(self):
        victim = VictimCache(CONFIG, victim_lines=4)
        for inst in conflict_trace():
            victim.access(inst)
        stats = victim.stats
        assert 0.0 <= stats.effective_hit_ratio <= 1.0
        assert stats.effective_hits == stats.main_hits + stats.rescues
        assert stats.rescue_ratio <= 1.0

    def test_alu_rejected(self):
        victim = VictimCache(CONFIG)
        with pytest.raises(ValueError, match="memory operations"):
            victim.access(ALU_OP)

    def test_validation(self):
        with pytest.raises(ValueError, match="victim_lines"):
            VictimCache(CONFIG, victim_lines=0)


class TestGain:
    def test_gain_positive_on_conflict_heavy_trace(self):
        gain = victim_hit_ratio_gain(conflict_trace(30), CONFIG, victim_lines=4)
        assert gain > 0.2

    def test_gain_never_negative(self):
        for program in ("ear", "doduc"):
            trace = spec92_trace(program, 4000, seed=5)
            gain = victim_hit_ratio_gain(
                trace, CacheConfig(8192, 32, 2), victim_lines=4
            )
            assert gain >= -1e-12

    def test_bigger_buffer_never_hurts(self):
        trace = conflict_trace(30)
        small = victim_hit_ratio_gain(trace, CONFIG, victim_lines=1)
        large = victim_hit_ratio_gain(trace, CONFIG, victim_lines=8)
        assert large >= small
