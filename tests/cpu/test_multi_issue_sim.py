"""Multi-issue timing simulation (Section 6 extension, end to end)."""

import pytest

from repro.cache.cache import CacheConfig
from repro.core.multi_issue import multi_issue_execution_time
from repro.core.params import SystemConfig, WorkloadCharacter
from repro.core.stalling import StallPolicy
from repro.cpu.processor import TimingSimulator
from repro.cpu.replay import simulate, unsupported_reason
from repro.memory.mainmem import MainMemory
from repro.obs import metrics
from repro.trace.spec92 import spec92_trace

CACHE = CacheConfig(8192, 32, 2)


def characterize(sim, count):
    stats = sim.cache.stats
    return WorkloadCharacter(
        instructions=count,
        read_bytes=stats.read_miss_bytes,
        write_around_misses=stats.write_around_count,
        flush_ratio=stats.flush_ratio,
    )


class TestMultiIssueSimulator:
    @pytest.mark.parametrize("ipc", [1.0, 2.0, 4.0])
    def test_simulator_matches_section6_model(self, ipc):
        """The generalized Eq. (2) reproduces the multi-issue simulator."""
        trace = spec92_trace("ear", 6000, seed=9)
        sim = TimingSimulator(CACHE, MainMemory(8.0, 4), issue_rate=ipc)
        result = sim.run(trace)
        predicted = multi_issue_execution_time(
            characterize(sim, result.instructions),
            SystemConfig(4, 32, 8.0),
            ipc=ipc,
        )
        assert result.cycles == pytest.approx(predicted)

    def test_wider_issue_faster_but_bounded_by_memory(self):
        """Memory stalls don't scale: the 4-wide speedup is well below 4x."""
        trace = spec92_trace("swm256", 6000, seed=9)
        narrow = TimingSimulator(CACHE, MainMemory(8.0, 4), issue_rate=1.0).run(trace)
        wide = TimingSimulator(CACHE, MainMemory(8.0, 4), issue_rate=4.0).run(trace)
        speedup = narrow.cycles / wide.cycles
        assert 1.0 < speedup < 2.5

    def test_memory_stall_cycles_identical_across_issue_widths(self):
        trace = spec92_trace("hydro2d", 6000, seed=9)
        one = TimingSimulator(CACHE, MainMemory(8.0, 4), issue_rate=1.0).run(trace)
        four = TimingSimulator(CACHE, MainMemory(8.0, 4), issue_rate=4.0).run(trace)
        assert one.read_miss_stall_cycles == pytest.approx(
            four.read_miss_stall_cycles
        )
        assert one.flush_stall_cycles == pytest.approx(four.flush_stall_cycles)

    def test_issue_rate_validated(self):
        with pytest.raises(ValueError, match="issue_rate"):
            TimingSimulator(CACHE, MainMemory(8.0, 4), issue_rate=0.5)


class TestStepFallbackContract:
    """Multi-issue is *oracle-only* by contract: the unified dispatcher
    must route ``issue_rate != 1`` to the step simulator and say so in
    metrics, so a future replay extension cannot silently change which
    engine answers (see docs/ENGINE.md, "Scope and dispatch")."""

    def test_multi_issue_reason_token(self):
        memory = MainMemory(8.0, 4)
        assert unsupported_reason(CACHE, memory, StallPolicy.FULL_STALL) is None
        assert (
            unsupported_reason(
                CACHE, memory, StallPolicy.FULL_STALL, issue_rate=2.0
            )
            == "multi-issue"
        )

    def test_dispatch_records_labelled_fallback(self):
        trace = spec92_trace("ear", 3000, seed=9)
        registry = metrics.enable_metrics()
        try:
            simulate(trace, CACHE, MainMemory(8.0, 4), issue_rate=2.0)
        finally:
            metrics.disable_metrics()
        assert (
            registry.counter("engine.step_fallback.dispatches", reason="multi-issue")
            == 1
        )

    def test_single_issue_never_dispatches_to_step(self):
        trace = spec92_trace("ear", 3000, seed=9)
        registry = metrics.enable_metrics()
        try:
            simulate(trace, CACHE, MainMemory(8.0, 4), issue_rate=1.0)
        finally:
            metrics.disable_metrics()
        counters = registry.snapshot()["counters"]
        fallbacks = {
            key: value
            for key, value in counters.items()
            if key.startswith("engine.step_fallback.")
        }
        assert fallbacks == {}
        assert counters.get("engine.replay.dispatches{policy=FS}", 0) >= 0
