"""Multi-issue timing simulation (Section 6 extension, end to end)."""

import pytest

from repro.cache.cache import CacheConfig
from repro.core.multi_issue import multi_issue_execution_time
from repro.core.params import SystemConfig, WorkloadCharacter
from repro.cpu.processor import TimingSimulator
from repro.memory.mainmem import MainMemory
from repro.trace.spec92 import spec92_trace

CACHE = CacheConfig(8192, 32, 2)


def characterize(sim, count):
    stats = sim.cache.stats
    return WorkloadCharacter(
        instructions=count,
        read_bytes=stats.read_miss_bytes,
        write_around_misses=stats.write_around_count,
        flush_ratio=stats.flush_ratio,
    )


class TestMultiIssueSimulator:
    @pytest.mark.parametrize("ipc", [1.0, 2.0, 4.0])
    def test_simulator_matches_section6_model(self, ipc):
        """The generalized Eq. (2) reproduces the multi-issue simulator."""
        trace = spec92_trace("ear", 6000, seed=9)
        sim = TimingSimulator(CACHE, MainMemory(8.0, 4), issue_rate=ipc)
        result = sim.run(trace)
        predicted = multi_issue_execution_time(
            characterize(sim, result.instructions),
            SystemConfig(4, 32, 8.0),
            ipc=ipc,
        )
        assert result.cycles == pytest.approx(predicted)

    def test_wider_issue_faster_but_bounded_by_memory(self):
        """Memory stalls don't scale: the 4-wide speedup is well below 4x."""
        trace = spec92_trace("swm256", 6000, seed=9)
        narrow = TimingSimulator(CACHE, MainMemory(8.0, 4), issue_rate=1.0).run(trace)
        wide = TimingSimulator(CACHE, MainMemory(8.0, 4), issue_rate=4.0).run(trace)
        speedup = narrow.cycles / wide.cycles
        assert 1.0 < speedup < 2.5

    def test_memory_stall_cycles_identical_across_issue_widths(self):
        trace = spec92_trace("hydro2d", 6000, seed=9)
        one = TimingSimulator(CACHE, MainMemory(8.0, 4), issue_rate=1.0).run(trace)
        four = TimingSimulator(CACHE, MainMemory(8.0, 4), issue_rate=4.0).run(trace)
        assert one.read_miss_stall_cycles == pytest.approx(
            four.read_miss_stall_cycles
        )
        assert one.flush_stall_cycles == pytest.approx(four.flush_stall_cycles)

    def test_issue_rate_validated(self):
        with pytest.raises(ValueError, match="issue_rate"):
            TimingSimulator(CACHE, MainMemory(8.0, 4), issue_rate=0.5)
