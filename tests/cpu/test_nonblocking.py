"""MSHR-based non-blocking cache simulation."""

import pytest

from repro.cache.cache import CacheConfig
from repro.core.stalling import StallPolicy
from repro.cpu.nonblocking import MSHRSimulator, mshr_stall_factors
from repro.cpu.processor import TimingSimulator
from repro.memory.mainmem import MainMemory
from repro.trace.record import ALU_OP, load
from repro.trace.spec92 import spec92_trace

BIG_CACHE = CacheConfig(65536, 32, 2)
CACHE = CacheConfig(8192, 32, 2)


class TestBasics:
    def test_miss_is_free_until_data_needed(self):
        sim = MSHRSimulator(BIG_CACHE, MainMemory(8.0, 4), mshr_count=4)
        result = sim.run([load(0x40), ALU_OP, ALU_OP])
        # Miss retires free; two ALU cycles follow.
        assert result.cycles == 2.0
        assert result.read_miss_stall_cycles == 0.0

    def test_reuse_waits_for_word(self):
        sim = MSHRSimulator(BIG_CACHE, MainMemory(8.0, 4), mshr_count=4)
        result = sim.run([load(0x40), load(0x44)])
        # Chunk 1 arrives at 16; second load waits 16 then retires (+1).
        assert result.cycles == 17.0

    def test_two_misses_overlap_with_enough_mshrs(self):
        sim = MSHRSimulator(BIG_CACHE, MainMemory(8.0, 4), mshr_count=4)
        result = sim.run([load(0x40), load(0x4000)])
        # Both misses retire free; fills proceed in background.
        assert result.cycles == 0.0
        assert sim.peak_outstanding == 2

    def test_single_mshr_serializes_misses(self):
        sim = MSHRSimulator(BIG_CACHE, MainMemory(8.0, 4), mshr_count=1)
        result = sim.run([load(0x40), load(0x4000)])
        # Second miss waits for the first fill to complete (64 cycles).
        assert result.cycles == 64.0
        assert result.read_miss_stall_cycles == 64.0

    def test_validation(self):
        with pytest.raises(ValueError, match="mshr_count"):
            MSHRSimulator(BIG_CACHE, MainMemory(8.0, 4), mshr_count=0)
        with pytest.raises(ValueError, match="multiple"):
            MSHRSimulator(BIG_CACHE, MainMemory(8.0, 64))


class TestAgainstBlockingPolicies:
    @pytest.fixture(scope="class")
    def trace(self):
        return spec92_trace("doduc", 8000, seed=7)

    def test_nb_never_slower_than_fs(self, trace):
        fs = TimingSimulator(CACHE, MainMemory(8.0, 4)).run(trace)
        nb = MSHRSimulator(CACHE, MainMemory(8.0, 4), mshr_count=4).run(trace)
        assert nb.cycles <= fs.cycles

    def test_nb_never_slower_than_bnl3(self, trace):
        bnl3 = TimingSimulator(
            CACHE, MainMemory(8.0, 4), policy=StallPolicy.BUS_NOT_LOCKED_3
        ).run(trace)
        nb = MSHRSimulator(CACHE, MainMemory(8.0, 4), mshr_count=4).run(trace)
        assert nb.cycles <= bnl3.cycles

    def test_phi_within_nb_bounds(self, trace):
        for count in (1, 4):
            phi = (
                MSHRSimulator(CACHE, MainMemory(8.0, 4), mshr_count=count)
                .run(trace)
                .stall_factor
            )
            assert 0.0 <= phi <= 8.0

    def test_more_mshrs_never_hurt(self, trace):
        factors = mshr_stall_factors(trace, CACHE, 8.0, 4, (1, 2, 4, 8))
        values = [factors[k] for k in (1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_single_bus_limits_mshr_benefit(self, trace):
        """The extension's headline: fills serialize on one bus, so the
        1 -> 8 MSHR spread is small."""
        factors = mshr_stall_factors(trace, CACHE, 8.0, 4, (1, 8))
        assert factors[1] - factors[8] < 1.0


class TestLoadUseDistance:
    """The NB idealization knob: dependent-use distance."""

    def test_zero_distance_blocks_on_use(self):
        sim = MSHRSimulator(
            BIG_CACHE, MainMemory(8.0, 4), mshr_count=4, load_use_distance=0.0
        )
        result = sim.run([load(0x40)])
        # Consumer immediately behind the load: waits the full beta_m.
        assert result.cycles == 8.0
        assert result.read_miss_stall_cycles == 8.0

    def test_large_distance_recovers_ideal(self):
        sim = MSHRSimulator(
            BIG_CACHE, MainMemory(8.0, 4), mshr_count=4, load_use_distance=100.0
        )
        result = sim.run([load(0x40)])
        assert result.read_miss_stall_cycles == 0.0

    def test_phi_interpolates_monotonically(self):
        trace = spec92_trace("swm256", 6000, seed=7)
        phis = []
        for distance in (0.0, 4.0, 16.0, 64.0):
            sim = MSHRSimulator(
                CACHE, MainMemory(8.0, 4), mshr_count=4,
                load_use_distance=distance,
            )
            phis.append(sim.run(trace).stall_factor)
        assert phis == sorted(phis, reverse=True)

    def test_none_is_most_optimistic(self):
        trace = spec92_trace("ear", 4000, seed=7)
        ideal = MSHRSimulator(CACHE, MainMemory(8.0, 4), 4).run(trace)
        blocking = MSHRSimulator(
            CACHE, MainMemory(8.0, 4), 4, load_use_distance=0.0
        ).run(trace)
        assert ideal.cycles <= blocking.cycles

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError, match="load_use_distance"):
            MSHRSimulator(CACHE, MainMemory(8.0, 4), 4, load_use_distance=-1.0)
