"""Replay engine vs. step simulator: exact cycle-count agreement.

The two-phase engine's contract is *exactness*, not approximation: for
every supported configuration the replayed :class:`TimingResult` must
equal the :class:`TimingSimulator` oracle field by field — cycles,
read-miss stalls, flush stalls, write stalls, fill counts — with ``==``
on floats.

Coverage: all six policies (FS/BL/BNL1/BNL2/BNL3/NB), write-buffer
depths, pipelined memory, page-mode DRAM, write-through/write-around
caches, the k-MSHR non-blocking kernel, all six SPEC92 stand-in traces,
several geometries (including line == bus width and a tiny thrashing
cache), integer and dyadic-fraction ``beta_m``, plus Hypothesis
property tests over random traces and geometries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheConfig
from repro.cache.events import extract_events
from repro.cache.write_policy import AllocatePolicy, WritePolicy
from repro.core.stalling import StallPolicy
from repro.cpu.nonblocking import MSHRSimulator
from repro.cpu.processor import TimingSimulator
from repro.cpu.replay import (
    REPLAY_POLICIES,
    replay,
    replay_fs_sweep,
    replay_mshr,
    simulate,
    supports_replay,
    unsupported_reason,
)
from repro.cpu.stall_measure import miss_distances
from repro.memory.dram import PageModeDram
from repro.memory.mainmem import MainMemory
from repro.memory.pipelined import PipelinedMemory
from repro.trace.record import ALU_OP, Instruction, OpKind, load, store
from repro.trace.spec92 import SPEC92_PROFILES, spec92_trace

POLICIES = sorted(REPLAY_POLICIES, key=lambda p: p.value)

GEOMETRIES = [
    CacheConfig(8192, 32, 2),     # the paper's Figure 1 cache
    CacheConfig(1024, 16, 1),     # direct-mapped, short lines
    CacheConfig(512, 64, 4),      # tiny + long lines: heavy thrashing
    CacheConfig(4096, 32, 4),
]


def assert_results_equal(oracle, fast):
    assert fast.instructions == oracle.instructions
    assert fast.line_fills == oracle.line_fills
    assert fast.cycles == oracle.cycles
    assert fast.read_miss_stall_cycles == oracle.read_miss_stall_cycles
    assert fast.flush_stall_cycles == oracle.flush_stall_cycles
    assert fast.write_stall_cycles == oracle.write_stall_cycles
    assert fast.memory_cycle == oracle.memory_cycle


def run_both(trace, config, policy, beta, bus_width=4):
    oracle = TimingSimulator(
        config, MainMemory(beta, bus_width), policy=policy
    ).run(trace)
    fast = replay(
        extract_events(trace, config), MainMemory(beta, bus_width), policy
    )
    return oracle, fast


class TestSpec92Equivalence:
    """Exact agreement on the actual Figure 1 workloads."""

    @pytest.fixture(scope="class")
    def traces(self):
        return {
            name: profile.trace(4000, seed=7)
            for name, profile in SPEC92_PROFILES.items()
        }

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    @pytest.mark.parametrize("beta", [2.0, 8.0, 48.0])
    def test_all_traces(self, traces, policy, beta):
        config = CacheConfig(8192, 32, 2)
        for name, trace in traces.items():
            events = extract_events(trace, config)
            for bus_width in (4, 8):
                memory = MainMemory(beta, bus_width)
                oracle = TimingSimulator(config, memory, policy=policy).run(trace)
                fast = replay(events, memory, policy)
                assert_results_equal(oracle, fast), (name, bus_width)

    @pytest.mark.parametrize("config", GEOMETRIES, ids=str)
    def test_geometries(self, traces, config):
        trace = traces["doduc"]
        for policy in POLICIES:
            for beta in (1.0, 7.0, 16.0):
                oracle, fast = run_both(trace, config, policy, beta)
                assert_results_equal(oracle, fast)

    def test_dyadic_fractional_beta(self, traces):
        """Non-integer (but binary-fraction) memory cycles stay exact."""
        config = CacheConfig(1024, 32, 2)
        for beta in (1.5, 2.25, 6.5):
            for policy in POLICIES:
                oracle, fast = run_both(traces["ear"], config, policy, beta)
                assert_results_equal(oracle, fast)


class TestEdgeCases:
    def test_empty_window_back_to_back_misses(self):
        trace = [load(i * 64) for i in range(64)]  # every access misses
        config = CacheConfig(512, 32, 1)
        for policy in POLICIES:
            oracle, fast = run_both(trace, config, policy, 8.0)
            assert_results_equal(oracle, fast)

    def test_line_equals_bus_width(self):
        """One-chunk fills: no partial-fill window at all."""
        trace = spec92_trace("wave5", 2000, seed=1)
        config = CacheConfig(1024, 4, 2)
        for policy in POLICIES:
            oracle, fast = run_both(trace, config, policy, 5.0)
            assert_results_equal(oracle, fast)

    def test_no_memory_ops(self):
        trace = [ALU_OP] * 100
        oracle, fast = run_both(trace, CacheConfig(8192, 32, 2),
                                StallPolicy.BUS_LOCKED, 4.0)
        assert_results_equal(oracle, fast)
        assert fast.cycles == 100.0

    def test_trace_ends_inside_fill_window(self):
        """Re-touches after the final miss still stall correctly."""
        trace = [load(0), load(4), load(8), load(28)]
        config = CacheConfig(512, 32, 1)
        for policy in POLICIES:
            oracle, fast = run_both(trace, config, policy, 16.0)
            assert_results_equal(oracle, fast)

    def test_dirty_victims_and_stores(self):
        """Write-allocate store misses + copy-backs, tiny cache."""
        trace = []
        for i in range(300):
            trace.append(store((i * 32) % 1024))
            trace.append(ALU_OP)
            trace.append(load(((i + 3) * 32) % 1024))
        config = CacheConfig(256, 32, 2)
        for policy in POLICIES:
            for beta in (2.0, 24.0):
                oracle, fast = run_both(trace, config, policy, beta)
                assert_results_equal(oracle, fast)

    def test_simulate_covers_former_fallback_configs(self):
        """NB / write-buffer / pipelined configs now replay exactly."""
        trace = spec92_trace("ear", 500, seed=3)
        config = CacheConfig(8192, 32, 2)
        memory = MainMemory(8.0, 4)
        cases = [
            dict(policy=StallPolicy.NON_BLOCKING),
            dict(policy=StallPolicy.FULL_STALL, write_buffer_depth=4),
            dict(policy=StallPolicy.BUS_NOT_LOCKED_2, write_buffer_depth=1),
        ]
        for case in cases:
            assert supports_replay(config, memory, **case)
            result = simulate(trace, config, memory, **case)
            oracle = TimingSimulator(config, memory, **case).run(trace)
            assert_results_equal(oracle, result)
        pipelined = PipelinedMemory(8.0, 4, 2.0)
        assert supports_replay(config, pipelined, StallPolicy.FULL_STALL)
        result = simulate(trace, config, pipelined, StallPolicy.FULL_STALL)
        oracle = TimingSimulator(
            config, pipelined, policy=StallPolicy.FULL_STALL
        ).run(trace)
        assert_results_equal(oracle, result)

    def test_simulate_falls_back_for_multi_issue(self):
        """Multi-issue remains the one step-simulator configuration."""
        trace = spec92_trace("ear", 500, seed=3)
        config = CacheConfig(8192, 32, 2)
        memory = MainMemory(8.0, 4)
        assert not supports_replay(
            config, memory, StallPolicy.FULL_STALL, issue_rate=2.0
        )
        assert (
            unsupported_reason(
                config, memory, StallPolicy.FULL_STALL, issue_rate=2.0
            )
            == "multi-issue"
        )
        result = simulate(
            trace, config, memory, StallPolicy.FULL_STALL, issue_rate=2.0
        )
        oracle = TimingSimulator(
            config, memory, policy=StallPolicy.FULL_STALL, issue_rate=2.0
        ).run(trace)
        assert result.cycles == oracle.cycles

    def test_unsupported_reason_labels(self):
        config = CacheConfig(8192, 32, 2)
        memory = MainMemory(8.0, 4)
        assert unsupported_reason(config, memory, StallPolicy.FULL_STALL) is None

        class TweakedMemory(MainMemory):
            """Subclasses may override timing hooks — not vetted."""

        assert (
            unsupported_reason(
                config, TweakedMemory(8.0, 4), StallPolicy.FULL_STALL
            )
            == "memory-model"
        )
        assert (
            unsupported_reason(
                config, MainMemory(8.0, 64), StallPolicy.FULL_STALL
            )
            == "geometry"
        )

    def test_replay_rejects_unsupported(self):
        events = extract_events([load(0)], CacheConfig(8192, 32, 2))

        class TweakedMemory(MainMemory):
            pass

        with pytest.raises(ValueError, match="replay does not cover"):
            replay(events, TweakedMemory(8.0, 4), StallPolicy.FULL_STALL)


class TestWriteBufferEquivalence:
    """Read-bypassing write-buffer configs replay exactly."""

    TRACES = ("swm256", "hydro2d")
    GEOMETRIES = (CacheConfig(8192, 32, 2), CacheConfig(1024, 16, 1))
    BETAS = (2.0, 8.0, 24.0)

    @pytest.mark.parametrize("depth", [1, 4, 8])
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    def test_depths(self, depth, policy):
        for name in self.TRACES:
            trace = spec92_trace(name, 2500, seed=7)
            for config in self.GEOMETRIES:
                events = extract_events(trace, config)
                for beta in self.BETAS:
                    memory = MainMemory(beta, 4)
                    oracle = TimingSimulator(
                        config, memory, policy=policy, write_buffer_depth=depth
                    ).run(trace)
                    fast = replay(
                        events, memory, policy, write_buffer_depth=depth
                    )
                    assert_results_equal(oracle, fast)

    def test_depth_zero_means_no_buffer(self):
        trace = spec92_trace("ear", 1500, seed=7)
        config = CacheConfig(8192, 32, 2)
        events = extract_events(trace, config)
        memory = MainMemory(8.0, 4)
        plain = replay(events, memory, StallPolicy.FULL_STALL)
        zero = replay(
            events, memory, StallPolicy.FULL_STALL, write_buffer_depth=0
        )
        assert_results_equal(plain, zero)


class TestPipelinedMemoryEquivalence:
    """Eq. (9) pipelined memory replays exactly."""

    TRACES = ("nasa7", "doduc")
    GEOMETRIES = (CacheConfig(8192, 32, 2), CacheConfig(512, 64, 4))
    BETAS = (4.0, 8.0, 16.0)

    @pytest.mark.parametrize("turnaround", [1.0, 2.0])
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    def test_turnarounds(self, turnaround, policy):
        for name in self.TRACES:
            trace = spec92_trace(name, 2500, seed=7)
            for config in self.GEOMETRIES:
                events = extract_events(trace, config)
                for beta in self.BETAS:
                    memory = PipelinedMemory(beta, 4, turnaround=turnaround)
                    oracle = TimingSimulator(
                        config, memory, policy=policy
                    ).run(trace)
                    fast = replay(events, memory, policy)
                    assert_results_equal(oracle, fast)

    def test_pipelined_with_write_buffer(self):
        trace = spec92_trace("swm256", 2000, seed=7)
        config = CacheConfig(8192, 32, 2)
        events = extract_events(trace, config)
        memory = PipelinedMemory(8.0, 4, turnaround=2.0)
        for depth in (1, 4):
            oracle = TimingSimulator(
                config,
                memory,
                policy=StallPolicy.BUS_NOT_LOCKED_3,
                write_buffer_depth=depth,
            ).run(trace)
            fast = replay(
                events,
                memory,
                StallPolicy.BUS_NOT_LOCKED_3,
                write_buffer_depth=depth,
            )
            assert_results_equal(oracle, fast)


class TestWritePolicyEquivalence:
    """Write-through and write-around traffic replays exactly."""

    CONFIGS = [
        CacheConfig(8192, 32, 2, write_policy=WritePolicy.WRITE_THROUGH),
        CacheConfig(
            8192,
            32,
            2,
            write_policy=WritePolicy.WRITE_THROUGH,
            allocate_policy=AllocatePolicy.WRITE_AROUND,
        ),
        CacheConfig(8192, 32, 2, allocate_policy=AllocatePolicy.WRITE_AROUND),
        CacheConfig(
            1024,
            16,
            1,
            write_policy=WritePolicy.WRITE_THROUGH,
            allocate_policy=AllocatePolicy.WRITE_AROUND,
        ),
    ]
    BETAS = (2.0, 8.0, 24.0)

    @pytest.mark.parametrize("config", CONFIGS, ids=str)
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    def test_policies(self, config, policy):
        for name in ("swm256", "ear"):
            trace = spec92_trace(name, 2500, seed=7)
            events = extract_events(trace, config)
            for beta in self.BETAS:
                memory = MainMemory(beta, 4)
                oracle = TimingSimulator(config, memory, policy=policy).run(
                    trace
                )
                fast = replay(events, memory, policy)
                assert_results_equal(oracle, fast)

    def test_write_through_with_buffer(self):
        config = CacheConfig(
            8192, 32, 2, write_policy=WritePolicy.WRITE_THROUGH
        )
        trace = spec92_trace("hydro2d", 2500, seed=7)
        events = extract_events(trace, config)
        memory = MainMemory(8.0, 4)
        for depth in (1, 4, 8):
            for policy in POLICIES:
                oracle = TimingSimulator(
                    config, memory, policy=policy, write_buffer_depth=depth
                ).run(trace)
                fast = replay(events, memory, policy, write_buffer_depth=depth)
                assert_results_equal(oracle, fast)


class TestPageModeDramEquivalence:
    """The stateful DRAM model replays exactly, page counters included."""

    @pytest.mark.parametrize(
        "policy",
        [StallPolicy.FULL_STALL, StallPolicy.BUS_NOT_LOCKED_3],
        ids=lambda p: p.value,
    )
    def test_timing_and_page_counters(self, policy):
        config = CacheConfig(8192, 32, 2)
        for name in ("swm256", "doduc"):
            trace = spec92_trace(name, 2500, seed=7)
            events = extract_events(trace, config)
            oracle_dram = PageModeDram(4.0, 12.0, 2048, 4)
            oracle = TimingSimulator(config, oracle_dram, policy=policy).run(
                trace
            )
            replay_dram = PageModeDram(4.0, 12.0, 2048, 4)
            fast = replay(events, replay_dram, policy)
            assert_results_equal(oracle, fast)
            assert replay_dram.page_hits == oracle_dram.page_hits
            assert replay_dram.page_misses == oracle_dram.page_misses


class TestMshrReplayEquivalence:
    """replay_mshr vs the MSHRSimulator oracle."""

    @pytest.mark.parametrize("mshr_count", [1, 2, 4, 8])
    @pytest.mark.parametrize("distance", [None, 0.0, 8.0, 64.0])
    def test_counts_and_distances(self, mshr_count, distance):
        for name in ("swm256", "ear"):
            trace = spec92_trace(name, 2500, seed=7)
            for config in (CacheConfig(8192, 32, 2), CacheConfig(1024, 16, 1)):
                events = extract_events(trace, config)
                for beta in (2.0, 8.0, 16.0):
                    memory = MainMemory(beta, 4)
                    oracle = MSHRSimulator(
                        config,
                        memory,
                        mshr_count=mshr_count,
                        load_use_distance=distance,
                    ).run(trace)
                    fast = replay_mshr(
                        events,
                        memory,
                        mshr_count=mshr_count,
                        load_use_distance=distance,
                    )
                    assert_results_equal(oracle, fast)

    def test_rejects_invalid(self):
        events = extract_events([load(0)], CacheConfig(8192, 32, 2))
        with pytest.raises(ValueError, match="mshr_count"):
            replay_mshr(events, MainMemory(8.0, 4), mshr_count=0)
        with pytest.raises(ValueError, match="load_use_distance"):
            replay_mshr(events, MainMemory(8.0, 4), load_use_distance=-1.0)
        with pytest.raises(ValueError, match="replay_mshr covers"):
            replay_mshr(events, PipelinedMemory(8.0, 4, 2.0))

    @settings(max_examples=60, deadline=None)
    @given(
        stream=st.deferred(lambda: instruction_streams()),
        mshr_count=st.sampled_from([1, 2, 4]),
        distance=st.sampled_from([None, 0.0, 4.0, 32.0]),
        beta=st.sampled_from([1.0, 2.0, 8.0, 12.5]),
        config=st.sampled_from(
            [CacheConfig(256, 16, 1), CacheConfig(512, 32, 2)]
        ),
    )
    def test_mshr_property(self, stream, mshr_count, distance, beta, config):
        memory = MainMemory(beta, 4)
        oracle = MSHRSimulator(
            config, memory, mshr_count=mshr_count, load_use_distance=distance
        ).run(stream)
        fast = replay_mshr(
            extract_events(stream, config),
            memory,
            mshr_count=mshr_count,
            load_use_distance=distance,
        )
        assert_results_equal(oracle, fast)


class TestFsSweep:
    """The vectorized FS beta sweep equals the per-point kernel."""

    def test_integer_grid(self):
        trace = spec92_trace("wave5", 2500, seed=7)
        config = CacheConfig(8192, 32, 2)
        events = extract_events(trace, config)
        betas = (2.0, 8.0, 16.0, 48.0)
        swept = replay_fs_sweep(events, betas, 4)
        for beta, result in zip(betas, swept):
            oracle = TimingSimulator(
                config, MainMemory(beta, 4), policy=StallPolicy.FULL_STALL
            ).run(trace)
            assert_results_equal(oracle, result)

    def test_fractional_grid_falls_back_exactly(self):
        trace = spec92_trace("ear", 1500, seed=7)
        config = CacheConfig(1024, 32, 2)
        events = extract_events(trace, config)
        betas = (1.5, 6.5, 8.0)
        swept = replay_fs_sweep(events, betas, 4)
        for beta, result in zip(betas, swept):
            oracle = TimingSimulator(
                config, MainMemory(beta, 4), policy=StallPolicy.FULL_STALL
            ).run(trace)
            assert_results_equal(oracle, result)

    def test_rejects_non_writeback(self):
        config = CacheConfig(
            8192, 32, 2, write_policy=WritePolicy.WRITE_THROUGH
        )
        events = extract_events([load(0)], config)
        with pytest.raises(ValueError, match="replay_fs_sweep"):
            replay_fs_sweep(events, (8.0,), 4)


class TestReusePhase1Equivalence:
    """End-to-end over the reuse engine: profile -> derived EventStream
    -> replay must equal stepping the cache *and* the timing oracle.

    The phase-1 equivalence (derived stream == extracted stream) is
    pinned array-by-array in ``tests/cache/test_reuse.py``; here the
    derived stream feeds the actual phase-2 replay so a representation
    mismatch anywhere in the chain would surface as a cycle-count
    difference.
    """

    GEOMETRIES = (
        CacheConfig(8192, 32, 2),
        CacheConfig(1024, 16, 1),
        CacheConfig(512, 64, 4),
    )

    @pytest.mark.parametrize("name", ["ear", "swm256", "doduc"])
    def test_replay_over_derived_stream(self, name):
        from repro.cache.reuse import build_profile, derive_events

        trace = spec92_trace(name, 2500, seed=7)
        profile = build_profile(trace)
        for config in self.GEOMETRIES:
            derived = derive_events(profile, config)
            for policy in (StallPolicy.FULL_STALL, StallPolicy.BUS_NOT_LOCKED_3):
                for beta in (2.0, 8.0):
                    memory = MainMemory(beta, 4)
                    oracle = TimingSimulator(
                        config, memory, policy=policy
                    ).run(trace)
                    fast = replay(derived, memory, policy)
                    assert_results_equal(oracle, fast)

    def test_derived_stream_through_simulate(self):
        from repro.cache.reuse import build_profile, derive_events

        trace = spec92_trace("wave5", 2000, seed=7)
        config = CacheConfig(8192, 32, 2)
        derived = derive_events(build_profile(trace), config)
        memory = MainMemory(8.0, 4)
        result = simulate(
            (), config, memory, policy=StallPolicy.FULL_STALL, events=derived
        )
        oracle = TimingSimulator(
            config, memory, policy=StallPolicy.FULL_STALL
        ).run(trace)
        assert_results_equal(oracle, result)

    def test_derived_stream_mshr_replay(self):
        from repro.cache.reuse import build_profile, derive_events

        trace = spec92_trace("ear", 2000, seed=7)
        config = CacheConfig(1024, 16, 1)
        derived = derive_events(build_profile(trace), config)
        memory = MainMemory(8.0, 4)
        oracle = MSHRSimulator(config, memory, mshr_count=4).run(trace)
        fast = replay_mshr(derived, memory, mshr_count=4)
        assert_results_equal(oracle, fast)


class TestEventStreamDerived:
    def test_inter_miss_distances_match_legacy(self):
        """EventStream's Eq. (8) distances == stall_measure.miss_distances."""
        config = CacheConfig(8192, 32, 2)
        for name in ("nasa7", "ear", "doduc"):
            trace = spec92_trace(name, 3000, seed=7)
            events = extract_events(trace, config)
            assert events.inter_miss_distances() == miss_distances(trace, config)

    def test_fill_count_matches_functional_stats(self):
        trace = spec92_trace("swm256", 2000, seed=5)
        events = extract_events(trace, CacheConfig(1024, 32, 2))
        assert events.n_fills == events.stats.line_fills
        assert events.n_instructions == len(trace)


@st.composite
def instruction_streams(draw):
    n = draw(st.integers(min_value=1, max_value=250))
    stream = []
    for _ in range(n):
        roll = draw(st.integers(min_value=0, max_value=9))
        if roll < 5:
            stream.append(ALU_OP)
        else:
            kind = OpKind.STORE if roll >= 8 else OpKind.LOAD
            address = draw(st.integers(min_value=0, max_value=0x7FF)) * 4
            stream.append(Instruction(kind, address, 4))
    return stream


@settings(max_examples=120, deadline=None)
@given(
    stream=instruction_streams(),
    policy=st.sampled_from(POLICIES),
    beta=st.sampled_from([1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 12.5, 32.0]),
    config=st.sampled_from(
        [
            CacheConfig(256, 16, 1),
            CacheConfig(256, 32, 2),
            CacheConfig(512, 32, 2),
            CacheConfig(1024, 64, 4),
        ]
    ),
)
def test_replay_equals_oracle_property(stream, policy, beta, config):
    oracle = TimingSimulator(config, MainMemory(beta, 4), policy=policy).run(stream)
    fast = replay(extract_events(stream, config), MainMemory(beta, 4), policy)
    assert_results_equal(oracle, fast)
