"""Replay engine vs. step simulator: exact cycle-count agreement.

The two-phase engine's contract is *exactness*, not approximation: for
every supported configuration the replayed :class:`TimingResult` must
equal the :class:`TimingSimulator` oracle field by field — cycles,
read-miss stalls, flush stalls, fill counts — with ``==`` on floats.

Coverage: all five blocking policies (FS/BL/BNL1/BNL2/BNL3), all six
SPEC92 stand-in traces, several geometries (including line == bus width
and a tiny thrashing cache), integer and dyadic-fraction ``beta_m``,
plus Hypothesis property tests over random traces and geometries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheConfig
from repro.cache.events import extract_events
from repro.core.stalling import StallPolicy
from repro.cpu.processor import TimingSimulator
from repro.cpu.replay import REPLAY_POLICIES, replay, simulate, supports_replay
from repro.cpu.stall_measure import miss_distances
from repro.memory.mainmem import MainMemory
from repro.memory.pipelined import PipelinedMemory
from repro.trace.record import ALU_OP, Instruction, OpKind, load, store
from repro.trace.spec92 import SPEC92_PROFILES, spec92_trace

POLICIES = sorted(REPLAY_POLICIES, key=lambda p: p.value)

GEOMETRIES = [
    CacheConfig(8192, 32, 2),     # the paper's Figure 1 cache
    CacheConfig(1024, 16, 1),     # direct-mapped, short lines
    CacheConfig(512, 64, 4),      # tiny + long lines: heavy thrashing
    CacheConfig(4096, 32, 4),
]


def assert_results_equal(oracle, fast):
    assert fast.instructions == oracle.instructions
    assert fast.line_fills == oracle.line_fills
    assert fast.cycles == oracle.cycles
    assert fast.read_miss_stall_cycles == oracle.read_miss_stall_cycles
    assert fast.flush_stall_cycles == oracle.flush_stall_cycles
    assert fast.write_stall_cycles == oracle.write_stall_cycles
    assert fast.memory_cycle == oracle.memory_cycle


def run_both(trace, config, policy, beta, bus_width=4):
    oracle = TimingSimulator(
        config, MainMemory(beta, bus_width), policy=policy
    ).run(trace)
    fast = replay(
        extract_events(trace, config), MainMemory(beta, bus_width), policy
    )
    return oracle, fast


class TestSpec92Equivalence:
    """Exact agreement on the actual Figure 1 workloads."""

    @pytest.fixture(scope="class")
    def traces(self):
        return {
            name: profile.trace(4000, seed=7)
            for name, profile in SPEC92_PROFILES.items()
        }

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    @pytest.mark.parametrize("beta", [2.0, 8.0, 48.0])
    def test_all_traces(self, traces, policy, beta):
        config = CacheConfig(8192, 32, 2)
        for name, trace in traces.items():
            events = extract_events(trace, config)
            for bus_width in (4, 8):
                memory = MainMemory(beta, bus_width)
                oracle = TimingSimulator(config, memory, policy=policy).run(trace)
                fast = replay(events, memory, policy)
                assert_results_equal(oracle, fast), (name, bus_width)

    @pytest.mark.parametrize("config", GEOMETRIES, ids=str)
    def test_geometries(self, traces, config):
        trace = traces["doduc"]
        for policy in POLICIES:
            for beta in (1.0, 7.0, 16.0):
                oracle, fast = run_both(trace, config, policy, beta)
                assert_results_equal(oracle, fast)

    def test_dyadic_fractional_beta(self, traces):
        """Non-integer (but binary-fraction) memory cycles stay exact."""
        config = CacheConfig(1024, 32, 2)
        for beta in (1.5, 2.25, 6.5):
            for policy in POLICIES:
                oracle, fast = run_both(traces["ear"], config, policy, beta)
                assert_results_equal(oracle, fast)


class TestEdgeCases:
    def test_empty_window_back_to_back_misses(self):
        trace = [load(i * 64) for i in range(64)]  # every access misses
        config = CacheConfig(512, 32, 1)
        for policy in POLICIES:
            oracle, fast = run_both(trace, config, policy, 8.0)
            assert_results_equal(oracle, fast)

    def test_line_equals_bus_width(self):
        """One-chunk fills: no partial-fill window at all."""
        trace = spec92_trace("wave5", 2000, seed=1)
        config = CacheConfig(1024, 4, 2)
        for policy in POLICIES:
            oracle, fast = run_both(trace, config, policy, 5.0)
            assert_results_equal(oracle, fast)

    def test_no_memory_ops(self):
        trace = [ALU_OP] * 100
        oracle, fast = run_both(trace, CacheConfig(8192, 32, 2),
                                StallPolicy.BUS_LOCKED, 4.0)
        assert_results_equal(oracle, fast)
        assert fast.cycles == 100.0

    def test_trace_ends_inside_fill_window(self):
        """Re-touches after the final miss still stall correctly."""
        trace = [load(0), load(4), load(8), load(28)]
        config = CacheConfig(512, 32, 1)
        for policy in POLICIES:
            oracle, fast = run_both(trace, config, policy, 16.0)
            assert_results_equal(oracle, fast)

    def test_dirty_victims_and_stores(self):
        """Write-allocate store misses + copy-backs, tiny cache."""
        trace = []
        for i in range(300):
            trace.append(store((i * 32) % 1024))
            trace.append(ALU_OP)
            trace.append(load(((i + 3) * 32) % 1024))
        config = CacheConfig(256, 32, 2)
        for policy in POLICIES:
            for beta in (2.0, 24.0):
                oracle, fast = run_both(trace, config, policy, beta)
                assert_results_equal(oracle, fast)

    def test_simulate_falls_back_to_oracle(self):
        """Unsupported configs route to the step simulator."""
        trace = spec92_trace("ear", 500, seed=3)
        config = CacheConfig(8192, 32, 2)
        memory = MainMemory(8.0, 4)
        assert not supports_replay(config, memory, StallPolicy.NON_BLOCKING)
        assert not supports_replay(
            config, memory, StallPolicy.FULL_STALL, write_buffer_depth=4
        )
        assert not supports_replay(
            config, PipelinedMemory(8.0, 4, 2.0), StallPolicy.FULL_STALL
        )
        assert not supports_replay(
            config, memory, StallPolicy.FULL_STALL, issue_rate=2.0
        )
        result = simulate(trace, config, memory, StallPolicy.NON_BLOCKING)
        oracle = TimingSimulator(
            config, memory, policy=StallPolicy.NON_BLOCKING
        ).run(trace)
        assert result.cycles == oracle.cycles

    def test_replay_rejects_unsupported(self):
        events = extract_events([load(0)], CacheConfig(8192, 32, 2))
        with pytest.raises(ValueError, match="replay does not cover"):
            replay(events, MainMemory(8.0, 4), StallPolicy.NON_BLOCKING)


class TestEventStreamDerived:
    def test_inter_miss_distances_match_legacy(self):
        """EventStream's Eq. (8) distances == stall_measure.miss_distances."""
        config = CacheConfig(8192, 32, 2)
        for name in ("nasa7", "ear", "doduc"):
            trace = spec92_trace(name, 3000, seed=7)
            events = extract_events(trace, config)
            assert events.inter_miss_distances() == miss_distances(trace, config)

    def test_fill_count_matches_functional_stats(self):
        trace = spec92_trace("swm256", 2000, seed=5)
        events = extract_events(trace, CacheConfig(1024, 32, 2))
        assert events.n_fills == events.stats.line_fills
        assert events.n_instructions == len(trace)


@st.composite
def instruction_streams(draw):
    n = draw(st.integers(min_value=1, max_value=250))
    stream = []
    for _ in range(n):
        roll = draw(st.integers(min_value=0, max_value=9))
        if roll < 5:
            stream.append(ALU_OP)
        else:
            kind = OpKind.STORE if roll >= 8 else OpKind.LOAD
            address = draw(st.integers(min_value=0, max_value=0x7FF)) * 4
            stream.append(Instruction(kind, address, 4))
    return stream


@settings(max_examples=120, deadline=None)
@given(
    stream=instruction_streams(),
    policy=st.sampled_from(POLICIES),
    beta=st.sampled_from([1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 12.5, 32.0]),
    config=st.sampled_from(
        [
            CacheConfig(256, 16, 1),
            CacheConfig(256, 32, 2),
            CacheConfig(512, 32, 2),
            CacheConfig(1024, 64, 4),
        ]
    ),
)
def test_replay_equals_oracle_property(stream, policy, beta, config):
    oracle = TimingSimulator(config, MainMemory(beta, 4), policy=policy).run(stream)
    fast = replay(extract_events(stream, config), MainMemory(beta, 4), policy)
    assert_results_equal(oracle, fast)
