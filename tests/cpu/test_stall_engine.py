"""Per-policy stall semantics (paper Table 2 behaviours)."""

import pytest

from repro.core.stalling import StallPolicy
from repro.cpu.stall_engine import AccessContext, StallEngine
from repro.memory.mainmem import MainMemory


@pytest.fixture
def fill():
    """Line 0x100, 32 bytes, critical offset 0, started at t=0, beta=8."""
    return MainMemory(8.0, 4).schedule_fill(0x100, 32, 0, 0.0)


def ctx(time, line, offset=0, would_hit=True):
    return AccessContext(
        time=time, line_address=line, offset_in_line=offset, would_hit=would_hit
    )


class TestMissResume:
    def test_fs_waits_for_whole_line(self, fill):
        engine = StallEngine(StallPolicy.FULL_STALL, 4)
        assert engine.miss_resume_time(fill) == 64.0

    @pytest.mark.parametrize(
        "policy",
        [
            StallPolicy.BUS_LOCKED,
            StallPolicy.BUS_NOT_LOCKED_1,
            StallPolicy.BUS_NOT_LOCKED_2,
            StallPolicy.BUS_NOT_LOCKED_3,
        ],
    )
    def test_partial_policies_resume_at_critical_word(self, policy, fill):
        engine = StallEngine(policy, 4)
        assert engine.miss_resume_time(fill) == 8.0

    def test_nb_does_not_stall_the_miss(self, fill):
        engine = StallEngine(StallPolicy.NON_BLOCKING, 4)
        assert engine.miss_resume_time(fill) == 0.0


class TestBusLocked:
    def test_any_access_waits_for_fill_end(self, fill):
        engine = StallEngine(StallPolicy.BUS_LOCKED, 4)
        # Hit on an unrelated line still waits: the cache bus is locked.
        assert engine.subsequent_access_resume(fill, ctx(20.0, 0x200)) == 64.0

    def test_no_extra_wait_after_fill(self, fill):
        engine = StallEngine(StallPolicy.BUS_LOCKED, 4)
        assert engine.subsequent_access_resume(fill, ctx(70.0, 0x200)) == 70.0


class TestBNL1:
    def test_other_line_hit_proceeds(self, fill):
        engine = StallEngine(StallPolicy.BUS_NOT_LOCKED_1, 4)
        assert engine.subsequent_access_resume(fill, ctx(20.0, 0x200)) == 20.0

    def test_fill_line_access_waits_for_end(self, fill):
        engine = StallEngine(StallPolicy.BUS_NOT_LOCKED_1, 4)
        assert (
            engine.subsequent_access_resume(fill, ctx(20.0, 0x100, offset=4)) == 64.0
        )

    def test_second_miss_waits_for_end(self, fill):
        engine = StallEngine(StallPolicy.BUS_NOT_LOCKED_1, 4)
        assert (
            engine.subsequent_access_resume(
                fill, ctx(20.0, 0x200, would_hit=False)
            )
            == 64.0
        )


class TestBNL2:
    def test_arrived_word_proceeds(self, fill):
        engine = StallEngine(StallPolicy.BUS_NOT_LOCKED_2, 4)
        # Chunk 0 arrived at t=8; accessing it at t=20 is free.
        assert engine.subsequent_access_resume(fill, ctx(20.0, 0x100, 0)) == 20.0

    def test_missing_word_waits_for_whole_line(self, fill):
        engine = StallEngine(StallPolicy.BUS_NOT_LOCKED_2, 4)
        # Chunk 7 arrives at t=64; accessing at t=20 waits for the END.
        assert engine.subsequent_access_resume(fill, ctx(20.0, 0x100, 28)) == 64.0


class TestBNL3:
    def test_waits_only_for_the_word(self, fill):
        engine = StallEngine(StallPolicy.BUS_NOT_LOCKED_3, 4)
        # Chunk 3 arrives at t=32.
        assert engine.subsequent_access_resume(fill, ctx(20.0, 0x100, 12)) == 32.0

    def test_arrived_word_is_free(self, fill):
        engine = StallEngine(StallPolicy.BUS_NOT_LOCKED_3, 4)
        assert engine.subsequent_access_resume(fill, ctx(20.0, 0x100, 0)) == 20.0

    def test_nb_same_line_behaviour(self, fill):
        engine = StallEngine(StallPolicy.NON_BLOCKING, 4)
        assert engine.subsequent_access_resume(fill, ctx(20.0, 0x100, 12)) == 32.0


class TestOrdering:
    def test_bnl3_never_worse_than_bnl1(self, fill):
        """BNL3's resume is at most BNL1's for any same-line access."""
        bnl1 = StallEngine(StallPolicy.BUS_NOT_LOCKED_1, 4)
        bnl3 = StallEngine(StallPolicy.BUS_NOT_LOCKED_3, 4)
        for offset in range(0, 32, 4):
            for time in (5.0, 20.0, 50.0):
                access = ctx(time, 0x100, offset)
                assert bnl3.subsequent_access_resume(
                    fill, access
                ) <= bnl1.subsequent_access_resume(fill, access)

    def test_bnl2_between_bnl1_and_bnl3(self, fill):
        bnl1 = StallEngine(StallPolicy.BUS_NOT_LOCKED_1, 4)
        bnl2 = StallEngine(StallPolicy.BUS_NOT_LOCKED_2, 4)
        bnl3 = StallEngine(StallPolicy.BUS_NOT_LOCKED_3, 4)
        for offset in range(0, 32, 4):
            access = ctx(20.0, 0x100, offset)
            r1 = bnl1.subsequent_access_resume(fill, access)
            r2 = bnl2.subsequent_access_resume(fill, access)
            r3 = bnl3.subsequent_access_resume(fill, access)
            assert r3 <= r2 <= r1
