"""Timing simulator behaviour and hand-checkable cycle counts."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.write_policy import AllocatePolicy
from repro.core.stalling import StallPolicy
from repro.cpu.processor import TimingSimulator
from repro.memory.mainmem import MainMemory
from repro.memory.pipelined import PipelinedMemory
from repro.trace.record import ALU_OP, load, store

BIG_CACHE = CacheConfig(total_bytes=65536, line_size=32, associativity=2)


def simulator(policy=StallPolicy.FULL_STALL, beta=8.0, cache=BIG_CACHE, **kwargs):
    return TimingSimulator(cache, MainMemory(beta, 4), policy=policy, **kwargs)


class TestBasics:
    def test_alu_only_is_one_cycle_each(self):
        result = simulator().run([ALU_OP] * 100)
        assert result.cycles == 100.0

    def test_hit_is_one_cycle(self):
        sim = simulator()
        result = sim.run([load(0x40), load(0x44), load(0x48)])
        # miss (64) + two hits (1 + 1)
        assert result.cycles == 64.0 + 2.0

    def test_fs_miss_costs_full_fill(self):
        result = simulator().run([load(0x40)])
        assert result.cycles == 64.0
        assert result.read_miss_stall_cycles == 64.0

    def test_store_miss_write_allocate_like_load(self):
        result = simulator().run([store(0x40)])
        assert result.cycles == 64.0

    def test_cpi(self):
        result = simulator().run([ALU_OP, ALU_OP, load(0x40)])
        assert result.cpi == pytest.approx((2 + 64) / 3)

    def test_stall_factor_fs_is_full(self):
        result = simulator().run([load(0x40), load(0x80), load(0x400)])
        assert result.stall_factor == pytest.approx(8.0)
        assert result.stall_percentage(8) == pytest.approx(100.0)

    def test_line_bus_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            TimingSimulator(BIG_CACHE, MainMemory(8.0, 64))


class TestPartialPolicies:
    def test_bl_miss_resumes_at_critical_word(self):
        result = simulator(StallPolicy.BUS_LOCKED).run([load(0x40)])
        assert result.cycles == 8.0

    def test_bl_subsequent_hit_waits_for_fill_end(self):
        result = simulator(StallPolicy.BUS_LOCKED).run([load(0x40), load(0x400040)])
        # miss resumes at 8; hit to other line stalls to 64, then 1 cycle.
        # The "hit" is itself a miss here (cold cache) -> also waits.
        assert result.cycles >= 64.0

    def test_bnl1_other_line_hit_proceeds(self):
        sim = simulator(StallPolicy.BUS_NOT_LOCKED_1)
        sim.cache.read(0x4000)  # pre-warm another line
        result = sim.run([load(0x40), load(0x4000)])
        # miss resume at 8, then one cycle for the pre-warmed hit.
        assert result.cycles == 9.0

    def test_bnl1_same_line_waits_for_end(self):
        result = simulator(StallPolicy.BUS_NOT_LOCKED_1).run(
            [load(0x40), load(0x44)]
        )
        assert result.cycles == 65.0  # 8 + wait to 64 + 1

    def test_bnl3_same_line_waits_for_word(self):
        result = simulator(StallPolicy.BUS_NOT_LOCKED_3).run(
            [load(0x40), load(0x44)]
        )
        # Critical chunk 0 at t=8; chunk 1 arrives t=16; +1 cycle.
        assert result.cycles == 17.0

    def test_nb_miss_does_not_stall(self):
        sim = simulator(StallPolicy.NON_BLOCKING)
        sim.cache.read(0x4000)
        result = sim.run([load(0x40), ALU_OP, load(0x4000)])
        # miss free, ALU 1, warmed hit 1.
        assert result.cycles == 2.0

    def test_policy_ordering_on_shared_trace(self, seq_trace):
        """FS >= BL >= BNL1 >= BNL2 >= BNL3 >= NB in total cycles."""
        totals = []
        for policy in (
            StallPolicy.FULL_STALL,
            StallPolicy.BUS_LOCKED,
            StallPolicy.BUS_NOT_LOCKED_1,
            StallPolicy.BUS_NOT_LOCKED_2,
            StallPolicy.BUS_NOT_LOCKED_3,
            StallPolicy.NON_BLOCKING,
        ):
            totals.append(simulator(policy).run(seq_trace).cycles)
        assert totals == sorted(totals, reverse=True)


class TestFlushes:
    def test_dirty_eviction_costs_copy_back(self):
        cache = CacheConfig(256, 32, 2)  # tiny: force eviction
        sim = TimingSimulator(cache, MainMemory(8.0, 4))
        result = sim.run([store(0x000), load(0x080), load(0x100)])
        assert result.flush_stall_cycles == 64.0

    def test_write_buffer_hides_flush(self):
        cache = CacheConfig(256, 32, 2)
        sim = TimingSimulator(
            cache, MainMemory(8.0, 4), write_buffer_depth=4
        )
        result = sim.run([store(0x000), load(0x080), load(0x100)])
        assert result.flush_stall_cycles == 0.0

    def test_read_conflict_with_buffered_line_drains(self):
        cache = CacheConfig(256, 32, 2)
        sim = TimingSimulator(cache, MainMemory(8.0, 4), write_buffer_depth=4)
        # Dirty 0x000, evict it into the buffer, then re-read 0x000.
        result = sim.run([store(0x000), load(0x080), load(0x100), load(0x000)])
        assert sim.write_buffer.conflict_stalls == 1
        assert result.write_stall_cycles > 0.0


class TestWriteAround:
    def test_write_around_costs_beta(self):
        cache = CacheConfig(256, 32, 2, allocate_policy=AllocatePolicy.WRITE_AROUND)
        sim = TimingSimulator(cache, MainMemory(8.0, 4))
        result = sim.run([store(0x40)])
        assert result.cycles == 8.0
        assert result.write_stall_cycles == 8.0
        assert result.read_miss_stall_cycles == 0.0


class TestPipelinedMemory:
    def test_fs_pipelined_stall_is_beta_p(self):
        sim = TimingSimulator(
            BIG_CACHE, PipelinedMemory(8.0, 4, 2.0), policy=StallPolicy.FULL_STALL
        )
        result = sim.run([load(0x40)])
        assert result.cycles == 22.0  # Eq. 9

    def test_pipelined_stall_factor(self):
        sim = TimingSimulator(BIG_CACHE, PipelinedMemory(8.0, 4, 2.0))
        result = sim.run([load(0x40), load(0x80)])
        assert result.stall_factor == pytest.approx(22.0 / 8.0)
