"""Test package."""
