"""Stalling-factor measurement (Eq. 8 and simulation)."""

import pytest

from repro.cache.cache import CacheConfig
from repro.core.stalling import StallPolicy
from repro.cpu.stall_measure import (
    average_stall_percentages,
    measure_stall_factor,
    miss_distances,
    stall_factor_eq8,
)
from tests.conftest import sequential_trace

CACHE = CacheConfig(total_bytes=8192, line_size=32, associativity=2)


class TestMeasure:
    def test_fs_measures_full(self, seq_trace):
        phi = measure_stall_factor(
            seq_trace, CACHE, StallPolicy.FULL_STALL, 8.0, 4
        )
        assert phi == pytest.approx(8.0)

    def test_partial_within_table2_bounds(self, seq_trace):
        for policy in (
            StallPolicy.BUS_LOCKED,
            StallPolicy.BUS_NOT_LOCKED_1,
            StallPolicy.BUS_NOT_LOCKED_3,
        ):
            phi = measure_stall_factor(seq_trace, CACHE, policy, 8.0, 4)
            assert 1.0 <= phi <= 8.0

    def test_longer_memory_cycle_raises_phi(self, seq_trace):
        """Figure 1: longer latency means more stalling occurrences."""
        phis = [
            measure_stall_factor(
                seq_trace, CACHE, StallPolicy.BUS_NOT_LOCKED_1, beta, 4
            )
            for beta in (4.0, 8.0, 16.0)
        ]
        assert phis == sorted(phis)


class TestEq8:
    def test_distances_counted_for_sequential(self):
        trace = sequential_trace(600)
        distances = miss_distances(trace, CACHE)
        # Sequential loads engage the in-flight line constantly.
        assert len(distances) > 0
        assert all(d > 0 for d in distances)

    def test_eq8_bounds(self):
        phi = stall_factor_eq8([1, 2, 3], n_misses=3, bus_cycles_per_line=8,
                               memory_cycle=8.0)
        assert 1.0 <= phi <= 8.0

    def test_eq8_isolated_misses_give_floor(self):
        # Distances far larger than the fill tail: no overlap stalls.
        phi = stall_factor_eq8(
            [10_000, 20_000], n_misses=2, bus_cycles_per_line=8, memory_cycle=8.0
        )
        assert phi == 1.0

    def test_eq8_back_to_back_misses_saturate(self):
        phi = stall_factor_eq8(
            [0] * 10, n_misses=10, bus_cycles_per_line=8, memory_cycle=8.0
        )
        assert phi == 8.0

    def test_eq8_matches_simulation_trend(self):
        """Eq. 8 approximates the simulated BNL1 phi for a real stream."""
        trace = sequential_trace(3000)
        distances = miss_distances(trace, CACHE)
        from repro.cache.cache import Cache

        probe = Cache(CACHE)
        for inst in trace:
            if inst.kind.is_memory:
                probe.read(inst.address)
        n_misses = probe.stats.misses
        analytic = stall_factor_eq8(distances, n_misses, 8, 8.0)
        simulated = measure_stall_factor(
            trace, CACHE, StallPolicy.BUS_NOT_LOCKED_1, 8.0, 4
        )
        assert analytic == pytest.approx(simulated, rel=0.15)

    def test_eq8_validation(self):
        with pytest.raises(ValueError, match="n_misses"):
            stall_factor_eq8([1], 0, 8, 8.0)
        with pytest.raises(ValueError, match="memory_cycle"):
            stall_factor_eq8([1], 1, 8, 0.5)


class TestAverages:
    def test_average_over_traces(self):
        traces = {
            "a": sequential_trace(1200),
            "b": sequential_trace(1200, loads_every=4),
        }
        data = average_stall_percentages(
            traces, CACHE, (StallPolicy.BUS_LOCKED,), [4.0, 8.0], 4
        )
        row = data[StallPolicy.BUS_LOCKED]
        assert len(row) == 2
        assert all(0.0 <= v <= 100.0 for v in row)

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            average_stall_percentages({}, CACHE, (StallPolicy.BUS_LOCKED,), [4.0], 4)
