"""Edge cases and failure injection across module boundaries."""

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.core.stalling import StallPolicy
from repro.cpu.processor import TimingSimulator
from repro.memory.mainmem import MainMemory
from repro.trace.record import ALU_OP, load, store


class TestSimulatorLifecycle:
    def test_run_accumulates_cache_state_across_calls(self):
        """A second run() reuses the warmed cache — documented behaviour
        (use a fresh simulator for independent experiments)."""
        sim = TimingSimulator(CacheConfig(8192, 32, 2), MainMemory(8.0, 4))
        first = sim.run([load(0x40)])
        second = sim.run([load(0x40)])
        assert first.cycles == 64.0
        assert second.cycles == 1.0  # warmed: now a hit

    def test_empty_stream(self):
        sim = TimingSimulator(CacheConfig(8192, 32, 2), MainMemory(8.0, 4))
        result = sim.run([])
        assert result.instructions == 0
        assert result.cycles == 0.0
        assert result.stall_factor == 0.0
        assert result.cpi == 0.0

    def test_alu_only_stream_has_no_memory_side_effects(self):
        sim = TimingSimulator(CacheConfig(8192, 32, 2), MainMemory(8.0, 4))
        sim.run([ALU_OP] * 50)
        assert sim.cache.stats.accesses == 0
        assert sim.bus.transfers == 0

    def test_write_through_hit_pays_memory_write(self):
        from repro.cache.write_policy import WritePolicy

        config = CacheConfig(8192, 32, 2, write_policy=WritePolicy.WRITE_THROUGH)
        sim = TimingSimulator(config, MainMemory(8.0, 4))
        result = sim.run([load(0x40), store(0x44)])
        # store hit: 1 issue cycle + 8-cycle write-through.
        assert result.write_stall_cycles == 8.0
        assert result.cycles == 64.0 + 1.0 + 8.0

    def test_write_through_with_buffer_hides_the_write(self):
        from repro.cache.write_policy import WritePolicy

        config = CacheConfig(8192, 32, 2, write_policy=WritePolicy.WRITE_THROUGH)
        sim = TimingSimulator(config, MainMemory(8.0, 4), write_buffer_depth=4)
        result = sim.run([load(0x40), store(0x44)])
        assert result.write_stall_cycles == 0.0


class TestCacheEdges:
    def test_single_set_fully_associative(self):
        cache = Cache(CacheConfig(256, 32, 8))  # one set, 8 ways
        for address in range(0, 256, 32):
            cache.read(address)
        assert cache.stats.misses == 8
        for address in range(0, 256, 32):
            cache.read(address)
        assert cache.stats.hits == 8

    def test_direct_mapped(self):
        cache = Cache(CacheConfig(256, 32, 1))
        cache.read(0x000)
        cache.read(0x100)  # same index, evicts
        assert not cache.contains(0x000)

    def test_invalidate_then_reaccess_misses(self):
        cache = Cache(CacheConfig(256, 32, 2))
        cache.read(0x40)
        cache.invalidate(0x40)
        outcome = cache.read(0x40)
        assert not outcome.hit

    def test_mark_dirty_on_absent_line_returns_false(self):
        cache = Cache(CacheConfig(256, 32, 2))
        assert not cache.mark_dirty(0x40)

    def test_huge_addresses(self):
        cache = Cache(CacheConfig(8192, 32, 2))
        outcome = cache.read(2**48 - 4)
        assert outcome.fill_line
        assert cache.contains(2**48 - 4)


class TestDegenerateGeometries:
    def test_line_equals_bus_width(self):
        """L = D: single-chunk fills; all partial policies collapse."""
        sim_fs = TimingSimulator(
            CacheConfig(1024, 4, 2), MainMemory(8.0, 4)
        )
        fs = sim_fs.run([load(0x40)])
        sim_bl = TimingSimulator(
            CacheConfig(1024, 4, 2),
            MainMemory(8.0, 4),
            policy=StallPolicy.BUS_LOCKED,
        )
        bl = sim_bl.run([load(0x40)])
        assert fs.cycles == bl.cycles == 8.0

    def test_memory_cycle_one(self):
        """beta_m = 1: the design-limit guard territory."""
        sim = TimingSimulator(CacheConfig(1024, 32, 2), MainMemory(1.0, 4))
        result = sim.run([load(0x40)])
        assert result.cycles == 8.0  # L/D chunks at 1 cycle each

    def test_kappa_guard_fires_at_beta_one_no_flush(self):
        """The analytic model refuses kappa <= 0 (phi=1, alpha=0, beta=1)."""
        from repro.core.tradeoff import miss_cost_factor

        with pytest.raises(ValueError, match="positive"):
            miss_cost_factor(1.0, 0.0, 1.0, 1.0)


class TestExperimentResultEdges:
    def test_table_only_result_has_no_csv(self):
        from repro.experiments.base import ExperimentResult

        result = ExperimentResult("x", "table only")
        result.tables.append("a | b")
        assert result.to_csv() == ""
        assert "table only" in result.render()

    def test_save_table_only_writes_txt_only(self, tmp_path):
        from repro.experiments.base import ExperimentResult

        result = ExperimentResult("x", "t")
        paths = result.save(tmp_path)
        assert [p.suffix for p in paths] == [".txt"]

    def test_mismatched_series_rejected(self):
        from repro.experiments.base import ExperimentResult

        result = ExperimentResult("x", "t", x_values=[1.0, 2.0])
        with pytest.raises(ValueError, match="points"):
            result.add_series("bad", [1.0])
