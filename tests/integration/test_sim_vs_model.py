"""Analytic model versus cycle simulator — the central cross-validation.

The paper's Eq. (2) and the event-driven simulator must agree *exactly*
when the simulator's measured characterization {E, R, W, alpha, phi} is
fed back into the model.  This holds for every stalling policy, for
write-around caches, and for pipelined memory — it is the strongest
internal-consistency check the reproduction has.
"""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.write_policy import AllocatePolicy
from repro.core.execution import execution_time
from repro.core.params import SystemConfig, WorkloadCharacter
from repro.core.stalling import StallPolicy
from repro.cpu.processor import TimingSimulator
from repro.memory.mainmem import MainMemory
from repro.memory.pipelined import PipelinedMemory
from repro.trace.spec92 import spec92_trace

CACHE = CacheConfig(total_bytes=8192, line_size=32, associativity=2)


def workload_from(sim, instructions):
    stats = sim.cache.stats
    return WorkloadCharacter(
        instructions=instructions,
        read_bytes=stats.read_miss_bytes,
        write_around_misses=stats.write_around_count,
        flush_ratio=stats.flush_ratio,
    )


@pytest.fixture(scope="module")
def trace():
    return spec92_trace("hydro2d", 10_000, seed=13)


class TestExactAgreement:
    @pytest.mark.parametrize("beta", [2.0, 8.0, 24.0])
    def test_full_stall(self, trace, beta):
        sim = TimingSimulator(CACHE, MainMemory(beta, 4))
        result = sim.run(trace)
        predicted = execution_time(
            workload_from(sim, result.instructions), SystemConfig(4, 32, beta)
        )
        assert result.cycles == pytest.approx(predicted)

    @pytest.mark.parametrize(
        "policy",
        [
            StallPolicy.BUS_LOCKED,
            StallPolicy.BUS_NOT_LOCKED_1,
            StallPolicy.BUS_NOT_LOCKED_2,
            StallPolicy.BUS_NOT_LOCKED_3,
            StallPolicy.NON_BLOCKING,
        ],
    )
    def test_partial_policies_with_measured_phi(self, trace, policy):
        sim = TimingSimulator(CACHE, MainMemory(8.0, 4), policy=policy)
        result = sim.run(trace)
        predicted = execution_time(
            workload_from(sim, result.instructions),
            SystemConfig(4, 32, 8.0),
            stall_factor=result.stall_factor,
            policy=policy,
        )
        assert result.cycles == pytest.approx(predicted)

    def test_write_around_cache(self, trace):
        cache = CacheConfig(
            8192, 32, 2, allocate_policy=AllocatePolicy.WRITE_AROUND
        )
        sim = TimingSimulator(cache, MainMemory(6.0, 4))
        result = sim.run(trace)
        predicted = execution_time(
            workload_from(sim, result.instructions), SystemConfig(4, 32, 6.0)
        )
        assert result.cycles == pytest.approx(predicted)

    def test_pipelined_memory_fs(self, trace):
        """FS + pipelined memory: phi = beta_p / beta_m exactly."""
        sim = TimingSimulator(CACHE, PipelinedMemory(8.0, 4, 2.0))
        result = sim.run(trace)
        expected_phi = (8.0 + 2.0 * 7) / 8.0
        assert result.stall_factor == pytest.approx(expected_phi)

    def test_write_buffers_shrink_flush_stall(self, trace):
        plain = TimingSimulator(CACHE, MainMemory(8.0, 4)).run(trace)
        buffered = TimingSimulator(
            CACHE, MainMemory(8.0, 4), write_buffer_depth=8
        ).run(trace)
        assert buffered.flush_stall_cycles < plain.flush_stall_cycles
        assert buffered.cycles < plain.cycles


class TestMeasuredPhiBounds:
    @pytest.mark.parametrize(
        "policy,low",
        [
            (StallPolicy.FULL_STALL, 8.0),
            (StallPolicy.BUS_LOCKED, 1.0),
            (StallPolicy.BUS_NOT_LOCKED_3, 1.0),
            (StallPolicy.NON_BLOCKING, 0.0),
        ],
    )
    def test_phi_within_table2(self, trace, policy, low):
        sim = TimingSimulator(CACHE, MainMemory(8.0, 4), policy=policy)
        phi = sim.run(trace).stall_factor
        assert low <= phi <= 8.0


class TestBusWidthTradeEndToEnd:
    def test_doubling_bus_improves_like_the_model_says(self):
        """Simulate the same trace on D=4 and D=8 and verify the measured
        speedup direction matches Eq. (3)'s prediction."""
        trace = spec92_trace("swm256", 10_000, seed=21)
        narrow = TimingSimulator(CACHE, MainMemory(8.0, 4)).run(trace)
        wide = TimingSimulator(CACHE, MainMemory(8.0, 8)).run(trace)
        assert wide.cycles < narrow.cycles
        # The wide system halves every memory term; the saving must be
        # exactly half of the narrow system's memory-induced cycles.
        narrow_memory = (
            narrow.read_miss_stall_cycles
            + narrow.flush_stall_cycles
            + narrow.write_stall_cycles
        )
        assert narrow.cycles - wide.cycles == pytest.approx(narrow_memory / 2)
