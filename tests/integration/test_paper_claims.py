"""The paper's headline quantitative claims, asserted end to end.

Each test names the claim and where the paper states it.  These are the
"shape" checks EXPERIMENTS.md reports.
"""

import pytest

from repro.core.bus_width import (
    doubling_tradeoff,
    hit_ratio_gain_equivalent_to_doubling,
    miss_volume_ratio_for_doubling,
)
from repro.core.features import ArchFeature
from repro.core.params import SystemConfig
from repro.core.pipelined import pipelined_vs_doubling_crossover
from repro.core.ranking import unified_comparison
from repro.core.smith import criteria_agree


class TestSection41Claims:
    def test_blocking_cache_range_2hr_to_2_5hr(self):
        """'Performance loss due to reducing the hit ratio of a blocking
        cache from HR to 2HR-1 ... 2.5HR-1.5 can be compensated by
        doubling the data bus width' (abstract, Section 4.1)."""
        for hr in (0.90, 0.95, 0.98):
            at_limit = doubling_tradeoff(SystemConfig(4, 8, 2), hr)
            assert at_limit.feature_hit_ratio == pytest.approx(2.5 * hr - 1.5)
            asymptote = doubling_tradeoff(SystemConfig(4, 8, 10_000.0), hr)
            assert asymptote.feature_hit_ratio == pytest.approx(
                2 * hr - 1, abs=1e-4
            )

    def test_worked_examples_095_to_090_and_098_to_096(self):
        """'reducing cache hit ratio from 0.95 to 0.9 or from 0.98 to
        0.96 can be compensated by doubling the external data bus'."""
        config = SystemConfig(4, 8, 10_000.0)
        assert doubling_tradeoff(config, 0.95).feature_hit_ratio == pytest.approx(
            0.90, abs=1e-4
        )
        assert doubling_tradeoff(config, 0.98).feature_hit_ratio == pytest.approx(
            0.96, abs=1e-4
        )

    def test_increase_range_05_to_06(self):
        """'increasing the hit ratio HR ... by 0.5(1-HR) to 0.6(1-HR)
        improves performance by an amount obtainable by doubling the
        data bus width'."""
        gains = [
            hit_ratio_gain_equivalent_to_doubling(SystemConfig(4, 8, beta), 0.95)
            for beta in (2.0, 3.0, 5.0, 20.0, 1e6)
        ]
        for gain in gains:
            assert 0.5 * 0.05 <= gain <= 0.6 * 0.05 + 1e-12
        assert max(gains) == pytest.approx(0.6 * 0.05)
        assert min(gains) == pytest.approx(0.5 * 0.05, rel=1e-3)


class TestSection53Claims:
    def test_feature_ranking_non_pipelined(self):
        """Summary: 'the three best architectural features in order ...
        doubling the bus width, read-bypassing write buffers, and the
        use of a cache with a bus-not-locked', robust across beta and L."""
        for line in (8, 16, 32):
            for beta in (4.0, 8.0, 16.0):
                config = SystemConfig(4, line, beta)
                comparison = unified_comparison(
                    config,
                    0.95,
                    [beta],
                    measured_stall_factors={
                        beta: max(1.0, 0.92 * line / 4)
                    },
                )
                sweeps = comparison.sweeps
                bus = sweeps[ArchFeature.DOUBLING_BUS].value_at(beta)
                buffers = sweeps[ArchFeature.WRITE_BUFFERS].value_at(beta)
                bnl = sweeps[ArchFeature.PARTIAL_STALLING].value_at(beta)
                assert bus > buffers > bnl, (line, beta)

    def test_pipelined_crossover_five_to_six_cycles(self):
        """Summary: pipelining helps most 'when the memory cycle time is
        larger than about five clock cycles (for L/D >= 2 and q = 2)'."""
        assert 4.0 < pipelined_vs_doubling_crossover(32, 4, 2.0) < 6.0
        assert 4.0 < pipelined_vs_doubling_crossover(16, 4, 2.0) < 7.0

    def test_no_pipelining_advantage_at_l_2d(self):
        """Figure 3: 'using a high speed pipelined system does not display
        any performance advantage over doubling the bus width' at L=2D."""
        assert pipelined_vs_doubling_crossover(8, 4, 2.0) is None

    def test_bus_and_buffers_limited_at_long_cycles(self):
        """Summary: their improvement 'is limited when the memory cycle
        time is relatively large' — the curves flatten, pipelining grows."""
        config = SystemConfig(4, 32, 2.0, pipeline_turnaround=2.0)
        comparison = unified_comparison(config, 0.95, [4.0, 20.0])
        bus = comparison.sweeps[ArchFeature.DOUBLING_BUS]
        pipe = comparison.sweeps[ArchFeature.PIPELINED_MEMORY]
        bus_growth = bus.value_at(20.0) - bus.value_at(4.0)
        pipe_growth = pipe.value_at(20.0) - pipe.value_at(4.0)
        assert abs(bus_growth) < 0.01
        assert pipe_growth > 0.10


class TestSection54Claims:
    def test_smith_agreement_on_calibrated_tables(self):
        """'The optimal line sizes determined by Eq. (19) exactly match
        with those of Smith's work' (Section 5.4.2)."""
        from repro.analysis.smith_targets import design_target_table

        for cache in (8 * 1024, 16 * 1024):
            table = design_target_table(cache)
            for latency in (4.0, 6.0, 12.0, 18.75):
                for beta in (0.5, 1.0, 2.0, 3.0, 6.0, 10.0):
                    assert criteria_agree(table, latency, beta, 4)
                    assert criteria_agree(table, latency, beta, 8)


class TestSection42Claims:
    def test_r_from_design_limit_beta(self):
        """Eq. (3) limit check: L=2D, beta_m=2 gives exactly r=2.5."""
        assert miss_volume_ratio_for_doubling(
            SystemConfig(4, 8, 2.0), 0.5
        ) == pytest.approx(2.5)

    def test_bnl3_latency_reduction_band(self):
        """Summary: BNL3 cuts full-blocking read-miss latency by 20-30%
        for memory cycle times under 15 clocks.  Measured on the six
        stand-in traces (quick lengths) the band is 15-35%."""
        from repro.core.stalling import StallPolicy
        from repro.experiments._phi import measured_phi_percentages

        percentages = measured_phi_percentages(
            StallPolicy.BUS_NOT_LOCKED_3, 32, 8192, 2, (4.0, 8.0, 12.0), 4, 8_000
        )
        reductions = [100.0 - p for p in percentages]
        assert all(10.0 <= r <= 40.0 for r in reductions)
        assert max(reductions) >= 20.0
