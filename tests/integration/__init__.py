"""Test package."""
