"""Benchmark: the two-phase engine's stages in isolation.

The measurements bracket the engine (see docs/ENGINE.md):

* phase 1, stepping — one functional ``Cache`` pass over a
  60k-instruction trace, producing the compact event stream (the oracle
  path);
* phase 1, reuse — the same stream via the reuse-distance engine:
  profile the trace once, derive the geometry's events from it, plus
  the *marginal* cost of deriving one more geometry from a warm
  profile (the number a geometry sweep actually pays per point);
* phase 2 — one timing replay over that stream, i.e. the marginal cost
  of a (policy, ``beta_m``) grid point (compare ``test_step_simulator``
  below: the cost of the same point through the legacy step simulator);
* end to end — the full quick-mode Figure 1 through the registry.

Besides the pytest-benchmark entry points, this file doubles as a
script that writes the machine-readable scoreboard the repo commits as
``BENCH_engine.json``::

    PYTHONPATH=src python benchmarks/bench_engine_replay.py --out BENCH_engine.json

Each entry reports best-of-N wall-clock seconds plus the engine metrics
snapshot collected during the timed run, so a reviewer can see both how
fast a stage is and what it actually did (fills, replay calls, Eq. (2)
cycles).
"""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.events import extract_events
from repro.core.stalling import StallPolicy
from repro.cpu.processor import TimingSimulator
from repro.cpu.replay import replay
from repro.experiments.registry import run_experiment
from repro.memory.mainmem import MainMemory
from repro.trace.spec92 import spec92_trace

CACHE = CacheConfig(8192, 32, 2)


@pytest.fixture(scope="module")
def trace():
    return spec92_trace("nasa7", 60_000, seed=7)


@pytest.fixture(scope="module")
def events(trace):
    return extract_events(trace, CACHE)


def test_phase1_extraction(benchmark, trace):
    benchmark(extract_events, trace, CACHE)


def test_phase1_reuse(benchmark, trace):
    """Profile + derive through the reuse engine (same stream, cold)."""
    from repro.cache.reuse import build_profile, derive_events

    benchmark(lambda: derive_events(build_profile(trace), CACHE))


def test_phase2_replay_point(benchmark, events):
    memory = MainMemory(8.0, 4)
    events.derived  # build the per-fill structures once, outside the timer
    benchmark(replay, events, memory, StallPolicy.BUS_NOT_LOCKED_1)


def test_step_simulator_point(benchmark, trace):
    """The same grid point through the legacy oracle, for comparison."""
    simulator = TimingSimulator(
        CACHE, MainMemory(8.0, 4), policy=StallPolicy.BUS_NOT_LOCKED_1
    )
    benchmark.pedantic(simulator.run, args=(trace,), rounds=3, iterations=1)


def test_figure1_end_to_end(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("figure1", quick), rounds=1, iterations=1
    )


# -- script mode: write BENCH_engine.json --------------------------------


def _timed(fn, rounds):
    """Best-of-``rounds`` wall-clock seconds for ``fn()``."""
    import time

    best = None
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def _dispatch_counts(snapshot: dict) -> dict:
    """Per-engine dispatch summary from an ``--all --quick`` snapshot."""
    counters = snapshot["counters"]
    prefix = "engine.step_fallback.dispatches{reason="
    reasons = {}
    for key, value in counters.items():
        if key.startswith(prefix):
            reasons[key[len(prefix):].rstrip("}")] = value
    return {
        "replay_calls": counters.get("engine.replay.calls", 0),
        "step_calls": counters.get("engine.step.calls", 0),
        "step_fallback_reasons": reasons,
        "phase1": _phase1_dispatch_counts(snapshot),
    }


def _phase1_dispatch_counts(snapshot: dict) -> dict:
    """Reuse-vs-step phase-1 extraction counts from a metrics snapshot.

    Parses the labeled ``engine.phase1.dispatches{engine=…,reason=…}``
    counters.  Only *cold* extractions dispatch (warm runs load streams
    from disk), so on an LRU-only registry sweep ``step_calls`` must be
    0 — the /4 scoreboard schema rejects anything else.
    """
    counters = snapshot["counters"]
    prefix = "engine.phase1.dispatches{"
    reuse_calls = 0
    step_calls = 0
    step_reasons: dict = {}
    for key, value in counters.items():
        if not key.startswith(prefix):
            continue
        labels = dict(
            part.split("=", 1)
            for part in key[len(prefix):].rstrip("}").split(",")
        )
        if labels.get("engine") == "reuse":
            reuse_calls += value
        else:
            reason = labels.get("reason", "unknown")
            step_calls += value
            step_reasons[reason] = step_reasons.get(reason, 0) + value
    return {
        "reuse_calls": reuse_calls,
        "step_calls": step_calls,
        "step_reasons": step_reasons,
    }


def _run_all(quick: bool) -> None:
    from repro.experiments.registry import EXPERIMENTS

    for experiment_id in EXPERIMENTS:
        run_experiment(experiment_id, quick=quick)


def collect(full: bool = False) -> dict:
    """Measure every stage and return the BENCH_engine document.

    The whole collection runs against a private, initially empty
    on-disk events cache (a temp dir), so timings are reproducible:
    ``all_quick_s`` and ``all_full_cold_s`` measure a cold store,
    ``all_full_warm_s`` the same sweep again with the store populated.
    """
    import os
    import shutil
    import tempfile
    import time

    from _provenance import bench_provenance

    from repro.cache.events_store import EVENTS_CACHE_DIR_ENV
    from repro.cache.reuse import build_profile, derive_events
    from repro.experiments._phi import clear_caches
    from repro.obs import metrics
    from repro.obs.schemas import BENCH_ENGINE_SCHEMA

    bench_trace = spec92_trace("nasa7", 60_000, seed=7)
    bench_events = extract_events(bench_trace, CACHE)
    bench_events.derived  # build per-fill structures outside the timers
    memory = MainMemory(8.0, 4)
    simulator = TimingSimulator(
        CACHE, memory, policy=StallPolicy.BUS_NOT_LOCKED_1
    )

    store_dir = tempfile.mkdtemp(prefix="repro-bench-events-")
    previous_dir = os.environ.get(EVENTS_CACHE_DIR_ENV)
    os.environ[EVENTS_CACHE_DIR_ENV] = store_dir
    registry = metrics.enable_metrics()
    clear_caches()
    try:
        # Marginal derivation cost: distinct (line_size, n_sets) views so
        # the profile's set-view memo cannot serve any of them.
        marginal_configs = [
            CacheConfig(size, 32, 2)
            for size in (1024, 2048, 4096, 16384, 32768)
        ]

        def _derive_marginal() -> float:
            profile = build_profile(bench_trace)
            derive_events(profile, CACHE)  # warm the shared line view
            started = time.perf_counter()
            for config in marginal_configs:
                derive_events(profile, config)
            return (time.perf_counter() - started) / len(marginal_configs)

        benchmarks = {
            "phase1_extract_60k_s": _timed(
                lambda: extract_events(bench_trace, CACHE), rounds=3
            ),
            "phase1_reuse_s": _timed(
                lambda: derive_events(build_profile(bench_trace), CACHE),
                rounds=3,
            ),
            "phase1_derive_marginal_s": _derive_marginal(),
            "phase2_replay_point_s": _timed(
                lambda: replay(
                    bench_events, memory, StallPolicy.BUS_NOT_LOCKED_1
                ),
                rounds=5,
            ),
            "step_simulator_point_s": _timed(
                lambda: simulator.run(bench_trace), rounds=2
            ),
            "figure1_quick_s": _timed(
                lambda: run_experiment("figure1", quick=True), rounds=1
            ),
        }
        snapshot = registry.snapshot()
        metrics.disable_metrics()

        # The full registry sweep in quick mode, with its own registry so
        # the dispatch section reflects exactly this run.
        all_quick_registry = metrics.enable_metrics()
        clear_caches()
        benchmarks["all_quick_s"] = _timed(
            lambda: _run_all(quick=True), rounds=1
        )
        dispatch = _dispatch_counts(all_quick_registry.snapshot())

        if full:
            metrics.disable_metrics()
            clear_caches()
            benchmarks["figure1_full_s"] = _timed(
                lambda: run_experiment("figure1", quick=False), rounds=1
            )
            # Cold: fresh store (and memos); warm: same sweep again,
            # phase 1 now served entirely from disk.
            shutil.rmtree(store_dir, ignore_errors=True)
            clear_caches()
            benchmarks["all_full_cold_s"] = _timed(
                lambda: _run_all(quick=False), rounds=1
            )
            clear_caches()
            benchmarks["all_full_warm_s"] = _timed(
                lambda: _run_all(quick=False), rounds=1
            )

        if metrics.metrics_enabled():
            metrics.disable_metrics()
        phase_breakdown = _collect_phase_breakdown(store_dir)
        profiler_overhead = _measure_profiler_overhead()
    finally:
        if metrics.metrics_enabled():
            metrics.disable_metrics()
        if previous_dir is None:
            os.environ.pop(EVENTS_CACHE_DIR_ENV, None)
        else:
            os.environ[EVENTS_CACHE_DIR_ENV] = previous_dir
        shutil.rmtree(store_dir, ignore_errors=True)
        clear_caches()

    return {
        "schema": BENCH_ENGINE_SCHEMA,
        "benchmarks": {k: round(v, 4) for k, v in benchmarks.items()},
        "speedup_replay_vs_step": round(
            benchmarks["step_simulator_point_s"]
            / benchmarks["phase2_replay_point_s"],
            1,
        ),
        "dispatch": dispatch,
        "phase_breakdown": phase_breakdown,
        "profiler_overhead": profiler_overhead,
        "metrics": snapshot,
        "provenance": bench_provenance(),
    }


#: Sampling rate for the phase-breakdown pass.  It is *not* a timed
#: headline, so a dense rate buys attribution resolution for free.
BREAKDOWN_HZ = 500

#: Sampling rate for the overhead measurement (the documented default).
OVERHEAD_HZ = 97

#: The bench run itself fails if the sampler costs more than this.
OVERHEAD_BUDGET_RATIO = 1.05


def _collect_phase_breakdown(store_dir: str) -> dict:
    """Profile a *cold* ``--all --quick`` sweep; return its phase table.

    Runs separately from the timed ``all_quick_s`` pass so the sampler
    can never inflate a gated headline; cold (store emptied, memos
    cleared) so phase-1 extraction shows up in the attribution rather
    than being served from disk.
    """
    import shutil

    from repro.experiments._phi import clear_caches
    from repro.obs import profile as profile_mod

    shutil.rmtree(store_dir, ignore_errors=True)
    clear_caches()
    profiler = profile_mod.SamplingProfiler(hz=BREAKDOWN_HZ)
    with profiler:
        _run_all(quick=True)
    document = profiler.document()
    return {
        "source": "all_quick_cold",
        "profile_id": document["id"],
        "hz": document["hz"],
        "duration_s": document["duration_s"],
        "phases": document["phases"],
    }


def _measure_profiler_overhead() -> dict:
    """Full figure1 with the sampler on vs off (warm store, best-of-5).

    The ratio is the committed cost of ``--profile=97``;
    :func:`main` fails the bench run when it exceeds the 5% budget.

    Off/on rounds are interleaved (A/B/A/B...) so slow machine drift
    hits both sides equally: sequential blocks let a background load
    spike land entirely on one side and fake (or mask) a regression.
    Every round clears the in-process memos so it does real work
    against the warm disk store; otherwise later rounds are served
    from memory in microseconds and best-of times nothing but
    sampler startup.
    """
    import time

    from repro.experiments._phi import clear_caches
    from repro.obs import profile as profile_mod

    clear_caches()
    run_experiment("figure1", quick=False)  # warm the events store

    def _round(profiled: bool) -> float:
        clear_caches()
        started = time.perf_counter()
        if profiled:
            with profile_mod.SamplingProfiler(hz=OVERHEAD_HZ):
                run_experiment("figure1", quick=False)
        else:
            run_experiment("figure1", quick=False)
        return time.perf_counter() - started

    off_s = on_s = None
    for _ in range(5):
        off = _round(profiled=False)
        on = _round(profiled=True)
        off_s = off if off_s is None or off < off_s else off_s
        on_s = on if on_s is None or on < on_s else on_s
    return {
        "off_s": round(off_s, 4),
        "on_s": round(on_s, 4),
        "ratio": round(on_s / off_s, 4),
        "hz": OVERHEAD_HZ,
    }


def main(argv=None) -> int:
    import argparse

    from repro.util.jsonout import write_json

    parser = argparse.ArgumentParser(
        description="Benchmark the two-phase engine; write BENCH_engine.json"
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json", help="output path"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="also time the full (non-quick) Figure 1 and --all sweeps "
        "(cold and warm events store)",
    )
    args = parser.parse_args(argv)
    document = collect(full=args.full)
    path = write_json(args.out, document)
    for name, seconds in document["benchmarks"].items():
        print(f"{name:28s} {seconds:.4f}")
    print(f"replay vs step speedup: {document['speedup_replay_vs_step']}x")
    dispatch = document["dispatch"]
    print(
        f"--all --quick dispatch: replay={dispatch['replay_calls']} "
        f"step={dispatch['step_calls']}"
    )
    phase1 = dispatch["phase1"]
    print(
        f"--all --quick phase 1:  reuse={phase1['reuse_calls']} "
        f"step={phase1['step_calls']}"
    )
    breakdown = document["phase_breakdown"]
    top = sorted(
        breakdown["phases"].items(),
        key=lambda item: item[1]["self_s"],
        reverse=True,
    )[:6]
    print(f"phase breakdown ({breakdown['source']}, {breakdown['hz']} Hz):")
    for name, entry in top:
        print(
            f"  {name:28s} {entry['self_s']:7.3f}s "
            f"({entry['fraction']:6.1%})"
        )
    overhead = document["profiler_overhead"]
    print(
        f"profiler overhead @{overhead['hz']} Hz: {overhead['off_s']:.4f}s -> "
        f"{overhead['on_s']:.4f}s (ratio {overhead['ratio']:.4f})"
    )
    print(f"wrote {path}")
    if overhead["ratio"] > OVERHEAD_BUDGET_RATIO:
        print(
            f"FAIL: profiler overhead ratio {overhead['ratio']:.4f} exceeds "
            f"the {OVERHEAD_BUDGET_RATIO} budget"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
