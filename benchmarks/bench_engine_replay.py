"""Benchmark: the two-phase engine's stages in isolation.

Three measurements bracket the engine (see docs/ENGINE.md):

* phase 1 — one functional cache pass over a 60k-instruction trace,
  producing the compact event stream;
* phase 2 — one timing replay over that stream, i.e. the marginal cost
  of a (policy, ``beta_m``) grid point (compare ``test_step_simulator``
  below: the cost of the same point through the legacy step simulator);
* end to end — the full quick-mode Figure 1 through the registry.
"""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.events import extract_events
from repro.core.stalling import StallPolicy
from repro.cpu.processor import TimingSimulator
from repro.cpu.replay import replay
from repro.experiments.registry import run_experiment
from repro.memory.mainmem import MainMemory
from repro.trace.spec92 import spec92_trace

CACHE = CacheConfig(8192, 32, 2)


@pytest.fixture(scope="module")
def trace():
    return spec92_trace("nasa7", 60_000, seed=7)


@pytest.fixture(scope="module")
def events(trace):
    return extract_events(trace, CACHE)


def test_phase1_extraction(benchmark, trace):
    benchmark(extract_events, trace, CACHE)


def test_phase2_replay_point(benchmark, events):
    memory = MainMemory(8.0, 4)
    events.derived  # build the per-fill structures once, outside the timer
    benchmark(replay, events, memory, StallPolicy.BUS_NOT_LOCKED_1)


def test_step_simulator_point(benchmark, trace):
    """The same grid point through the legacy oracle, for comparison."""
    simulator = TimingSimulator(
        CACHE, MainMemory(8.0, 4), policy=StallPolicy.BUS_NOT_LOCKED_1
    )
    benchmark.pedantic(simulator.run, args=(trace,), rounds=3, iterations=1)


def test_figure1_end_to_end(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("figure1", quick), rounds=1, iterations=1
    )
