"""Closed-loop load generator for the tradeoff-query service.

Starts an in-process :class:`repro.service.ServerThread`, drives it
with 1 / 4 / 16 concurrent blocking clients (one request in flight per
client, rounds synchronized so concurrency is real, not accidental),
and writes the scoreboard the repo commits as ``BENCH_service.json``::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json

Each concurrency level sweeps ``beta_m`` over a *shared* (trace,
geometry) key in a level-private range, so the run demonstrates all
three serving layers at once:

* within a round, concurrent distinct-``beta_m`` requests coalesce into
  micro-batches (``coalescing_ratio`` = batched requests per batch
  group — >1 at 16 clients is an acceptance criterion);
* across rounds, repeated configurations hit the content-addressed
  result cache (``cache_hit_rate``);
* across the whole run, phase-1 extraction happens exactly once per
  distinct key (``coalescing.phase1_extractions`` vs ``distinct_keys``).

The closed-loop levels are followed by an **open-loop capacity** probe
(schema ``/4``): Poisson arrivals at a ladder of offered rates over a
pre-warmed key set, latency measured from the *intended* arrival time
(so queueing under overload is charged, not hidden — no coordinated
omission), once against a single-process server and once against a
2-worker fleet (:mod:`repro.service.router`).  The ``capacity``
headline is the highest offered rate each topology sustains with
p99 <= 50 ms and nothing shed; the bench-history gate tracks both.

``python -m repro.obs.validate --bench-service BENCH_service.json``
enforces those invariants plus zero errors and zero step-simulator
dispatches; CI regenerates and validates the document on every push.
"""

import argparse
import os
import random
import shutil
import statistics
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from _provenance import bench_provenance

from repro.cache.events_store import EVENTS_CACHE_DIR_ENV
from repro.obs import metrics
from repro.obs.metrics import percentile
from repro.obs.schemas import BENCH_SERVICE_SCHEMA, validate_bench_service
from repro.service import (
    FleetConfig,
    FleetThread,
    ServerConfig,
    ServerThread,
    ServiceClient,
)
from repro.service import queries, schemas as request_schemas

#: One shared trace per level keeps the (trace, geometry) key hot while
#: every request still asks a distinct timing question (its own beta).
LEVEL_TRACES = {
    1: {"kind": "spec92", "name": "swm256", "instructions": 4000, "seed": 7},
    4: {"kind": "spec92", "name": "swm256", "instructions": 4000, "seed": 7},
    16: {"kind": "matmul", "n": 24, "tile": 8},
}

#: Disjoint beta_m ranges per level so one level's result-cache entries
#: cannot mask another level's cold misses.
LEVEL_BETA = {
    1: lambda client, rnd: 2.0 + (rnd % 8),
    4: lambda client, rnd: 50.0 + ((4 * rnd + client) % 24),
    16: lambda client, rnd: 100.0 + ((16 * rnd + client) % 48),
}

ROUNDS_PER_CLIENT = 24
WARM_REPEATS = 50


def _level_params(level: int, client: int, rnd: int) -> dict:
    return {
        "trace": LEVEL_TRACES[level],
        "memory_cycle": LEVEL_BETA[level](client, rnd),
    }


def run_level(port: int, level: int, registry) -> tuple[dict, set[str]]:
    """Drive one concurrency level; returns (scoreboard entry, keys)."""
    latencies: list[float] = []
    errors: list[Exception] = []
    worker_stats: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(level)
    keys: set[str] = set()
    for client in range(level):
        for rnd in range(ROUNDS_PER_CLIENT):
            keys.add(
                queries.events_key_of(
                    request_schemas.validate_simulate(
                        _level_params(level, client, rnd)
                    )
                )
            )

    def worker(client: int) -> None:
        connection = ServiceClient("127.0.0.1", port)
        try:
            for rnd in range(ROUNDS_PER_CLIENT):
                barrier.wait()  # one synchronized round in flight at a time
                started = time.perf_counter()
                try:
                    envelope = connection.simulate(
                        **_level_params(level, client, rnd)
                    )
                    assert envelope["result"]["cycles"] > 0
                except Exception as error:  # noqa: BLE001 - scoreboard data
                    with lock:
                        errors.append(error)
                    return
                with lock:
                    latencies.append((time.perf_counter() - started) * 1000.0)
        finally:
            with lock:
                worker_stats.append(connection.stats)
            connection.close()

    before_requests = registry.counter("service.batch.requests")
    before_groups = registry.counter("service.batch.groups")
    before_hits = registry.counter("service.result_cache.hits")
    before_misses = registry.counter("service.result_cache.misses")
    threads = [
        threading.Thread(target=worker, args=(client,), name=f"lg-{client}")
        for client in range(level)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    batched = registry.counter("service.batch.requests") - before_requests
    groups = registry.counter("service.batch.groups") - before_groups
    hits = registry.counter("service.result_cache.hits") - before_hits
    misses = registry.counter("service.result_cache.misses") - before_misses
    lookups = hits + misses
    # The client-side view of the same run: per-call wall time as the
    # caller experienced it (ServiceClient instrumentation), plus the
    # reconnect-retry count — zero on a healthy, non-draining server.
    client_latencies = [v for s in worker_stats for v in s.latencies()]
    client_section = {
        "calls": sum(s.calls for s in worker_stats),
        "retries": sum(s.retries for s in worker_stats),
        "errors": sum(s.errors for s in worker_stats),
        "latency_ms": {
            "p50": round(percentile(client_latencies, 50.0), 3),
            "p99": round(percentile(client_latencies, 99.0), 3),
        },
    }
    entry = {
        "clients": level,
        "requests": len(latencies),
        "errors": len(errors),
        "throughput_rps": round(len(latencies) / elapsed, 1),
        "coalescing_ratio": round(batched / groups, 2) if groups else 1.0,
        "cache_hit_rate": round(hits / lookups, 3) if lookups else 0.0,
        "latency_ms": {
            "p50": round(percentile(latencies, 50.0), 3),
            "p99": round(percentile(latencies, 99.0), 3),
            "mean": round(statistics.fmean(latencies), 3),
            "max": round(max(latencies), 3),
        },
        "client": client_section,
    }
    if errors:
        entry["first_error"] = repr(errors[0])
    return entry, keys


def run_warm_cache(port: int) -> tuple[dict, set[str]]:
    """Cold-vs-warm on a config no level touched (fresh events key)."""
    params = {
        "trace": {"kind": "spec92", "name": "ear", "instructions": 4000, "seed": 11},
        "memory_cycle": 8.0,
    }
    key = queries.events_key_of(request_schemas.validate_simulate(params))
    connection = ServiceClient("127.0.0.1", port)
    try:
        started = time.perf_counter()
        cold = connection.simulate(**params)
        cold_ms = (time.perf_counter() - started) * 1000.0
        assert cold["cached"] is False
        warm_ms: list[float] = []
        for _ in range(WARM_REPEATS):
            started = time.perf_counter()
            warm = connection.simulate(**params)
            warm_ms.append((time.perf_counter() - started) * 1000.0)
            assert warm["cached"] is True
            assert warm["result"] == cold["result"]
    finally:
        connection.close()
    p50 = percentile(warm_ms, 50.0)
    return (
        {
            "p50_ms": round(p50, 3),
            "p99_ms": round(percentile(warm_ms, 99.0), 3),
            "cold_compute_ms": round(cold_ms, 3),
            "speedup": round(cold_ms / p50, 1),
        },
        {key},
    )


#: The open-loop capacity probe: SLO, offered-rate ladder, timing.
SLO_P99_MS = 50.0
CAPACITY_LADDER = (50.0, 100.0, 200.0, 400.0)
CAPACITY_RUNG_S = 1.5
CAPACITY_POOL = 16  # sender threads; overload shows up as queue delay
CAPACITY_WARM_POINTS = 32
CAPACITY_SEED = 20260808
CAPACITY_TRACE = {
    "kind": "spec92",
    "name": "swm256",
    "instructions": 4000,
    "seed": 23,
}


def _capacity_params(i: int) -> dict:
    # A private beta range over one trace: after warming, every request
    # is a result-cache hit, so the probe measures the serving layer
    # (parsing, routing, cache lookup, serialization), which is the part
    # a fleet multiplies.
    return {
        "trace": CAPACITY_TRACE,
        "memory_cycle": 300.0 + (i % CAPACITY_WARM_POINTS),
    }


def _warm_capacity_keys(port: int) -> None:
    connection = ServiceClient("127.0.0.1", port)
    try:
        for i in range(CAPACITY_WARM_POINTS):
            connection.simulate(**_capacity_params(i))
        for i in range(CAPACITY_WARM_POINTS):
            assert connection.simulate(**_capacity_params(i))["cached"]
    finally:
        connection.close()


def run_capacity_rung(port: int, offered_rps: float, seed: int) -> dict:
    """One open-loop rung: Poisson arrivals at ``offered_rps``.

    The arrival schedule is drawn up front from a seeded RNG (the same
    offered rate replays the same arrivals run to run); each sender
    sleeps until its request's *intended* arrival time and the latency
    clock starts there, so time spent waiting for a free sender or a
    busy server is charged to the rung rather than silently dropped.
    """
    rng = random.Random(seed)
    schedule: list[float] = []
    t = 0.0
    while t < CAPACITY_RUNG_S:
        schedule.append(t)
        t += rng.expovariate(offered_rps)
    lock = threading.Lock()
    next_index = [0]
    ok_ms: list[float] = []
    shed = [0]
    errors = [0]
    epoch = time.perf_counter() + 0.05  # let every sender reach the loop

    def sender() -> None:
        from repro.service import ServiceError

        connection = ServiceClient("127.0.0.1", port)
        try:
            while True:
                with lock:
                    i = next_index[0]
                    if i >= len(schedule):
                        return
                    next_index[0] = i + 1
                intended = epoch + schedule[i]
                delay = intended - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                try:
                    connection.simulate(**_capacity_params(i))
                except ServiceError as error:
                    with lock:
                        if error.status == 429:
                            shed[0] += 1
                        else:
                            errors[0] += 1
                except Exception:  # noqa: BLE001 - scoreboard data
                    with lock:
                        errors[0] += 1
                else:
                    with lock:
                        ok_ms.append(
                            (time.perf_counter() - intended) * 1000.0
                        )
        finally:
            connection.close()

    threads = [
        threading.Thread(target=sender, name=f"cap-{i}")
        for i in range(CAPACITY_POOL)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = max(time.perf_counter() - epoch, CAPACITY_RUNG_S)
    return {
        "offered_rps": offered_rps,
        "achieved_rps": round(len(ok_ms) / elapsed, 1),
        "p50_ms": round(percentile(ok_ms, 50.0), 3) if ok_ms else 0.0,
        "p99_ms": round(percentile(ok_ms, 99.0), 3) if ok_ms else 0.0,
        "shed": shed[0],
        "errors": errors[0],
        "sustained": bool(ok_ms)
        and percentile(ok_ms, 99.0) <= SLO_P99_MS
        and shed[0] == 0
        and errors[0] == 0,
    }


def run_capacity(port: int, workers: int) -> dict:
    """Ladder the offered rate against one topology; returns the entry."""
    _warm_capacity_keys(port)
    curve = []
    max_sustained = 0.0
    for rung_number, offered in enumerate(CAPACITY_LADDER):
        rung = run_capacity_rung(
            port, offered, seed=CAPACITY_SEED + rung_number
        )
        sustained = rung.pop("sustained")
        if sustained:
            max_sustained = max(max_sustained, offered)
        curve.append(rung)
        print(
            f"capacity[{workers}w] offered {offered:g} rps: "
            f"achieved {rung['achieved_rps']:g}, p99 {rung['p99_ms']:g} ms, "
            f"shed {rung['shed']}, errors {rung['errors']}"
            + ("" if sustained else "  (over SLO)")
        )
    return {
        "workers": workers,
        "max_sustained_rps": max_sustained,
        "curve": curve,
    }


def run_capacity_section() -> dict:
    """The single-vs-fleet capacity comparison (its own servers).

    Both topologies get the same admission watermark so the 429 path is
    part of what the ladder exercises; both run over the same shared
    events-store directory, so phase-1 extraction for the capacity trace
    is paid once.
    """
    single_config = ServerConfig(batch_window_s=0.002, shed_watermark=32)
    with ServerThread(single_config, registry=metrics.MetricsRegistry()) as handle:
        probe = ServiceClient("127.0.0.1", handle.port)
        probe.wait_ready()
        probe.close()
        single = run_capacity(handle.port, workers=1)
    fleet_config = FleetConfig(
        base=ServerConfig(batch_window_s=0.002, shed_watermark=32), workers=2
    )
    with FleetThread(fleet_config, registry=metrics.MetricsRegistry()) as handle:
        probe = ServiceClient("127.0.0.1", handle.port)
        probe.wait_ready(timeout=30.0)
        probe.close()
        fleet = run_capacity(handle.port, workers=2)
    return {"slo_p99_ms": SLO_P99_MS, "single": single, "fleet": fleet}


#: Sampling parameters for the profiled load window.
PROFILE_WINDOW_S = 1.0
PROFILE_HZ = 397  # prime, like the profiler default


def run_profiled_window(port: int) -> dict:
    """One ``/v1/debug/profile`` window under live load; phase table.

    Exercises the wired endpoint end to end: a background client drives
    uncached simulate traffic (a private ``beta_m`` range) while another
    requests the sampling window over HTTP, so the returned
    ``phase_breakdown`` attributes the serving stack's own self-time
    (``service.phase2``, ``service.request``, …) under traffic.
    """
    stop = threading.Event()

    def hammer() -> None:
        connection = ServiceClient("127.0.0.1", port)
        beta = 0
        try:
            while not stop.is_set():
                beta += 1
                connection.simulate(
                    trace=LEVEL_TRACES[16],
                    memory_cycle=200.0 + (beta % 512) / 8.0,
                )
        finally:
            connection.close()

    load = threading.Thread(target=hammer, name="lg-profile")
    load.start()
    connection = ServiceClient("127.0.0.1", port)
    try:
        document = connection.debug_profile(
            seconds=PROFILE_WINDOW_S, hz=PROFILE_HZ
        )
    finally:
        stop.set()
        load.join()
        connection.close()
    return {
        "source": "debug_profile_under_load",
        "profile_id": document["id"],
        "hz": document["hz"],
        "duration_s": document["duration_s"],
        "phases": document["phases"],
    }


def collect() -> dict:
    """Run the whole load-generation session; returns the document."""
    store_dir = tempfile.mkdtemp(prefix="repro-bench-service-")
    previous_dir = os.environ.get(EVENTS_CACHE_DIR_ENV)
    os.environ[EVENTS_CACHE_DIR_ENV] = store_dir
    if metrics.metrics_enabled():
        metrics.disable_metrics()
    config = ServerConfig(batch_window_s=0.002)
    handle = ServerThread(config)  # shares the global metrics registry so
    try:  # engine dispatch counters land in the same snapshot
        handle.start()
        registry = handle.server.registry
        probe = ServiceClient("127.0.0.1", handle.port)
        probe.wait_ready()
        probe.close()
        levels = {}
        all_keys: set[str] = set()
        for level in (1, 4, 16):
            entry, keys = run_level(handle.port, level, registry)
            levels[str(level)] = entry
            all_keys |= keys
            print(
                f"level {level:2d}: {entry['requests']} requests, "
                f"{entry['throughput_rps']} rps, "
                f"coalescing {entry['coalescing_ratio']}, "
                f"hit rate {entry['cache_hit_rate']}"
            )
        warm, warm_keys = run_warm_cache(handle.port)
        all_keys |= warm_keys
        print(
            f"warm cache: p50 {warm['p50_ms']} ms vs cold "
            f"{warm['cold_compute_ms']} ms ({warm['speedup']}x)"
        )
        phase_breakdown = run_profiled_window(handle.port)
        capacity = run_capacity_section()
        print(
            f"capacity: single {capacity['single']['max_sustained_rps']:g} "
            f"rps, fleet {capacity['fleet']['max_sustained_rps']:g} rps "
            f"(p99 <= {SLO_P99_MS:g} ms)"
        )
        top = sorted(
            phase_breakdown["phases"].items(),
            key=lambda item: item[1]["self_s"],
            reverse=True,
        )[:4]
        print(
            "profiled window phases: "
            + ", ".join(
                f"{name} {entry['fraction']:.0%}" for name, entry in top
            )
        )
        document = {
            "schema": BENCH_SERVICE_SCHEMA,
            "server": {
                "queue_limit": config.queue_limit,
                "batch_window_ms": config.batch_window_s * 1000.0,
                "result_cache_bytes": config.result_cache_bytes,
                "events_memo_entries": config.events_memo_entries,
            },
            "workload": {
                "requests_per_client": ROUNDS_PER_CLIENT,
                "warm_repeats": WARM_REPEATS,
                "traces": sorted(
                    {
                        queries.trace_fingerprint_of(
                            request_schemas.validate_simulate(
                                {"trace": trace}
                            )["trace"]
                        )
                        for trace in LEVEL_TRACES.values()
                    }
                ),
            },
            "levels": levels,
            "coalescing": {
                "distinct_keys": len(all_keys),
                "phase1_extractions": registry.counter(
                    "service.phase1.resolves"
                ),
            },
            "warm_cache": warm,
            "capacity": capacity,
            "phase_breakdown": phase_breakdown,
            "dispatch": {
                "replay_calls": registry.counter("engine.replay.calls"),
                "step_calls": registry.counter("engine.step.calls"),
            },
            "provenance": bench_provenance(),
        }
    finally:
        handle.stop()
        if metrics.metrics_enabled():
            metrics.disable_metrics()
        if previous_dir is None:
            os.environ.pop(EVENTS_CACHE_DIR_ENV, None)
        else:
            os.environ[EVENTS_CACHE_DIR_ENV] = previous_dir
        shutil.rmtree(store_dir, ignore_errors=True)
    return document


def main(argv=None) -> int:
    from repro.util.jsonout import write_json

    parser = argparse.ArgumentParser(
        description="Load-generate the service; write BENCH_service.json"
    )
    parser.add_argument("--out", default="BENCH_service.json", help="output path")
    args = parser.parse_args(argv)
    document = collect()
    validate_bench_service(document)
    path = write_json(args.out, document)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
