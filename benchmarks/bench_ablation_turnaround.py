"""Benchmark: regenerate the ablation_turnaround experiment."""

from repro.experiments.registry import run_experiment


def test_ablation_turnaround(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("ablation_turnaround", quick), rounds=1, iterations=1
    )
