"""Benchmark: regenerate the extension_mshr experiment."""

from repro.experiments.registry import run_experiment


def test_extension_mshr(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("extension_mshr", quick), rounds=1, iterations=1
    )
