"""Benchmark: regenerate the extension_traffic experiment."""

from repro.experiments.registry import run_experiment


def test_extension_traffic(benchmark, quick):
    result = benchmark(run_experiment, "extension_traffic", quick)
    assert result.tables
