"""Benchmark: regenerate Figure 5 (unified tradeoff with BNL3)."""

from repro.experiments.registry import run_experiment


def test_figure5(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("figure5", quick), rounds=1, iterations=1
    )
