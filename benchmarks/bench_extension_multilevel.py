"""Benchmark: regenerate the extension_multilevel experiment."""

from repro.experiments.registry import run_experiment


def test_extension_multilevel(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("extension_multilevel", quick), rounds=1, iterations=1
    )
