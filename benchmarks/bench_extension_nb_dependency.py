"""Benchmark: regenerate the extension_nb_dependency experiment."""

from repro.experiments.registry import run_experiment


def test_extension_nb_dependency(benchmark, quick):
    benchmark.pedantic(
        run_experiment,
        args=("extension_nb_dependency", quick),
        rounds=1,
        iterations=1,
    )
