"""Benchmark: regenerate Figure 4 (unified tradeoff, L=32)."""

from repro.experiments.registry import run_experiment


def test_figure4(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("figure4", quick), rounds=1, iterations=1
    )
