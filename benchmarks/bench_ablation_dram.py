"""Benchmark: regenerate the ablation_dram experiment."""

from repro.experiments.registry import run_experiment


def test_ablation_dram(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("ablation_dram", quick), rounds=1, iterations=1
    )
