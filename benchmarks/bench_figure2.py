"""Benchmark: regenerate Figure 2 (bus width vs hit ratio sweep)."""

from repro.experiments.registry import run_experiment


def test_figure2(benchmark, quick):
    result = benchmark(run_experiment, "figure2", quick)
    assert "HR=98% L=8" in result.series
