"""Benchmark: regenerate the extension_interleaving experiment."""

from repro.experiments.registry import run_experiment


def test_extension_interleaving(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("extension_interleaving", quick), rounds=1, iterations=1
    )
