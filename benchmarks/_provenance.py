"""Shared environment provenance for committed bench scoreboards.

Both ``bench_engine_replay.py`` and ``bench_service.py`` embed this
block so ``python -m repro.obs.bench_history`` entries are attributable
to a code version and machine *shape* (python, platform, logical cpu
count) without recording anything host-identifying — no hostname, no
username, no paths.
"""

import os
import platform
import sys


def bench_provenance() -> dict:
    """The ``provenance`` object required by the bench schemas."""
    from repro.obs import manifest

    return {
        "git_sha": manifest.git_revision(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }
