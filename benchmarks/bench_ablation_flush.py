"""Benchmark: regenerate the ablation_flush experiment."""

from repro.experiments.registry import run_experiment


def test_ablation_flush(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("ablation_flush", quick), rounds=1, iterations=1
    )
