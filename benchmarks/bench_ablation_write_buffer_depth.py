"""Benchmark: regenerate the ablation_write_buffer_depth experiment."""

from repro.experiments.registry import run_experiment


def test_ablation_write_buffer_depth(benchmark, quick):
    benchmark.pedantic(
        run_experiment,
        args=("ablation_write_buffer_depth", quick),
        rounds=1,
        iterations=1,
    )
