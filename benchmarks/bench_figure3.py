"""Benchmark: regenerate Figure 3 (unified tradeoff, L=8)."""

from repro.experiments.registry import run_experiment


def test_figure3(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("figure3", quick), rounds=1, iterations=1
    )
