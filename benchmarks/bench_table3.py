"""Benchmark: regenerate Table 3 (per-feature miss-volume ratios)."""

from repro.experiments.registry import run_experiment


def test_table3(benchmark, quick):
    result = benchmark(run_experiment, "table3", quick)
    assert "doubling-bus" in result.tables[0]
