"""Benchmark: regenerate Table 2 (stalling factor bounds)."""

from repro.experiments.registry import run_experiment


def test_table2(benchmark, quick):
    result = benchmark(run_experiment, "table2", quick)
    assert len(result.tables) == 2
