"""Substrate micro-benchmarks: raw simulator throughput.

These are not paper artifacts; they keep the simulators honest as the
codebase evolves (a 10x regression in cache throughput would silently
multiply every figure's runtime).
"""

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.core.stalling import StallPolicy
from repro.cpu.processor import TimingSimulator
from repro.memory.mainmem import MainMemory
from repro.trace.spec92 import spec92_trace

TRACE_LENGTH = 20_000


@pytest.fixture(scope="module")
def trace():
    return spec92_trace("nasa7", TRACE_LENGTH, seed=1)


def test_functional_cache_throughput(benchmark, trace):
    """Pure hit/miss simulation, no timing."""

    def run():
        cache = Cache(CacheConfig(8192, 32, 2))
        for inst in trace:
            if inst.kind.is_memory:
                cache.read(inst.address)
        return cache.stats.accesses

    accesses = benchmark(run)
    assert accesses > 0


def test_timing_simulator_throughput_fs(benchmark, trace):
    def run():
        sim = TimingSimulator(CacheConfig(8192, 32, 2), MainMemory(8.0, 4))
        return sim.run(trace).cycles

    assert benchmark(run) > 0


def test_timing_simulator_throughput_bnl3(benchmark, trace):
    def run():
        sim = TimingSimulator(
            CacheConfig(8192, 32, 2),
            MainMemory(8.0, 4),
            policy=StallPolicy.BUS_NOT_LOCKED_3,
        )
        return sim.run(trace).cycles

    assert benchmark(run) > 0


def test_trace_generation_throughput(benchmark):
    result = benchmark(spec92_trace, "swm256", TRACE_LENGTH, 2)
    assert len(result) == TRACE_LENGTH
