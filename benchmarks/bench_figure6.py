"""Benchmark: regenerate Figure 6 (Smith validation panels)."""

from repro.experiments.registry import run_experiment


def test_figure6(benchmark, quick):
    result = benchmark(run_experiment, "figure6", quick)
    assert "agree at every swept bus speed: yes" in " ".join(result.notes)
