"""Benchmark: regenerate the extension_software_tiling experiment."""

from repro.experiments.registry import run_experiment


def test_extension_software_tiling(benchmark, quick):
    benchmark.pedantic(
        run_experiment,
        args=("extension_software_tiling", quick),
        rounds=1,
        iterations=1,
    )
