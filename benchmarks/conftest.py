"""Benchmark suite configuration.

Run with ``pytest benchmarks/ --benchmark-only``.  Each ``bench_*`` file
regenerates one paper artifact (table or figure) through the same code
path as ``python -m repro.experiments.runner``; the ``bench_substrate``
file measures raw simulator throughput.  Experiments use quick mode so a
full benchmark pass stays under a couple of minutes.
"""

import pytest


@pytest.fixture(scope="session")
def quick():
    """All experiment benchmarks run in quick mode."""
    return True
