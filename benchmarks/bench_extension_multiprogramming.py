"""Benchmark: regenerate the extension_multiprogramming experiment."""

from repro.experiments.registry import run_experiment


def test_extension_multiprogramming(benchmark, quick):
    benchmark.pedantic(
        run_experiment,
        args=("extension_multiprogramming", quick),
        rounds=1,
        iterations=1,
    )
