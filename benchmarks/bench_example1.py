"""Benchmark: regenerate Example 1 (bus width vs cache size pricing)."""

from repro.experiments.registry import run_experiment


def test_example1(benchmark, quick):
    result = benchmark(run_experiment, "example1", quick)
    assert result.tables
