"""Benchmark: regenerate the ablation_cache_geometry experiment."""

from repro.experiments.registry import run_experiment


def test_ablation_cache_geometry(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("ablation_cache_geometry", quick), rounds=1, iterations=1
    )
