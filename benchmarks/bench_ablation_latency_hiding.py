"""Benchmark: regenerate the ablation_latency_hiding experiment."""

from repro.experiments.registry import run_experiment


def test_ablation_latency_hiding(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("ablation_latency_hiding", quick), rounds=1, iterations=1
    )
