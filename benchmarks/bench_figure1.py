"""Benchmark: regenerate Figure 1 (trace-measured stalling factors).

The heaviest experiment — six traces x four policies x the beta sweep —
so the benchmark uses one round with few iterations.
"""

from repro.experiments.registry import run_experiment


def test_figure1(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("figure1", quick), rounds=1, iterations=1
    )
