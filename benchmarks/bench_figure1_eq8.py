"""Benchmark: regenerate the figure1_eq8 experiment."""

from repro.experiments.registry import run_experiment


def test_figure1_eq8(benchmark, quick):
    benchmark.pedantic(
        run_experiment, args=("figure1_eq8", quick), rounds=1, iterations=1
    )
