"""Interpolation helpers used by the tradeoff analyses.

``crossover`` locates where one curve overtakes another — the paper uses
this to find the memory cycle time beyond which a pipelined memory system
beats doubling the bus width (Section 5.3).
"""

from __future__ import annotations

from collections.abc import Sequence


def linear_interp(x0: float, y0: float, x1: float, y1: float, x: float) -> float:
    """Linearly interpolate/extrapolate y at ``x`` through two points."""
    if x1 == x0:
        raise ValueError("degenerate segment: x0 == x1")
    t = (x - x0) / (x1 - x0)
    return y0 + t * (y1 - y0)


def crossover(
    xs: Sequence[float],
    ys_a: Sequence[float],
    ys_b: Sequence[float],
) -> float | None:
    """Return the first x where series A rises to meet/exceed series B.

    The curves are sampled at common abscissae ``xs``; the exact crossing
    inside a bracketing interval is found by linear interpolation on the
    difference ``A − B``.  Returns ``None`` when A never catches B.
    """
    if not (len(xs) == len(ys_a) == len(ys_b)):
        raise ValueError("xs, ys_a, ys_b must have equal length")
    diff = [a - b for a, b in zip(ys_a, ys_b)]
    if diff and diff[0] >= 0:
        return xs[0]
    for i in range(1, len(xs)):
        if diff[i] >= 0:
            # Root of the linear difference inside [xs[i-1], xs[i]].
            d0, d1 = diff[i - 1], diff[i]
            if d1 == d0:
                return xs[i]
            t = -d0 / (d1 - d0)
            return xs[i - 1] + t * (xs[i] - xs[i - 1])
    return None
