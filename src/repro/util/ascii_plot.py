"""Minimal ASCII line-plot renderer.

The reproduction environment has no matplotlib, so experiment modules render
their figures as text.  The renderer maps each named series onto a character
grid; later series overwrite earlier ones where they collide, and a legend
names the glyph used for each series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

_GLYPHS = "*o+x#@%&$~^"


@dataclass
class _Series:
    name: str
    xs: list[float]
    ys: list[float]
    glyph: str


@dataclass
class AsciiPlot:
    """Accumulates named (x, y) series and renders them on a text grid.

    Parameters
    ----------
    title:
        Heading printed above the grid.
    xlabel, ylabel:
        Axis captions printed below / beside the grid.
    width, height:
        Interior grid size in characters.
    """

    title: str = ""
    xlabel: str = ""
    ylabel: str = ""
    width: int = 64
    height: int = 20
    _series: list[_Series] = field(default_factory=list)

    def add_series(self, name: str, xs: list[float], ys: list[float]) -> None:
        """Add a named series; x and y must have equal, non-zero length."""
        if len(xs) != len(ys):
            raise ValueError(
                f"series {name!r}: len(xs)={len(xs)} != len(ys)={len(ys)}"
            )
        if not xs:
            raise ValueError(f"series {name!r} is empty")
        glyph = _GLYPHS[len(self._series) % len(_GLYPHS)]
        self._series.append(_Series(name, list(xs), list(ys), glyph))

    def render(self) -> str:
        """Render the plot to a multi-line string."""
        if not self._series:
            return f"{self.title}\n(no data)"

        all_x = [x for s in self._series for x in s.xs]
        all_y = [y for s in self._series for y in s.ys if math.isfinite(y)]
        if not all_y:
            return f"{self.title}\n(no finite data)"
        xmin, xmax = min(all_x), max(all_x)
        ymin, ymax = min(all_y), max(all_y)
        if xmax == xmin:
            xmax = xmin + 1.0
        if ymax == ymin:
            ymax = ymin + 1.0

        grid = [[" "] * self.width for _ in range(self.height)]
        for series in self._series:
            for x, y in zip(series.xs, series.ys):
                if not math.isfinite(y):
                    continue
                col = round((x - xmin) / (xmax - xmin) * (self.width - 1))
                row = round((y - ymin) / (ymax - ymin) * (self.height - 1))
                grid[self.height - 1 - row][col] = series.glyph

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(f"{ymax:12.4g} +" + "-" * self.width + "+")
        for row in grid:
            lines.append(" " * 13 + "|" + "".join(row) + "|")
        lines.append(f"{ymin:12.4g} +" + "-" * self.width + "+")
        lines.append(
            " " * 14 + f"{xmin:<10.4g}" + " " * max(0, self.width - 20) + f"{xmax:>10.4g}"
        )
        if self.xlabel:
            lines.append(" " * 14 + f"x: {self.xlabel}")
        if self.ylabel:
            lines.append(" " * 14 + f"y: {self.ylabel}")
        for series in self._series:
            lines.append(f"    {series.glyph} = {series.name}")
        return "\n".join(lines)


def render_series(
    title: str,
    series: dict[str, tuple[list[float], list[float]]],
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """One-shot helper: render a dict of ``name -> (xs, ys)`` series."""
    plot = AsciiPlot(title=title, xlabel=xlabel, ylabel=ylabel)
    for name, (xs, ys) in series.items():
        plot.add_series(name, xs, ys)
    return plot.render()
