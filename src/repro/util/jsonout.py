"""Stable JSON serialization for machine-readable artifacts.

Every JSON artifact this repository emits — Chrome traces, metrics
snapshots, run manifests, benchmark records — goes through
:func:`dump_json` / :func:`write_json` so the byte-level format is
uniform: sorted keys, two-space indent, a trailing newline, and plain
``repr``-style floats.  Sorted keys are what make the observability
layer's determinism guarantees testable as *byte* equality rather than
semantic equality (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any


def dump_json(obj: Any) -> str:
    """Render ``obj`` as deterministic, diff-friendly JSON text."""
    return json.dumps(obj, sort_keys=True, indent=2) + "\n"


def dump_json_line(obj: Any) -> str:
    """Render ``obj`` as one compact JSON line (for JSONL streams).

    Same determinism contract as :func:`dump_json` (sorted keys, plain
    ``repr`` floats), but single-line so each record is one line of an
    append-only log.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def write_json(path: str | Path, obj: Any) -> Path:
    """Write ``obj`` as stable JSON; creates parent dirs, returns path."""
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(dump_json(obj))
    return target


def read_json(path: str | Path) -> Any:
    """Load a JSON artifact (inverse of :func:`write_json`)."""
    return json.loads(Path(path).read_text())
