"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Floats are shown with 4 significant digits; everything else uses
    ``str``.  Raises ``ValueError`` when a row is ragged.
    """
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
