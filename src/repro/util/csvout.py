"""CSV emission for experiment series."""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence
from pathlib import Path


def series_to_csv(
    x_name: str,
    xs: Sequence[float],
    columns: dict[str, Sequence[float]],
) -> str:
    """Serialize an x column plus named y columns to a CSV string.

    All columns must have the same length as ``xs``.
    """
    for name, ys in columns.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"column {name!r} has {len(ys)} rows, expected {len(xs)}"
            )
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([x_name, *columns.keys()])
    for i, x in enumerate(xs):
        writer.writerow([x, *(columns[name][i] for name in columns)])
    return buf.getvalue()


def write_csv(path: str | Path, content: str) -> Path:
    """Write CSV ``content`` to ``path``, creating parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(content)
    return target
