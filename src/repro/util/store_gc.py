"""Shared eviction for the content-addressed on-disk stores.

Three stores share one layout discipline — a payload file plus a JSON
sidecar, both written atomically, content-addressed by SHA-256 key:

* the events store (``<key>.npz`` + ``<key>.json``,
  :mod:`repro.cache.events_store`);
* the reuse-profile store (``<key>.profile.npz`` +
  ``<key>.profile.json``, :mod:`repro.cache.reuse_store`, sharing the
  events directory);
* the disk result cache (``<key>.bin`` + ``<key>.json``,
  :mod:`repro.service.disk_cache`).

They also share an eviction *policy* — oldest sidecar mtime first (the
sidecar is the recency signal; the disk cache refreshes it on hit) —
which this module implements once.  :class:`DiskResultCache` calls
:func:`plan_evictions` from its online budget enforcement, and
``python -m repro cache gc`` uses the same planner offline over all
three stores, so the two paths can never disagree about what "oldest
first" means.

A payload without a readable sidecar is an **orphan**: it can never be
loaded (every store validates the sidecar before trusting the payload),
but it may also be the first half of an in-flight atomic write.  The
online path therefore ignores orphans entirely; the offline ``gc``
command removes them only once they are older than
:data:`ORPHAN_GRACE_S`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: An orphan payload younger than this is assumed to be a write in
#: flight (payload landed, sidecar next) and is left alone.
ORPHAN_GRACE_S = 60.0


@dataclass(frozen=True)
class StoreEntry:
    """One (payload, sidecar) pair of a content-addressed store."""

    key: str
    payload: Path
    sidecar: Path
    size: int  # payload bytes (what the byte budget counts)
    mtime: float  # sidecar mtime (the recency signal)


def scan_store(
    directory: Path,
    payload_suffix: str,
    sidecar_suffix: str,
    exclude_suffix: str | None = None,
) -> tuple[list[StoreEntry], list[Path]]:
    """Enumerate a store directory: complete pairs plus orphan payloads.

    ``exclude_suffix`` skips payloads of a co-located store (the reuse
    store's ``.profile.npz`` files live in the events directory).
    Unreadable files are skipped, never raised — a concurrent writer or
    evictor is normal operation for these directories.
    """
    entries: list[StoreEntry] = []
    orphans: list[Path] = []
    try:
        payloads = sorted(directory.glob(f"*{payload_suffix}"))
    except OSError:
        return [], []
    for payload in payloads:
        name = payload.name
        if exclude_suffix is not None and name.endswith(exclude_suffix):
            continue
        key = name[: -len(payload_suffix)]
        sidecar = directory / f"{key}{sidecar_suffix}"
        try:
            size = payload.stat().st_size
            mtime = sidecar.stat().st_mtime
        except OSError:
            orphans.append(payload)
            continue
        entries.append(StoreEntry(key, payload, sidecar, size, mtime))
    return entries, orphans


def plan_evictions(
    entries: list[StoreEntry],
    capacity_bytes: int,
    keep: str | None = None,
) -> list[StoreEntry]:
    """The entries to evict, oldest sidecar first, to fit the budget.

    ``keep`` names a key that is never planned for eviction (the entry
    a writer just stored).  Ties on mtime break by size then key, so
    the plan is deterministic for a given directory state.
    """
    total = sum(entry.size for entry in entries)
    if total <= capacity_bytes:
        return []
    plan: list[StoreEntry] = []
    for entry in sorted(entries, key=lambda e: (e.mtime, e.size, e.key)):
        if total <= capacity_bytes:
            break
        if entry.key == keep:
            continue
        plan.append(entry)
        total -= entry.size
    return plan


def remove_entry(entry: StoreEntry) -> bool:
    """Unlink one pair (best-effort); True when the payload is gone."""
    try:
        entry.payload.unlink(missing_ok=True)
        entry.sidecar.unlink(missing_ok=True)
    except OSError:
        return False
    return True


# -- the offline ``python -m repro cache gc`` command ---------------------


@dataclass(frozen=True)
class StoreSpec:
    """Where one store lives and how its files are named."""

    name: str
    directory: Path
    payload_suffix: str
    sidecar_suffix: str
    exclude_suffix: str | None = None


def known_stores() -> dict[str, StoreSpec]:
    """The three content-addressed stores ``cache gc`` manages.

    Directories resolve through each store's own rules (env overrides
    included), so ``gc`` always looks where the writers write.
    """
    from repro.cache import events_store
    from repro.service import disk_cache

    events_dir = events_store.cache_dir()
    return {
        "events": StoreSpec(
            "events", events_dir, ".npz", ".json", exclude_suffix=".profile.npz"
        ),
        "reuse": StoreSpec(
            "reuse", events_dir, ".profile.npz", ".profile.json"
        ),
        "results": StoreSpec(
            "results", disk_cache.resolve_cache_dir(None), ".bin", ".json"
        ),
    }


def gc_store(
    spec: StoreSpec,
    budget_bytes: int,
    dry_run: bool = False,
    now: float | None = None,
) -> dict[str, Any]:
    """Trim one store to the byte budget; returns a JSON-ready report.

    Evicts complete pairs oldest-first until the payload footprint fits
    the budget, and removes orphan payloads older than
    :data:`ORPHAN_GRACE_S`.  With ``dry_run`` nothing is unlinked; the
    report carries what *would* go.
    """
    import time

    now = time.time() if now is None else now
    entries, orphans = scan_store(
        spec.directory,
        spec.payload_suffix,
        spec.sidecar_suffix,
        exclude_suffix=spec.exclude_suffix,
    )
    total = sum(entry.size for entry in entries)
    plan = plan_evictions(entries, budget_bytes)
    stale_orphans = []
    for orphan in orphans:
        try:
            if now - orphan.stat().st_mtime >= ORPHAN_GRACE_S:
                stale_orphans.append(orphan)
        except OSError:
            continue
    evicted = 0
    evicted_bytes = 0
    orphans_removed = 0
    for entry in plan:
        if dry_run or remove_entry(entry):
            evicted += 1
            evicted_bytes += entry.size
    for orphan in stale_orphans:
        if dry_run:
            orphans_removed += 1
            continue
        try:
            orphan.unlink(missing_ok=True)
            orphans_removed += 1
        except OSError:
            continue
    return {
        "store": spec.name,
        "directory": str(spec.directory),
        "entries": len(entries),
        "bytes": total,
        "budget_bytes": budget_bytes,
        "evicted": evicted,
        "evicted_bytes": evicted_bytes,
        "orphans_removed": orphans_removed,
        "bytes_after": total - evicted_bytes,
        "dry_run": dry_run,
    }


def main(argv: list[str] | None = None) -> int:
    """``python -m repro cache gc``: trim the on-disk stores."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Manage the content-addressed on-disk stores.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    gc = commands.add_parser(
        "gc", help="evict oldest-used entries down to a byte budget"
    )
    gc.add_argument(
        "--budget-mib",
        type=float,
        required=True,
        help="per-store payload byte budget",
    )
    gc.add_argument(
        "--store",
        choices=["events", "reuse", "results", "all"],
        default="all",
        help="which store to trim (default: all three)",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without unlinking anything",
    )
    options = parser.parse_args(argv)
    budget = int(options.budget_mib * 1024 * 1024)
    if budget <= 0:
        parser.error(f"--budget-mib must be > 0, got {options.budget_mib:g}")
    stores = known_stores()
    selected = (
        list(stores.values())
        if options.store == "all"
        else [stores[options.store]]
    )
    for spec in selected:
        report = gc_store(spec, budget, dry_run=options.dry_run)
        verb = "would evict" if options.dry_run else "evicted"
        print(
            f"{report['store']}: {report['entries']} entries, "
            f"{report['bytes']} bytes in {report['directory']}; "
            f"{verb} {report['evicted']} entries "
            f"({report['evicted_bytes']} bytes), "
            f"{report['orphans_removed']} orphans -> "
            f"{report['bytes_after']} bytes"
        )
    return 0
