"""Shared utilities: ASCII plotting, table rendering, CSV output, interpolation.

These helpers keep the experiment harness free of third-party plotting
dependencies (matplotlib is not available in the reproduction environment);
every figure is emitted as structured numeric series, a CSV file, and an
ASCII rendering.
"""

from repro.util.ascii_plot import AsciiPlot, render_series
from repro.util.csvout import series_to_csv, write_csv
from repro.util.interp import crossover, linear_interp
from repro.util.tables import format_table

__all__ = [
    "AsciiPlot",
    "render_series",
    "series_to_csv",
    "write_csv",
    "crossover",
    "linear_interp",
    "format_table",
]
