"""repro — reproduction of "A Unified Architectural Tradeoff Methodology"
(Chung-Ho Chen and Arun K. Somani, ISCA 1994).

The package quantifies architectural features — external data bus width,
processor stalling behaviour, read-bypassing write buffers, pipelined
memory, and cache line size — in a common currency: cache hit ratio,
via the equivalence of mean memory delay time.

Layout
------
``repro.core``
    The analytic methodology (the paper's contribution).
``repro.cache`` / ``repro.cpu`` / ``repro.memory``
    The trace-driven simulation substrate that measures stalling factors
    and workload characterizations.
``repro.trace``
    Synthetic workload generators standing in for the SPEC92 traces.
``repro.analysis``
    Characterization, hit-ratio-vs-size models, chip-area/pin models.
``repro.experiments``
    One module per paper table/figure; ``python -m repro.experiments.runner``.
"""

from repro.core import (
    ArchFeature,
    StallPolicy,
    SystemConfig,
    TradeoffResult,
    WorkloadCharacter,
    doubling_tradeoff,
    execution_time,
    hit_ratio_traded,
    partial_stall_tradeoff,
    pipelined_tradeoff,
    smith_optimal_line,
    tradeoff_optimal_line,
    unified_comparison,
    workload_from_hit_ratio,
    write_buffer_tradeoff,
)

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "WorkloadCharacter",
    "workload_from_hit_ratio",
    "StallPolicy",
    "ArchFeature",
    "TradeoffResult",
    "execution_time",
    "hit_ratio_traded",
    "doubling_tradeoff",
    "partial_stall_tradeoff",
    "write_buffer_tradeoff",
    "pipelined_tradeoff",
    "unified_comparison",
    "smith_optimal_line",
    "tradeoff_optimal_line",
    "__version__",
]
