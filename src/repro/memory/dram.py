"""Page-mode DRAM timing — an ablation substrate for the constant-beta_m
assumption.

The paper models memory as a constant ``beta_m`` per D-byte cycle.  Real
early-90s DRAM already had fast-page mode: an access within the open row
costs much less than one that must precharge and re-activate.  This
model lets the ablation benches ask how sensitive the tradeoffs are to
that idealization: sequential line fills ride page hits, so the
*effective* beta_m a workload sees sits between ``page_hit_cycle`` and
``page_miss_cycle`` depending on its locality.

The class is plug-compatible with :class:`~repro.memory.MainMemory` for
the timing simulator; ``memory_cycle`` reports the page-miss (worst
case) value so the Table 2 bounds remain sound.
"""

from __future__ import annotations

from repro.memory.mainmem import FillSchedule, MainMemory, _critical_first_order


class PageModeDram(MainMemory):
    """DRAM with one open row per bank and fast-page-mode access.

    Parameters
    ----------
    page_hit_cycle:
        Cycles per D-byte transfer within the open row.
    page_miss_cycle:
        Cycles for a transfer that must precharge + activate first.
    row_bytes:
        Row (page) size; addresses in the same row hit the open page.
    bus_width:
        D in bytes.
    """

    def __init__(
        self,
        page_hit_cycle: float,
        page_miss_cycle: float,
        row_bytes: int,
        bus_width: int,
    ) -> None:
        if page_hit_cycle < 1:
            raise ValueError(f"page_hit_cycle must be >= 1, got {page_hit_cycle}")
        if page_miss_cycle < page_hit_cycle:
            raise ValueError(
                "page_miss_cycle must be at least page_hit_cycle "
                f"({page_miss_cycle} < {page_hit_cycle})"
            )
        if row_bytes <= 0 or row_bytes % bus_width:
            raise ValueError(
                f"row_bytes ({row_bytes}) must be a positive multiple of the "
                f"bus width ({bus_width})"
            )
        super().__init__(page_miss_cycle, bus_width)
        self.page_hit_cycle = float(page_hit_cycle)
        self.page_miss_cycle = float(page_miss_cycle)
        self.row_bytes = row_bytes
        self._open_row: int | None = None
        self.page_hits = 0
        self.page_misses = 0

    def _row_of(self, address: int) -> int:
        return address // self.row_bytes

    def _chunk_cost(self, address: int) -> float:
        row = self._row_of(address)
        if row == self._open_row:
            self.page_hits += 1
            return self.page_hit_cycle
        self.page_misses += 1
        self._open_row = row
        return self.page_miss_cycle

    def line_fill_duration(self, line_size: int) -> float:
        """Worst-case duration (page miss then hits within the row).

        Used for bus reservation; the schedule itself is exact.  A line
        never spans rows (rows are megabyte-scale vs 32-byte lines).
        """
        self._check_line(line_size)
        chunks = line_size // self.bus_width
        return self.page_miss_cycle + (chunks - 1) * self.page_hit_cycle

    def schedule_fill(
        self, line_address: int, line_size: int, critical_offset: int, start_time: float
    ) -> FillSchedule:
        """Chunk arrivals with the first chunk paying the page state."""
        self._check_line(line_size)
        n_chunks = line_size // self.bus_width
        critical = (critical_offset % line_size) // self.bus_width
        arrival = [0.0] * n_chunks
        time = start_time
        for chunk in _critical_first_order(n_chunks, critical):
            time += self._chunk_cost(line_address + chunk * self.bus_width)
            arrival[chunk] = time
        return FillSchedule(line_address, start_time, tuple(arrival))

    def write_duration(self, n_bytes: int) -> float:
        """Writes pay the page-state-dependent cost per chunk."""
        if n_bytes <= 0:
            raise ValueError(f"n_bytes must be positive, got {n_bytes}")
        chunks = -(-n_bytes // self.bus_width)
        # Conservative: charge one page check for the first chunk.
        return self.page_miss_cycle + (chunks - 1) * self.page_hit_cycle

    def copy_back_duration(self, line_size: int) -> float:
        return self.line_fill_duration(line_size)

    @property
    def page_hit_ratio(self) -> float:
        """Fraction of chunk transfers that rode the open row."""
        total = self.page_hits + self.page_misses
        return self.page_hits / total if total else 0.0

    def effective_memory_cycle(self) -> float:
        """The constant beta_m this DRAM behaved like, post hoc.

        This is the number to feed the analytic model when replacing the
        DRAM with the paper's constant-cycle memory.
        """
        total = self.page_hits + self.page_misses
        if total == 0:
            return self.page_miss_cycle
        return (
            self.page_hits * self.page_hit_cycle
            + self.page_misses * self.page_miss_cycle
        ) / total
