"""Interleaved (banked) memory — the classic realization of Section 4.4's
pipelined memory system.

The paper's pipelined memory accepts a request every ``q`` cycles
(Eq. 9) and calls ``q = 2`` "the best possible implementation".  In 1994
hardware, that pipeline was built from ``B`` interleaved banks: bank
``(address / D) mod B`` serves each D-byte chunk, a bank is busy for the
full ``beta_m`` after accepting a request, and chunks return over a bus
that moves one chunk per ``transfer_cycles``.

For a sequential line fill (the cache's access pattern) the achieved
inter-chunk cadence is ``q_eff = max(transfer_cycles, ceil(beta_m / B))``
— enough banks make the bus the limit, too few make the banks the limit.
:func:`banks_for_turnaround` inverts that: how many banks realize the
paper's target ``q``.
"""

from __future__ import annotations

import math

from repro.memory.mainmem import FillSchedule, MainMemory, _critical_first_order


def effective_turnaround(
    memory_cycle: float, banks: int, transfer_cycles: float = 1.0
) -> float:
    """``q_eff = max(transfer, ceil(beta_m / B))`` for sequential fills.

    Capped at ``beta_m`` itself: a single bank is plain serial access,
    and rounding up must never make banking look slower than no banking.
    """
    if banks <= 0:
        raise ValueError(f"banks must be positive, got {banks}")
    if transfer_cycles < 1:
        raise ValueError(f"transfer_cycles must be >= 1, got {transfer_cycles}")
    cadence = min(float(memory_cycle), float(math.ceil(memory_cycle / banks)))
    return max(transfer_cycles, cadence)


def banks_for_turnaround(
    memory_cycle: float, target_turnaround: float, transfer_cycles: float = 1.0
) -> int:
    """Fewest banks achieving the target ``q`` (Eq. 9's parameter).

    Raises when the bus alone (``transfer_cycles``) exceeds the target —
    no amount of banking can beat the bus.
    """
    if target_turnaround < transfer_cycles:
        raise ValueError(
            f"target q ({target_turnaround}) below the bus transfer time "
            f"({transfer_cycles}); unreachable by interleaving"
        )
    if target_turnaround < 1:
        raise ValueError("target q must be >= 1")
    return max(1, math.ceil(memory_cycle / target_turnaround))


class InterleavedMemory(MainMemory):
    """Banked memory with per-bank occupancy tracking.

    Plug-compatible with :class:`~repro.memory.MainMemory` for the
    timing simulator.  Unlike the idealized
    :class:`~repro.memory.PipelinedMemory`, bank conflicts are modelled:
    a chunk whose bank is still busy waits for it, so strided access
    patterns that hammer one bank degrade toward non-pipelined timing.
    """

    def __init__(
        self,
        memory_cycle: float,
        bus_width: int,
        banks: int,
        transfer_cycles: float = 1.0,
    ) -> None:
        super().__init__(memory_cycle, bus_width)
        if banks <= 0 or banks & (banks - 1):
            raise ValueError(f"banks must be a positive power of two, got {banks}")
        if transfer_cycles < 1:
            raise ValueError(f"transfer_cycles must be >= 1, got {transfer_cycles}")
        self.banks = banks
        self.transfer_cycles = float(transfer_cycles)
        self._bank_free = [0.0] * banks
        self.bank_conflicts = 0

    def _bank_of(self, address: int) -> int:
        return (address // self.bus_width) % self.banks

    def line_fill_duration(self, line_size: int) -> float:
        """Sequential-fill envelope: ``beta_m + (chunks-1) * q_eff``.

        This is the Eq. (9)-mapped *conservative* duration used for bus
        reservation; :meth:`schedule_fill`'s exact per-bank timing can
        finish earlier when the request bus runs ahead of the bank
        round-trip (chunks within a bank group arrive at bus cadence).
        """
        self._check_line(line_size)
        chunks = line_size // self.bus_width
        q_eff = effective_turnaround(
            self.memory_cycle, self.banks, self.transfer_cycles
        )
        return self.memory_cycle + (chunks - 1) * q_eff

    def schedule_fill(
        self, line_address: int, line_size: int, critical_offset: int, start_time: float
    ) -> FillSchedule:
        """Chunk arrivals honoring per-bank occupancy and the bus.

        Requests issue in critical-word-first order, one per
        ``transfer_cycles`` on the request bus; each waits for its bank,
        occupies it for ``beta_m``, and delivers on completion.
        """
        self._check_line(line_size)
        n_chunks = line_size // self.bus_width
        critical = (critical_offset % line_size) // self.bus_width
        arrival = [0.0] * n_chunks
        issue_time = start_time
        for chunk in _critical_first_order(n_chunks, critical):
            bank = self._bank_of(line_address + chunk * self.bus_width)
            ready = max(issue_time, self._bank_free[bank])
            if self._bank_free[bank] > issue_time:
                self.bank_conflicts += 1
            done = ready + self.memory_cycle
            self._bank_free[bank] = done
            arrival[chunk] = done
            issue_time += self.transfer_cycles
        return FillSchedule(line_address, start_time, tuple(arrival))

    def as_pipelined_turnaround(self) -> float:
        """The Eq. 9 ``q`` this banking realizes for sequential fills."""
        return effective_turnaround(
            self.memory_cycle, self.banks, self.transfer_cycles
        )
