"""Read-bypassing write buffer (paper Section 4.3).

A small FIFO of pending copy-backs/stores.  Reads bypass buffered writes
unless they conflict with a buffered line, in which case the buffer must
drain first (the paper's "some reads cannot bypass the on-going writes").
Entries drain over the bus opportunistically; a full buffer stalls the
producer until a slot frees.

The paper's observation that flush cycles are easy to hide rests on two
facts this model reproduces: the flushed line is posted *after* the
missing line arrives, and the processor then spends cycles consuming the
fresh line, leaving the bus idle for the drain.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class _Entry:
    line_address: int
    duration: float


class WriteBuffer:
    """FIFO write buffer with read-bypass conflict detection."""

    def __init__(self, depth: int = 4) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.depth = depth
        self._entries: deque[_Entry] = deque()
        #: time the head entry's drain will complete, when draining
        self._head_done: float | None = None
        self.total_posted = 0
        self.total_drained = 0
        self.conflict_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    def counter_snapshot(self) -> dict[str, int]:
        """Lifetime counters for the metrics layer (``write_buffer.*``).

        Read once at end of simulation rather than incrementing global
        metrics per posted write — the buffer sits on the oracle's
        per-reference path.
        """
        return {
            "posted": self.total_posted,
            "drained": self.total_drained,
            "conflict_drains": self.conflict_stalls,
        }

    @property
    def is_full(self) -> bool:
        """No slot free for another posted write."""
        return len(self._entries) >= self.depth

    def post(self, line_address: int, duration: float, now: float) -> float:
        """Queue a copy-back; returns the stall the *processor* pays.

        Posting is free while a slot is available.  When the buffer is
        full, the processor stalls until the head entry finishes draining
        (computed against an idle bus from ``now``).
        """
        stall = 0.0
        if self.is_full:
            # Drain the head synchronously to make room.
            head = self._entries.popleft()
            drain_done = max(now, self._head_done or now) + head.duration
            stall = drain_done - now
            self.total_drained += 1
            self._head_done = None
        self._entries.append(_Entry(line_address, duration))
        self.total_posted += 1
        return stall

    def drain_idle(self, now: float, idle_until: float) -> float:
        """Drain entries while the bus is idle in ``[now, idle_until]``.

        Returns the time the bus becomes free again (>= ``now``).  Partial
        drains are not modelled — an entry drains only if it fits.
        """
        time = now
        while self._entries and time + self._entries[0].duration <= idle_until:
            entry = self._entries.popleft()
            time += entry.duration
            self.total_drained += 1
        return time

    def conflicts_with(self, line_address: int) -> bool:
        """Whether a read of ``line_address`` hits a buffered write."""
        return any(entry.line_address == line_address for entry in self._entries)

    def flush_all(self, now: float) -> float:
        """Drain everything; returns the completion time.

        Used when a read conflicts with a buffered line (no forwarding in
        this model, matching the paper's conservative bypass).
        """
        time = now
        while self._entries:
            entry = self._entries.popleft()
            time += entry.duration
            self.total_drained += 1
        self.conflict_stalls += 1
        return time
