"""Pipelined memory timing (paper Section 4.4, Eq. 9).

The memory accepts a new D-byte request every ``q`` clocks, so a line
fill delivers its first chunk after ``beta_m`` and one more every ``q``:

    beta_p = beta_m + q * (L/D - 1).

At ``L = D`` the pipelined and non-pipelined systems coincide, as the
paper notes below Eq. (9).
"""

from __future__ import annotations

from repro.memory.mainmem import FillSchedule, MainMemory, _critical_first_order


class PipelinedMemory(MainMemory):
    """Main memory with request pipelining at turnaround ``q``."""

    def __init__(self, memory_cycle: float, bus_width: int, turnaround: float = 2.0) -> None:
        super().__init__(memory_cycle, bus_width)
        if turnaround < 1:
            raise ValueError(f"turnaround q must be >= 1, got {turnaround}")
        if turnaround > memory_cycle:
            raise ValueError(
                f"turnaround q ({turnaround}) cannot exceed the memory cycle "
                f"({memory_cycle}); the pipeline would be slower than no pipeline"
            )
        self.turnaround = float(turnaround)

    def line_fill_duration(self, line_size: int) -> float:
        """Eq. (9): ``beta_m + q * (L/D - 1)``."""
        self._check_line(line_size)
        n_chunks = line_size // self.bus_width
        return self.memory_cycle + self.turnaround * (n_chunks - 1)

    def schedule_fill(
        self, line_address: int, line_size: int, critical_offset: int, start_time: float
    ) -> FillSchedule:
        """Critical chunk after ``beta_m``, then one chunk every ``q``."""
        self._check_line(line_size)
        n_chunks = line_size // self.bus_width
        critical = (critical_offset % line_size) // self.bus_width
        arrival = [0.0] * n_chunks
        for position, chunk in enumerate(_critical_first_order(n_chunks, critical)):
            arrival[chunk] = start_time + self.memory_cycle + position * self.turnaround
        return FillSchedule(line_address, start_time, tuple(arrival))

    def copy_back_duration(self, line_size: int) -> float:
        """Copy-backs pipeline the same way as fills."""
        return self.line_fill_duration(line_size)
