"""Memory-system substrate: main memory, pipelined memory, bus, write buffer.

These models supply *timing* — when each D-byte chunk of a line fill
arrives, when a copy-back completes — while :mod:`repro.cache` supplies
*state*.  The CPU timing simulator composes the two.
"""

from repro.memory.bus import Bus
from repro.memory.dram import PageModeDram
from repro.memory.interleaved import (
    InterleavedMemory,
    banks_for_turnaround,
    effective_turnaround,
)
from repro.memory.mainmem import FillSchedule, MainMemory
from repro.memory.pipelined import PipelinedMemory
from repro.memory.write_buffer import WriteBuffer

__all__ = [
    "Bus",
    "MainMemory",
    "PipelinedMemory",
    "PageModeDram",
    "InterleavedMemory",
    "banks_for_turnaround",
    "effective_turnaround",
    "FillSchedule",
    "WriteBuffer",
]
