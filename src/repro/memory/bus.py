"""External data bus occupancy model.

A single shared resource: line fills, copy-backs and write-arounds all
serialize on it.  The bus does not know what a transfer means — it only
guarantees transfers never overlap and reports when each one starts.
"""

from __future__ import annotations


class Bus:
    """Serializes transfers; tracks utilization for reporting."""

    def __init__(self) -> None:
        self.busy_until = 0.0
        self.busy_cycles = 0.0
        self.transfers = 0

    def reserve(self, earliest_start: float, duration: float) -> float:
        """Claim the bus for ``duration`` cycles at or after ``earliest_start``.

        Returns the actual start time (delayed if the bus is busy).
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        start = max(earliest_start, self.busy_until)
        self.busy_until = start + duration
        self.busy_cycles += duration
        self.transfers += 1
        return start

    def idle_at(self, time: float) -> bool:
        """Whether the bus is free at ``time``."""
        return time >= self.busy_until

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over ``elapsed`` cycles."""
        if elapsed <= 0:
            raise ValueError(f"elapsed must be positive, got {elapsed}")
        return min(1.0, self.busy_cycles / elapsed)
