"""Non-pipelined main memory timing (paper Section 3.1).

Every D-byte read/write cycle takes ``beta_m`` processor clocks; an
L-byte line fill is ``L/D`` back-to-back cycles, delivered
critical-word-first: the chunk containing the requested word arrives
after the first ``beta_m``, then the rest of the line wraps around.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FillSchedule:
    """Arrival timing of one line fill.

    ``chunk_arrival[i]`` is when chunk ``i`` of the line (chunk = D-byte
    slice, indexed by position *within the line*, not transfer order)
    becomes available to the processor.
    """

    line_address: int
    start_time: float
    chunk_arrival: tuple[float, ...]

    @property
    def end_time(self) -> float:
        """When the whole line is resident."""
        return max(self.chunk_arrival)

    @property
    def first_arrival(self) -> float:
        """When the critical (requested) chunk arrives."""
        return min(self.chunk_arrival)

    def arrival_for_offset(self, offset: int, chunk_size: int) -> float:
        """Arrival time of the chunk holding byte ``offset`` of the line."""
        index = offset // chunk_size
        if not 0 <= index < len(self.chunk_arrival):
            raise ValueError(
                f"offset {offset} outside line of "
                f"{len(self.chunk_arrival)} x {chunk_size} bytes"
            )
        return self.chunk_arrival[index]

    def complete_at(self, time: float) -> bool:
        """Whether the fill has fully finished by ``time``."""
        return time >= self.end_time


def _critical_first_order(n_chunks: int, critical: int) -> list[int]:
    """Transfer order: critical chunk first, then wrap-around sequential."""
    return [(critical + k) % n_chunks for k in range(n_chunks)]


class MainMemory:
    """Fixed-cycle memory: ``beta_m`` clocks per D-byte transfer."""

    def __init__(self, memory_cycle: float, bus_width: int) -> None:
        if memory_cycle < 1:
            raise ValueError(f"memory_cycle must be >= 1, got {memory_cycle}")
        if bus_width <= 0:
            raise ValueError(f"bus_width must be positive, got {bus_width}")
        self.memory_cycle = float(memory_cycle)
        self.bus_width = bus_width

    def line_fill_duration(self, line_size: int) -> float:
        """``(L/D) * beta_m`` — bus occupancy of one fill."""
        self._check_line(line_size)
        return (line_size // self.bus_width) * self.memory_cycle

    def schedule_fill(
        self, line_address: int, line_size: int, critical_offset: int, start_time: float
    ) -> FillSchedule:
        """Critical-word-first fill starting at ``start_time``.

        The k-th transferred chunk arrives at ``start + (k+1) * beta_m``.
        """
        self._check_line(line_size)
        n_chunks = line_size // self.bus_width
        critical = (critical_offset % line_size) // self.bus_width
        arrival = [0.0] * n_chunks
        for position, chunk in enumerate(_critical_first_order(n_chunks, critical)):
            arrival[chunk] = start_time + (position + 1) * self.memory_cycle
        return FillSchedule(line_address, start_time, tuple(arrival))

    def write_duration(self, n_bytes: int) -> float:
        """Cycles to write ``n_bytes``: one ``beta_m`` per D-byte chunk.

        Operands at or under the bus width cost a single cycle (the
        paper's ``W * beta_m`` term assumes write sizes <= D).
        """
        if n_bytes <= 0:
            raise ValueError(f"n_bytes must be positive, got {n_bytes}")
        chunks = -(-n_bytes // self.bus_width)  # ceil division
        return chunks * self.memory_cycle

    def copy_back_duration(self, line_size: int) -> float:
        """Cycles to flush one dirty line: ``(L/D) * beta_m``."""
        return self.line_fill_duration(line_size)

    def _check_line(self, line_size: int) -> None:
        if line_size <= 0 or line_size % self.bus_width:
            raise ValueError(
                f"line_size {line_size} must be a positive multiple of "
                f"bus width {self.bus_width}"
            )
