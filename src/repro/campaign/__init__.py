"""Experiment-campaign orchestration (`repro.campaign`).

A *campaign* is a declarative JSON document describing a cross-product
grid — traces × cache geometries × stall policies × β\\ :sub:`m` — with
exclusion rules and per-point deadlines (:mod:`repro.campaign.spec`).
Campaigns are content-addressed by the SHA-256 of their normalized
spec, registered in an on-disk registry with the same atomic
write+sidecar discipline as the events store
(:mod:`repro.campaign.registry`), executed resumably in checkpointed
chunks through the existing ``simulate()`` / service ``/v1/sweep``
paths (:mod:`repro.campaign.executor`), and compared / promoted as
cohorts (:mod:`repro.campaign.compare`).

Every point keys into the same content-addressed stores the service
uses, so an interrupted campaign resumes with zero re-simulation and
its final artifacts are byte-identical to an uninterrupted run — the
determinism contract the rest of the repository pins, one level up.

Surfaces: ``python -m repro campaign {submit,status,resume,diff,
promote,list}`` (:mod:`repro.campaign.cli`), and the service endpoints
``POST /v1/campaigns`` / ``GET /v1/campaigns/{id}[/results]``
(:mod:`repro.campaign.service`).  See ``docs/CAMPAIGNS.md``.
"""

from repro.campaign.spec import (  # noqa: F401
    CAMPAIGN_SPEC_SCHEMA,
    campaign_id,
    iter_points,
    point_count,
    validate_spec,
)
from repro.campaign.registry import (  # noqa: F401
    Campaign,
    CampaignRegistry,
)
