"""``python -m repro campaign`` — the campaign command line.

Subcommands::

    submit SPEC.json     register a spec and run it to completion
    resume REF           continue an interrupted campaign
    status REF           one campaign's progress
    list                 every registered campaign
    diff A B             cohort comparison (campaigns or baselines)
    promote REF NAME     pin a completed campaign as a named baseline

``REF`` is a campaign id, a unique id prefix, or a unique spec name.
The registry directory defaults to ``~/.cache/repro/campaigns``
(``$XDG_CACHE_HOME`` aware), overridden by ``--registry`` or the
``REPRO_CAMPAIGN_DIR`` environment variable.

``--via-service URL`` switches the executor from in-process simulation
to a running server or fleet: whole pending cache columns stream
through ``/v1/sweep`` (with client-side mid-stream resume), stragglers
go through ``/v1/simulate``.  Either way the registry contents are
byte-identical — same content-addressed artifacts, same
``results.jsonl``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any
from urllib.parse import urlparse

from repro.campaign import compare, executor
from repro.campaign.registry import (
    CampaignRegistry,
    resolve_registry_dir,
)
from repro.campaign.spec import SchemaError
from repro.util.jsonout import dump_json


def _registry_of(options: argparse.Namespace) -> CampaignRegistry:
    return CampaignRegistry(resolve_registry_dir(options.registry))


def _client_of(url: str) -> Any:
    parsed = urlparse(url if "//" in url else f"http://{url}")
    if parsed.hostname is None or parsed.port is None:
        raise SystemExit(
            f"error: --via-service needs host:port, got {url!r}"
        )
    from repro.service.client import ServiceClient

    return ServiceClient(parsed.hostname, parsed.port)


def _run(
    options: argparse.Namespace, campaign: Any
) -> dict[str, Any]:
    client = (
        _client_of(options.via_service)
        if getattr(options, "via_service", None)
        else None
    )

    def narrate(progress: dict[str, Any]) -> None:
        print(
            f"  checkpoint: {progress['done']}/{progress['points']} done, "
            f"{progress['errors']} errors, {progress['pending']} pending",
            file=sys.stderr,
        )

    try:
        return executor.run_campaign(
            campaign,
            chunk_size=options.chunk_size,
            max_chunks=options.max_chunks,
            retry_errors=getattr(options, "retry_errors", False),
            client=client,
            resume_retries=options.resume_retries,
            progress=narrate if not options.quiet else None,
        )
    finally:
        if client is not None:
            client.close()


def _print_report(report: dict[str, Any], as_json: bool) -> None:
    if as_json:
        print(dump_json(report))
        return
    progress = report["progress"]
    state = "complete" if progress["complete"] else "interrupted"
    print(
        f"campaign {report['campaign'][:12]} {state}: "
        f"{progress['done']}/{progress['points']} done "
        f"({report['simulated']} simulated, {report['reused']} reused, "
        f"{progress['errors']} errors, {progress['excluded']} excluded, "
        f"{progress['pending']} pending; {report['chunks']} checkpoints)"
    )


def _cmd_submit(options: argparse.Namespace) -> int:
    try:
        document = json.loads(
            sys.stdin.read()
            if options.spec == "-"
            else open(options.spec, encoding="utf-8").read()
        )
    except (OSError, ValueError) as error:
        print(f"error: cannot read spec: {error}", file=sys.stderr)
        return 2
    registry = _registry_of(options)
    try:
        campaign, created = registry.submit(document)
    except SchemaError as error:
        print(f"error: invalid campaign spec: {error}", file=sys.stderr)
        return 2
    verb = "registered" if created else "already registered"
    print(f"campaign {campaign.id[:12]} {verb} ({campaign.points} points)")
    if options.no_run:
        return 0
    report = _run(options, campaign)
    _print_report(report, options.json)
    return 0 if report["progress"]["complete"] else 3


def _cmd_resume(options: argparse.Namespace) -> int:
    registry = _registry_of(options)
    try:
        campaign = registry.find(options.ref)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = _run(options, campaign)
    _print_report(report, options.json)
    return 0 if report["progress"]["complete"] else 3


def _cmd_status(options: argparse.Namespace) -> int:
    registry = _registry_of(options)
    try:
        campaign = registry.find(options.ref)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    view = campaign.describe()
    if options.json:
        print(dump_json(view))
        return 0
    progress = view["progress"]
    name = f" ({view['name']})" if "name" in view else ""
    print(f"campaign {view['campaign']}{name}")
    grid = view["grid"]
    print(
        f"  grid: {grid['traces']} traces x {grid['caches']} caches x "
        f"{grid['policies']} policies x {grid['memory_cycles']} betas "
        f"= {progress['points']} points"
    )
    print(
        f"  progress: {progress['done']} done, {progress['errors']} errors, "
        f"{progress['excluded']} excluded, {progress['pending']} pending"
        + (" [complete]" if progress["complete"] else "")
    )
    return 0


def _cmd_list(options: argparse.Namespace) -> int:
    registry = _registry_of(options)
    views = registry.list()
    if options.json:
        print(dump_json({"campaigns": views, "baselines": registry.baselines()}))
        return 0
    if not views:
        print(f"no campaigns in {registry.root}")
    for view in views:
        progress = view["progress"]
        name = f"  {view['name']}" if "name" in view else ""
        state = "complete" if progress["complete"] else (
            f"{progress['pending']} pending"
        )
        print(
            f"{view['campaign'][:12]}  "
            f"{progress['done']}/{progress['points']} done  {state}{name}"
        )
    baselines = registry.baselines()
    for doc in baselines:
        print(
            f"baseline {doc['name']}: campaign {doc['campaign'][:12]}, "
            f"{doc['done']}/{doc['points']} points"
        )
    return 0


def _cmd_diff(options: argparse.Namespace) -> int:
    registry = _registry_of(options)
    try:
        label_a, spec_a, cohort_a = compare.resolve_cohort(registry, options.a)
        label_b, spec_b, cohort_b = compare.resolve_cohort(registry, options.b)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = compare.diff_cohorts(
        spec_a,
        cohort_a,
        spec_b,
        cohort_b,
        include_hit_ratio=not options.no_hit_ratio,
    )
    if options.json:
        print(dump_json({"a": label_a, "b": label_b, **report}))
    else:
        print(compare.render_diff(label_a, label_b, report))
    return 0


def _cmd_promote(options: argparse.Namespace) -> int:
    registry = _registry_of(options)
    try:
        campaign = registry.find(options.ref)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        target = registry.promote(campaign, options.name, force=options.force)
    except FileExistsError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (RuntimeError, SchemaError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    print(
        f"baseline {options.name}: campaign {campaign.id[:12]} "
        f"pinned at {target}"
    )
    return 0


def _add_registry_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--registry",
        metavar="DIR",
        default=None,
        help="campaign registry directory "
        "(default ~/.cache/repro/campaigns; env REPRO_CAMPAIGN_DIR wins)",
    )


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--via-service",
        metavar="URL",
        default=None,
        help="drive points through a running server/fleet "
        "(http://host:port) instead of simulating in-process",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=executor.DEFAULT_CHUNK,
        help="points per checkpoint",
    )
    parser.add_argument(
        "--max-chunks",
        type=int,
        default=None,
        help="stop after N checkpoints (deterministic partial run)",
    )
    parser.add_argument(
        "--resume-retries",
        type=int,
        default=executor.DEFAULT_RESUME_RETRIES,
        help="mid-stream sweep reconnects tolerated per trace "
        "(--via-service only)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress checkpoint narration"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="declarative sweep campaigns: submit, resume, compare",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser(
        "submit", help="register a campaign spec and run it"
    )
    submit.add_argument("spec", help="path to the spec JSON ('-' for stdin)")
    submit.add_argument(
        "--no-run",
        action="store_true",
        help="register only; run later with 'campaign resume'",
    )
    _add_registry_argument(submit)
    _add_run_arguments(submit)

    resume = commands.add_parser(
        "resume", help="continue an interrupted campaign"
    )
    resume.add_argument("ref", help="campaign id, id prefix, or name")
    resume.add_argument(
        "--retry-errors",
        action="store_true",
        help="clear errored points back to pending first",
    )
    _add_registry_argument(resume)
    _add_run_arguments(resume)

    status = commands.add_parser("status", help="one campaign's progress")
    status.add_argument("ref", help="campaign id, id prefix, or name")
    status.add_argument("--json", action="store_true")
    _add_registry_argument(status)

    list_cmd = commands.add_parser("list", help="every registered campaign")
    list_cmd.add_argument("--json", action="store_true")
    _add_registry_argument(list_cmd)

    diff = commands.add_parser(
        "diff", help="compare two cohorts (campaigns or baselines)"
    )
    diff.add_argument("a", help="baseline side (campaign ref or baseline name)")
    diff.add_argument("b", help="candidate side (campaign ref or baseline name)")
    diff.add_argument(
        "--no-hit-ratio",
        action="store_true",
        help="skip the events-store hit-ratio recovery",
    )
    diff.add_argument("--json", action="store_true")
    _add_registry_argument(diff)

    promote = commands.add_parser(
        "promote", help="pin a completed campaign as a named baseline"
    )
    promote.add_argument("ref", help="campaign id, id prefix, or name")
    promote.add_argument("name", help="baseline name")
    promote.add_argument(
        "--force", action="store_true", help="replace an existing baseline"
    )
    _add_registry_argument(promote)

    return parser


_SUBCOMMANDS = {
    "submit": _cmd_submit,
    "resume": _cmd_resume,
    "status": _cmd_status,
    "list": _cmd_list,
    "diff": _cmd_diff,
    "promote": _cmd_promote,
}


def main(argv: list[str] | None = None) -> int:
    options = build_parser().parse_args(argv)
    try:
        return _SUBCOMMANDS[options.command](options)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like a
        # well-behaved filter.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
