"""The resumable campaign executor.

Drives a registered campaign's pending points to completion through the
*existing* query paths — locally via
:func:`repro.service.queries.resolve_events` /
:func:`~repro.service.queries.simulate_from_events` (the exact
functions the service's micro-batcher calls), or remotely via a running
service / fleet (``--via-service URL``) using ``/v1/sweep`` streams for
whole cache columns and ``/v1/simulate`` for stragglers.

Checkpoint discipline: state is saved after every *chunk* (default 32
points, matching the service's ``SWEEP_CHUNK``), atomically, with a
checksum sidecar.  Kill the executor at any instant and the next run
loads the last checkpoint, re-derives anything mid-flight from the
content-addressed artifact store, and continues — completed points are
**never** re-simulated (test-pinned via the engine's phase-1 dispatch
counters) and the final ``results.jsonl`` is byte-identical to an
uninterrupted run.

Byte-identity across modes: an artifact stores ``dump_json(result)``
bytes — the same canonical rendering the service's result caches hold —
so a campaign completed locally, over the wire, or half-and-half
produces identical files.
"""

from __future__ import annotations

import logging
from typing import Any, Callable, Iterable

from repro.campaign import spec as spec_mod
from repro.campaign.registry import Campaign
from repro.obs import metrics, tracing
from repro.service import queries
from repro.util.jsonout import dump_json

log = logging.getLogger("repro.campaign")

#: Points per checkpoint chunk; mirrors ``ServiceApp.SWEEP_CHUNK``.
DEFAULT_CHUNK = 32

#: Mid-stream reconnects the service path tolerates per sweep (the
#: client re-issues and dedupes by global index, mirroring the router's
#: sub-stream resume).
DEFAULT_RESUME_RETRIES = 2


def classify_error(error: BaseException) -> dict[str, Any]:
    """A local failure as the service's structured point-error shape,
    so state entries look the same whichever path produced them."""
    if isinstance(error, queries.InvalidQuery):
        status, code = 400, "invalid_params"
    else:
        status, code = 500, "internal_error"
    return {
        "code": code,
        "message": str(error) or type(error).__name__,
        "status": status,
    }


def _remote_error(error: BaseException) -> dict[str, Any]:
    """A client-side failure as the structured point-error shape,
    preserving the service's own code/status when it answered."""
    status = getattr(error, "status", None)
    code = getattr(error, "code", None)
    if isinstance(status, int) and isinstance(code, str):
        return {
            "code": code,
            "message": str(error) or type(error).__name__,
            "status": status,
        }
    return classify_error(error)


class _Checkpointer:
    """Counts terminal points and saves state every ``chunk_size``."""

    def __init__(
        self,
        campaign: Campaign,
        status: dict[int, dict[str, Any]],
        chunk_size: int,
        max_chunks: int | None,
        progress: Callable[[dict[str, Any]], None] | None,
    ) -> None:
        self.campaign = campaign
        self.status = status
        self.chunk_size = chunk_size
        self.max_chunks = max_chunks
        self.progress = progress
        self.chunks = 0
        self._since_save = 0

    def record(self, index: int, entry: dict[str, Any]) -> None:
        self.status[index] = entry
        self._since_save += 1
        if self._since_save >= self.chunk_size:
            self.flush()

    def flush(self) -> None:
        if self._since_save == 0:
            return
        with tracing.span(
            "campaign.chunk",
            campaign=self.campaign.id[:12],
            chunk=self.chunks,
            points=self._since_save,
        ):
            self.campaign.save_state(self.status)
        self._since_save = 0
        self.chunks += 1
        metrics.inc("campaign.checkpoints")
        if self.progress is not None:
            self.progress(self.campaign.progress(self.status))

    @property
    def exhausted(self) -> bool:
        """Whether the chunk budget (``max_chunks``) is spent."""
        return self.max_chunks is not None and self.chunks >= self.max_chunks


def _pending_points(
    campaign: Campaign,
    status: dict[int, dict[str, Any]],
    retry_errors: bool,
) -> list[spec_mod.CampaignPoint]:
    pending = []
    for cp in spec_mod.iter_points(campaign.spec):
        entry = status.get(cp.index)
        if entry is None or (retry_errors and "error" in entry):
            if entry is not None:
                del status[cp.index]
            pending.append(cp)
    return pending


def _run_local(
    campaign: Campaign,
    pending: list[spec_mod.CampaignPoint],
    checkpointer: _Checkpointer,
    counts: dict[str, int],
) -> None:
    for cp in pending:
        if checkpointer.exhausted:
            return
        key = campaign.result_key_of(cp.point)
        if campaign.load_artifact(key) is not None:
            # A previous (killed) run stored the artifact but died
            # before the checkpoint: adopt it, zero re-simulation.
            counts["reused"] += 1
            checkpointer.record(cp.index, {"artifact": key})
            continue
        params = spec_mod.point_params(campaign.spec, cp.point)
        try:
            with tracing.span(
                "campaign.point", campaign=campaign.id[:12], index=cp.index
            ):
                events = queries.resolve_events(params)
                result = queries.simulate_from_events(params, events)
        except Exception as error:  # noqa: BLE001 - recorded per point
            counts["errors"] += 1
            metrics.inc("campaign.points", outcome="error")
            checkpointer.record(cp.index, {"error": classify_error(error)})
            continue
        campaign.store_artifact(key, dump_json(result).encode("utf-8"))
        counts["simulated"] += 1
        metrics.inc("campaign.points", outcome="done")
        checkpointer.record(cp.index, {"artifact": key})


def _record_remote(
    campaign: Campaign,
    cp: spec_mod.CampaignPoint,
    record: dict[str, Any],
    checkpointer: _Checkpointer,
    counts: dict[str, int],
) -> None:
    """Fold one service point record into campaign state."""
    if "error" in record:
        counts["errors"] += 1
        metrics.inc("campaign.points", outcome="error")
        checkpointer.record(cp.index, {"error": record["error"]})
        return
    key = campaign.result_key_of(cp.point)
    campaign.store_artifact(
        key, dump_json(record["result"]).encode("utf-8")
    )
    counts["simulated"] += 1
    metrics.inc("campaign.points", outcome="done")
    checkpointer.record(cp.index, {"artifact": key})


def _run_via_service(
    campaign: Campaign,
    pending: list[spec_mod.CampaignPoint],
    checkpointer: _Checkpointer,
    counts: dict[str, int],
    client: Any,
    resume_retries: int,
) -> None:
    """Drive pending points through a running service / fleet.

    Whole pending cache columns of one trace become a single
    ``/v1/sweep`` stream (sharded across the fleet when the URL is a
    router); leftover single points go through ``/v1/simulate``.
    """
    spec = campaign.spec
    per = len(spec["policies"]) * len(spec["memory_cycles"])
    per_trace = len(spec["caches"]) * per
    by_index = {cp.index: cp for cp in pending}

    for trace_index, trace in enumerate(spec["traces"]):
        if checkpointer.exhausted:
            return
        base = trace_index * per_trace
        mine = [cp for cp in pending if cp.point["trace_index"] == trace_index]
        if not mine:
            continue
        # Cache columns where *every* cell is pending sweep as one
        # stream; anything else would re-request settled points.
        full_columns = [
            ci
            for ci in range(len(spec["caches"]))
            if all(
                base + ci * per + rem in by_index for rem in range(per)
            )
        ]
        stragglers = [
            cp
            for cp in mine
            if cp.point["cache_index"] not in full_columns
        ]
        if full_columns and not checkpointer.exhausted:
            sweep_params: dict[str, Any] = {
                "trace": trace,
                "caches": [spec["caches"][ci] for ci in full_columns],
                "policies": spec["policies"],
                "memory_cycles": spec["memory_cycles"],
                "bus_width": spec["bus_width"],
                "issue_rate": spec["issue_rate"],
            }
            for key in ("write_buffer_depth", "pipelined_q", "deadline_ms"):
                if spec[key] is not None:
                    sweep_params[key] = spec[key]
            for record in client.sweep(
                resume_retries=resume_retries, **sweep_params
            ):
                if "schema" in record or "done" in record:
                    continue
                # Sweep index -> campaign index: the stream enumerates
                # the *subset* grid cache-major, so its cache slot maps
                # through full_columns back to the spec's cache index.
                sweep_index = record["index"]
                ci = full_columns[sweep_index // per]
                rem = sweep_index % per
                index = base + ci * per + rem
                cp = by_index[index]
                if checkpointer.exhausted:
                    break
                _record_remote(campaign, cp, record, checkpointer, counts)
        for cp in stragglers:
            if checkpointer.exhausted:
                return
            params = spec_mod.point_params(spec, cp.point)
            try:
                envelope = client.simulate(**spec_mod.wire_params(params))
            except Exception as error:  # noqa: BLE001 - recorded per point
                counts["errors"] += 1
                metrics.inc("campaign.points", outcome="error")
                checkpointer.record(
                    cp.index, {"error": _remote_error(error)}
                )
                continue
            _record_remote(
                campaign,
                cp,
                {"result": envelope["result"]},
                checkpointer,
                counts,
            )


def run_campaign(
    campaign: Campaign,
    *,
    chunk_size: int = DEFAULT_CHUNK,
    max_chunks: int | None = None,
    retry_errors: bool = False,
    client: Any = None,
    resume_retries: int = DEFAULT_RESUME_RETRIES,
    progress: Callable[[dict[str, Any]], None] | None = None,
) -> dict[str, Any]:
    """Run (or resume) a campaign until complete or out of chunks.

    ``client`` switches to the service path (any object with the
    :class:`~repro.service.client.ServiceClient` ``sweep``/``request``
    shape); ``max_chunks`` bounds this invocation to N checkpoints —
    the deterministic stand-in for "the process died here" that the
    crash-resume tests build on.  ``retry_errors`` clears previously
    errored points (deadline blips) back to pending first.

    Returns a JSON-ready report; ``results.jsonl`` is (re)written
    whenever the campaign ends this run complete.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be > 0, got {chunk_size}")
    status = campaign.load_state()
    pending = _pending_points(campaign, status, retry_errors)
    counts = {"simulated": 0, "reused": 0, "errors": 0}
    checkpointer = _Checkpointer(
        campaign, status, chunk_size, max_chunks, progress
    )
    with tracing.span(
        "campaign.run", campaign=campaign.id[:12], pending=len(pending)
    ):
        if client is None:
            _run_local(campaign, pending, checkpointer, counts)
        else:
            _run_via_service(
                campaign, pending, checkpointer, counts, client, resume_retries
            )
        checkpointer.flush()
    final = campaign.progress(status)
    if final["complete"]:
        campaign.write_results(status)
    return {
        "campaign": campaign.id,
        "chunks": checkpointer.chunks,
        **counts,
        "progress": final,
    }


def iter_status_points(
    campaign: Campaign,
) -> Iterable[tuple[spec_mod.CampaignPoint, dict[str, Any] | None]]:
    """(point, state entry) pairs in index order — shared by the CLI's
    status table and the comparison loader."""
    status = campaign.load_state()
    for cp in spec_mod.iter_points(campaign.spec):
        yield cp, status.get(cp.index)
