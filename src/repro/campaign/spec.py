"""Declarative campaign specifications (``repro.campaign.spec/1``).

A campaign spec is a JSON document describing a cross-product grid:

.. code-block:: json

    {
      "schema": "repro.campaign.spec/1",
      "name": "beta-sweep",
      "traces": [{"kind": "spec92", "name": "swm256", "instructions": 4000}],
      "caches": [{"total_bytes": 4096}, {"total_bytes": 8192}],
      "policies": ["FS", "BL"],
      "memory_cycles": [4.0, 8.0],
      "deadline_ms": 5000.0,
      "exclude": [{"cache_index": 0, "policy": "BL"}]
    }

Validation extends the :mod:`repro.obs.schemas` hand-rolled style the
service request validators use — indeed the per-trace and per-cache
blocks *are* the service validators
(:func:`repro.service.schemas.validate_trace_spec` /
:func:`~repro.service.schemas.validate_cache_spec`), re-rooted at the
campaign document's paths — so a campaign point expands to exactly the
validated shape ``/v1/simulate`` accepts.

Normalization applies every default, which makes the canonical
rendering (:func:`canonical_bytes`, the repository's standard
``dump_json`` bytes) a *content identity*: :func:`campaign_id` is the
SHA-256 of a version-prefixed canonical spec, so submitting the same
grid twice — however the JSON was formatted, whichever defaults were
spelled out — resolves to the same campaign.

Enumeration (:func:`iter_points`) is **trace-major, then cache-major**:
within one trace the point order is exactly the service's
:func:`~repro.service.schemas.sweep_grid` order (cache, then policy,
then β\\ :sub:`m`), so a campaign's per-trace slice maps 1:1 onto one
``/v1/sweep`` stream and the executor can drive whole traces through
the fleet's sharded sweep path.  Excluded points keep their index (they
are enumerated, flagged, and never simulated) so the index space is
stable under exclusion-rule edits that only *add* rules.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs.schemas import SchemaError, require, require_number
from repro.service.schemas import (
    MAX_SWEEP_POINTS,
    validate_cache_spec,
    validate_trace_spec,
)
from repro.service.schemas import _POLICIES  # noqa: PLC2701 - shared enum
from repro.service.schemas import _integer, _number  # noqa: PLC2701
from repro.util.jsonout import dump_json

__all__ = [
    "CAMPAIGN_SPEC_SCHEMA",
    "MAX_CAMPAIGN_POINTS",
    "MAX_TRACES",
    "CampaignPoint",
    "SchemaError",
    "campaign_id",
    "canonical_bytes",
    "iter_points",
    "point_count",
    "point_params",
    "validate_spec",
]

#: The campaign-spec schema tag (stamped into normalized specs).
CAMPAIGN_SPEC_SCHEMA = "repro.campaign.spec/1"

#: Version prefix folded into :func:`campaign_id`; bump with the schema.
_ID_VERSION = 1

#: Most traces one campaign may sweep.
MAX_TRACES = 16

#: Largest grid one campaign may expand to (pre-exclusion).  Matches
#: the sweep limit: a campaign is at most ``MAX_TRACES`` sweeps.
MAX_CAMPAIGN_POINTS = MAX_SWEEP_POINTS

_NAME_ALLOWED = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)

_EXCLUDE_KEYS = ("trace_index", "cache_index", "policy", "memory_cycle")


def validate_name(name: Any, path: str) -> str:
    """A campaign/baseline name: short, path-safe, non-empty."""
    require(
        isinstance(name, str) and 0 < len(name) <= 64,
        path,
        "must be a string of 1..64 characters",
    )
    require(
        all(c in _NAME_ALLOWED for c in name) and not name.startswith("."),
        path,
        "may use only letters, digits, '.', '_', '-' (no leading '.')",
    )
    return name


def _validate_exclude(
    rule: Any, path: str, n_traces: int, n_caches: int
) -> dict[str, Any]:
    require(isinstance(rule, dict), path, "must be a JSON object")
    unknown = sorted(set(rule) - set(_EXCLUDE_KEYS))
    require(not unknown, path, f"unknown exclusion key(s) {unknown}")
    require(bool(rule), path, "must constrain at least one of "
            f"{list(_EXCLUDE_KEYS)}")
    out: dict[str, Any] = {}
    if "trace_index" in rule:
        out["trace_index"] = _integer(
            rule, "trace_index", path, minimum=0, maximum=n_traces - 1
        )
    if "cache_index" in rule:
        out["cache_index"] = _integer(
            rule, "cache_index", path, minimum=0, maximum=n_caches - 1
        )
    if "policy" in rule:
        policy = rule["policy"]
        require(
            isinstance(policy, str) and policy in _POLICIES,
            f"{path}.policy",
            f"must be one of {list(_POLICIES)}",
        )
        out["policy"] = policy
    if "memory_cycle" in rule:
        require_number(rule["memory_cycle"], f"{path}.memory_cycle")
        out["memory_cycle"] = float(rule["memory_cycle"])
    return out


def validate_spec(document: Any) -> dict[str, Any]:
    """Validate and normalize one campaign spec document.

    Returns the normalized spec — every default applied, every number
    coerced to its canonical type, the ``schema`` tag stamped — which
    is the form the registry persists and :func:`campaign_id` hashes.
    Raises :class:`SchemaError` with a JSON-path message otherwise.
    """
    require(isinstance(document, dict), "$", "spec must be a JSON object")
    allowed = {
        "schema",
        "name",
        "traces",
        "caches",
        "policies",
        "memory_cycles",
        "bus_width",
        "write_buffer_depth",
        "pipelined_q",
        "issue_rate",
        "deadline_ms",
        "exclude",
    }
    unknown = sorted(set(document) - allowed)
    require(not unknown, "$", f"unknown key(s) {unknown}")
    if "schema" in document:
        require(
            document["schema"] == CAMPAIGN_SPEC_SCHEMA,
            "$.schema",
            f"must be {CAMPAIGN_SPEC_SCHEMA!r}",
        )
    out: dict[str, Any] = {"schema": CAMPAIGN_SPEC_SCHEMA}
    if "name" in document:
        out["name"] = validate_name(document["name"], "$.name")

    traces = document.get("traces", [{"kind": "spec92"}])
    require(
        isinstance(traces, list) and traces and len(traces) <= MAX_TRACES,
        "$.traces",
        f"must be a non-empty list of at most {MAX_TRACES} trace specs",
    )
    out["traces"] = [
        validate_trace_spec(spec, f"$.traces[{i}]")
        for i, spec in enumerate(traces)
    ]

    caches = document.get("caches", [{}])
    require(
        isinstance(caches, list) and caches and len(caches) <= 64,
        "$.caches",
        "must be a non-empty list of at most 64 cache specs",
    )
    out["caches"] = [
        validate_cache_spec(spec, f"$.caches[{i}]")
        for i, spec in enumerate(caches)
    ]

    out["bus_width"] = _integer(document, "bus_width", "$", default=4, minimum=1)
    for i, cache in enumerate(out["caches"]):
        require(
            cache["line_size"] % out["bus_width"] == 0,
            f"$.caches[{i}].line_size",
            f"must be a multiple of bus_width ({out['bus_width']})",
        )

    policies = document.get("policies", ["FS"])
    require(
        isinstance(policies, list) and policies,
        "$.policies",
        "must be a non-empty list of stall policies",
    )
    for i, policy in enumerate(policies):
        require(
            isinstance(policy, str) and policy in _POLICIES,
            f"$.policies[{i}]",
            f"must be one of {list(_POLICIES)}",
        )
    out["policies"] = list(policies)

    betas = document.get("memory_cycles", [8.0])
    require(
        isinstance(betas, list) and betas,
        "$.memory_cycles",
        "must be a non-empty list of numbers",
    )
    for i, beta in enumerate(betas):
        require_number(beta, f"$.memory_cycles[{i}]")
        require(beta >= 1.0, f"$.memory_cycles[{i}]", "must be >= 1")
    out["memory_cycles"] = [float(beta) for beta in betas]

    # The normal form spells absent optionals as explicit nulls, so
    # treat null as absent here — validate(validate(x)) == validate(x).
    optionals = {
        key: value
        for key, value in document.items()
        if key in ("write_buffer_depth", "pipelined_q", "deadline_ms")
        and value is not None
    }
    out["write_buffer_depth"] = _integer(
        optionals, "write_buffer_depth", "$", minimum=0
    )
    out["pipelined_q"] = _number(optionals, "pipelined_q", "$", minimum=1.0)
    out["issue_rate"] = _number(
        document, "issue_rate", "$", default=1.0, minimum=1.0
    )
    out["deadline_ms"] = _number(optionals, "deadline_ms", "$", minimum=1.0)

    points = (
        len(out["traces"])
        * len(out["caches"])
        * len(out["policies"])
        * len(out["memory_cycles"])
    )
    require(
        points <= MAX_CAMPAIGN_POINTS,
        "$",
        f"grid expands to {points} points, more than the "
        f"{MAX_CAMPAIGN_POINTS}-point limit",
    )

    rules = document.get("exclude", [])
    require(
        isinstance(rules, list) and len(rules) <= 256,
        "$.exclude",
        "must be a list of at most 256 exclusion rules",
    )
    out["exclude"] = [
        _validate_exclude(
            rule, f"$.exclude[{i}]", len(out["traces"]), len(out["caches"])
        )
        for i, rule in enumerate(rules)
    ]
    return out


def canonical_bytes(spec: dict[str, Any]) -> bytes:
    """The canonical rendering of a normalized spec (what the registry
    stores and :func:`campaign_id` hashes)."""
    return dump_json(spec).encode("utf-8")


def campaign_id(spec: dict[str, Any]) -> str:
    """Content address (hex SHA-256) of one normalized campaign spec."""
    material = f"campaign/{_ID_VERSION}|".encode("utf-8") + canonical_bytes(spec)
    return hashlib.sha256(material).hexdigest()


def point_count(spec: dict[str, Any]) -> int:
    """Grid size including excluded points (the index-space size)."""
    return (
        len(spec["traces"])
        * len(spec["caches"])
        * len(spec["policies"])
        * len(spec["memory_cycles"])
    )


def _excluded(spec: dict[str, Any], point: dict[str, Any]) -> bool:
    """Whether any rule matches — a rule matches when *all* of its
    present keys equal the point's coordinates."""
    for rule in spec["exclude"]:
        if all(point[key] == value for key, value in rule.items()):
            return True
    return False


@dataclass(frozen=True)
class CampaignPoint:
    """One enumerated grid point."""

    index: int
    point: dict[str, Any]  # coordinates (what result lines carry)
    excluded: bool


def iter_points(spec: dict[str, Any]) -> Iterator[CampaignPoint]:
    """Enumerate the grid deterministically (trace- then cache-major).

    Within one trace the order is exactly the service's
    :func:`~repro.service.schemas.sweep_grid` order, so per-trace index
    arithmetic (``index % per_trace``) maps campaign indices onto sweep
    stream indices.
    """
    index = 0
    for trace_index in range(len(spec["traces"])):
        for cache_index, cache in enumerate(spec["caches"]):
            for policy in spec["policies"]:
                for beta in spec["memory_cycles"]:
                    point = {
                        "trace_index": trace_index,
                        "cache_index": cache_index,
                        "cache": cache,
                        "policy": policy,
                        "memory_cycle": beta,
                    }
                    yield CampaignPoint(index, point, _excluded(spec, point))
                    index += 1


def point_params(spec: dict[str, Any], point: dict[str, Any]) -> dict[str, Any]:
    """One point's validated ``/v1/simulate``-shaped parameter dict.

    Already-normalized (the spec validators applied every default), so
    the executor can hand it straight to the local query functions; the
    service path strips ``None`` optionals before the wire (the request
    validators reject explicit nulls).
    """
    return {
        "trace": spec["traces"][point["trace_index"]],
        "cache": point["cache"],
        "policy": point["policy"],
        "memory_cycle": point["memory_cycle"],
        "bus_width": spec["bus_width"],
        "write_buffer_depth": spec["write_buffer_depth"],
        "pipelined_q": spec["pipelined_q"],
        "issue_rate": spec["issue_rate"],
        "deadline_ms": spec["deadline_ms"],
    }


def wire_params(params: dict[str, Any]) -> dict[str, Any]:
    """The on-the-wire form of :func:`point_params` (``None``\\ s
    dropped, exactly like the router's sub-sweep requests)."""
    return {key: value for key, value in params.items() if value is not None}
