"""Campaigns as a service: background execution inside the server.

:class:`CampaignService` owns the registry directory a server was given
(``--campaign-dir``) and runs submitted campaigns as asyncio background
tasks *inside* the serving process — each point resolved through the
same two-tier result cache + micro-batcher path interactive requests
take (or, on the fleet's router, forwarded to the owning worker), so a
campaign coalesces with live traffic instead of competing with it.

Contract with the registry: the service is just another executor.  It
checkpoints after every chunk with the same atomic state writes, so a
server kill mid-campaign loses at most one chunk of *bookkeeping* (the
artifacts already written are adopted on resume).  There is no
auto-resume on boot — re-POSTing the same spec (same content address)
to the restarted server resumes it, which keeps crash recovery an
explicit, observable act.

Endpoints wired in :mod:`repro.service.app`:

* ``POST /v1/campaigns``          — submit (or resume) a spec
* ``GET  /v1/campaigns``          — list registered campaigns
* ``GET  /v1/campaigns/{ref}``    — one campaign's status
* ``GET  /v1/campaigns/{ref}/results`` — stream the results JSONL
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Awaitable, Callable, Iterator

from repro.campaign import spec as spec_mod
from repro.campaign.executor import DEFAULT_CHUNK, _Checkpointer
from repro.campaign.registry import Campaign, CampaignRegistry
from repro.obs import live, tracing
from repro.obs.metrics import MetricsRegistry
from repro.util.jsonout import dump_json

log = logging.getLogger("repro.campaign")

#: Async per-point resolver: validated simulate params -> result object.
Resolver = Callable[[dict[str, Any]], Awaitable[dict[str, Any]]]

#: Maps a resolver failure to the structured point-error object.
ErrorClassifier = Callable[[BaseException], dict[str, Any]]


class CampaignService:
    """Background campaign execution for one server process."""

    def __init__(
        self,
        registry: CampaignRegistry,
        resolver: Resolver,
        classify: ErrorClassifier,
        metrics_registry: MetricsRegistry,
        chunk_size: int = DEFAULT_CHUNK,
    ) -> None:
        self.registry = registry
        self.resolver = resolver
        self.classify = classify
        self.metrics = metrics_registry
        self.chunk_size = chunk_size
        self._tasks: dict[str, asyncio.Task[None]] = {}

    # -- submission ---------------------------------------------------------

    def submit(self, document: Any) -> dict[str, Any]:
        """Register (idempotent) and start/resume the background run."""
        campaign, created = self.registry.submit(document)
        self.metrics.inc(
            "service.campaign.submitted",
            outcome="created" if created else "resubmitted",
        )
        started = self._ensure_running(campaign)
        view = campaign.describe()
        view["created"] = created
        view["running"] = self.is_running(campaign.id)
        view["started"] = started
        return view

    def _ensure_running(self, campaign: Campaign) -> bool:
        if self.is_running(campaign.id):
            return False
        if campaign.progress()["complete"]:
            return False
        task = asyncio.get_running_loop().create_task(
            self._run(campaign), name=f"campaign-{campaign.id[:12]}"
        )
        self._tasks[campaign.id] = task
        task.add_done_callback(lambda _t: self._tasks.pop(campaign.id, None))
        return True

    def is_running(self, campaign_id: str) -> bool:
        task = self._tasks.get(campaign_id)
        return task is not None and not task.done()

    # -- the background executor -------------------------------------------

    async def _run(self, campaign: Campaign) -> None:
        status = campaign.load_state()
        checkpointer = _Checkpointer(
            campaign, status, self.chunk_size, None, None
        )
        log.info(
            "campaign %s: running (%d pending)",
            campaign.id[:12],
            campaign.progress(status)["pending"],
        )
        try:
            for cp in spec_mod.iter_points(campaign.spec):
                if cp.index in status:
                    continue
                key = campaign.result_key_of(cp.point)
                if campaign.load_artifact(key) is not None:
                    # Artifact from a killed run that never made its
                    # checkpoint: adopt it, no recompute.
                    self.metrics.inc(
                        "service.campaign.points", outcome="reused"
                    )
                    checkpointer.record(cp.index, {"artifact": key})
                    continue
                params = spec_mod.point_params(campaign.spec, cp.point)
                try:
                    # Each point gets a fresh trace root so the fleet's
                    # forwarded resolve carries a traceparent and the
                    # worker's spans join this point's tree — the spans
                    # carry the campaign id for spool-side filtering.
                    with tracing.trace_context((live.new_trace_id(), "")):
                        with tracing.span(
                            "campaign.point",
                            campaign=campaign.id[:12],
                            index=cp.index,
                        ):
                            result = await self.resolver(params)
                except asyncio.CancelledError:
                    raise
                except BaseException as error:  # noqa: BLE001 - per point
                    self.metrics.inc(
                        "service.campaign.points", outcome="error"
                    )
                    checkpointer.record(
                        cp.index, {"error": self.classify(error)}
                    )
                    continue
                campaign.store_artifact(
                    key, dump_json(result).encode("utf-8")
                )
                self.metrics.inc("service.campaign.points", outcome="done")
                checkpointer.record(cp.index, {"artifact": key})
        finally:
            # A drain/cancel mid-chunk still persists the partial chunk:
            # resume re-derives nothing.
            checkpointer.flush()
        if campaign.progress(status)["complete"]:
            campaign.write_results(status)
            self.metrics.inc("service.campaign.completed")
            log.info("campaign %s: complete", campaign.id[:12])

    # -- read side ----------------------------------------------------------

    def find(self, ref: str) -> Campaign:
        return self.registry.find(ref)

    def describe(self, ref: str) -> dict[str, Any]:
        campaign = self.find(ref)
        view = campaign.describe()
        view["running"] = self.is_running(campaign.id)
        return view

    def list(self) -> list[dict[str, Any]]:
        views = self.registry.list()
        for view in views:
            view["running"] = self.is_running(view["campaign"])
        return views

    def result_lines(self, ref: str) -> Iterator[bytes]:
        return self.find(ref).result_lines()

    def stats(self) -> dict[str, Any]:
        """JSON-ready section for ``/v1/stats``."""
        views = self.registry.list()
        return {
            "directory": str(self.registry.root),
            "campaigns": len(views),
            "running": sum(1 for v in views if self.is_running(v["campaign"])),
            "complete": sum(1 for v in views if v["progress"]["complete"]),
        }

    # -- lifecycle ----------------------------------------------------------

    async def shutdown(self) -> None:
        """Cancel every background run and wait for the checkpoints.

        Called inside the server's drain *before* the batcher drains, so
        in-flight resolver awaits unwind cleanly and each task's final
        ``flush()`` lands while the process is still fully alive.
        """
        tasks = [task for task in self._tasks.values() if not task.done()]
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks.clear()
