"""The campaign registry: content-addressed, atomic, resumable state.

On-disk layout (default ``$XDG_CACHE_HOME/repro/campaigns``, overridden
by ``REPRO_CAMPAIGN_DIR`` or ``--registry``)::

    <root>/
      <campaign-id>/              # SHA-256 of the normalized spec
        spec.json                 # canonical bytes (dump_json)
        state.json                # repro.campaign.state/1
        state.json.sum            # checksum sidecar for state.json
        artifacts/
          <result-key>.bin        # one point's result (dump_json_line)
          <result-key>.json       # sidecar: versions, size, sha256
        results.jsonl             # written when the campaign completes
        summary.json              # repro.campaign.summary/1
      baselines/
        <name>/                   # a promoted cohort (pinned copy)
          baseline.json           # repro.campaign.baseline/1
          spec.json
          results.jsonl

The discipline mirrors :mod:`repro.cache.events_store` /
:mod:`repro.service.disk_cache`: every file is written atomically
(temp + ``os.replace``), every payload has a JSON sidecar carrying the
store version and a checksum, and any load failure degrades to
recompute — a corrupt ``state.json`` is rebuilt by re-scanning the
artifacts directory, a corrupt artifact simply marks its point pending
again (the ``campaign_store.corrupt_recompute`` diagnostic counter
fires, exactly the events-store contract).

Determinism: ``state.json`` carries **no timestamps** and sorts its
keys, artifacts are the exact ``dump_json_line`` bytes of each result,
and ``results.jsonl`` is emitted in index order — so a campaign's final
artifacts are byte-identical whether it ran cold, was resumed after a
kill, or was re-run from a warm store (test-pinned).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

from repro.campaign import spec as spec_mod
from repro.obs import metrics
from repro.obs.schemas import SchemaError, require
from repro.service import queries
from repro.service.result_cache import (
    RESULT_CACHE_VERSION,
    result_key,
    simulate_key_material,
)
from repro.util.jsonout import dump_json, dump_json_line

log = logging.getLogger("repro.campaign")

#: Bump when the on-disk layout (file naming, sidecar format) changes.
REGISTRY_VERSION = 1

#: Overrides the configured registry directory.
CAMPAIGN_DIR_ENV = "REPRO_CAMPAIGN_DIR"

CAMPAIGN_STATE_SCHEMA = "repro.campaign.state/1"
CAMPAIGN_RESULTS_SCHEMA = "repro.campaign.results/1"
CAMPAIGN_SUMMARY_SCHEMA = "repro.campaign.summary/1"
CAMPAIGN_BASELINE_SCHEMA = "repro.campaign.baseline/1"


def default_registry_dir() -> Path:
    """The conventional location (``$XDG_CACHE_HOME/repro/campaigns``)."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "campaigns"


def resolve_registry_dir(configured: str | os.PathLike[str] | None) -> Path:
    """The directory to use: env override, else configured, else default."""
    override = os.environ.get(CAMPAIGN_DIR_ENV)
    if override:
        return Path(override)
    if configured is not None:
        return Path(configured)
    return default_registry_dir()


def _atomic_write(path: Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        os.write(fd, data)
    finally:
        os.close(fd)
    try:
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _checksum_doc(data: bytes) -> dict[str, Any]:
    return {"sha256": hashlib.sha256(data).hexdigest(), "size": len(data)}


class Campaign:
    """One registered campaign: spec, per-point state, artifacts."""

    def __init__(self, root: Path, spec: dict[str, Any]) -> None:
        self.spec = spec
        self.id = spec_mod.campaign_id(spec)
        self.root = Path(root)
        self.dir = self.root / self.id
        self.artifacts_dir = self.dir / "artifacts"
        self.spec_path = self.dir / "spec.json"
        self.state_path = self.dir / "state.json"
        self.results_path = self.dir / "results.jsonl"
        self.summary_path = self.dir / "summary.json"
        self.points = spec_mod.point_count(spec)

    @property
    def name(self) -> str | None:
        return self.spec.get("name")

    # -- identity ----------------------------------------------------------

    def result_key_of(self, point: dict[str, Any]) -> str:
        """One point's content-addressed result key — the *same* key the
        service's result caches use, which is what makes local and
        ``--via-service`` runs interchangeable byte for byte."""
        params = spec_mod.point_params(self.spec, point)
        return result_key(
            simulate_key_material(
                queries.trace_fingerprint_of(params["trace"]),
                queries.cache_config_of(params),
                params["policy"],
                params["memory_cycle"],
                params["bus_width"],
                params["write_buffer_depth"],
                params["pipelined_q"],
                params["issue_rate"],
            )
        )

    # -- spec persistence --------------------------------------------------

    def save_spec(self) -> None:
        data = spec_mod.canonical_bytes(self.spec)
        if self.spec_path.exists():
            return  # content-addressed: same id == same bytes
        _atomic_write(self.spec_path, data)

    # -- per-point state ----------------------------------------------------

    def _state_doc(self, status: dict[int, dict[str, Any]]) -> dict[str, Any]:
        return {
            "schema": CAMPAIGN_STATE_SCHEMA,
            "registry_version": REGISTRY_VERSION,
            "campaign": self.id,
            "points": self.points,
            "status": {str(index): status[index] for index in sorted(status)},
        }

    def save_state(self, status: dict[int, dict[str, Any]]) -> None:
        """Checkpoint the per-point status (atomic, with a checksum
        sidecar so a torn write is detected, not trusted)."""
        data = dump_json(self._state_doc(status)).encode("utf-8")
        _atomic_write(self.state_path, data)
        _atomic_write(
            Path(f"{self.state_path}.sum"),
            dump_json(_checksum_doc(data)).encode("utf-8"),
        )

    def load_state(self) -> dict[int, dict[str, Any]]:
        """The per-point status map; rebuilt from artifacts when the
        checkpoint is missing, torn, or corrupt."""
        try:
            data = self.state_path.read_bytes()
            sidecar = json.loads(
                Path(f"{self.state_path}.sum").read_text(encoding="utf-8")
            )
            if sidecar != _checksum_doc(data):
                raise ValueError("state checksum mismatch")
            doc = json.loads(data)
            if (
                doc.get("schema") != CAMPAIGN_STATE_SCHEMA
                or doc.get("registry_version") != REGISTRY_VERSION
                or doc.get("campaign") != self.id
                or doc.get("points") != self.points
            ):
                raise ValueError("state header mismatch")
            status: dict[int, dict[str, Any]] = {}
            for key, entry in doc["status"].items():
                index = int(key)
                if not 0 <= index < self.points or not isinstance(entry, dict):
                    raise ValueError(f"bad status entry {key!r}")
                status[index] = entry
            return status
        except FileNotFoundError:
            return self.rebuild_status()
        except (OSError, ValueError, KeyError) as exc:
            metrics.inc("campaign_store.corrupt_recompute", kind="state")
            log.warning(
                "campaign %s: corrupt state (%s: %s); rebuilding from artifacts",
                self.id[:12],
                type(exc).__name__,
                exc,
            )
            return self.rebuild_status()

    def rebuild_status(self) -> dict[int, dict[str, Any]]:
        """Reconstruct state by content: excluded points from the spec,
        done points from whichever artifacts exist and verify."""
        status: dict[int, dict[str, Any]] = {}
        for cp in spec_mod.iter_points(self.spec):
            if cp.excluded:
                status[cp.index] = {"excluded": True}
                continue
            key = self.result_key_of(cp.point)
            if self.load_artifact(key) is not None:
                status[cp.index] = {"artifact": key}
        return status

    # -- result artifacts ---------------------------------------------------

    def _artifact_paths(self, key: str) -> tuple[Path, Path]:
        return (
            self.artifacts_dir / f"{key}.bin",
            self.artifacts_dir / f"{key}.json",
        )

    def store_artifact(self, key: str, payload: bytes) -> None:
        bin_path, meta_path = self._artifact_paths(key)
        sidecar = {
            "registry_version": REGISTRY_VERSION,
            "result_cache_version": RESULT_CACHE_VERSION,
            "key": key,
            "size": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        _atomic_write(bin_path, payload)
        _atomic_write(meta_path, dump_json(sidecar).encode("utf-8"))

    def load_artifact(self, key: str) -> bytes | None:
        """The stored payload, or ``None`` (corruption => recompute)."""
        bin_path, meta_path = self._artifact_paths(key)
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            if (
                meta.get("registry_version") != REGISTRY_VERSION
                or meta.get("result_cache_version") != RESULT_CACHE_VERSION
                or meta.get("key") != key
            ):
                return None
            payload = bin_path.read_bytes()
            if (
                len(payload) != meta.get("size")
                or hashlib.sha256(payload).hexdigest() != meta.get("sha256")
            ):
                raise ValueError("artifact checksum mismatch")
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            metrics.inc("campaign_store.corrupt_recompute", kind="artifact")
            log.warning(
                "campaign %s: corrupt artifact %s (%s: %s); recomputing",
                self.id[:12],
                key[:12],
                type(exc).__name__,
                exc,
            )
            return None
        return payload

    # -- progress and results -----------------------------------------------

    def progress(
        self, status: dict[int, dict[str, Any]] | None = None
    ) -> dict[str, Any]:
        """JSON-ready counts: done / errors / excluded / pending."""
        if status is None:
            status = self.load_state()
        done = sum(1 for entry in status.values() if "artifact" in entry)
        errors = sum(1 for entry in status.values() if "error" in entry)
        excluded = sum(1 for entry in status.values() if entry.get("excluded"))
        pending = self.points - done - errors - excluded
        return {
            "points": self.points,
            "done": done,
            "errors": errors,
            "excluded": excluded,
            "pending": pending,
            "complete": pending == 0,
        }

    def result_lines(
        self, status: dict[int, dict[str, Any]] | None = None
    ) -> Iterator[bytes]:
        """The results JSONL stream, index order, newline-terminated.

        Framing mirrors ``/v1/sweep``: a header line, one line per
        *terminal* point (``result`` / ``error`` / ``excluded``), and a
        summary whose ``done`` is true only when no point is pending —
        the same stream serves ``GET /v1/campaigns/{id}/results``
        mid-run (``done: false``) and becomes ``results.jsonl`` bytes
        when the campaign completes.
        """
        if status is None:
            status = self.load_state()
        header: dict[str, Any] = {
            "schema": CAMPAIGN_RESULTS_SCHEMA,
            "campaign": self.id,
            "points": self.points,
            "grid": {
                "traces": len(self.spec["traces"]),
                "caches": len(self.spec["caches"]),
                "policies": len(self.spec["policies"]),
                "memory_cycles": len(self.spec["memory_cycles"]),
            },
        }
        if self.name is not None:
            header["name"] = self.name
        yield (dump_json_line(header) + "\n").encode("utf-8")
        errors = 0
        excluded = 0
        emitted = 0
        for cp in spec_mod.iter_points(self.spec):
            entry = status.get(cp.index)
            if entry is None:
                continue
            if entry.get("excluded"):
                record: dict[str, Any] = {
                    "excluded": True,
                    "index": cp.index,
                    "point": cp.point,
                }
                excluded += 1
            elif "error" in entry:
                record = {
                    "error": entry["error"],
                    "index": cp.index,
                    "point": cp.point,
                }
                errors += 1
            else:
                payload = self.load_artifact(entry["artifact"])
                if payload is None:
                    # Treat a lost artifact as pending: the summary's
                    # done flag drops and a resume re-fills the point.
                    continue
                record = {
                    "index": cp.index,
                    "point": cp.point,
                    "result": json.loads(payload),
                }
            emitted += 1
            yield (dump_json_line(record) + "\n").encode("utf-8")
        summary = {
            "done": emitted == self.points,
            "errors": errors,
            "excluded": excluded,
            "points": self.points,
        }
        yield (dump_json_line(summary) + "\n").encode("utf-8")

    def write_results(
        self, status: dict[int, dict[str, Any]] | None = None
    ) -> Path:
        """Materialize ``results.jsonl`` + ``summary.json`` (complete
        campaigns only)."""
        if status is None:
            status = self.load_state()
        progress = self.progress(status)
        if not progress["complete"]:
            raise RuntimeError(
                f"campaign {self.id[:12]} has {progress['pending']} pending "
                "points; resume it before writing results"
            )
        data = b"".join(self.result_lines(status))
        _atomic_write(self.results_path, data)
        summary = {
            "schema": CAMPAIGN_SUMMARY_SCHEMA,
            "campaign": self.id,
            "points": self.points,
            "done": progress["done"],
            "errors": progress["errors"],
            "excluded": progress["excluded"],
            "results_sha256": hashlib.sha256(data).hexdigest(),
        }
        if self.name is not None:
            summary["name"] = self.name
        _atomic_write(self.summary_path, dump_json(summary).encode("utf-8"))
        return self.results_path

    def describe(
        self, status: dict[int, dict[str, Any]] | None = None
    ) -> dict[str, Any]:
        """JSON-ready view for status endpoints and listings."""
        out: dict[str, Any] = {
            "campaign": self.id,
            "progress": self.progress(status),
            "grid": {
                "traces": len(self.spec["traces"]),
                "caches": len(self.spec["caches"]),
                "policies": len(self.spec["policies"]),
                "memory_cycles": len(self.spec["memory_cycles"]),
            },
        }
        if self.name is not None:
            out["name"] = self.name
        return out


class CampaignRegistry:
    """The on-disk registry of campaigns and promoted baselines."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.baselines_root = self.root / "baselines"

    # -- campaigns ----------------------------------------------------------

    def submit(self, document: Any) -> tuple[Campaign, bool]:
        """Validate, normalize, and register a spec; idempotent.

        Returns ``(campaign, created)`` — ``created`` is False when the
        content-addressed id was already registered, in which case the
        existing state (progress so far) is simply carried forward:
        re-submitting *is* resuming.
        """
        spec = spec_mod.validate_spec(document)
        campaign = Campaign(self.root, spec)
        created = not campaign.spec_path.exists()
        campaign.dir.mkdir(parents=True, exist_ok=True)
        campaign.artifacts_dir.mkdir(parents=True, exist_ok=True)
        campaign.save_spec()
        if created:
            # Seed the checkpoint with the excluded points so status is
            # meaningful before the first executor chunk lands.
            campaign.save_state(campaign.load_state())
        return campaign, created

    def get(self, campaign_id: str) -> Campaign:
        """Load a registered campaign by its full id."""
        spec_path = self.root / campaign_id / "spec.json"
        try:
            document = json.loads(spec_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise KeyError(f"no campaign {campaign_id!r} in {self.root}") from None
        spec = spec_mod.validate_spec(document)
        campaign = Campaign(self.root, spec)
        if campaign.id != campaign_id:
            raise KeyError(
                f"campaign directory {campaign_id!r} holds a spec hashing "
                f"to {campaign.id!r} (corrupt registry?)"
            )
        return campaign

    def campaign_ids(self) -> list[str]:
        try:
            return sorted(
                entry.name
                for entry in self.root.iterdir()
                if entry.is_dir()
                and entry.name != "baselines"
                and (entry / "spec.json").exists()
            )
        except OSError:
            return []

    def find(self, ref: str) -> Campaign:
        """Resolve a campaign by id, unique id prefix, or unique name."""
        ids = self.campaign_ids()
        if ref in ids:
            return self.get(ref)
        prefix = [cid for cid in ids if cid.startswith(ref)]
        if len(prefix) == 1:
            return self.get(prefix[0])
        if len(prefix) > 1:
            raise KeyError(f"campaign prefix {ref!r} is ambiguous: {prefix}")
        named = [
            campaign
            for campaign in (self.get(cid) for cid in ids)
            if campaign.name == ref
        ]
        if len(named) == 1:
            return named[0]
        if len(named) > 1:
            raise KeyError(
                f"campaign name {ref!r} is ambiguous: "
                f"{[c.id for c in named]}"
            )
        raise KeyError(f"no campaign matching {ref!r} in {self.root}")

    def list(self) -> list[dict[str, Any]]:
        """JSON-ready summaries of every registered campaign."""
        return [self.get(cid).describe() for cid in self.campaign_ids()]

    # -- baselines ----------------------------------------------------------

    def baseline_dir(self, name: str) -> Path:
        spec_mod.validate_name(name, "$.baseline")
        return self.baselines_root / name

    def promote(
        self, campaign: Campaign, name: str, force: bool = False
    ) -> Path:
        """Pin a completed campaign's cohort as a named baseline.

        Copies the spec and the results stream (writing them first if
        needed), so the baseline survives campaign-dir GC or deletion.
        """
        target = self.baseline_dir(name)
        if target.exists() and not force:
            raise FileExistsError(
                f"baseline {name!r} exists; pass force=True/--force to replace"
            )
        status = campaign.load_state()
        if not campaign.results_path.exists():
            campaign.write_results(status)
        results = campaign.results_path.read_bytes()
        progress = campaign.progress(status)
        doc = {
            "schema": CAMPAIGN_BASELINE_SCHEMA,
            "name": name,
            "campaign": campaign.id,
            "points": campaign.points,
            "done": progress["done"],
            "errors": progress["errors"],
            "excluded": progress["excluded"],
            "results_sha256": hashlib.sha256(results).hexdigest(),
        }
        target.mkdir(parents=True, exist_ok=True)
        _atomic_write(
            target / "spec.json", spec_mod.canonical_bytes(campaign.spec)
        )
        _atomic_write(target / "results.jsonl", results)
        _atomic_write(target / "baseline.json", dump_json(doc).encode("utf-8"))
        return target

    def baselines(self) -> list[dict[str, Any]]:
        out = []
        try:
            names = sorted(
                entry.name
                for entry in self.baselines_root.iterdir()
                if entry.is_dir() and (entry / "baseline.json").exists()
            )
        except OSError:
            return []
        for name in names:
            try:
                out.append(
                    json.loads(
                        (self.baselines_root / name / "baseline.json").read_text(
                            encoding="utf-8"
                        )
                    )
                )
            except (OSError, ValueError):
                continue
        return out


# -- offline validation (``python -m repro.obs.validate --campaign``) ------


def _validate_results_lines(
    lines: list[bytes], campaign: Campaign
) -> dict[str, Any]:
    require(len(lines) >= 2, "$", "results must have header and summary lines")
    header = json.loads(lines[0])
    require(
        header.get("schema") == CAMPAIGN_RESULTS_SCHEMA,
        "$[0].schema",
        f"must be {CAMPAIGN_RESULTS_SCHEMA!r}",
    )
    require(
        header.get("campaign") == campaign.id,
        "$[0].campaign",
        "must match the campaign id",
    )
    require(
        header.get("points") == campaign.points,
        "$[0].points",
        "must match the spec's grid size",
    )
    summary = json.loads(lines[-1])
    require(summary.get("done") is True, "$[-1].done", "must be true")
    seen: set[int] = set()
    errors = 0
    excluded = 0
    for i, raw in enumerate(lines[1:-1], start=1):
        record = json.loads(raw)
        path = f"$[{i}]"
        index = record.get("index")
        require(
            isinstance(index, int) and 0 <= index < campaign.points,
            f"{path}.index",
            f"must be an integer within [0, {campaign.points})",
        )
        require(index not in seen, f"{path}.index", "duplicate point index")
        seen.add(index)
        require(
            isinstance(record.get("point"), dict),
            f"{path}.point",
            "must be an object",
        )
        if record.get("excluded"):
            excluded += 1
        elif "error" in record:
            errors += 1
        else:
            require(
                isinstance(record.get("result"), dict),
                f"{path}.result",
                "must be an object",
            )
    require(
        len(seen) == campaign.points,
        "$",
        f"stream carries {len(seen)} points, spec promises {campaign.points}",
    )
    require(
        summary.get("errors") == errors,
        "$[-1].errors",
        f"summary says {summary.get('errors')!r}, stream carries {errors}",
    )
    require(
        summary.get("excluded") == excluded,
        "$[-1].excluded",
        f"summary says {summary.get('excluded')!r}, stream carries {excluded}",
    )
    return {"errors": errors, "excluded": excluded}


def validate_campaign_dir(path: str | os.PathLike[str]) -> dict[str, Any]:
    """Validate one campaign directory end to end (spec, state,
    artifacts, results); raises :class:`SchemaError`, returns counts.

    This is the ``--campaign`` mode of ``python -m repro.obs.validate``
    — CI points it at a smoke campaign after a kill+resume to prove the
    registry's invariants held through the crash.
    """
    directory = Path(path)
    spec_path = directory / "spec.json"
    try:
        document = json.loads(spec_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SchemaError(f"$: {spec_path} does not exist") from None
    except (OSError, ValueError) as exc:
        raise SchemaError(f"$: spec.json unreadable: {exc}") from None
    spec = spec_mod.validate_spec(document)
    require(
        spec_mod.canonical_bytes(spec)
        == spec_path.read_bytes(),
        "$.spec",
        "spec.json is not in canonical form",
    )
    campaign = Campaign(directory.parent, spec)
    if directory.name != campaign.id:
        raise SchemaError(
            f"$: directory name {directory.name!r} does not match the "
            f"spec's content address {campaign.id!r}"
        )
    status = campaign.load_state()
    counts = campaign.progress(status)
    for index, entry in status.items():
        if "artifact" in entry:
            key = entry["artifact"]
            require(
                campaign.load_artifact(key) is not None,
                f"$.status[{index}]",
                f"artifact {key[:12]} missing or corrupt",
            )
    out: dict[str, Any] = {"campaign": campaign.id, **counts}
    if campaign.results_path.exists():
        data = campaign.results_path.read_bytes()
        lines = [line for line in data.split(b"\n") if line.strip()]
        out["results"] = _validate_results_lines(lines, campaign)
        if campaign.summary_path.exists():
            summary = json.loads(
                campaign.summary_path.read_text(encoding="utf-8")
            )
            require(
                summary.get("schema") == CAMPAIGN_SUMMARY_SCHEMA,
                "$.summary.schema",
                f"must be {CAMPAIGN_SUMMARY_SCHEMA!r}",
            )
            require(
                summary.get("results_sha256")
                == hashlib.sha256(data).hexdigest(),
                "$.summary.results_sha256",
                "does not match results.jsonl (torn write?)",
            )
    return out
