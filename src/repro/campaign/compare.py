"""Cohort comparison: ``campaign diff A B`` and baseline loading.

Two cohorts (campaigns or promoted baselines) are joined on *physical*
point identity — (trace fingerprint, cache geometry, policy, β\\ :sub:`m`)
— not on grid indices, so a diff stays meaningful when one side added a
cache size or an exclusion rule: shared points pair up, the rest are
reported as one-sided.

Per matched point the diff reports Δcycles / ΔCPI / Δhit-ratio and the
paper's Eq. (2) decomposition of the CPI delta — which stall term
(read-miss, flush, write-buffer) or the execute floor moved.  The
execute term is derived the same way :func:`repro.obs.metrics
.eq2_breakdown` derives it (``cycles`` minus the three stall terms), so
the four per-instruction terms sum to the CPI exactly.

Hit ratios are not part of the timing-result payload (they are a
phase-1 property of (trace, geometry), not of the replayed point), so
the diff recovers them through :func:`repro.service.queries
.resolve_events` — served from the events store, i.e. free for any
cohort that was simulated on this machine — unless ``--no-hit-ratio``
opts out (e.g. diffing cohorts fetched from another host).
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.campaign import spec as spec_mod
from repro.campaign.registry import Campaign, CampaignRegistry
from repro.service import queries

#: A physical point identity: everything that determines the result.
CohortKey = tuple[str, tuple[int, int, int], str, float]


def eq2_terms(result: dict[str, Any]) -> dict[str, float]:
    """Per-instruction Eq. (2) terms of one timing-result dict."""
    instructions = result["instructions"]
    read = result["read_miss_stall_cycles"]
    flush = result["flush_stall_cycles"]
    write = result["write_stall_cycles"]
    execute = result["cycles"] - read - flush - write
    return {
        "execute_cpi": execute / instructions,
        "read_stall_cpi": read / instructions,
        "flush_stall_cpi": flush / instructions,
        "write_buffer_stall_cpi": write / instructions,
    }


def _cohort_key(
    spec: dict[str, Any], point: dict[str, Any]
) -> CohortKey:
    trace = spec["traces"][point["trace_index"]]
    cache = point["cache"]
    return (
        queries.trace_fingerprint_of(trace),
        (
            cache["total_bytes"],
            cache["line_size"],
            cache["associativity"],
        ),
        point["policy"],
        point["memory_cycle"],
    )


def load_cohort(
    spec: dict[str, Any], records: Iterable[dict[str, Any]]
) -> dict[CohortKey, dict[str, Any]]:
    """Index a results stream by physical point identity.

    ``records`` is any iterable of decoded results-stream records
    (header/summary lines are skipped, as are excluded and errored
    points — a diff compares what both sides actually measured).
    """
    cohort: dict[CohortKey, dict[str, Any]] = {}
    for record in records:
        if "index" not in record or "result" not in record:
            continue
        cohort[_cohort_key(spec, record["point"])] = {
            "point": record["point"],
            "result": record["result"],
        }
    return cohort


def _campaign_records(campaign: Campaign) -> Iterable[dict[str, Any]]:
    for line in campaign.result_lines():
        yield json.loads(line)


def resolve_cohort(
    registry: CampaignRegistry, ref: str
) -> tuple[str, dict[str, Any], dict[CohortKey, dict[str, Any]]]:
    """Resolve a diff operand: campaign (id/prefix/name) or baseline.

    Baselines shadow nothing — campaigns are tried first, then the
    promoted-baseline directory.  Returns (label, spec, cohort).
    """
    try:
        campaign = registry.find(ref)
    except KeyError as campaign_miss:
        baseline = registry.baseline_dir(ref)
        try:
            spec = spec_mod.validate_spec(
                json.loads(
                    (baseline / "spec.json").read_text(encoding="utf-8")
                )
            )
            records = [
                json.loads(line)
                for line in (baseline / "results.jsonl")
                .read_text(encoding="utf-8")
                .splitlines()
                if line.strip()
            ]
        except FileNotFoundError:
            raise KeyError(
                f"{ref!r} matches neither a campaign nor a baseline "
                f"in {registry.root}"
            ) from campaign_miss
        return f"baseline:{ref}", spec, load_cohort(spec, records)
    label = campaign.name or campaign.id[:12]
    return label, campaign.spec, load_cohort(
        campaign.spec, _campaign_records(campaign)
    )


def _hit_ratio_of(
    spec: dict[str, Any], point: dict[str, Any]
) -> float | None:
    params = spec_mod.point_params(spec, point)
    try:
        return queries.resolve_events(params).stats.hit_ratio
    except Exception:  # noqa: BLE001 - diff stays usable without HR
        return None


def diff_cohorts(
    spec_a: dict[str, Any],
    cohort_a: dict[CohortKey, dict[str, Any]],
    spec_b: dict[str, Any],
    cohort_b: dict[CohortKey, dict[str, Any]],
    include_hit_ratio: bool = True,
) -> dict[str, Any]:
    """The structured diff: matched rows (B − A) plus one-sided keys."""
    keys_a = set(cohort_a)
    keys_b = set(cohort_b)
    rows: list[dict[str, Any]] = []
    for key in sorted(keys_a & keys_b):
        a = cohort_a[key]
        b = cohort_b[key]
        terms_a = eq2_terms(a["result"])
        terms_b = eq2_terms(b["result"])
        row: dict[str, Any] = {
            "trace": key[0],
            "cache": {
                "total_bytes": key[1][0],
                "line_size": key[1][1],
                "associativity": key[1][2],
            },
            "policy": key[2],
            "memory_cycle": key[3],
            "cycles_a": a["result"]["cycles"],
            "cycles_b": b["result"]["cycles"],
            "delta_cycles": b["result"]["cycles"] - a["result"]["cycles"],
            "cpi_a": a["result"]["cpi"],
            "cpi_b": b["result"]["cpi"],
            "delta_cpi": b["result"]["cpi"] - a["result"]["cpi"],
            "delta_eq2": {
                name: terms_b[name] - terms_a[name] for name in terms_a
            },
        }
        if include_hit_ratio:
            hr_a = _hit_ratio_of(spec_a, a["point"])
            hr_b = _hit_ratio_of(spec_b, b["point"])
            row["hit_ratio_a"] = hr_a
            row["hit_ratio_b"] = hr_b
            row["delta_hit_ratio"] = (
                hr_b - hr_a if hr_a is not None and hr_b is not None else None
            )
        rows.append(row)
    return {
        "matched": len(rows),
        "only_a": len(keys_a - keys_b),
        "only_b": len(keys_b - keys_a),
        "rows": rows,
    }


def _fmt(value: Any, width: int, precision: int = 4) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:+.{precision}f}".rjust(width)
    return str(value).rjust(width)


def render_diff(
    label_a: str, label_b: str, report: dict[str, Any]
) -> str:
    """A fixed-width table of the diff (the CLI's human rendering)."""
    lines = [
        f"diff: A={label_a}  B={label_b}  "
        f"(matched {report['matched']}, only-A {report['only_a']}, "
        f"only-B {report['only_b']})",
    ]
    if not report["rows"]:
        lines.append("no shared measured points")
        return "\n".join(lines)
    header = (
        f"{'trace':<14} {'cache':<16} {'pol':<3} {'beta':>6} "
        f"{'dCycles':>12} {'dCPI':>10} {'dHR':>9} "
        f"{'dExec':>10} {'dRead':>10} {'dFlush':>10} {'dWrBuf':>10}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in report["rows"]:
        cache = row["cache"]
        geometry = (
            f"{cache['total_bytes']}/{cache['line_size']}"
            f"/a{cache['associativity']}"
        )
        eq2 = row["delta_eq2"]
        lines.append(
            f"{row['trace'][:14]:<14} {geometry:<16} {row['policy']:<3} "
            f"{row['memory_cycle']:>6.1f} "
            f"{_fmt(float(row['delta_cycles']), 12, 1)} "
            f"{_fmt(row['delta_cpi'], 10)} "
            f"{_fmt(row.get('delta_hit_ratio'), 9)} "
            f"{_fmt(eq2['execute_cpi'], 10)} "
            f"{_fmt(eq2['read_stall_cpi'], 10)} "
            f"{_fmt(eq2['flush_stall_cpi'], 10)} "
            f"{_fmt(eq2['write_buffer_stall_cpi'], 10)}"
        )
    return "\n".join(lines)
