"""SPEC92 stand-in workload profiles.

The paper's Figure 1 averages stalling factors over six SPEC92 programs —
nasa7, swm256, wave5, ear, doduc and hydro2d — each traced for 50 M
instructions.  The original traces are unavailable, so each program is
replaced by a synthetic profile whose reference mix matches the program's
published character (see DESIGN.md, substitutions):

============  =====================================================
program       character reproduced
============  =====================================================
nasa7         seven FP kernels: long unit-stride array sweeps with a
              matrix-column (strided) component
swm256        shallow-water grid: almost purely sequential sweeps
              over several large arrays
wave5         particle/plasma code: sequential field sweeps plus
              gather/scatter (random) particle accesses
ear           human-ear model: small resident working set, high
              temporal locality
doduc         Monte-Carlo reactor kinetics: irregular control flow,
              modest working set, scattered accesses
hydro2d       2-D hydrodynamics: row sweeps with a vertical-stencil
              strided component
============  =====================================================

The quantity that matters downstream is how often consecutive references
touch the line currently being filled (spatial locality) versus other
lines (miss clustering); the profiles span that spectrum.
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Iterator
from dataclasses import dataclass

from repro.trace.record import Instruction
from repro.trace.synthetic import (
    SyntheticTraceBuilder,
    mix,
    pointer_chase,
    random_uniform,
    sequential_sweep,
    strided_sweep,
    working_set,
)

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class WorkloadProfile:
    """A named synthetic stand-in for one SPEC92 program."""

    name: str
    description: str
    loadstore_fraction: float
    store_fraction: float

    def pattern(self, rng: random.Random) -> Iterator[int]:
        """The program's address stream (infinite)."""
        builder = _PATTERNS[self.name]
        return builder(rng)

    def _builder(self, seed: int) -> tuple[random.Random, SyntheticTraceBuilder]:
        # zlib.crc32 is deterministic across processes (unlike hash(),
        # which is salted and would make traces irreproducible run-to-run).
        rng = random.Random(seed ^ zlib.crc32(self.name.encode()))
        builder = SyntheticTraceBuilder(
            seed=seed ^ 0x5EED,
            loadstore_fraction=self.loadstore_fraction,
            store_fraction=self.store_fraction,
        )
        return rng, builder

    def trace(self, n_instructions: int, seed: int = 0) -> list[Instruction]:
        """Materialize an instruction stream for this profile."""
        rng, builder = self._builder(seed)
        return builder.build(self.pattern(rng), n_instructions)

    def profile_arrays(
        self, n_instructions: int, seed: int = 0
    ) -> tuple[int, "object", "object", "object", "object"]:
        """``(n_instructions, index, address, is_store, size)`` — the
        reference arrays of :meth:`trace`, without materializing it.

        Same RNG draws as :meth:`trace`, so byte-identical to profiling
        the materialized stream; the reuse engine's phase 1 consumes
        this directly (``repro.cache.reuse.ReuseProfile``).
        """
        rng, builder = self._builder(seed)
        index, address, is_store, size = builder.build_reference_arrays(
            self.pattern(rng), n_instructions
        )
        return n_instructions, index, address, is_store, size


def _nasa7(rng: random.Random) -> Iterator[int]:
    return mix(
        [
            sequential_sweep(0x0000_0000, 2 * MIB, element_size=4),
            sequential_sweep(0x0080_0000, 1 * MIB, element_size=8),
            strided_sweep(0x0100_0000, 1 * MIB, stride=64),
        ],
        weights=[0.6, 0.3, 0.1],
        rng=rng,
        run_length=24,
    )


def _swm256(rng: random.Random) -> Iterator[int]:
    return mix(
        [
            sequential_sweep(0x0000_0000, 2 * MIB, element_size=4),
            sequential_sweep(0x0040_0000, 2 * MIB, element_size=8),
            sequential_sweep(0x0100_0000, 2 * MIB, element_size=8),
        ],
        weights=[0.4, 0.35, 0.25],
        rng=rng,
        run_length=32,
    )


def _wave5(rng: random.Random) -> Iterator[int]:
    return mix(
        [
            sequential_sweep(0x0000_0000, 4 * MIB, element_size=4),
            random_uniform(0x0100_0000, 24 * KIB, rng, align=8),
            strided_sweep(0x0200_0000, 1 * MIB, stride=256),
        ],
        weights=[0.65, 0.25, 0.10],
        rng=rng,
        run_length=16,
    )


def _ear(rng: random.Random) -> Iterator[int]:
    # Small resident filter state (fits the 8K cache) plus a sequential
    # scan of the input signal.
    return mix(
        [
            working_set(
                0x0000_0000,
                hot_bytes=4 * KIB,
                cold_bytes=16 * KIB,
                hot_probability=0.9,
                rng=rng,
                align=8,
            ),
            sequential_sweep(0x0010_0000, 512 * KIB, element_size=8),
        ],
        weights=[0.75, 0.25],
        rng=rng,
        run_length=8,
    )


def _doduc(rng: random.Random) -> Iterator[int]:
    return mix(
        [
            working_set(
                0x0000_0000,
                hot_bytes=6 * KIB,
                cold_bytes=64 * KIB,
                hot_probability=0.85,
                rng=rng,
            ),
            pointer_chase(0x0100_0000, nodes=200, node_bytes=64, rng=rng),
        ],
        weights=[0.9, 0.1],
        rng=rng,
        run_length=4,
    )


def _hydro2d(rng: random.Random) -> Iterator[int]:
    return mix(
        [
            sequential_sweep(0x0000_0000, 3 * MIB, element_size=4),
            strided_sweep(0x0000_0000, 3 * MIB, stride=4096),
        ],
        weights=[0.85, 0.15],
        rng=rng,
        run_length=20,
    )


_PATTERNS = {
    "nasa7": _nasa7,
    "swm256": _swm256,
    "wave5": _wave5,
    "ear": _ear,
    "doduc": _doduc,
    "hydro2d": _hydro2d,
}

#: The six Figure 1 programs, keyed by name.
SPEC92_PROFILES: dict[str, WorkloadProfile] = {
    "nasa7": WorkloadProfile(
        "nasa7", "FP kernels: unit-stride sweeps + matrix columns", 0.34, 0.28
    ),
    "swm256": WorkloadProfile(
        "swm256", "shallow-water grid: sequential array sweeps", 0.32, 0.30
    ),
    "wave5": WorkloadProfile(
        "wave5", "plasma: field sweeps + particle gather/scatter", 0.33, 0.30
    ),
    "ear": WorkloadProfile(
        "ear", "ear model: small hot working set", 0.28, 0.25
    ),
    "doduc": WorkloadProfile(
        "doduc", "Monte-Carlo kinetics: irregular, scattered", 0.27, 0.30
    ),
    "hydro2d": WorkloadProfile(
        "hydro2d", "2-D hydrodynamics: row sweeps + vertical stencil", 0.31, 0.32
    ),
}


def spec92_trace(name: str, n_instructions: int, seed: int = 0) -> list[Instruction]:
    """Materialize the stand-in trace for one SPEC92 program by name."""
    try:
        profile = SPEC92_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; choose from {sorted(SPEC92_PROFILES)}"
        ) from None
    return profile.trace(n_instructions, seed=seed)


#: Bump whenever a change to the profiles, patterns or
#: ``SyntheticTraceBuilder`` alters the instruction stream a given
#: ``(name, n_instructions, seed)`` produces — it invalidates every
#: cached artifact derived from these traces (``repro.cache.events_store``).
TRACE_GENERATOR_VERSION = 1


def trace_fingerprint(name: str, n_instructions: int, seed: int = 0) -> str:
    """Content identity of one SPEC92 stand-in trace.

    The generators are deterministic functions of ``(name,
    n_instructions, seed)``, so those parameters (plus the generator
    version) identify the instruction stream without hashing it.
    """
    if name not in SPEC92_PROFILES:
        raise KeyError(
            f"unknown program {name!r}; choose from {sorted(SPEC92_PROFILES)}"
        )
    return f"spec92/{TRACE_GENERATOR_VERSION}/{name}/{n_instructions}/{seed}"
