"""Plain-text trace persistence.

Format ("UAT1", one record per line after the header)::

    #UAT1
    a                 <- ALU instruction
    l <hexaddr> <size>
    s <hexaddr> <size>

The format deliberately resembles classic `din` traces but keeps ALU
instructions explicit, because the execution-time model charges them one
cycle each (Eq. 2's ``E - Lambda_m`` term).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.trace.record import ALU_OP, Instruction, OpKind

_HEADER = "#UAT1"
_KIND_TO_CODE = {OpKind.ALU: "a", OpKind.LOAD: "l", OpKind.STORE: "s"}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}


def write_trace(path: str | Path, instructions: Iterable[Instruction]) -> int:
    """Write a trace file; returns the number of records written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with target.open("w") as fh:
        fh.write(_HEADER + "\n")
        for inst in instructions:
            if inst.kind is OpKind.ALU:
                fh.write("a\n")
            else:
                fh.write(
                    f"{_KIND_TO_CODE[inst.kind]} {inst.address:x} {inst.size}\n"
                )
            count += 1
    return count


def read_trace(path: str | Path) -> Iterator[Instruction]:
    """Stream instructions back from a trace file.

    Raises ``ValueError`` on a bad header or malformed record, naming the
    offending line number.
    """
    target = Path(path)
    with target.open() as fh:
        header = fh.readline().rstrip("\n")
        if header != _HEADER:
            raise ValueError(
                f"{target}: bad header {header!r}, expected {_HEADER!r}"
            )
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line == "a":
                yield ALU_OP
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in _CODE_TO_KIND:
                raise ValueError(f"{target}:{lineno}: malformed record {line!r}")
            code, addr_hex, size_str = parts
            try:
                address = int(addr_hex, 16)
                size = int(size_str)
            except ValueError:
                raise ValueError(
                    f"{target}:{lineno}: bad address/size in {line!r}"
                ) from None
            yield Instruction(_CODE_TO_KIND[code], address, size)
