"""Markov-phase workload generator.

Table 1 defines an application as "a task, a subroutine, or a phase of
computation" — real programs move through phases with different locality
(initialization sweeps, compute kernels, pointer-heavy bookkeeping).
This generator strings the synthetic archetypes of
:mod:`repro.trace.synthetic` together with a Markov chain over named
phases, each with its own reference pattern, dwell time, and load/store
density, producing long traces whose *aggregate* characterization is
stable but whose local behaviour shifts the way real SPEC programs do.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.trace.record import ALU_OP, Instruction, OpKind


@dataclass(frozen=True)
class Phase:
    """One computation phase.

    Parameters
    ----------
    name:
        Label for diagnostics.
    pattern_factory:
        Builds the phase's (infinite) address stream from an RNG.
    mean_instructions:
        Mean dwell time before the chain re-draws (geometric).
    loadstore_fraction, store_fraction:
        Reference density and write share while in this phase.
    """

    name: str
    pattern_factory: Callable[[random.Random], Iterator[int]]
    mean_instructions: int
    loadstore_fraction: float = 0.3
    store_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.mean_instructions < 1:
            raise ValueError(
                f"phase {self.name!r}: mean_instructions must be >= 1"
            )
        if not 0.0 < self.loadstore_fraction <= 1.0:
            raise ValueError(
                f"phase {self.name!r}: loadstore_fraction must be in (0, 1]"
            )
        if not 0.0 <= self.store_fraction <= 1.0:
            raise ValueError(
                f"phase {self.name!r}: store_fraction must be in [0, 1]"
            )


@dataclass
class MarkovWorkload:
    """A phase set plus a transition matrix.

    ``transitions[i][j]`` is the probability of moving from phase i to
    phase j at a phase boundary; rows must sum to ~1.  With no matrix
    given, transitions are uniform over the other phases.
    """

    phases: list[Phase]
    transitions: list[list[float]] | None = None
    _phase_log: list[tuple[str, int]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("need at least one phase")
        n = len(self.phases)
        if self.transitions is None:
            if n == 1:
                self.transitions = [[1.0]]
            else:
                off = 1.0 / (n - 1)
                self.transitions = [
                    [0.0 if i == j else off for j in range(n)] for i in range(n)
                ]
        if len(self.transitions) != n or any(
            len(row) != n for row in self.transitions
        ):
            raise ValueError(f"transition matrix must be {n}x{n}")
        for i, row in enumerate(self.transitions):
            if any(p < 0 for p in row) or abs(sum(row) - 1.0) > 1e-9:
                raise ValueError(
                    f"transition row {i} must be non-negative and sum to 1"
                )

    @property
    def phase_log(self) -> list[tuple[str, int]]:
        """(phase name, instructions spent) per visit, last build only."""
        return list(self._phase_log)

    def build(self, n_instructions: int, seed: int = 0) -> list[Instruction]:
        """Materialize a trace of ``n_instructions`` instructions."""
        if n_instructions <= 0:
            raise ValueError("n_instructions must be positive")
        rng = random.Random(seed)
        pattern_rng = random.Random(seed ^ 0xA5A5)
        streams = [phase.pattern_factory(pattern_rng) for phase in self.phases]
        self._phase_log.clear()

        current = rng.randrange(len(self.phases))
        trace: list[Instruction] = []
        visit_start = 0
        while len(trace) < n_instructions:
            phase = self.phases[current]
            leave_probability = 1.0 / phase.mean_instructions
            if rng.random() < phase.loadstore_fraction:
                kind = (
                    OpKind.STORE
                    if rng.random() < phase.store_fraction
                    else OpKind.LOAD
                )
                trace.append(Instruction(kind, next(streams[current]), 4))
            else:
                trace.append(ALU_OP)
            if rng.random() < leave_probability:
                self._phase_log.append(
                    (phase.name, len(trace) - visit_start)
                )
                visit_start = len(trace)
                current = rng.choices(
                    range(len(self.phases)), weights=self.transitions[current]
                )[0]
        self._phase_log.append(
            (self.phases[current].name, len(trace) - visit_start)
        )
        return trace


def three_phase_example(seed: int = 0) -> MarkovWorkload:
    """A ready-made init/compute/update workload for examples and tests."""
    from repro.trace.synthetic import (
        pointer_chase,
        random_uniform,
        sequential_sweep,
    )

    del seed  # pattern RNG comes from build(); kept for API symmetry
    return MarkovWorkload(
        phases=[
            Phase(
                "init-sweep",
                lambda rng: sequential_sweep(0x0000_0000, 1 << 20, 8),
                mean_instructions=400,
                loadstore_fraction=0.4,
                store_fraction=0.6,
            ),
            Phase(
                "compute",
                lambda rng: random_uniform(0x0010_0000, 16 << 10, rng, 8),
                mean_instructions=1200,
                loadstore_fraction=0.25,
                store_fraction=0.2,
            ),
            Phase(
                "update-lists",
                lambda rng: pointer_chase(0x0100_0000, 300, 64, rng),
                mean_instructions=300,
                loadstore_fraction=0.35,
                store_fraction=0.4,
            ),
        ],
        transitions=[
            [0.0, 0.9, 0.1],
            [0.2, 0.0, 0.8],
            [0.1, 0.9, 0.0],
        ],
    )
