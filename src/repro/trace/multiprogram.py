"""Multiprogramming: interleaved tasks and context-switch effects
(paper Section 3.4).

Section 3.4 argues instruction-cache misses are negligible for a single
program but "in a multiprogramming case, a higher instruction miss ratio
is expected" and the miss portion must be added to Eq. (2).  This module
builds the workload that statement describes: several programs
round-robin on one processor with a fixed time quantum, so each switch
drags the caches through another task's footprint.

``interleave`` merges materialized traces; ``disjoint_address_spaces``
offsets each program into its own region first (separate tasks do not
share data), which is what makes the cache pollution real.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.record import Instruction, OpKind


def rebase(instructions: list[Instruction], offset: int) -> list[Instruction]:
    """Shift every memory address by ``offset`` (a distinct task's space)."""
    if offset < 0:
        raise ValueError(f"offset must be non-negative, got {offset}")
    rebased = []
    for inst in instructions:
        if inst.kind is OpKind.ALU:
            rebased.append(inst)
        else:
            rebased.append(
                Instruction(inst.kind, inst.address + offset, inst.size)
            )
    return rebased


def disjoint_address_spaces(
    traces: list[list[Instruction]],
    region_bytes: int = 1 << 28,
) -> list[list[Instruction]]:
    """Rebase each trace into its own ``region_bytes`` window."""
    if region_bytes <= 0:
        raise ValueError("region_bytes must be positive")
    return [
        rebase(trace, index * region_bytes) for index, trace in enumerate(traces)
    ]


def interleave(
    traces: list[list[Instruction]],
    quantum: int,
) -> list[Instruction]:
    """Round-robin the traces with a ``quantum``-instruction time slice.

    Each trace is consumed exactly once (the result's length is the sum
    of the inputs'); tasks that finish early simply drop out of the
    rotation — matching how a scheduler drains a mixed batch.
    """
    if quantum <= 0:
        raise ValueError(f"quantum must be positive, got {quantum}")
    if not traces:
        raise ValueError("need at least one trace")
    positions = [0] * len(traces)
    merged: list[Instruction] = []
    active = [i for i, t in enumerate(traces) if t]
    while active:
        next_active = []
        for index in active:
            trace = traces[index]
            start = positions[index]
            end = min(start + quantum, len(trace))
            merged.extend(trace[start:end])
            positions[index] = end
            if end < len(trace):
                next_active.append(index)
        active = next_active
    return merged


@dataclass(frozen=True)
class MultiprogramComparison:
    """Miss ratios of the same work run solo versus time-sliced."""

    solo_miss_ratio: float
    interleaved_miss_ratio: float

    @property
    def pollution_factor(self) -> float:
        """How much multiprogramming inflates the miss ratio."""
        if self.solo_miss_ratio == 0:
            return float("inf") if self.interleaved_miss_ratio > 0 else 1.0
        return self.interleaved_miss_ratio / self.solo_miss_ratio


def _step(cache, instructions) -> None:
    for inst in instructions:
        if inst.kind is OpKind.LOAD:
            cache.read(inst.address)
        elif inst.kind is OpKind.STORE:
            cache.write(inst.address)


def pollution_sweep(
    traces: list[list[Instruction]],
    cache_config,
    quanta: list[int],
) -> list[MultiprogramComparison]:
    """:func:`measure_pollution` across several quanta, sharing the
    quantum-independent work.

    The rebased address spaces and the solo baseline (each task on a
    private, fresh cache) do not depend on the quantum; a sweep pays for
    them once, and per quantum only the shared interleaved run steps a
    cache.
    """
    from repro.cache.cache import Cache

    spaces = disjoint_address_spaces(traces)
    solo_hits = solo_accesses = 0
    for trace in spaces:
        cache = Cache(cache_config)
        _step(cache, trace)
        solo_hits += cache.stats.hits
        solo_accesses += cache.stats.accesses
    solo_mr = 1.0 - (solo_hits / solo_accesses if solo_accesses else 0.0)

    comparisons = []
    for quantum in quanta:
        shared = Cache(cache_config)
        _step(shared, interleave(spaces, quantum))
        comparisons.append(
            MultiprogramComparison(
                solo_miss_ratio=solo_mr,
                interleaved_miss_ratio=shared.stats.miss_ratio,
            )
        )
    return comparisons


def measure_pollution(
    traces: list[list[Instruction]],
    cache_config,
    quantum: int,
) -> MultiprogramComparison:
    """Miss-ratio inflation caused by time slicing ``traces`` together.

    The solo baseline runs each task on a private (fresh) cache; the
    interleaved run shares one cache across quanta.  The gap is the
    Section 3.4 effect.
    """
    return pollution_sweep(traces, cache_config, [quantum])[0]
