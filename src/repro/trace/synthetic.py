"""Synthetic memory-reference patterns.

Each pattern function returns an **infinite iterator of byte addresses**
capturing one locality archetype; :class:`SyntheticTraceBuilder`
interleaves them with ALU instructions and a load/store mix to produce an
instruction stream of any length.

The archetypes — sequential sweeps, strides, working sets, pointer
chases — are the building blocks from which the SPEC92 stand-in profiles
(:mod:`repro.trace.spec92`) are composed.  What matters for the paper's
Figure 1 is (a) how often consecutive references fall on the same cache
line (spatial locality inside the missing line) and (b) how clustered
misses are; both are directly controlled here.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Sequence

from repro.trace.record import ALU_OP, Instruction, OpKind


def sequential_sweep(
    base: int, array_bytes: int, element_size: int = 8
) -> Iterator[int]:
    """Endless forward sweeps over one array — vectorizable FP loops.

    Touches ``base, base+e, base+2e, ...`` and wraps; maximal spatial
    locality (every line is consumed word by word after its miss).
    """
    if array_bytes <= 0 or element_size <= 0:
        raise ValueError("array_bytes and element_size must be positive")

    def generate() -> Iterator[int]:
        offset = 0
        while True:
            yield base + offset
            offset = (offset + element_size) % array_bytes

    return generate()


def strided_sweep(
    base: int, array_bytes: int, stride: int, element_size: int = 8
) -> Iterator[int]:
    """Endless sweeps with a fixed stride — column accesses, FFT shuffles.

    A stride at or above the line size defeats spatial locality entirely;
    intermediate strides hit every ``line/stride``-th word.
    """
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    if array_bytes <= 0 or element_size <= 0:
        raise ValueError("array_bytes and element_size must be positive")
    del element_size  # the stride fully determines the footprint step

    def generate() -> Iterator[int]:
        offset = 0
        while True:
            yield base + offset
            offset = (offset + stride) % array_bytes

    return generate()


def random_uniform(base: int, region_bytes: int, rng: random.Random, align: int = 4) -> Iterator[int]:
    """Uniformly random references inside one region — hash tables, heaps."""
    if region_bytes <= align:
        raise ValueError("region must exceed the alignment")
    slots = region_bytes // align

    def generate() -> Iterator[int]:
        while True:
            yield base + rng.randrange(slots) * align

    return generate()


def working_set(
    base: int,
    hot_bytes: int,
    cold_bytes: int,
    hot_probability: float,
    rng: random.Random,
    align: int = 4,
) -> Iterator[int]:
    """Two-level working set: a hot region hit with ``hot_probability``.

    Models codes with a small resident kernel plus occasional excursions;
    temporal locality is tuned by the probability and the hot size.
    """
    if not 0.0 <= hot_probability <= 1.0:
        raise ValueError(f"hot_probability must be in [0, 1], got {hot_probability}")
    hot = random_uniform(base, hot_bytes, rng, align)
    cold = random_uniform(base + hot_bytes, cold_bytes, rng, align)

    def generate() -> Iterator[int]:
        while True:
            yield next(hot) if rng.random() < hot_probability else next(cold)

    return generate()


def pointer_chase(
    base: int, nodes: int, node_bytes: int, rng: random.Random
) -> Iterator[int]:
    """A permutation walk over linked nodes — no spatial locality at all.

    The node order is a fixed random cycle, so the stream is deterministic
    given the RNG yet defeats any prefetch-like locality.
    """
    if nodes < 2:
        raise ValueError("need at least two nodes to chase")
    order = list(range(nodes))
    rng.shuffle(order)

    def generate() -> Iterator[int]:
        position = 0
        while True:
            yield base + order[position] * node_bytes
            position = (position + 1) % nodes

    return generate()


def mix(
    streams: Sequence[Iterator[int]],
    weights: Sequence[float],
    rng: random.Random,
    run_length: int = 1,
) -> Iterator[int]:
    """Interleave ``streams``, drawing runs of references from each.

    ``run_length`` is the mean length of a burst taken from one stream
    before re-drawing (geometric distribution).  ``run_length = 1``
    re-draws every reference — maximal interleaving; larger values model
    inner loops that stay on one array for a stretch, which preserves the
    within-line sequential runs that distinguish the BNL stalling
    variants (Figure 1).
    """
    if len(streams) != len(weights) or not streams:
        raise ValueError("streams and weights must be equal-length and non-empty")
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ValueError("weights must be non-negative with a positive sum")
    if run_length < 1:
        raise ValueError(f"run_length must be >= 1, got {run_length}")
    stream_list = list(streams)
    weight_list = list(weights)
    switch_probability = 1.0 / run_length

    def generate() -> Iterator[int]:
        current = rng.choices(stream_list, weights=weight_list)[0]
        while True:
            yield next(current)
            if rng.random() < switch_probability:
                current = rng.choices(stream_list, weights=weight_list)[0]

    return generate()


class SyntheticTraceBuilder:
    """Assemble an instruction stream from an address pattern.

    Parameters
    ----------
    seed:
        Seeds the builder's RNG; the same seed reproduces the same trace.
    loadstore_fraction:
        Fraction of instructions that reference data memory (~0.3 in the
        paper's trace studies).
    store_fraction:
        Fraction of memory references that are stores.
    operand_size:
        Bytes per reference (4 = word, matching the paper's D=4 baseline).
    """

    def __init__(
        self,
        seed: int = 0,
        loadstore_fraction: float = 0.3,
        store_fraction: float = 0.3,
        operand_size: int = 4,
    ) -> None:
        if not 0.0 < loadstore_fraction <= 1.0:
            raise ValueError(
                f"loadstore_fraction must be in (0, 1], got {loadstore_fraction}"
            )
        if not 0.0 <= store_fraction <= 1.0:
            raise ValueError(
                f"store_fraction must be in [0, 1], got {store_fraction}"
            )
        if operand_size <= 0:
            raise ValueError(f"operand_size must be positive, got {operand_size}")
        self.rng = random.Random(seed)
        self.loadstore_fraction = loadstore_fraction
        self.store_fraction = store_fraction
        self.operand_size = operand_size

    def build(self, pattern: Iterator[int], n_instructions: int) -> list[Instruction]:
        """Materialize ``n_instructions`` instructions around ``pattern``.

        Memory operations are spread pseudo-randomly at the configured
        density; each consumes the next pattern address.
        """
        if n_instructions <= 0:
            raise ValueError("n_instructions must be positive")
        rng = self.rng
        instructions: list[Instruction] = []
        for _ in range(n_instructions):
            if rng.random() < self.loadstore_fraction:
                kind = (
                    OpKind.STORE
                    if rng.random() < self.store_fraction
                    else OpKind.LOAD
                )
                instructions.append(
                    Instruction(kind, next(pattern), self.operand_size)
                )
            else:
                instructions.append(ALU_OP)
        return instructions
