"""Synthetic memory-reference patterns.

Each pattern function returns an :class:`AddressStream` — an **infinite
iterator of byte addresses** capturing one locality archetype that can
also be drained in bulk (``take(n)`` -> numpy array);
:class:`SyntheticTraceBuilder` interleaves the addresses with ALU
instructions and a load/store mix to produce an instruction stream of
any length.  Address generation and the builder's load/store draws are
vectorized with numpy, so materializing a 60k-instruction trace costs a
handful of array operations rather than per-instruction RNG calls.

The archetypes — sequential sweeps, strides, working sets, pointer
chases — are the building blocks from which the SPEC92 stand-in profiles
(:mod:`repro.trace.spec92`) are composed.  What matters for the paper's
Figure 1 is (a) how often consecutive references fall on the same cache
line (spatial locality inside the missing line) and (b) how clustered
misses are; both are directly controlled here.

Determinism: patterns that need randomness take a ``random.Random`` and
seed a private numpy generator from it, so the same seed reproduces the
same trace (and the draw is deterministic across processes).
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.trace.record import ALU_OP, Instruction, OpKind

#: Buffer refill size when an AddressStream is consumed one ``next()``
#: at a time (markov-phase traces do this); bulk ``take`` calls bypass it.
_ITER_BATCH = 1024


class AddressStream(Iterator[int]):
    """An infinite address stream with scalar and bulk interfaces.

    Iterating yields one Python ``int`` per reference (the historical
    pattern contract, still used by phase-switching trace builders);
    ``take(n)`` returns the next ``n`` addresses as one ``int64`` array
    without per-element Python overhead.  Both views consume the same
    underlying stream, in order.
    """

    __slots__ = ("_batch", "_buffer", "_cursor")

    def __init__(self, batch: Callable[[int], np.ndarray]) -> None:
        self._batch = batch
        self._buffer: np.ndarray | None = None
        self._cursor = 0

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` addresses as an ``int64`` array."""
        if n < 0:
            raise ValueError(f"cannot take {n} addresses")
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self._buffer is None or self._cursor >= self._buffer.shape[0]:
            return self._batch(n)
        head = self._buffer[self._cursor : self._cursor + n]
        self._cursor += head.shape[0]
        if head.shape[0] == n:
            return head
        return np.concatenate([head, self._batch(n - head.shape[0])])

    def __iter__(self) -> AddressStream:
        return self

    def __next__(self) -> int:
        if self._buffer is None or self._cursor >= self._buffer.shape[0]:
            self._buffer = self._batch(_ITER_BATCH)
            self._cursor = 0
        value = int(self._buffer[self._cursor])
        self._cursor += 1
        return value


def _as_stream(source: Iterable[int]) -> AddressStream:
    """Adapt a plain address iterator to the bulk interface."""
    if isinstance(source, AddressStream):
        return source
    iterator = iter(source)

    def batch(n: int) -> np.ndarray:
        return np.fromiter(itertools.islice(iterator, n), dtype=np.int64, count=n)

    return AddressStream(batch)


def _generator_from(rng: random.Random) -> np.random.Generator:
    """A numpy generator seeded deterministically from ``rng``."""
    return np.random.default_rng(rng.getrandbits(128))


def sequential_sweep(
    base: int, array_bytes: int, element_size: int = 8
) -> AddressStream:
    """Endless forward sweeps over one array — vectorizable FP loops.

    Touches ``base, base+e, base+2e, ...`` and wraps; maximal spatial
    locality (every line is consumed word by word after its miss).
    """
    if array_bytes <= 0 or element_size <= 0:
        raise ValueError("array_bytes and element_size must be positive")
    offset = 0

    def batch(n: int) -> np.ndarray:
        nonlocal offset
        steps = offset + element_size * np.arange(n, dtype=np.int64)
        offset = (offset + element_size * n) % array_bytes
        return base + steps % array_bytes

    return AddressStream(batch)


def strided_sweep(
    base: int, array_bytes: int, stride: int, element_size: int = 8
) -> AddressStream:
    """Endless sweeps with a fixed stride — column accesses, FFT shuffles.

    A stride at or above the line size defeats spatial locality entirely;
    intermediate strides hit every ``line/stride``-th word.
    """
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    if array_bytes <= 0 or element_size <= 0:
        raise ValueError("array_bytes and element_size must be positive")
    del element_size  # the stride fully determines the footprint step
    offset = 0

    def batch(n: int) -> np.ndarray:
        nonlocal offset
        steps = offset + stride * np.arange(n, dtype=np.int64)
        offset = (offset + stride * n) % array_bytes
        return base + steps % array_bytes

    return AddressStream(batch)


def random_uniform(
    base: int, region_bytes: int, rng: random.Random, align: int = 4
) -> AddressStream:
    """Uniformly random references inside one region — hash tables, heaps."""
    if region_bytes <= align:
        raise ValueError("region must exceed the alignment")
    slots = region_bytes // align
    generator = _generator_from(rng)

    def batch(n: int) -> np.ndarray:
        return base + generator.integers(0, slots, size=n) * align

    return AddressStream(batch)


def working_set(
    base: int,
    hot_bytes: int,
    cold_bytes: int,
    hot_probability: float,
    rng: random.Random,
    align: int = 4,
) -> AddressStream:
    """Two-level working set: a hot region hit with ``hot_probability``.

    Models codes with a small resident kernel plus occasional excursions;
    temporal locality is tuned by the probability and the hot size.
    """
    if not 0.0 <= hot_probability <= 1.0:
        raise ValueError(f"hot_probability must be in [0, 1], got {hot_probability}")
    if hot_bytes <= align or cold_bytes <= align:
        raise ValueError("region must exceed the alignment")
    hot_slots = hot_bytes // align
    cold_slots = cold_bytes // align
    generator = _generator_from(rng)

    def batch(n: int) -> np.ndarray:
        is_hot = generator.random(n) < hot_probability
        hot_addresses = base + generator.integers(0, hot_slots, size=n) * align
        cold_addresses = (
            base + hot_bytes + generator.integers(0, cold_slots, size=n) * align
        )
        return np.where(is_hot, hot_addresses, cold_addresses)

    return AddressStream(batch)


def pointer_chase(
    base: int, nodes: int, node_bytes: int, rng: random.Random
) -> AddressStream:
    """A permutation walk over linked nodes — no spatial locality at all.

    The node order is a fixed random cycle, so the stream is deterministic
    given the RNG yet defeats any prefetch-like locality.
    """
    if nodes < 2:
        raise ValueError("need at least two nodes to chase")
    order = list(range(nodes))
    rng.shuffle(order)
    table = base + np.asarray(order, dtype=np.int64) * node_bytes
    position = 0

    def batch(n: int) -> np.ndarray:
        nonlocal position
        indices = (position + np.arange(n, dtype=np.int64)) % nodes
        position = (position + n) % nodes
        return table[indices]

    return AddressStream(batch)


def mix(
    streams: Sequence[Iterable[int]],
    weights: Sequence[float],
    rng: random.Random,
    run_length: int = 1,
) -> AddressStream:
    """Interleave ``streams``, drawing runs of references from each.

    ``run_length`` is the mean length of a burst taken from one stream
    before re-drawing (geometric distribution).  ``run_length = 1``
    re-draws every reference — maximal interleaving; larger values model
    inner loops that stay on one array for a stretch, which preserves the
    within-line sequential runs that distinguish the BNL stalling
    variants (Figure 1).
    """
    if len(streams) != len(weights) or not streams:
        raise ValueError("streams and weights must be equal-length and non-empty")
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ValueError("weights must be non-negative with a positive sum")
    if run_length < 1:
        raise ValueError(f"run_length must be >= 1, got {run_length}")
    sources = [_as_stream(stream) for stream in streams]
    probabilities = np.asarray(weights, dtype=float)
    probabilities = probabilities / probabilities.sum()
    switch_probability = 1.0 / run_length
    generator = _generator_from(rng)
    n_sources = len(sources)
    current = 0
    remaining = 0  # references left in the current burst

    def batch(n: int) -> np.ndarray:
        nonlocal current, remaining
        parts: list[np.ndarray] = []
        filled = 0
        while filled < n:
            if remaining <= 0:
                current = int(generator.choice(n_sources, p=probabilities))
                remaining = int(generator.geometric(switch_probability))
            segment = min(remaining, n - filled)
            parts.append(sources[current].take(segment))
            remaining -= segment
            filled += segment
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    return AddressStream(batch)


class SyntheticTraceBuilder:
    """Assemble an instruction stream from an address pattern.

    Parameters
    ----------
    seed:
        Seeds the builder's RNG; the same seed reproduces the same trace.
    loadstore_fraction:
        Fraction of instructions that reference data memory (~0.3 in the
        paper's trace studies).
    store_fraction:
        Fraction of memory references that are stores.
    operand_size:
        Bytes per reference (4 = word, matching the paper's D=4 baseline).
    """

    def __init__(
        self,
        seed: int = 0,
        loadstore_fraction: float = 0.3,
        store_fraction: float = 0.3,
        operand_size: int = 4,
    ) -> None:
        if not 0.0 < loadstore_fraction <= 1.0:
            raise ValueError(
                f"loadstore_fraction must be in (0, 1], got {loadstore_fraction}"
            )
        if not 0.0 <= store_fraction <= 1.0:
            raise ValueError(
                f"store_fraction must be in [0, 1], got {store_fraction}"
            )
        if operand_size <= 0:
            raise ValueError(f"operand_size must be positive, got {operand_size}")
        self.rng = random.Random(seed)
        self._generator = _generator_from(self.rng)
        self.loadstore_fraction = loadstore_fraction
        self.store_fraction = store_fraction
        self.operand_size = operand_size

    def build_reference_arrays(
        self, pattern: Iterable[int], n_instructions: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The reference stream of :meth:`build`, as parallel arrays.

        Returns ``(index, address, is_store, size)`` — the memory
        references' positions within the instruction stream, their
        addresses, store flags and operand sizes, drawn with the exact
        RNG sequence :meth:`build` uses.  Consumers that only need the
        references (the reuse-distance profiler) read these directly and
        skip Instruction materialization; the test suite pins them
        byte-identical to profiling the materialized trace.
        """
        if n_instructions <= 0:
            raise ValueError("n_instructions must be positive")
        generator = self._generator
        is_memory = generator.random(n_instructions) < self.loadstore_fraction
        positions = np.flatnonzero(is_memory)
        is_store = generator.random(positions.shape[0]) < self.store_fraction
        addresses = _as_stream(pattern).take(positions.shape[0])
        sizes = np.full(positions.shape[0], np.int64(self.operand_size))
        return positions, addresses, is_store, sizes

    def build(
        self, pattern: Iterable[int], n_instructions: int
    ) -> list[Instruction]:
        """Materialize ``n_instructions`` instructions around ``pattern``.

        Memory operations are spread pseudo-randomly at the configured
        density; each consumes the next pattern address, in order.
        """
        positions, addresses, is_store, _ = self.build_reference_arrays(
            pattern, n_instructions
        )

        instructions: list[Instruction] = [ALU_OP] * n_instructions
        size = self.operand_size
        load_kind, store_kind = OpKind.LOAD, OpKind.STORE
        for index, address, store in zip(
            positions.tolist(), addresses.tolist(), is_store.tolist()
        ):
            instructions[index] = Instruction(
                store_kind if store else load_kind, address, size
            )
        return instructions
