"""Workload substrate: instruction/memory-reference streams.

The paper characterizes applications by trace-driven simulation of six
SPEC92 programs.  Those traces are not redistributable, so this package
provides synthetic generators whose locality structure drives the same
code paths (see DESIGN.md, substitutions):

* :mod:`repro.trace.synthetic` — building-block reference patterns
  (sequential sweeps, strides, working sets, pointer chasing);
* :mod:`repro.trace.spec92` — six named workload profiles standing in
  for nasa7, swm256, wave5, ear, doduc and hydro2d;
* :mod:`repro.trace.io` — a plain-text trace format for persistence;
* :mod:`repro.trace.stats` — stream summary statistics.
"""

from repro.trace.record import Instruction, OpKind
from repro.trace.io import read_trace, write_trace
from repro.trace.loops import (
    Matrix,
    matmul,
    matvec,
    square_matmul_trace,
    with_compute,
)
from repro.trace.markov import MarkovWorkload, Phase, three_phase_example
from repro.trace.multiprogram import (
    MultiprogramComparison,
    disjoint_address_spaces,
    interleave,
    measure_pollution,
    rebase,
)
from repro.trace.spec92 import SPEC92_PROFILES, WorkloadProfile, spec92_trace
from repro.trace.stats import TraceStats, summarize
from repro.trace.synthetic import (
    SyntheticTraceBuilder,
    pointer_chase,
    random_uniform,
    sequential_sweep,
    strided_sweep,
    working_set,
)

__all__ = [
    "Instruction",
    "OpKind",
    "read_trace",
    "write_trace",
    "SyntheticTraceBuilder",
    "sequential_sweep",
    "strided_sweep",
    "random_uniform",
    "working_set",
    "pointer_chase",
    "WorkloadProfile",
    "SPEC92_PROFILES",
    "spec92_trace",
    "TraceStats",
    "summarize",
    "MarkovWorkload",
    "Phase",
    "three_phase_example",
    "MultiprogramComparison",
    "interleave",
    "rebase",
    "disjoint_address_spaces",
    "measure_pollution",
    "Matrix",
    "matvec",
    "matmul",
    "with_compute",
    "square_matmul_trace",
]
