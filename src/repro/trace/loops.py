"""Affine loop-nest reference generators.

Dense linear algebra drove the FP side of SPEC92 and remains the
canonical cache workload; this module generates the exact reference
streams of matrix-vector and (optionally tiled) matrix-matrix kernels,
so the line-size and hierarchy analyses can run on *structured* traces
whose locality is analytically known rather than statistically tuned.

Matrices are row-major with ``element_size``-byte elements; the
generators yield the data references in the order a simple compiler
would emit them (loads for operands, a store for the result element).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.trace.record import ALU_OP, Instruction, OpKind


@dataclass(frozen=True)
class Matrix:
    """A row-major matrix placed at ``base``."""

    base: int
    rows: int
    cols: int
    element_size: int = 8

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        if self.element_size <= 0:
            raise ValueError("element_size must be positive")

    def address(self, row: int, col: int) -> int:
        """Byte address of element (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"({row}, {col}) outside {self.rows}x{self.cols}")
        return self.base + (row * self.cols + col) * self.element_size

    @property
    def bytes(self) -> int:
        """Total footprint."""
        return self.rows * self.cols * self.element_size


def matvec(
    matrix: Matrix, vector_base: int, result_base: int
) -> Iterator[Instruction]:
    """``y = A x``: for each row, stream the row and the vector.

    Per element: load A[i][j], load x[j]; per row: store y[i].  The row
    accesses are unit-stride (line-friendly); x is re-swept every row
    (temporal locality proportional to its size).
    """
    x = Matrix(vector_base, matrix.cols, 1, matrix.element_size)
    y = Matrix(result_base, matrix.rows, 1, matrix.element_size)
    for i in range(matrix.rows):
        for j in range(matrix.cols):
            yield Instruction(OpKind.LOAD, matrix.address(i, j), matrix.element_size)
            yield Instruction(OpKind.LOAD, x.address(j, 0), matrix.element_size)
        yield Instruction(OpKind.STORE, y.address(i, 0), matrix.element_size)


def matmul(
    a: Matrix, b: Matrix, c: Matrix, tile: int | None = None
) -> Iterator[Instruction]:
    """``C += A B`` in ijk order, optionally tiled by ``tile`` on all axes.

    Untiled ijk streams B column-wise (stride = row length — the classic
    cache killer); tiling restores locality by keeping a ``tile x tile``
    working set resident, which is exactly the effect the line-size and
    multilevel analyses should see.
    """
    if a.cols != b.rows or c.rows != a.rows or c.cols != b.cols:
        raise ValueError(
            f"shape mismatch: A {a.rows}x{a.cols}, B {b.rows}x{b.cols}, "
            f"C {c.rows}x{c.cols}"
        )
    if tile is not None and tile <= 0:
        raise ValueError(f"tile must be positive, got {tile}")
    step = tile or max(a.rows, a.cols, b.cols)

    for i0 in range(0, a.rows, step):
        for j0 in range(0, b.cols, step):
            for k0 in range(0, a.cols, step):
                for i in range(i0, min(i0 + step, a.rows)):
                    for j in range(j0, min(j0 + step, b.cols)):
                        for k in range(k0, min(k0 + step, a.cols)):
                            yield Instruction(
                                OpKind.LOAD, a.address(i, k), a.element_size
                            )
                            yield Instruction(
                                OpKind.LOAD, b.address(k, j), b.element_size
                            )
                        yield Instruction(
                            OpKind.LOAD, c.address(i, j), c.element_size
                        )
                        yield Instruction(
                            OpKind.STORE, c.address(i, j), c.element_size
                        )


def with_compute(
    references: Iterator[Instruction], alu_per_reference: int = 2
) -> Iterator[Instruction]:
    """Interleave ALU work after every memory reference.

    Models the multiply-add and index arithmetic between touches; the
    paper's ~0.3 load/store density corresponds to
    ``alu_per_reference = 2``.
    """
    if alu_per_reference < 0:
        raise ValueError("alu_per_reference must be non-negative")
    for reference in references:
        yield reference
        for _ in range(alu_per_reference):
            yield ALU_OP


def _matmul_slot_keys(
    a: Matrix, b: Matrix, c: Matrix, tile: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """``(unique, inverse)`` slot keys of the matmul reference stream.

    Each tile block's interleaved address pattern — ``(A[i,k], B[k,j])``
    k pairs then the ``C[i,j]`` load/store — is a single broadcast into
    a ``(bi, bj, 2*bk + 2)`` array; ``unique[inverse]`` reconstructs the
    full stream's keys in reference order.
    """
    if a.cols != b.rows or c.rows != a.rows or c.cols != b.cols:
        raise ValueError(
            f"shape mismatch: A {a.rows}x{a.cols}, B {b.rows}x{b.cols}, "
            f"C {c.rows}x{c.cols}"
        )
    if tile is not None and tile <= 0:
        raise ValueError(f"tile must be positive, got {tile}")
    step = tile or max(a.rows, a.cols, b.cols)

    # Each slot key is ``address * 4 + slot class`` (A load / B load /
    # C load / C store), so one np.unique pass both dedups the heavily
    # reused references and keeps their kind and operand size straight.
    blocks: list[np.ndarray] = []
    for i0 in range(0, a.rows, step):
        i = np.arange(i0, min(i0 + step, a.rows))
        for j0 in range(0, b.cols, step):
            j = np.arange(j0, min(j0 + step, b.cols))
            for k0 in range(0, a.cols, step):
                k = np.arange(k0, min(k0 + step, a.cols))
                width = 2 * len(k) + 2  # (A, B) pairs + C load + C store
                block = np.empty((len(i), len(j), width), dtype=np.int64)
                block[:, :, 0 : 2 * len(k) : 2] = (
                    a.base
                    + (i[:, None, None] * a.cols + k[None, None, :])
                    * a.element_size
                ) * 4
                block[:, :, 1 : 2 * len(k) : 2] = (
                    b.base
                    + (k[None, None, :] * b.cols + j[None, :, None])
                    * b.element_size
                ) * 4 + 1
                c_keys = (
                    c.base
                    + (i[:, None] * c.cols + j[None, :]) * c.element_size
                ) * 4
                block[:, :, 2 * len(k)] = c_keys + 2
                block[:, :, 2 * len(k) + 1] = c_keys + 3
                blocks.append(block.ravel())
    keys = np.concatenate(blocks) if blocks else np.empty(0, dtype=np.int64)
    unique, inverse = np.unique(keys, return_inverse=True)
    return unique, inverse


def matmul_instructions(
    a: Matrix, b: Matrix, c: Matrix, tile: int | None = None
) -> list[Instruction]:
    """Array-generated equivalent of ``list(matmul(a, b, c, tile))``.

    The iterator form runs six nested Python loops and one
    bounds-checked :meth:`Matrix.address` call per reference; here the
    address pattern comes from :func:`_matmul_slot_keys` in bulk, and
    only the final :class:`Instruction` materialization stays
    per-element.  The test suite pins this path element-identical to the
    iterator, which remains the executable specification.
    """
    unique, inverse = _matmul_slot_keys(a, b, c, tile)
    kinds = (OpKind.LOAD, OpKind.LOAD, OpKind.LOAD, OpKind.STORE)
    sizes = (a.element_size, b.element_size, c.element_size, c.element_size)
    table = [
        Instruction(kinds[key & 3], key >> 2, sizes[key & 3])
        for key in unique.tolist()
    ]
    return list(map(table.__getitem__, inverse.tolist()))


def square_matmul_profile_arrays(
    n: int,
    tile: int | None = None,
    element_size: int = 8,
    alu_per_reference: int = 2,
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Reference arrays of :func:`square_matmul_trace`, no objects built.

    Returns ``(n_instructions, index, address, is_store, size)`` — the
    exact arrays ``repro.cache.reuse.build_profile`` would extract from
    the materialized trace, derived without constructing a single
    :class:`Instruction`.  This works because the trace layout is
    analytically known: references sit at every ``1 + alu_per_reference``
    positions (ALU padding in between), and the slot keys carry address,
    kind, and operand size.  The test suite pins this byte-identical to
    the ``build_profile(square_matmul_trace(...))`` arrays.
    """
    if alu_per_reference < 0:
        raise ValueError("alu_per_reference must be non-negative")
    a = Matrix(0, n, n, element_size)
    b = Matrix(a.bytes, n, n, element_size)
    c = Matrix(a.bytes + b.bytes, n, n, element_size)
    unique, inverse = _matmul_slot_keys(a, b, c, tile)
    slot = (unique & 3)[inverse]
    address = (unique >> 2)[inverse]
    is_store = slot == 3
    size = np.full(len(inverse), np.int64(element_size))
    stride = 1 + alu_per_reference
    index = np.arange(len(inverse), dtype=np.int64) * stride
    return len(inverse) * stride, index, address, is_store, size


def square_matmul_trace(
    n: int,
    tile: int | None = None,
    element_size: int = 8,
    alu_per_reference: int = 2,
) -> list[Instruction]:
    """Convenience: the full trace of an ``n x n`` matmul.

    A at 0, B and C following contiguously.  Built on the vectorized
    :func:`matmul_instructions` path with ALU interleaving done by slice
    assignment — the stream is element-identical to
    ``list(with_compute(matmul(a, b, c, tile), alu_per_reference))``.
    """
    if alu_per_reference < 0:
        raise ValueError("alu_per_reference must be non-negative")
    a = Matrix(0, n, n, element_size)
    b = Matrix(a.bytes, n, n, element_size)
    c = Matrix(a.bytes + b.bytes, n, n, element_size)
    references = matmul_instructions(a, b, c, tile)
    if alu_per_reference == 0:
        return references
    stride = 1 + alu_per_reference
    trace = [ALU_OP] * (len(references) * stride)
    trace[::stride] = references
    return trace


#: Bump whenever the loop generators change the reference stream for a
#: given parameter tuple (invalidates ``repro.cache.events_store``).
LOOP_GENERATOR_VERSION = 1


def matmul_fingerprint(
    n: int,
    tile: int | None = None,
    element_size: int = 8,
    alu_per_reference: int = 2,
) -> str:
    """Content identity of one :func:`square_matmul_trace` stream.

    The generator is a pure function of its parameters, so they (plus
    the generator version) identify the trace without hashing it.
    """
    return (
        f"matmul/{LOOP_GENERATOR_VERSION}/{n}/{tile}/"
        f"{element_size}/{alu_per_reference}"
    )
