"""Summary statistics over instruction streams.

Used by tests and examples to confirm a synthetic trace has the intended
character (density of memory operations, store share, footprint, spatial
locality) before it is fed to the simulators.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.trace.record import Instruction, OpKind


@dataclass(frozen=True)
class TraceStats:
    """Aggregate measurements of one instruction stream."""

    instructions: int
    loads: int
    stores: int
    unique_lines: int
    same_line_pairs: int

    @property
    def memory_references(self) -> int:
        """Loads plus stores."""
        return self.loads + self.stores

    @property
    def loadstore_fraction(self) -> float:
        """Memory references per instruction."""
        return self.memory_references / self.instructions if self.instructions else 0.0

    @property
    def store_fraction(self) -> float:
        """Stores per memory reference."""
        refs = self.memory_references
        return self.stores / refs if refs else 0.0

    @property
    def spatial_locality(self) -> float:
        """Fraction of consecutive reference pairs landing on one line.

        This is the property that drives the Figure 1 stalling factors:
        high values mean the processor re-touches the line being filled
        almost immediately after a miss.
        """
        pairs = self.memory_references - 1
        return self.same_line_pairs / pairs if pairs > 0 else 0.0


def summarize(instructions: Iterable[Instruction], line_size: int = 32) -> TraceStats:
    """Single-pass statistics for a stream, at the given line granularity."""
    if line_size <= 0:
        raise ValueError(f"line_size must be positive, got {line_size}")
    total = loads = stores = same_line = 0
    lines: set[int] = set()
    previous_line: int | None = None
    for inst in instructions:
        total += 1
        if inst.kind is OpKind.ALU:
            continue
        if inst.kind is OpKind.LOAD:
            loads += 1
        else:
            stores += 1
        line = inst.address // line_size
        lines.add(line)
        if previous_line is not None and line == previous_line:
            same_line += 1
        previous_line = line
    return TraceStats(
        instructions=total,
        loads=loads,
        stores=stores,
        unique_lines=len(lines),
        same_line_pairs=same_line,
    )
