"""Instruction records flowing through the timing simulator.

The RISC model of the paper (Section 3.1) distinguishes only how an
instruction touches memory: not at all, a load, or a store.  Instruction
fetches are modelled separately (Section 3.4) and are optional in the
stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class OpKind(Enum):
    """Instruction classes relevant to the execution-time model."""

    ALU = "alu"      # any non-memory instruction; one cycle
    LOAD = "load"    # data read
    STORE = "store"  # data write

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self is not OpKind.ALU

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class Instruction:
    """One retired instruction.

    ``address`` and ``size`` are meaningful only for memory operations;
    ALU instructions carry ``address = 0, size = 0``.  ``size`` is the
    operand size in bytes (the paper assumes write operands no larger
    than the bus width for the W term).
    """

    kind: OpKind
    address: int = 0
    size: int = 4

    def __post_init__(self) -> None:
        if self.kind.is_memory:
            if self.address < 0:
                raise ValueError(f"negative address {self.address:#x}")
            if self.size <= 0:
                raise ValueError(f"memory op needs positive size, got {self.size}")


#: Shared singleton for the (very common) non-memory instruction.
ALU_OP = Instruction(kind=OpKind.ALU, address=0, size=0)


def load(address: int, size: int = 4) -> Instruction:
    """Convenience constructor for a load."""
    return Instruction(OpKind.LOAD, address, size)


def store(address: int, size: int = 4) -> Instruction:
    """Convenience constructor for a store."""
    return Instruction(OpKind.STORE, address, size)
