"""Figure 1 companion — Eq. (8)'s analytic stalling factor vs simulation.

The paper states the BNL1 stalling factor is "computed as follows"
(Eq. 8) from the distribution of instruction distances between accesses
that engage an in-flight line.  This experiment evaluates Eq. (8)
directly on the trace-derived distance distribution and overlays it on
the event-driven simulator's measurement, validating that the closed
form tracks the simulation across the full memory-cycle range.
"""

from __future__ import annotations

from repro.cache.cache import CacheConfig
from repro.core.stalling import StallPolicy
from repro.cpu.replay import replay
from repro.cpu.stall_measure import stall_factor_eq8
from repro.experiments.base import ExperimentResult
from repro.experiments._phi import spec92_events
from repro.memory.mainmem import MainMemory
from repro.trace.spec92 import SPEC92_PROFILES

CACHE = CacheConfig(8192, 32, 2)
BUS_WIDTH = 4
FULL_BETAS = (2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0)
QUICK_BETAS = (4.0, 8.0, 16.0)


def run(quick: bool = False) -> ExperimentResult:
    """Average Eq. (8) and simulated BNL1 phi over the six programs."""
    betas = QUICK_BETAS if quick else FULL_BETAS
    length = 8_000 if quick else 30_000
    result = ExperimentResult(
        experiment_id="figure1_eq8",
        title="Eq. (8) analytic vs simulated BNL1 stalling factor (% of L/D)",
        x_label="memory cycle time per 4 bytes (beta_m)",
        x_values=list(betas),
    )

    # One functional pass (phase 1) per trace; the event stream carries
    # both Eq. (8)'s inputs (distances, miss counts) and everything the
    # per-beta timing replays need.
    per_trace = {}
    for name in SPEC92_PROFILES:
        events = spec92_events(name, length, CACHE, seed=7)
        per_trace[name] = (events, events.inter_miss_distances())

    analytic_rows, simulated_rows = [], []
    for beta in betas:
        memory = MainMemory(beta, BUS_WIDTH)
        analytic = simulated = 0.0
        for name, (events, distances) in per_trace.items():
            analytic += (
                stall_factor_eq8(distances, events.n_fills, 8, beta) / 8 * 100
            )
            simulated += (
                replay(events, memory, StallPolicy.BUS_NOT_LOCKED_1).stall_factor
                / 8
                * 100
            )
        analytic_rows.append(analytic / len(per_trace))
        simulated_rows.append(simulated / len(per_trace))
    result.add_series("Eq. (8) analytic", analytic_rows)
    result.add_series("simulated", simulated_rows)

    worst = max(
        abs(a - s) for a, s in zip(analytic_rows, simulated_rows)
    )
    result.notes.append(
        f"worst Eq.(8)-vs-simulation gap: {worst:.1f} points of L/D — the "
        "closed form tracks the event-driven measurement."
    )
    result.notes.append(
        "Eq. (8) charges every engaged access the full fill tail, so it "
        "sits at or above the simulation (which credits partial overlap)."
    )
    return result
