"""Extension: how much banking realizes the paper's pipelined memory.

Eq. (9) parameterizes the pipelined memory by ``q`` and the paper calls
``q = 2`` the best possible implementation.  This extension grounds that
parameter in hardware: with ``B`` interleaved banks, sequential line
fills achieve ``q_eff = max(bus, ceil(beta_m / B))``, so the bank count
needed for the headline results scales with the memory cycle time —
``q = 2`` at ``beta_m = 8`` takes 4 banks, at ``beta_m = 20`` it takes
10 (rounded up to a power of two: 16).

The table also cross-checks the banked *simulator* against the Eq. (9)
idealization: for sequential fills the interleaved memory's fill time
equals the pipelined model at ``q = q_eff`` exactly.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.memory.interleaved import (
    InterleavedMemory,
    banks_for_turnaround,
    effective_turnaround,
)
from repro.memory.pipelined import PipelinedMemory
from repro.util.tables import format_table

LINE_SIZE = 32
BUS_WIDTH = 4
BETAS = (4.0, 8.0, 12.0, 20.0)
BANK_COUNTS = (1, 2, 4, 8, 16)


def run(quick: bool = False) -> ExperimentResult:
    """q_eff per (beta_m, banks) plus Eq. 9 agreement and bank budgets."""
    del quick
    result = ExperimentResult(
        experiment_id="extension_interleaving",
        title="Interleaved banks realizing Eq. (9)'s pipelined memory (L=32, D=4)",
        x_label="banks",
        x_values=[float(b) for b in BANK_COUNTS],
    )
    mismatches = 0
    for beta in BETAS:
        q_row = []
        for banks in BANK_COUNTS:
            q_eff = effective_turnaround(beta, banks)
            q_row.append(q_eff)
            interleaved = InterleavedMemory(beta, BUS_WIDTH, banks)
            pipelined = PipelinedMemory(beta, BUS_WIDTH, turnaround=q_eff)
            if interleaved.line_fill_duration(LINE_SIZE) != (
                pipelined.line_fill_duration(LINE_SIZE)
            ):
                mismatches += 1
        result.add_series(f"beta_m={beta:g}", q_row)

    rows = [
        (beta, target, banks_for_turnaround(beta, target))
        for beta in BETAS
        for target in (2.0, 4.0)
        if target >= 1.0
    ]
    result.tables.append(
        format_table(
            ["beta_m", "target q", "banks needed"],
            rows,
            title="Bank budget for a target Eq. (9) turnaround",
        )
    )
    result.notes.append(
        "interleaved fill time == Eq. (9) at q_eff for every cell: "
        + ("yes" if mismatches == 0 else f"NO ({mismatches} mismatches)")
    )
    result.notes.append(
        "the paper's q=2 'best possible' pipelined system needs "
        f"{banks_for_turnaround(8.0, 2.0)} banks at beta_m=8 and "
        f"{banks_for_turnaround(20.0, 2.0)} at beta_m=20 — banking cost "
        "grows exactly where pipelining pays most (Figures 4-5)."
    )
    return result
