"""Figure 4 — architectural tradeoff for L = 32 bytes.

Same sweep as Figure 3 at L/D = 8: the pipelined memory system now
overtakes doubling the bus at beta_m around five cycles and trades a
large hit ratio at long memory cycle times.
"""

from __future__ import annotations

from repro.core.stalling import StallPolicy
from repro.experiments._unified import build_unified_figure
from repro.experiments.base import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    """Build the L=32 unified-comparison sweep (BNL1 measured)."""
    return build_unified_figure(
        "figure4", line_size=32, stall_policy=StallPolicy.BUS_NOT_LOCKED_1, quick=quick
    )
