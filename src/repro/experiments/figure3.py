"""Figure 3 — architectural tradeoff for L = 8 bytes.

Hit ratio traded (Eq. 6) by doubling the bus, read-bypassing write
buffers, the measured BNL1 feature, and a pipelined memory system, all
against the full-stalling non-pipelined baseline at base HR = 95 %,
alpha = 0.5, D = 4 B, q = 2.  At L/D = 2, pipelining never overtakes
doubling the bus.
"""

from __future__ import annotations

from repro.core.stalling import StallPolicy
from repro.experiments._unified import build_unified_figure
from repro.experiments.base import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    """Build the L=8 unified-comparison sweep."""
    return build_unified_figure(
        "figure3", line_size=8, stall_policy=StallPolicy.BUS_NOT_LOCKED_1, quick=quick
    )
