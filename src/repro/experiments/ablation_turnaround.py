"""Ablation: pipelined-memory turnaround q.

The paper evaluates q = 2 as "the best possible implementation of a
pipelined system" and notes the crossover against bus doubling sits at
"about five or six clock cycles" for that q.  This ablation sweeps q and
reports (a) the traded hit ratio at the Figure 4 operating point and
(b) the closed-form crossover, showing how quickly a slower pipeline
erodes the feature: the crossover grows linearly in q
(``beta* = q (L/D - 1)/(L/2D - 1)``), so at q = 6 pipelining only pays
for memories slower than ~14 cycles.
"""

from __future__ import annotations

from repro.core.params import SystemConfig
from repro.core.pipelined import (
    pipelined_miss_volume_ratio,
    pipelined_vs_doubling_crossover,
)
from repro.core.tradeoff import hit_ratio_traded
from repro.experiments.base import ExperimentResult

BASE_HIT_RATIO = 0.95
Q_GRID = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)


def run(quick: bool = False) -> ExperimentResult:
    """Sweep q at (L=32, D=4, beta_m=8) and report crossovers."""
    del quick
    result = ExperimentResult(
        experiment_id="ablation_turnaround",
        title="Pipeline turnaround (q) sensitivity at L=32, D=4, beta_m=8",
        x_label="pipeline turnaround q (cycles)",
        x_values=list(Q_GRID),
    )
    traded, crossovers = [], []
    for q in Q_GRID:
        config = SystemConfig(4, 32, 8.0, pipeline_turnaround=q)
        traded.append(
            100.0
            * hit_ratio_traded(pipelined_miss_volume_ratio(config), BASE_HIT_RATIO)
        )
        crossovers.append(pipelined_vs_doubling_crossover(32, 4, q))
    result.add_series("pipelined traded HR (%)", traded)
    result.add_series("crossover beta_m", crossovers)

    assert traded == sorted(traded, reverse=True)
    result.notes.append(
        "traded hit ratio falls monotonically with q: a slower pipeline "
        "is directly a smaller feature."
    )
    per_q = crossovers[1] / Q_GRID[1]
    result.notes.append(
        f"crossover grows linearly at {per_q:.2f} cycles per unit q "
        "(closed form: (L/D - 1)/(L/2D - 1))."
    )
    result.notes.append(
        f"paper's q=2 point: crossover {crossovers[1]:.2f} "
        "(the 'about five' claim); at q=6 it is "
        f"{crossovers[4]:.1f} — pipelining only pays for slow memories."
    )
    return result
