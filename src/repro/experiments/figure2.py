"""Figure 2 — effect of memory latency on the hit-ratio/bus-width trade.

For a full-stalling write-allocate cache with alpha = 0.5 and D = 4
bytes, sweep the memory cycle time and plot how much hit ratio the
64-bit-bus system can give up against a 32-bit-bus baseline at hit
ratios 98 % (upper panel) and 90 % (lower panel), for line sizes 8, 16
and 32 bytes.
"""

from __future__ import annotations

from repro.core.bus_width import doubling_tradeoff
from repro.core.params import SystemConfig
from repro.experiments.base import ExperimentResult

LINE_SIZES = (8, 16, 32)
BASE_HIT_RATIOS = (0.98, 0.90)


def run(quick: bool = False) -> ExperimentResult:
    """Sweep beta_m in [2, 20] for both base hit ratios."""
    step = 2.0 if quick else 1.0
    cycles = [2.0 + step * i for i in range(int(18 / step) + 1)]
    result = ExperimentResult(
        experiment_id="figure2",
        title="Hit ratio traded by doubling a 32-bit bus (FS, alpha=0.5)",
        x_label="memory cycle time per 4 bytes (beta_m)",
        x_values=cycles,
    )
    for base_hr in BASE_HIT_RATIOS:
        for line in LINE_SIZES:
            traded = []
            for beta_m in cycles:
                config = SystemConfig(bus_width=4, line_size=line, memory_cycle=beta_m)
                tradeoff = doubling_tradeoff(config, base_hr, flush_ratio=0.5)
                traded.append(100.0 * tradeoff.hit_ratio_delta)
            result.add_series(f"HR={base_hr:.0%} L={line}", traded)

    # The two headline anchor points from Section 5.1.
    l8_at_2 = result.series["HR=98% L=8"][0]
    l32_large = result.series["HR=98% L=32"][-1]
    result.notes.append(
        f"L=8, beta_m=2: traded hit ratio {l8_at_2:.2f}% "
        "(paper: 3%, i.e. 95% vs 98%)."
    )
    result.notes.append(
        f"L=32, large beta_m: traded hit ratio {l32_large:.2f}% "
        "(paper: about 2%, i.e. 96% vs 98%)."
    )
    result.notes.append(
        "Traded hit ratio falls as beta_m grows and as the line grows — "
        "hit ratio is more precious with long memory cycles/large lines."
    )
    return result
