"""The paper's quantitative claims as checkable objects.

EXPERIMENTS.md records paper-vs-measured by hand; this module makes the
comparison executable.  Each :class:`Claim` names the paper statement,
where it appears, and a check function over the experiment results; the
report generator (:mod:`repro.experiments.report`) runs the lot and
prints a reproduction scorecard, and the test suite asserts every claim
passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.experiments.base import ExperimentResult

#: result map the checks receive: experiment id -> result.
Results = dict[str, ExperimentResult]


@dataclass(frozen=True)
class Claim:
    """One paper statement and its check."""

    claim_id: str
    section: str
    statement: str
    experiments: tuple[str, ...]
    check: Callable[[Results], bool]


@dataclass(frozen=True)
class ClaimOutcome:
    """A claim's verdict after running its check."""

    claim: Claim
    passed: bool
    error: str = ""


def _figure2_anchor(results: Results) -> bool:
    series = results["figure2"].series["HR=98% L=8"]
    return abs(series[0] - 3.0) < 0.05


def _figure2_monotone(results: Results) -> bool:
    result = results["figure2"]
    for name, values in result.series.items():
        if values != sorted(values, reverse=True):
            return False
    return True


def _figure1_ordering(results: Results) -> bool:
    series = results["figure1"].series
    n = len(results["figure1"].x_values)
    return all(
        series["BNL3"][i]
        <= min(series["BNL1"][i], series["BNL2"][i])
        <= max(series["BNL1"][i], series["BNL2"][i])
        <= series["BL"][i]
        for i in range(n)
    )


def _figure1_rising(results: Results) -> bool:
    return all(
        values == sorted(values)
        for values in results["figure1"].series.values()
    )


def _figure3_no_crossover(results: Results) -> bool:
    series = results["figure3"].series
    return all(
        p < b for p, b in zip(series["pipelined mem"], series["doubling bus"])
    )


def _figure4_crossover_band(results: Results) -> bool:
    note = next(
        n for n in results["figure4"].notes if "crossover at beta_m" in n
    )
    value = float(note.split("beta_m = ")[1].split(" ")[0])
    return 4.0 <= value <= 6.0


def _figure45_ranking(results: Results) -> bool:
    for figure, stall in (("figure4", "BNL1"), ("figure5", "BNL3")):
        series = results[figure].series
        n = len(results[figure].x_values)
        if not all(
            series["doubling bus"][i]
            > series["write buffers"][i]
            > series[stall][i]
            for i in range(n)
        ):
            return False
    return True


def _pipelined_zero_at_q(results: Results) -> bool:
    for figure in ("figure3", "figure4", "figure5"):
        result = results[figure]
        index = result.x_values.index(2.0)
        if abs(result.series["pipelined mem"][index]) > 1e-9:
            return False
    return True


def _figure6_agreement(results: Results) -> bool:
    return "agree at every swept bus speed: yes" in " ".join(
        results["figure6"].notes
    )


def _figure6_panels(results: Results) -> bool:
    table = results["figure6"].tables[0]
    return all(
        line.strip().endswith("yes")
        for line in table.splitlines()
        if line.strip().startswith(("a ", "b ", "c ", "d "))
    )


def _example1_pairs(results: Results) -> bool:
    rendered = results["example1"].render()
    return "32K + 32-bit bus" in rendered and "128K + 32-bit bus" in rendered


def _bnl3_reduction_band(results: Results) -> bool:
    result = results["figure1"]
    reductions = [
        100.0 - v
        for beta, v in zip(result.x_values, result.series["BNL3"])
        if beta < 15
    ]
    # Band must overlap the paper's 20-30 % and stay plausible (< 55 %).
    return reductions and max(reductions) >= 20.0 and max(reductions) < 55.0


#: The paper's evaluation claims, in section order.
CLAIMS: tuple[Claim, ...] = (
    Claim(
        "fig1-ordering",
        "Figure 1 / Section 4.2",
        "Stalling factors are very high for BL, BNL1 and BNL2; BNL3 is lowest",
        ("figure1",),
        _figure1_ordering,
    ),
    Claim(
        "fig1-rising",
        "Figure 1",
        "A longer memory latency has more stalling occurrences",
        ("figure1",),
        _figure1_rising,
    ),
    Claim(
        "fig1-bnl3-band",
        "Section 5.3 / summary",
        "BNL3 cuts full-blocking read-miss latency 20-30% for beta_m < 15",
        ("figure1",),
        _bnl3_reduction_band,
    ),
    Claim(
        "fig2-anchor",
        "Section 5.1",
        "At L=8, beta_m=2, a 3% hit-ratio increase trades a 64-bit bus",
        ("figure2",),
        _figure2_anchor,
    ),
    Claim(
        "fig2-monotone",
        "Section 5.1",
        "The traded hit ratio falls as the memory cycle time grows",
        ("figure2",),
        _figure2_monotone,
    ),
    Claim(
        "fig3-no-crossover",
        "Figure 3",
        "At L = 2D pipelining never overtakes doubling the bus",
        ("figure3",),
        _figure3_no_crossover,
    ),
    Claim(
        "fig4-crossover",
        "Section 5.3 / summary",
        "Pipelining overtakes the bus at about five clocks (L/D >= 2, q=2)",
        ("figure4",),
        _figure4_crossover_band,
    ),
    Claim(
        "fig45-ranking",
        "Section 5.3 / summary",
        "Best order: doubling bus > write buffers > bus-not-locked",
        ("figure4", "figure5"),
        _figure45_ranking,
    ),
    Claim(
        "eq9-zero-at-q",
        "Section 4.4",
        "At beta_m = q the pipelined system equals the non-pipelined one",
        ("figure3", "figure4", "figure5"),
        _pipelined_zero_at_q,
    ),
    Claim(
        "fig6-smith",
        "Section 5.4.2",
        "Eq. 19's optimal line sizes exactly match Smith's",
        ("figure6",),
        _figure6_agreement,
    ),
    Claim(
        "fig6-panels",
        "Figure 6",
        "All four annotated panel optima are reproduced",
        ("figure6",),
        _figure6_panels,
    ),
    Claim(
        "example1-pairs",
        "Section 5.2",
        "64-bit+8K == 32-bit+32K and 64-bit+32K == 32-bit+128K",
        ("example1",),
        _example1_pairs,
    ),
)


def evaluate_claims(results: Results) -> list[ClaimOutcome]:
    """Check every claim whose experiments are present in ``results``."""
    outcomes = []
    for claim in CLAIMS:
        missing = [e for e in claim.experiments if e not in results]
        if missing:
            outcomes.append(
                ClaimOutcome(
                    claim, False, f"missing experiments: {', '.join(missing)}"
                )
            )
            continue
        try:
            outcomes.append(ClaimOutcome(claim, bool(claim.check(results))))
        except Exception as error:  # noqa: BLE001 - report, don't crash
            outcomes.append(ClaimOutcome(claim, False, repr(error)))
    return outcomes
