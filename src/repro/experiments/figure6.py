"""Figure 6 — validation against Smith's design-target optimal lines.

Four panels sweep the normalized bus speed ``beta`` and plot the
*reduced memory delay per reference* (Eq. 19) of each candidate line
size over the 8-byte base line, using the design-target miss-ratio
tables.  The optimal line chosen by Eq. (19) must match Smith's
criterion (Eq. 16) everywhere; each panel also checks the paper's
annotated optimum at its quoted bus speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.smith_targets import design_target_table
from repro.core.smith import reduced_memory_delay, smith_optimal_line, tradeoff_optimal_line
from repro.experiments.base import ExperimentResult
from repro.util.tables import format_table

KIB = 1024
BASE_LINE = 8
CANDIDATE_LINES = (16, 32, 64, 128)


@dataclass(frozen=True)
class Panel:
    """One Figure 6 panel: cache size, normalized latency, geometry."""

    key: str
    cache_bytes: int
    latency: float  # c, in hit-cycle units
    bus_width: int
    paper_beta: float
    paper_optimum: int
    timing_label: str


PANELS = (
    Panel("a", 16 * KIB, 12.0, 4, 2.0, 32, "360ns + 15ns/byte, D=4"),
    Panel("b", 16 * KIB, 4.0, 8, 3.0, 16, "160ns + 15ns/byte, D=8"),
    Panel("c", 16 * KIB, 18.75, 8, 1.0, 64, "600ns + 4ns/byte, D=8"),
    Panel("d", 8 * KIB, 6.0, 8, 2.0, 32, "360ns + 15ns/byte, D=8"),
)


def run(quick: bool = False) -> ExperimentResult:
    """Sweep beta in (0, 10] for every panel and validate the optima."""
    step = 2.0 if quick else 0.5
    betas = [step * i for i in range(1, int(10 / step) + 1)]
    result = ExperimentResult(
        experiment_id="figure6",
        title="Reduced memory delay vs normalized bus speed (Smith validation)",
        x_label="normalized bus speed (beta)",
        x_values=betas,
    )
    rows = []
    all_agree = True
    for panel in PANELS:
        table = design_target_table(panel.cache_bytes)
        for line in CANDIDATE_LINES:
            values = []
            for beta in betas:
                points = reduced_memory_delay(
                    table, BASE_LINE, panel.latency, beta, panel.bus_width
                )
                by_line = {p.line_size: p.reduced_delay for p in points}
                # Scale to the paper's y axis (delay units x 1000).
                values.append(1000.0 * by_line[line])
            result.add_series(f"({panel.key}) L={line}", values)

        # The Eq. 19/Eq. 16 equivalence is over a common candidate set:
        # lines at least as large as the base line (Section 5.4.2).
        candidates = {line: mr for line, mr in table.items() if line >= BASE_LINE}
        for beta in betas:
            smith = smith_optimal_line(
                candidates, panel.latency, beta, panel.bus_width
            )
            ours = tradeoff_optimal_line(
                candidates, BASE_LINE, panel.latency, beta, panel.bus_width
            )
            if smith != ours:
                all_agree = False
        at_paper_beta = smith_optimal_line(
            table, panel.latency, panel.paper_beta, panel.bus_width
        )
        rows.append(
            (
                panel.key,
                f"{panel.cache_bytes // KIB}K",
                panel.timing_label,
                f"beta={panel.paper_beta:g}",
                at_paper_beta,
                panel.paper_optimum,
                "yes" if at_paper_beta == panel.paper_optimum else "NO",
            )
        )
    result.tables.append(
        format_table(
            ["panel", "cache", "timing", "operating point", "optimal L", "paper", "match"],
            rows,
            title="Optimal line sizes at the paper's annotated operating points",
        )
    )
    result.notes.append(
        "Eq. (19) and Smith's Eq. (16) agree at every swept bus speed: "
        + ("yes" if all_agree else "NO — INVESTIGATE")
    )
    result.notes.append(
        "Negative reduced delay marks bus speeds too slow for the larger "
        "line to profit from its higher hit ratio (paper Section 5.4.2)."
    )
    return result
