"""Table 2 — processor stalling features and their stalling-factor bounds."""

from __future__ import annotations

from repro.core.stalling import StallPolicy, stall_factor_bounds
from repro.experiments.base import ExperimentResult
from repro.util.tables import format_table

_DESCRIPTIONS = {
    StallPolicy.FULL_STALL: "full stalling",
    StallPolicy.BUS_LOCKED: "bus-locked",
    StallPolicy.BUS_NOT_LOCKED_1: "bus-not-locked (stall to fill end)",
    StallPolicy.BUS_NOT_LOCKED_2: "bus-not-locked (stall if part missing)",
    StallPolicy.BUS_NOT_LOCKED_3: "bus-not-locked (stall for the word)",
    StallPolicy.NON_BLOCKING: "non-blocking",
}


def run(quick: bool = False) -> ExperimentResult:
    """Render Table 2 for a representative set of L/D ratios."""
    del quick  # table is analytic; nothing to shrink
    result = ExperimentResult(
        experiment_id="table2",
        title="Processor stalling features (stalling factor bounds)",
    )
    for ratio in (2, 8):
        rows = []
        for policy in StallPolicy:
            bounds = stall_factor_bounds(policy, ratio)
            rows.append(
                (
                    policy.value,
                    _DESCRIPTIONS[policy],
                    bounds.minimum,
                    bounds.maximum,
                )
            )
        result.tables.append(
            format_table(
                ["feature", "description", "phi min", "phi max"],
                rows,
                title=f"L/D = {ratio}",
            )
        )
    result.notes.append(
        "FS pins phi to L/D; BL/BNL variants have phi in [1, L/D]; "
        "NB admits phi down to 0 (paper Table 2)."
    )
    return result
