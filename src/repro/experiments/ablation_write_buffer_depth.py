"""Ablation: how deep must the read-bypassing write buffer be?

Section 4.3's analysis assumes the buffers hide the copy-back latency
completely ("the best possible performance"); the dashed curves in
Figures 3-5 are that bound.  This ablation measures the *achieved*
hiding efficiency as a function of buffer depth on the stand-in traces:

    efficiency(depth) = 1 - flush_stall(depth) / flush_stall(no buffer)

A depth of 1-2 already hides most of the traffic (the paper's argument:
the flush is posted right after a fill, and the processor then consumes
the fresh line, leaving the bus idle); deeper buffers chase the
remainder.  The measured efficiency plugs directly into
``repro.core.write_buffer.write_buffer_miss_volume_ratio`` as its
``hiding_efficiency`` parameter, closing the loop between simulator and
analytic model.
"""

from __future__ import annotations

from repro.cache.cache import CacheConfig
from repro.core.stalling import StallPolicy
from repro.cpu.replay import replay
from repro.experiments.base import ExperimentResult
from repro.experiments._phi import spec92_events
from repro.memory.mainmem import MainMemory

CACHE = CacheConfig(8192, 32, 2)
BETA_M = 8.0
BUS_WIDTH = 4
DEPTHS = (1, 2, 4, 8)
PROGRAMS = ("swm256", "ear", "hydro2d")


def run(quick: bool = False) -> ExperimentResult:
    """Hiding efficiency versus write-buffer depth, per program."""
    length = 6_000 if quick else 20_000
    result = ExperimentResult(
        experiment_id="ablation_write_buffer_depth",
        title=f"Write-buffer hiding efficiency vs depth (beta_m={BETA_M:g})",
        x_label="buffer depth (lines)",
        x_values=[float(d) for d in DEPTHS],
    )
    for name in PROGRAMS:
        events = spec92_events(name, length, CACHE, seed=7)
        memory = MainMemory(BETA_M, BUS_WIDTH)
        baseline = replay(events, memory, StallPolicy.FULL_STALL)
        if baseline.flush_stall_cycles == 0:
            continue
        efficiencies = []
        for depth in DEPTHS:
            buffered = replay(
                events, memory, StallPolicy.FULL_STALL, write_buffer_depth=depth
            )
            efficiencies.append(
                100.0
                * (1.0 - buffered.flush_stall_cycles / baseline.flush_stall_cycles)
            )
        result.add_series(name, efficiencies)

    shallow = min(values[0] for values in result.series.values())
    deep_best = max(values[-1] for values in result.series.values())
    deep_worst = min(values[-1] for values in result.series.values())
    result.notes.append(
        f"depth 1 already hides >= {shallow:.0f}% of flush stalls; at "
        f"depth {DEPTHS[-1]} the spread is {deep_worst:.0f}-{deep_best:.0f}% "
        "across workloads."
    )
    result.notes.append(
        "the binding constraint splits by workload: miss-heavy streaming "
        "(swm256, hydro2d) saturates the BUS — flush traffic competes with "
        "fills and no depth helps — while locality-rich ear approaches the "
        "Section 4.3 complete-hiding bound with a few entries.  The "
        "paper's dashed best-case curve therefore presumes bus slack."
    )
    result.notes.append(
        "feed the measured efficiency into "
        "write_buffer_miss_volume_ratio(hiding_efficiency=...) to price "
        "a concrete buffer instead of the Section 4.3 best case."
    )
    return result
