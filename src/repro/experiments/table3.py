"""Table 3 — per-feature miss-volume ratios r (write-allocate cache).

The paper's Table 3 lists the execution time and the ratio of cache
misses each feature affords against the full-stalling, non-pipelined
baseline.  This experiment evaluates those ratios numerically at the
Figure 3/4 operating points and shows the hit ratio each feature trades
at a 95 % base.
"""

from __future__ import annotations

from repro.core.features import table3
from repro.core.params import SystemConfig
from repro.experiments.base import ExperimentResult
from repro.util.tables import format_table

#: Representative measured BNL1 stalling factor (fraction of L/D) from the
#: Figure 1 simulations; used to instantiate the partially-stalling row.
_BNL1_PERCENT_OF_FULL = 0.92


def run(quick: bool = False) -> ExperimentResult:
    """Evaluate Table 3 at (L=8, D=4) and (L=32, D=4), beta_m = 8."""
    del quick
    result = ExperimentResult(
        experiment_id="table3",
        title="Ratio of cache misses r and traded hit ratio per feature",
    )
    base_hr = 0.95
    for line_size in (8, 32):
        config = SystemConfig(
            bus_width=4, line_size=line_size, memory_cycle=8.0, pipeline_turnaround=2.0
        )
        phi = max(1.0, _BNL1_PERCENT_OF_FULL * config.bus_cycles_per_line)
        rows = []
        for row in table3(
            config, base_hr, flush_ratio=0.5, measured_stall_factor=phi
        ):
            rows.append(
                (
                    row.feature.value,
                    row.miss_volume_ratio,
                    100.0 * row.hit_ratio_traded,
                )
            )
        result.tables.append(
            format_table(
                ["feature", "r", "hit ratio traded (%)"],
                rows,
                title=(
                    f"L={line_size} B, D=4 B, beta_m=8, q=2, alpha=0.5, "
                    f"base HR={base_hr:.0%}"
                ),
            )
        )
    result.notes.append(
        "Ordering matches Section 5.3: bus doubling > write buffers > "
        "BNL, with pipelined memory overtaking at large beta_m (L/D >= 2)."
    )
    return result
