"""Extension: traffic-optimal vs delay-optimal design choices.

Quantifies the paper's Section 2 warning that "optimizing the design
space around hit ratio or memory traffic may not produce a
cost-effective system":

1. line size — the traffic criterion (min MR*L) picks the smallest
   useful line, while the mean-delay criterion (Smith/Eq. 19) moves to
   larger lines as memory latency grows; the two diverge across most of
   the design space;
2. bus utilization — doubling the bus *halves* utilization while the
   hit-ratio methodology shows the performance gain is bounded by
   r <= 2.5; utilization alone wildly overstates the win.
"""

from __future__ import annotations

from repro.analysis.smith_targets import design_target_table
from repro.core.params import SystemConfig, workload_from_hit_ratio
from repro.core.traffic import ranking_disagreement, traffic_report
from repro.core.bus_width import doubling_tradeoff
from repro.experiments.base import ExperimentResult
from repro.util.tables import format_table

KIB = 1024


def run(quick: bool = False) -> ExperimentResult:
    """Line-size criterion comparison plus a utilization case study."""
    del quick
    result = ExperimentResult(
        experiment_id="extension_traffic",
        title="Traffic-based vs delay-based design choices (Section 2 warning)",
    )

    table = design_target_table(16 * KIB)
    rows = []
    disagreements = 0
    settings = [(4.0, 1.0), (8.0, 2.0), (12.0, 2.0), (18.75, 1.0), (30.0, 4.0)]
    for latency, beta in settings:
        traffic_line, delay_line, differ = ranking_disagreement(
            table, latency, beta, 4
        )
        disagreements += differ
        rows.append((latency, beta, traffic_line, delay_line, "yes" if differ else "no"))
    result.tables.append(
        format_table(
            ["c", "beta", "traffic-optimal L", "delay-optimal L", "differ"],
            rows,
            title="Optimal line size: traffic criterion vs Smith/Eq. 19 (16K)",
        )
    )

    config = SystemConfig(4, 32, 8.0)
    workload = workload_from_hit_ratio(0.95, config)
    narrow = traffic_report(workload, config)
    # The same program on the doubled bus at the Eq. 6-equivalent hit ratio.
    doubled = config.doubled_bus()
    equivalent_hr = doubling_tradeoff(config, 0.95).feature_hit_ratio
    wide_workload = workload_from_hit_ratio(equivalent_hr, doubled)
    wide = traffic_report(wide_workload, doubled)
    result.tables.append(
        format_table(
            ["system", "bytes/instr", "bus utilization"],
            [
                ("32-bit bus, HR 95.0%", narrow.bytes_per_instruction, narrow.bus_utilization),
                (
                    f"64-bit bus, HR {equivalent_hr:.1%} (equal performance)",
                    wide.bytes_per_instruction,
                    wide.bus_utilization,
                ),
            ],
            title="Equal-performance systems look wildly different in traffic",
        )
    )

    result.notes.append(
        f"criteria disagree at {disagreements}/{len(settings)} operating "
        "points — traffic counting systematically favors small lines."
    )
    result.notes.append(
        "the equal-performance pair differs in bytes/instruction by "
        f"{wide.bytes_per_instruction / narrow.bytes_per_instruction:.1f}x: "
        "traffic metrics cannot see the equivalence the delay methodology "
        "proves (paper Section 2)."
    )
    return result
