"""Extension: where in Table 2's NB interval does a real design land?

Table 2 bounds the non-blocking stalling factor by ``0 <= phi <= L/D``
without picking a point — the location depends on how soon a missing
load's value is consumed.  This extension sweeps that load-use distance
on the MSHR simulator: distance 0 (consumer right behind the load) is
blocking-on-use, large distances recover the ideal NB bound.  The
resulting curve interpolates phi across the paper's interval and shows
the compiler-scheduling headroom a non-blocking cache needs to pay off —
the "register preloading" Section 3.3 alludes to.
"""

from __future__ import annotations

from repro.cache.cache import CacheConfig
from repro.cpu.replay import replay_mshr
from repro.experiments.base import ExperimentResult
from repro.experiments._phi import spec92_events
from repro.memory.mainmem import MainMemory

CACHE = CacheConfig(8192, 32, 2)
BETA_M = 8.0
BUS_WIDTH = 4
FULL_DISTANCES = (0.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
QUICK_DISTANCES = (0.0, 4.0, 16.0, 64.0)
PROGRAMS = ("swm256", "ear", "doduc")


def run(quick: bool = False) -> ExperimentResult:
    """NB phi (% of L/D) versus load-use distance, per program."""
    distances = QUICK_DISTANCES if quick else FULL_DISTANCES
    length = 6_000 if quick else 20_000
    result = ExperimentResult(
        experiment_id="extension_nb_dependency",
        title=(
            "Non-blocking cache phi vs load-use distance "
            f"(4 MSHRs, beta_m={BETA_M:g})"
        ),
        x_label="load-use distance (instructions)",
        x_values=list(distances),
    )
    for name in PROGRAMS:
        events = spec92_events(name, length, CACHE, seed=7)
        memory = MainMemory(BETA_M, BUS_WIDTH)
        row = []
        for distance in distances:
            timing = replay_mshr(
                events, memory, mshr_count=4, load_use_distance=distance
            )
            row.append(timing.stall_percentage(8))
        result.add_series(name, row)

    worst_at_zero = max(result.series[name][0] for name in PROGRAMS)
    best_at_end = min(result.series[name][-1] for name in PROGRAMS)
    result.notes.append(
        f"measured phi only moves from {worst_at_zero:.0f}% down to "
        f"{best_at_end:.0f}% of L/D across the whole distance sweep: "
        "scheduling headroom hides the missing load's own wait, but the "
        "*subsequent* accesses to the in-flight line still stall for "
        "their words, and those dominate."
    )
    result.notes.append(
        "so even with perfect compiler scheduling, NB phi stays far from "
        "Table 2's 0 lower bound on locality-rich codes — a sharper, "
        "measured version of the paper's Section 5.3 caution about "
        "non-blocking caches."
    )
    return result
