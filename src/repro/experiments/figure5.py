"""Figure 5 — architectural tradeoff for BNL3, L = 32 bytes.

Same as Figure 4 but the measured partially-stalling curve is BNL3 —
subsequent accesses stall only until their own word arrives — which has
a markedly higher payoff than BNL1 when the memory cycle time is small.
"""

from __future__ import annotations

from repro.core.stalling import StallPolicy
from repro.experiments._unified import build_unified_figure
from repro.experiments.base import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    """Build the L=32 unified-comparison sweep (BNL3 measured)."""
    return build_unified_figure(
        "figure5", line_size=32, stall_policy=StallPolicy.BUS_NOT_LOCKED_3, quick=quick
    )
