"""Shared stall-factor measurement for the simulation-backed figures.

Figures 1 and 3-5 all need trace-measured stalling factors.  This module
builds the six SPEC92 stand-in traces once per (length, seed) and caches
measured ``phi`` maps per (policy, geometry, beta grid) so that running
several figures in one process does not re-simulate identical sweeps.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cache.cache import CacheConfig
from repro.core.stalling import StallPolicy
from repro.cpu.stall_measure import average_stall_percentages
from repro.trace.record import Instruction
from repro.trace.spec92 import SPEC92_PROFILES

#: Instruction counts for full and quick runs.  The paper used 50 M per
#: program; the synthetic streams reach steady state much sooner.
FULL_INSTRUCTIONS = 60_000
QUICK_INSTRUCTIONS = 8_000


@lru_cache(maxsize=4)
def spec92_traces(n_instructions: int, seed: int = 7) -> dict[str, tuple[Instruction, ...]]:
    """The six stand-in traces, materialized once per (length, seed)."""
    return {
        name: tuple(profile.trace(n_instructions, seed=seed))
        for name, profile in SPEC92_PROFILES.items()
    }


@lru_cache(maxsize=32)
def measured_phi_percentages(
    policy: StallPolicy,
    line_size: int,
    cache_bytes: int,
    associativity: int,
    betas: tuple[float, ...],
    bus_width: int,
    n_instructions: int,
) -> tuple[float, ...]:
    """Average ``phi`` (% of L/D) across the six traces per ``beta_m``."""
    traces = {
        name: list(instructions)
        for name, instructions in spec92_traces(n_instructions).items()
    }
    config = CacheConfig(
        total_bytes=cache_bytes, line_size=line_size, associativity=associativity
    )
    data = average_stall_percentages(
        traces, config, (policy,), list(betas), bus_width
    )
    return tuple(data[policy])


def measured_phi_map(
    policy: StallPolicy,
    line_size: int,
    betas: tuple[float, ...],
    quick: bool,
    cache_bytes: int = 8192,
    associativity: int = 2,
    bus_width: int = 4,
) -> dict[float, float]:
    """``beta_m -> phi`` (absolute stalling factor) for the ranking sweep."""
    n_instructions = QUICK_INSTRUCTIONS if quick else FULL_INSTRUCTIONS
    percentages = measured_phi_percentages(
        policy,
        line_size,
        cache_bytes,
        associativity,
        betas,
        bus_width,
        n_instructions,
    )
    full = line_size / bus_width
    return {
        beta: max(1.0, pct / 100.0 * full)
        for beta, pct in zip(betas, percentages)
    }
