"""Shared stall-factor measurement for the simulation-backed figures.

Figures 1 and 3-5 all need trace-measured stalling factors.  This module
builds the six SPEC92 stand-in traces once per (length, seed), runs the
two-phase engine's functional pass (phase 1) once per (trace, geometry),
and caches measured ``phi`` maps per (policy, geometry, beta grid) so
that running several figures in one process does not re-simulate
identical sweeps.  Phase-1 passes can optionally fan out across a
process pool (the runner's ``--jobs`` flag wires this up).

Observability: every memoization point is wrapped with hit/miss
counters (``phi.*_memo.{hit,miss}``), the trace build and functional
passes run under spans, and per-(trace, geometry) cache counters are
recorded from the extracted event streams.  :func:`clear_caches` resets
all three memo caches — the runner calls it per experiment while
metrics collection is on, so per-experiment counts are independent of
what ran earlier in the process (the basis of the ``--jobs N``
byte-identical-aggregate guarantee; see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from functools import lru_cache

from repro.cache.cache import CacheConfig
from repro.cache.events import EventStream
from repro.cache import events_store, reuse_store
from repro.core.stalling import StallPolicy
from repro.cpu.replay import replay, supports_replay
from repro.cpu.stall_measure import average_stall_percentages
from repro.memory.mainmem import MainMemory
from repro.obs import metrics, tracing
from repro.trace.record import Instruction
from repro.trace.spec92 import SPEC92_PROFILES, trace_fingerprint

#: Instruction counts for full and quick runs.  The paper used 50 M per
#: program; the synthetic streams reach steady state much sooner.
FULL_INSTRUCTIONS = 60_000
QUICK_INSTRUCTIONS = 8_000

#: The seed behind every memoized trace build (manifests record it).
DEFAULT_SEED = 7

#: Process count for phase-1 extraction; 1 = in-process.  Set via
#: :func:`set_phase1_jobs` (the experiment runner's ``--jobs`` flag).
_PHASE1_JOBS = 1


def set_phase1_jobs(jobs: int) -> None:
    """Let phase-1 functional passes fan out over ``jobs`` processes.

    Extraction is deterministic, so results are identical for any job
    count; only wall-clock changes.
    """
    global _PHASE1_JOBS
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _PHASE1_JOBS = jobs


def _memo_counter(name: str, cached, before_hits: int) -> None:
    """Record whether the just-made call hit or missed an lru_cache."""
    hit = cached.cache_info().hits > before_hits
    metrics.inc(f"phi.{name}_memo.{'hit' if hit else 'miss'}")


@lru_cache(maxsize=8)
def _spec92_traces_cached(
    n_instructions: int, seed: int
) -> dict[str, tuple[Instruction, ...]]:
    with tracing.span(
        "phase1.traces", n_instructions=n_instructions, seed=seed
    ):
        return {
            name: tuple(profile.trace(n_instructions, seed=seed))
            for name, profile in SPEC92_PROFILES.items()
        }


def spec92_traces(
    n_instructions: int, seed: int = DEFAULT_SEED
) -> dict[str, tuple[Instruction, ...]]:
    """The six stand-in traces, materialized once per (length, seed).

    No memo hit/miss counter here: with the on-disk event-stream store
    (:mod:`repro.cache.events_store`) warm runs never materialize the
    traces at all, and a counter would make cold and warm metrics
    snapshots differ.
    """
    return _spec92_traces_cached(n_instructions, seed)


def _spec92_profile(name: str, n_instructions: int, seed: int):
    """Reuse profile for one stand-in, built from the generator's arrays.

    The synthetic builder draws the reference positions/addresses as
    numpy arrays before it ever materializes Instruction objects, so the
    reuse engine's cold path can take them directly —
    :meth:`~repro.trace.spec92.WorkloadProfile.profile_arrays` pins this
    byte-identical to profiling the materialized trace.
    """
    from repro.cache.reuse import ReuseProfile

    return ReuseProfile(
        *SPEC92_PROFILES[name].profile_arrays(n_instructions, seed=seed)
    )


def _extract_one(
    name: str, n_instructions: int, seed: int, geometry: tuple[int, int, int]
) -> EventStream:
    """Worker: materialize one trace and run its functional pass.

    Top-level so it pickles for :class:`ProcessPoolExecutor`; workers
    regenerate the trace from its (name, length, seed) key instead of
    shipping 60k instruction objects over the pipe.  The on-disk store
    is consulted first (workers inherit the opt-out environment).
    """
    cache_bytes, line_size, associativity = geometry
    config = CacheConfig(
        total_bytes=cache_bytes,
        line_size=line_size,
        associativity=associativity,
    )
    return events_store.get_or_extract(
        trace_fingerprint(name, n_instructions, seed),
        config,
        lambda: SPEC92_PROFILES[name].trace(n_instructions, seed=seed),
        profile_factory=lambda: _spec92_profile(name, n_instructions, seed),
    )


def _record_stream_counters(
    streams: dict[str, EventStream], geometry: tuple[int, int, int]
) -> None:
    """Per-(trace, geometry) functional-pass counters.

    Recorded in the parent from the returned streams so the pool path
    (whose workers are transient processes) is covered identically to
    the in-process path.
    """
    if not metrics.metrics_enabled():
        return
    cache_bytes, line_size, associativity = geometry
    label = f"{cache_bytes}B/L{line_size}/A{associativity}"
    for name, events in streams.items():
        stats = events.stats
        metrics.inc("cache.hits", stats.hits, trace=name, geometry=label)
        metrics.inc("cache.misses", stats.misses, trace=name, geometry=label)
        metrics.inc(
            "cache.dirty_victims",
            int(events.dirty_victim.sum()),
            trace=name,
            geometry=label,
        )
        metrics.inc(
            "cache.accesses", stats.accesses, trace=name, geometry=label
        )


@lru_cache(maxsize=16)
def _spec92_event_streams_cached(
    n_instructions: int,
    cache_bytes: int,
    line_size: int,
    associativity: int,
    seed: int,
) -> dict[str, EventStream]:
    geometry = (cache_bytes, line_size, associativity)
    config = CacheConfig(
        total_bytes=cache_bytes, line_size=line_size, associativity=associativity
    )
    # Warm path first: disk hits are cheap and need no trace build, so
    # resolve them in-process before considering the worker pool.
    streams: dict[str, EventStream] = {}
    missing = []
    for name in SPEC92_PROFILES:
        cached = events_store.load(
            trace_fingerprint(name, n_instructions, seed), config
        )
        if cached is not None:
            streams[name] = cached
        else:
            missing.append(name)
    if missing and _PHASE1_JOBS > 1:
        from concurrent.futures import ProcessPoolExecutor

        with tracing.span(
            "phase1.extract_pool", jobs=_PHASE1_JOBS, line_size=line_size
        ):
            with ProcessPoolExecutor(
                max_workers=min(_PHASE1_JOBS, 6)
            ) as pool:
                futures = {
                    name: pool.submit(
                        _extract_one, name, n_instructions, seed, geometry
                    )
                    for name in missing
                }
                for name, future in futures.items():
                    streams[name] = future.result()
    elif missing:
        for name in missing:
            with tracing.span(
                "phase1.extract",
                trace=name,
                cache_bytes=cache_bytes,
                line_size=line_size,
                associativity=associativity,
            ):
                streams[name] = events_store.get_or_extract(
                    trace_fingerprint(name, n_instructions, seed),
                    config,
                    # The bulk memo keeps step-fallback extractions at
                    # the same length to one generation pass; the reuse
                    # path never materializes the trace at all.
                    lambda name=name: spec92_traces(n_instructions, seed)[
                        name
                    ],
                    profile_factory=lambda name=name: _spec92_profile(
                        name, n_instructions, seed
                    ),
                )
    # Deterministic order regardless of which entries were disk hits.
    streams = {name: streams[name] for name in SPEC92_PROFILES}
    _record_stream_counters(streams, geometry)
    return streams


def spec92_event_streams(
    n_instructions: int,
    cache_bytes: int,
    line_size: int,
    associativity: int,
    seed: int = DEFAULT_SEED,
) -> dict[str, EventStream]:
    """Phase-1 event streams for all six traces, keyed on geometry.

    This is the two-phase engine's memoization point: every (policy,
    ``beta_m``, write-buffer, memory-model) replay over the same
    (trace, geometry) pair shares one functional pass.
    """
    before = _spec92_event_streams_cached.cache_info().hits
    result = _spec92_event_streams_cached(
        n_instructions, cache_bytes, line_size, associativity, seed
    )
    _memo_counter("events", _spec92_event_streams_cached, before)
    return result


@lru_cache(maxsize=64)
def _spec92_stream_cached(
    name: str, n_instructions: int, seed: int, config: CacheConfig
) -> EventStream:
    with tracing.span(
        "phase1.extract_one",
        trace=name,
        cache_bytes=config.total_bytes,
        line_size=config.line_size,
        associativity=config.associativity,
    ):
        return events_store.get_or_extract(
            trace_fingerprint(name, n_instructions, seed),
            config,
            # The bulk per-(length, seed) memo: every caller of this
            # entry point sweeps all six programs, so materializing them
            # together lets experiments at the same length share one
            # generation pass.
            lambda: spec92_traces(n_instructions, seed)[name],
            profile_factory=lambda: _spec92_profile(
                name, n_instructions, seed
            ),
        )


def spec92_events(
    name: str,
    n_instructions: int,
    config: CacheConfig,
    seed: int = DEFAULT_SEED,
) -> EventStream:
    """Phase-1 event stream for a single trace and arbitrary geometry.

    The entry point for experiments that sweep something *other* than
    the phi grid (write-buffer depths, DRAM models, MSHR counts): one
    functional pass per ``(trace, geometry)``, shared in-process via
    the memo and across processes via the on-disk store.
    """
    before = _spec92_stream_cached.cache_info().hits
    result = _spec92_stream_cached(name, n_instructions, seed, config)
    _memo_counter("stream", _spec92_stream_cached, before)
    return result


#: Per-*point* phi memo: ``(policy, geometry, beta, bus_width, length)
#: -> percentage``.  Memoizing whole beta grids (the previous design)
#: never hit — different figures sweep different grids, so overlapping
#: points such as ``beta_m = 8`` were recomputed every time and the
#: ``phi.phi_memo.hit`` counter stayed at zero (the BENCH_engine.json
#: anomaly).  Points are batch-computed with the identical float
#: operations in the identical order regardless of which grid requests
#: them, so results are independent of request history.
_phi_point_memo: dict[tuple, float] = {}


def _phi_point_key(
    policy: StallPolicy,
    line_size: int,
    cache_bytes: int,
    associativity: int,
    beta: float,
    bus_width: int,
    n_instructions: int,
) -> tuple:
    return (
        policy,
        line_size,
        cache_bytes,
        associativity,
        beta,
        bus_width,
        n_instructions,
    )


def _measure_phi_points(
    policy: StallPolicy,
    line_size: int,
    cache_bytes: int,
    associativity: int,
    betas: tuple[float, ...],
    bus_width: int,
    n_instructions: int,
) -> list[float]:
    """Measure phi for ``betas`` (no memo): per-beta replay averages."""
    config = CacheConfig(
        total_bytes=cache_bytes, line_size=line_size, associativity=associativity
    )
    probe = MainMemory(betas[0] if betas else 1.0, bus_width)
    if supports_replay(config, probe, policy):
        # Two-phase engine: one functional pass per trace (shared with
        # every other policy/beta on this geometry), then per-beta
        # replays over the compact event streams.
        streams = spec92_event_streams(
            n_instructions, cache_bytes, line_size, associativity
        )
        bus_cycles_per_line = line_size // bus_width
        row = []
        with tracing.span(
            "phi.measure",
            policy=policy.value,
            n_betas=len(betas),
            line_size=line_size,
        ):
            for beta in betas:
                memory = MainMemory(beta, bus_width)
                total = 0.0
                for events in streams.values():
                    pct = replay(events, memory, policy).stall_percentage(
                        bus_cycles_per_line
                    )
                    metrics.observe(
                        "phi.stall_percentage", pct, policy=policy.value
                    )
                    total += pct
                row.append(total / len(streams))
        return row
    # Oracle fallback: kept for configurations a future caller might
    # request outside replay coverage; no registry experiment needs it.
    traces = spec92_traces(n_instructions)
    with tracing.span(
        "phi.measure_fallback", policy=policy.value, n_betas=len(betas)
    ):
        data = average_stall_percentages(
            traces, config, (policy,), betas, bus_width
        )
    return list(data[policy])


def measured_phi_percentages(
    policy: StallPolicy,
    line_size: int,
    cache_bytes: int,
    associativity: int,
    betas: tuple[float, ...],
    bus_width: int,
    n_instructions: int,
) -> tuple[float, ...]:
    """Average ``phi`` (% of L/D) across the six traces per ``beta_m``."""
    keys = {
        beta: _phi_point_key(
            policy,
            line_size,
            cache_bytes,
            associativity,
            beta,
            bus_width,
            n_instructions,
        )
        for beta in betas
    }
    missing = tuple(
        beta for beta in betas if keys[beta] not in _phi_point_memo
    )
    hits = len(betas) - len(missing)
    if hits:
        metrics.inc("phi.phi_memo.hit", hits)
    if missing:
        metrics.inc("phi.phi_memo.miss", len(missing))
        values = _measure_phi_points(
            policy,
            line_size,
            cache_bytes,
            associativity,
            missing,
            bus_width,
            n_instructions,
        )
        for beta, value in zip(missing, values):
            _phi_point_memo[keys[beta]] = value
    return tuple(_phi_point_memo[keys[beta]] for beta in betas)


def clear_caches() -> None:
    """Reset every memo cache (traces, event streams, reuse profiles,
    phi points).

    The runner calls this per experiment while metrics collection is on
    so each experiment's counters describe a cold start — independent of
    job count and of whatever ran earlier in the process.  The on-disk
    event-stream store is *not* touched: its contents are deterministic
    and its use is counter-free, so warm entries cannot perturb either
    results or metrics.
    """
    _spec92_traces_cached.cache_clear()
    _spec92_event_streams_cached.cache_clear()
    _spec92_stream_cached.cache_clear()
    _phi_point_memo.clear()
    reuse_store.clear_memory()


def floor_phi_to_table2(phi: float) -> float:
    """Clamp a measured stalling factor to Table 2's lower bound.

    Every blocking policy except NB satisfies ``phi >= 1``: a missing
    reference always pays at least one ``beta_m`` — the memory cycle
    that delivers the critical (requested) word — before the processor
    can resume, no matter how perfectly the rest of the fill overlaps
    execution.  Short quick-mode traces can measure ``phi`` fractions
    below 1 through cold-start noise (misses whose windows the trace
    truncates); projecting those into the analytic sweep would claim a
    partially-stalling cache beats an ideal non-blocking one.  The
    floor keeps projections inside Table 2's admissible interval
    ``1 <= phi <= L/D``.
    """
    return max(1.0, phi)


def measured_phi_map(
    policy: StallPolicy,
    line_size: int,
    betas: tuple[float, ...],
    quick: bool,
    cache_bytes: int = 8192,
    associativity: int = 2,
    bus_width: int = 4,
) -> dict[float, float]:
    """``beta_m -> phi`` (absolute stalling factor) for the ranking sweep."""
    n_instructions = QUICK_INSTRUCTIONS if quick else FULL_INSTRUCTIONS
    percentages = measured_phi_percentages(
        policy,
        line_size,
        cache_bytes,
        associativity,
        betas,
        bus_width,
        n_instructions,
    )
    full = line_size / bus_width
    return {
        beta: floor_phi_to_table2(pct / 100.0 * full)
        for beta, pct in zip(betas, percentages)
    }
