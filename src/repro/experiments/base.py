"""Common result container for all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import tracing
from repro.util.ascii_plot import AsciiPlot
from repro.util.csvout import series_to_csv, write_csv


@dataclass
class ExperimentResult:
    """Structured output of one table/figure reproduction.

    Attributes
    ----------
    experiment_id:
        Short id matching the paper artifact (e.g. ``"figure3"``).
    title:
        Human-readable description.
    x_label:
        Meaning of :attr:`x_values` (empty for table-only experiments).
    x_values:
        Common abscissae for every series.
    series:
        ``name -> y values`` (same length as ``x_values``).
    tables:
        Pre-rendered text tables.
    notes:
        Findings and paper-agreement remarks, printed after the plot.
    """

    experiment_id: str
    title: str
    x_label: str = ""
    x_values: list[float] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    tables: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_series(self, name: str, values: list[float]) -> None:
        """Attach a series; must match the x grid length."""
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, "
                f"x grid has {len(self.x_values)}"
            )
        self.series[name] = list(values)

    def render(self) -> str:
        """Full text rendering: plot (if any), tables, notes."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.series:
            plot = AsciiPlot(title="", xlabel=self.x_label, ylabel="")
            for name, values in self.series.items():
                plot.add_series(name, self.x_values, values)
            parts.append(plot.render())
        parts.extend(self.tables)
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n\n".join(parts)

    def to_csv(self) -> str:
        """CSV of the x grid and every series (empty when table-only)."""
        if not self.series:
            return ""
        return series_to_csv(self.x_label or "x", self.x_values, self.series)

    def save(self, directory: str | Path) -> list[Path]:
        """Write ``<id>.txt`` and (when applicable) ``<id>.csv``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        with tracing.span("experiment.save", experiment=self.experiment_id):
            text_path = directory / f"{self.experiment_id}.txt"
            text_path.write_text(self.render() + "\n")
            written.append(text_path)
            csv_content = self.to_csv()
            if csv_content:
                written.append(
                    write_csv(directory / f"{self.experiment_id}.csv", csv_content)
                )
        return written
