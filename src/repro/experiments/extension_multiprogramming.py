"""Extension: context-switch cache pollution (Section 3.4's caveat).

Section 3.4 keeps instruction misses out of Eq. (2) for single programs
but flags multiprogramming as the case where they return.  This
extension measures the effect on the data side with the same machinery:
three stand-in tasks round-robin on one 8 KB cache across a range of
time quanta.  Small quanta drag the cache through three footprints —
the miss ratio inflates well above the solo baseline — while long
quanta amortize the switch and converge back to solo behaviour, which is
exactly when the paper's single-program characterization stays valid.
"""

from __future__ import annotations

from repro.cache.cache import CacheConfig
from repro.experiments._phi import spec92_traces
from repro.experiments.base import ExperimentResult
from repro.trace.multiprogram import pollution_sweep

CACHE = CacheConfig(8192, 32, 2)
TASKS = ("ear", "doduc", "swm256")
FULL_QUANTA = (50, 100, 500, 2_000, 10_000)
QUICK_QUANTA = (100, 2_000)


def run(quick: bool = False) -> ExperimentResult:
    """Pollution factor versus scheduling quantum."""
    quanta = QUICK_QUANTA if quick else FULL_QUANTA
    length = 5_000 if quick else 20_000
    all_traces = spec92_traces(length, seed=7)
    traces = [all_traces[name] for name in TASKS]
    result = ExperimentResult(
        experiment_id="extension_multiprogramming",
        title=(
            "Context-switch cache pollution: "
            f"{'+'.join(TASKS)} time-sliced on an 8K cache"
        ),
        x_label="scheduling quantum (instructions)",
        x_values=[float(q) for q in quanta],
    )
    comparisons = pollution_sweep(traces, CACHE, list(quanta))
    solo = comparisons[-1].solo_miss_ratio if comparisons else None
    factors = [comparison.pollution_factor for comparison in comparisons]
    result.add_series("miss-ratio inflation (x)", factors)
    result.notes.append(
        f"solo miss ratio {solo:.1%}; smallest quantum inflates it "
        f"{max(factors):.2f}x, the largest only {min(factors):.2f}x."
    )
    result.notes.append(
        "inflation decays monotonically with the quantum — long quanta "
        "recover the paper's single-program assumption (Section 3.4)."
    )
    return result
