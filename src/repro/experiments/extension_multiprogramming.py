"""Extension: context-switch cache pollution (Section 3.4's caveat).

Section 3.4 keeps instruction misses out of Eq. (2) for single programs
but flags multiprogramming as the case where they return.  This
extension measures the effect on the data side with the same machinery:
three stand-in tasks round-robin on one 8 KB cache across a range of
time quanta.  Small quanta drag the cache through three footprints —
the miss ratio inflates well above the solo baseline — while long
quanta amortize the switch and converge back to solo behaviour, which is
exactly when the paper's single-program characterization stays valid.
"""

from __future__ import annotations

from repro.cache.cache import CacheConfig
from repro.experiments.base import ExperimentResult
from repro.trace.multiprogram import measure_pollution
from repro.trace.spec92 import SPEC92_PROFILES

CACHE = CacheConfig(8192, 32, 2)
TASKS = ("ear", "doduc", "swm256")
FULL_QUANTA = (50, 100, 500, 2_000, 10_000)
QUICK_QUANTA = (100, 2_000)


def run(quick: bool = False) -> ExperimentResult:
    """Pollution factor versus scheduling quantum."""
    quanta = QUICK_QUANTA if quick else FULL_QUANTA
    length = 5_000 if quick else 20_000
    traces = [
        SPEC92_PROFILES[name].trace(length, seed=7) for name in TASKS
    ]
    result = ExperimentResult(
        experiment_id="extension_multiprogramming",
        title=(
            "Context-switch cache pollution: "
            f"{'+'.join(TASKS)} time-sliced on an 8K cache"
        ),
        x_label="scheduling quantum (instructions)",
        x_values=[float(q) for q in quanta],
    )
    factors = []
    solo = None
    for quantum in quanta:
        comparison = measure_pollution(traces, CACHE, quantum)
        solo = comparison.solo_miss_ratio
        factors.append(comparison.pollution_factor)
    result.add_series("miss-ratio inflation (x)", factors)
    result.notes.append(
        f"solo miss ratio {solo:.1%}; smallest quantum inflates it "
        f"{max(factors):.2f}x, the largest only {min(factors):.2f}x."
    )
    result.notes.append(
        "inflation decays monotonically with the quantum — long quanta "
        "recover the paper's single-program assumption (Section 3.4)."
    )
    return result
