"""Example 1 (Section 5.2) — bus width versus cache size implications.

Case 1: a 64-bit-bus/8 KB-cache processor matches a 32-bit-bus/32 KB
processor.  Case 2: a 64-bit-bus/32 KB processor matches a 32-bit-bus/
128 KB processor.  Both follow from the asymptotic rule
``HR2 = 2 HR1 - 1`` applied to the Short & Levy hit-ratio curve.  The
experiment also prices each alternative in package pins and cache area.
"""

from __future__ import annotations

from repro.analysis.chip_area import CacheAreaModel, bus_width_pin_delta
from repro.analysis.short_levy import SHORT_LEVY_HIT_RATIOS, short_levy_curve
from repro.core.bus_width import asymptotic_hit_ratio
from repro.experiments.base import ExperimentResult
from repro.util.tables import format_table

KIB = 1024


def run(quick: bool = False) -> ExperimentResult:
    """Evaluate both cases and the pin/area pricing."""
    del quick
    curve = short_levy_curve()
    area = CacheAreaModel()
    result = ExperimentResult(
        experiment_id="example1",
        title="Bus width vs cache size (Short & Levy hit ratios)",
    )

    rows = []
    for big_cache in (32 * KIB, 128 * KIB):
        big_hr = curve.hit_ratio(big_cache)
        small_hr = asymptotic_hit_ratio(big_hr)
        small_cache = curve.size_for_hit_ratio(small_hr)
        rows.append(
            (
                f"{big_cache // KIB}K + 32-bit bus",
                f"{big_hr:.4f}",
                f"{small_cache / KIB:.0f}K + 64-bit bus",
                f"{small_hr:.4f}",
            )
        )
    result.tables.append(
        format_table(
            ["wide-cache system", "its HR", "equal-performance system", "its HR"],
            rows,
            title="Equal-performance pairs (asymptotic rule HR2 = 2*HR1 - 1)",
        )
    )

    pin_cost = bus_width_pin_delta(32, 64)
    area_8_32 = area.area_ratio(32 * KIB, 8 * KIB, line_size=32, associativity=2)
    area_32_128 = area.area_ratio(128 * KIB, 32 * KIB, line_size=32, associativity=2)
    result.tables.append(
        format_table(
            ["alternative", "cost"],
            [
                ("double the 32-bit bus", f"+{pin_cost:.0f} package pins"),
                ("8K -> 32K cache", f"{area_8_32:.2f}x cache area"),
                ("32K -> 128K cache", f"{area_32_128:.2f}x cache area"),
            ],
            title="What each side of the trade costs",
        )
    )
    result.notes.append(
        "Small caches: quadrupling 8K is a modest area cost and saves 40+ "
        "pins.  Large caches: the same performance step needs 4x of an "
        "already-large array, so widening the bus becomes the better buy "
        "(paper Section 5.2)."
    )
    result.notes.append(
        "Hit ratios: 8K=91%, 32K=95.5% (Short & Levy), 128K=97.75% "
        "(implied by Case 2)."
    )
    for size, ratio in sorted(SHORT_LEVY_HIT_RATIOS.items()):
        result.notes.append(f"  anchor: {int(size) // KIB}K -> {ratio:.2%}")
    return result
