"""Extension: software tiling versus hardware features.

The paper prices hardware features in hit ratio; compilers buy hit ratio
directly by restructuring loops.  This extension runs an exact blocked
matmul reference stream (``repro.trace.loops``) across tile sizes and
prices both sides in the same currency:

* each tile size's *measured* hit-ratio gain over the untiled nest;
* the hit-ratio worth of doubling the bus and of pipelining the memory
  at each variant's operating point (Eq. 6).

The finding: moderate tiles out-buy every hardware feature at once, and
because Eq. 6 scales with ``1 - HR``, every hardware feature is worth
*less after* the software fix — software and hardware compete for the
same shrinking miss budget.
"""

from __future__ import annotations

from repro.cache import events_store
from repro.cache.cache import CacheConfig
from repro.cache.reuse import ReuseProfile
from repro.core.bus_width import doubling_tradeoff
from repro.core.params import SystemConfig
from repro.core.pipelined import pipelined_tradeoff
from repro.experiments.base import ExperimentResult
from repro.trace.loops import (
    matmul_fingerprint,
    square_matmul_profile_arrays,
    square_matmul_trace,
)
from repro.util.tables import format_table

CACHE = CacheConfig(8192, 32, 2)
CONFIG = SystemConfig(4, 32, 8.0, pipeline_turnaround=2.0)
FULL_N = 48
QUICK_N = 32
TILES = (None, 4, 8, 16)


def _hit_ratio(n: int, tile: int | None) -> float:
    # The functional pass already counts hits; routing it through the
    # on-disk store means warm runs skip trace generation and cache
    # stepping (the dominant cost of this experiment) entirely.  The
    # matmul reference stream is analytically known, so cold runs hand
    # the reuse engine its profile arrays directly instead of
    # materializing ~800k Instruction objects and re-looping over them.
    events = events_store.get_or_extract(
        matmul_fingerprint(n, tile),
        CACHE,
        lambda: square_matmul_trace(n, tile=tile),
        profile_factory=lambda: ReuseProfile(
            *square_matmul_profile_arrays(n, tile)
        ),
    )
    return events.stats.hit_ratio


def run(quick: bool = False) -> ExperimentResult:
    """Hit ratio and feature worth per tile size."""
    n = QUICK_N if quick else FULL_N
    result = ExperimentResult(
        experiment_id="extension_software_tiling",
        title=(
            f"Software tiling vs hardware features ({n}x{n} matmul, "
            "8K 2-way, beta_m=8)"
        ),
    )
    rows = []
    gains: list[float] = []
    feature_worth: list[tuple[float, float]] = []
    base_hr = None
    for tile in TILES:
        hit_ratio = _hit_ratio(n, tile)
        if base_hr is None:
            base_hr = hit_ratio
        gains.append(hit_ratio - base_hr)
        bus = doubling_tradeoff(CONFIG, hit_ratio).hit_ratio_delta
        pipe = pipelined_tradeoff(CONFIG, hit_ratio).hit_ratio_delta
        feature_worth.append((bus, pipe))
        rows.append(
            (
                "untiled" if tile is None else f"tile {tile}",
                f"{hit_ratio:.1%}",
                f"{hit_ratio - base_hr:+.1%}",
                f"{bus:.2%}",
                f"{pipe:.2%}",
            )
        )
    result.tables.append(
        format_table(
            [
                "variant",
                "hit ratio",
                "tiling gain",
                "2x bus worth",
                "pipelining worth",
            ],
            rows,
        )
    )
    best_gain = max(gains[1:])
    untiled_bus, untiled_pipe = feature_worth[0]
    comparison = (
        "out-buying every single hardware feature"
        if best_gain > max(untiled_bus, untiled_pipe)
        else "comparable to the hardware features"
    )
    result.notes.append(
        f"the best tile buys {best_gain:+.1%} of hit ratio vs the untiled "
        f"nest ({comparison} at this matrix size; the gap widens as the "
        "matrices outgrow the cache further)."
    )
    best_index = max(range(1, len(gains)), key=lambda i: gains[i])
    worth_drop = untiled_pipe - feature_worth[best_index][1]
    result.notes.append(
        f"after the best tiling, pipelining's Eq. 6 worth drops by "
        f"{worth_drop:.1%} (the (1 - HR) factor): software restructuring "
        "and hardware features compete for the same miss budget."
    )
    return result
