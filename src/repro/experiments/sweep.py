"""Generic parameter-sweep driver.

The figures sweep fixed grids; designers want their own.  ``sweep``
evaluates any feature's traded hit ratio over a cartesian product of
parameter ranges and returns a flat record list, exposed on the CLI as
``python -m repro sweep``.

Sweepable parameters: ``memory_cycle``, ``line_size``, ``bus_width``,
``pipeline_turnaround``, ``flush_ratio``, ``base_hit_ratio``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.core.features import ArchFeature, feature_miss_ratio
from repro.core.params import SystemConfig
from repro.core.tradeoff import hit_ratio_traded

#: Defaults for any parameter not swept.
DEFAULTS = {
    "memory_cycle": 8.0,
    "line_size": 32.0,
    "bus_width": 4.0,
    "pipeline_turnaround": 2.0,
    "flush_ratio": 0.5,
    "base_hit_ratio": 0.95,
}

SWEEPABLE = tuple(DEFAULTS)


@dataclass(frozen=True)
class SweepRecord:
    """One evaluated grid point."""

    parameters: dict[str, float]
    miss_volume_ratio: float
    hit_ratio_traded: float


def parse_range(spec: str) -> list[float]:
    """Parse ``start:stop:step`` (inclusive) or a comma list into floats.

    ``"2:8:2"`` -> [2, 4, 6, 8]; ``"0.9,0.95,0.98"`` -> as given.
    """
    spec = spec.strip()
    if ":" in spec:
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError(f"range spec must be start:stop:step, got {spec!r}")
        start, stop, step = (float(p) for p in parts)
        if step <= 0 or stop < start:
            raise ValueError(f"bad range {spec!r}")
        values = []
        value = start
        while value <= stop + 1e-9:
            values.append(round(value, 10))
            value += step
        return values
    return [float(p) for p in spec.split(",") if p.strip()]


def sweep(
    feature: ArchFeature,
    ranges: dict[str, list[float]],
    measured_stall_factor: float | None = None,
) -> list[SweepRecord]:
    """Evaluate ``feature`` over the cartesian product of ``ranges``.

    Grid points with invalid geometry (e.g. L < 2D for bus doubling)
    are skipped rather than fatal — sweeps cross validity borders.
    """
    unknown = [name for name in ranges if name not in SWEEPABLE]
    if unknown:
        raise ValueError(
            f"unsweepable parameter(s) {unknown}; choose from {SWEEPABLE}"
        )
    if not ranges:
        raise ValueError("nothing to sweep")
    names = list(ranges)
    records = []
    for values in product(*(ranges[name] for name in names)):
        point = dict(DEFAULTS)
        point.update(dict(zip(names, values)))
        try:
            config = SystemConfig(
                bus_width=int(point["bus_width"]),
                line_size=int(point["line_size"]),
                memory_cycle=point["memory_cycle"],
                pipeline_turnaround=point["pipeline_turnaround"],
            )
            r = feature_miss_ratio(
                feature,
                config,
                flush_ratio=point["flush_ratio"],
                measured_stall_factor=measured_stall_factor,
            )
            traded = hit_ratio_traded(r, point["base_hit_ratio"])
        except ValueError:
            continue
        records.append(
            SweepRecord(
                parameters={name: point[name] for name in names},
                miss_volume_ratio=r,
                hit_ratio_traded=traded,
            )
        )
    return records


def records_to_csv(records: list[SweepRecord]) -> str:
    """Flatten sweep records to CSV (columns: parameters, r, delta_HR)."""
    if not records:
        return ""
    names = list(records[0].parameters)
    lines = [",".join([*names, "r", "hit_ratio_traded"])]
    for record in records:
        lines.append(
            ",".join(
                [
                    *(str(record.parameters[name]) for name in names),
                    str(record.miss_volume_ratio),
                    str(record.hit_ratio_traded),
                ]
            )
        )
    return "\n".join(lines) + "\n"
