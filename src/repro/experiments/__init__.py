"""Experiment harness: one module per paper table/figure.

Every experiment exposes ``run(quick=False) -> ExperimentResult`` and is
registered in :mod:`repro.experiments.registry`; the CLI
(``python -m repro.experiments.runner``) runs any subset and writes text
renderings and CSV series.  ``quick=True`` shrinks trace lengths and
sweep densities for use in test suites and benchmarks.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["ExperimentResult", "EXPERIMENTS", "get_experiment", "run_experiment"]
