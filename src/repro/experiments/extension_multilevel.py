"""Extension: the tradeoff methodology with a two-level cache hierarchy.

Section 4.5's equivalence argument only needs the mean memory delay per
reference, so the whole methodology survives an L2: fold the L2 into an
*effective* memory cycle time and every Section 4/5 result applies
unchanged.  This experiment demonstrates it:

* an L2 slashes the effective beta_m the L1 sees — e.g. from 12 clocks
  of DRAM toward the 2-3 clock L2 SRAM cost, per workload;
* the Figures 3-5 conclusions then follow at the *effective* operating
  point: adding an L2 moves designs from "pipelining wins" territory
  back to "doubling the bus wins" (the crossover is at ~4.7 clocks).
"""

from __future__ import annotations

from repro.cache import events_store
from repro.cache.cache import CacheConfig
from repro.cache.multilevel import single_level_equivalent_from_events
from repro.core.bus_width import miss_volume_ratio_for_doubling
from repro.core.params import SystemConfig
from repro.core.pipelined import pipelined_miss_volume_ratio
from repro.experiments._phi import spec92_events
from repro.experiments.base import ExperimentResult
from repro.trace.spec92 import SPEC92_PROFILES
from repro.util.tables import format_table

L1 = CacheConfig(8192, 32, 2)
L2 = CacheConfig(128 * 1024, 32, 4)
L2_HIT_CYCLES = 2.0
MEMORY_CYCLE = 12.0

#: Bump when :func:`_build_ws_trace` changes the reference stream for a
#: given (hot_kib, length) pair (invalidates the events store).
_WS_GENERATOR_VERSION = 1
_WS_SEED = 11


def _ws_builder(hot_kib: int):
    import random

    from repro.trace.synthetic import SyntheticTraceBuilder, working_set

    rng = random.Random(_WS_SEED)
    builder = SyntheticTraceBuilder(seed=_WS_SEED, loadstore_fraction=0.3)
    pattern = working_set(
        0, hot_kib * 1024, 1 << 20, hot_probability=0.97, rng=rng, align=8
    )
    return builder, pattern


def _build_ws_trace(hot_kib: int, length: int) -> list:
    """One workload whose working set lands between L1 and L2 — the
    regime an L2 is built for (the SPEC92 stand-ins mostly stream past
    it).  Deterministic in (hot_kib, length); see the fingerprint."""
    builder, pattern = _ws_builder(hot_kib)
    # Long enough that the hot set is resident, not compulsory-missing.
    return builder.build(pattern, max(length, 6 * hot_kib * 256))


def _ws_profile(hot_kib: int, length: int):
    """Reuse profile of :func:`_build_ws_trace`, no Instruction objects.

    Same builder, same RNG draws — ``build_reference_arrays`` yields the
    arrays :func:`repro.cache.reuse.build_profile` would extract from
    the materialized trace."""
    from repro.cache.reuse import ReuseProfile

    builder, pattern = _ws_builder(hot_kib)
    n = max(length, 6 * hot_kib * 256)
    index, address, is_store, size = builder.build_reference_arrays(
        pattern, n
    )
    return ReuseProfile(n, index, address, is_store, size)


def _ws_fingerprint(hot_kib: int, length: int) -> str:
    return (
        f"ws/{_WS_GENERATOR_VERSION}/{hot_kib}K/{length}/{_WS_SEED}"
        "/0.97/0.3/1048576"
    )


def run(quick: bool = False) -> ExperimentResult:
    """Effective beta_m per workload and the resulting feature winner."""
    length = 10_000 if quick else 40_000
    result = ExperimentResult(
        experiment_id="extension_multilevel",
        title=(
            "Two-level hierarchy folded into an effective beta_m "
            f"(8K L1 + 128K L2, L2 hit {L2_HIT_CYCLES:g}, memory {MEMORY_CYCLE:g})"
        ),
    )
    # Phase-1 event streams for the L1 geometry; the hierarchy then only
    # steps the (far shorter) L1 miss/copy-back stream through the L2.
    streams = {
        name: spec92_events(name, length, L1, seed=7)
        for name in SPEC92_PROFILES
    }
    for name, hot_kib in (("ws-16K", 16), ("ws-32K", 32)):
        streams[name] = events_store.get_or_extract(
            _ws_fingerprint(hot_kib, length),
            L1,
            lambda hot_kib=hot_kib: _build_ws_trace(hot_kib, length),
            profile_factory=lambda hot_kib=hot_kib: _ws_profile(
                hot_kib, length
            ),
        )
    rows = []
    for name, events in streams.items():
        stats, beta_eff = single_level_equivalent_from_events(
            events, L2, L2_HIT_CYCLES, MEMORY_CYCLE
        )
        config = SystemConfig(4, 32, beta_eff, pipeline_turnaround=2.0)
        bus_r = miss_volume_ratio_for_doubling(config, 0.5)
        pipe_r = pipelined_miss_volume_ratio(config, 0.5)
        winner = "pipelined" if pipe_r > bus_r else "doubling bus"
        rows.append(
            (
                name,
                f"{stats.l1_miss_ratio:.1%}",
                f"{stats.l2_local_miss_ratio:.1%}",
                beta_eff,
                winner,
            )
        )
    result.tables.append(
        format_table(
            ["program", "L1 MR", "L2 local MR", "effective beta_m", "best feature"],
            rows,
        )
    )

    no_l2_winner = (
        "pipelined"
        if pipelined_miss_volume_ratio(
            SystemConfig(4, 32, MEMORY_CYCLE, pipeline_turnaround=2.0), 0.5
        )
        > miss_volume_ratio_for_doubling(
            SystemConfig(4, 32, MEMORY_CYCLE, pipeline_turnaround=2.0), 0.5
        )
        else "doubling bus"
    )
    winners = {row[0]: row[4] for row in rows}
    flipped = [name for name, winner in winners.items() if winner != no_l2_winner]
    result.notes.append(
        f"without an L2 (beta_m = {MEMORY_CYCLE:g}) the best feature is "
        f"{no_l2_winner}; with the L2, the effective beta_m drops below "
        f"the ~4.7-cycle crossover and flips the winner for: "
        f"{', '.join(flipped) if flipped else 'none'}."
    )
    result.notes.append(
        "streaming stand-ins blow through the 128K L2 (local MR ~100%): "
        "for them the L2 only adds its lookup tax (effective beta_m "
        "slightly ABOVE memory) — an L2 is not free; workloads with "
        "L2-sized working sets (ws-16K/32K) get effective beta_m near "
        "the SRAM cost.  Either way Eq. (2) applies unchanged at the "
        "effective operating point (Section 4.5)."
    )
    return result
