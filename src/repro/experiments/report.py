"""Reproduction scorecard generator.

Runs every paper experiment, checks every :mod:`repro.experiments.claims`
claim, and renders a single markdown report — the "did the reproduction
hold" artifact a reviewer reads first.  Wired into the runner as
``--report`` (which forwards ``--jobs`` so the experiment runs fan out
across worker processes; claims are evaluated in the parent either way,
so the scorecard is identical for any job count).
"""

from __future__ import annotations

import logging
import time
from pathlib import Path

from repro.experiments.claims import ClaimOutcome, evaluate_claims
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import tracing

logger = logging.getLogger(__name__)

#: Experiments the claims need (the paper artifacts, not the ablations).
PAPER_EXPERIMENT_IDS = (
    "table2",
    "table3",
    "figure1",
    "figure2",
    "example1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
)


def _timed_run(experiment_id: str, quick: bool):
    """Worker: one experiment plus its wall time (pickles for the pool)."""
    t0 = time.perf_counter()
    result = run_experiment(experiment_id, quick=quick)
    return result, time.perf_counter() - t0


def build_report(
    quick: bool = True, include_ablations: bool = False, jobs: int = 1
) -> str:
    """Run experiments, evaluate claims, return the markdown report.

    ``jobs > 1`` fans the experiment runs out over worker processes,
    consuming results in paper order — every experiment is
    deterministic, so the scorecard is identical for any job count.
    """
    started = time.perf_counter()
    ids = list(PAPER_EXPERIMENT_IDS)
    if include_ablations:
        ids += [i for i in EXPERIMENTS if i not in PAPER_EXPERIMENT_IDS]
    results = {}
    timings = {}
    if jobs > 1 and len(ids) > 1:
        from concurrent.futures import ProcessPoolExecutor

        logger.info("report: running %d experiments on %d workers", len(ids), jobs)
        with ProcessPoolExecutor(max_workers=min(jobs, len(ids))) as pool:
            futures = {
                experiment_id: pool.submit(_timed_run, experiment_id, quick)
                for experiment_id in ids
            }
            for experiment_id in ids:
                results[experiment_id], timings[experiment_id] = futures[
                    experiment_id
                ].result()
    else:
        for experiment_id in ids:
            with tracing.span("report.run", experiment=experiment_id):
                results[experiment_id], timings[experiment_id] = _timed_run(
                    experiment_id, quick
                )
    outcomes = evaluate_claims(results)
    elapsed = time.perf_counter() - started
    return _render(outcomes, results, timings, elapsed, quick)


def _render(
    outcomes: list[ClaimOutcome],
    results,
    timings,
    elapsed: float,
    quick: bool,
) -> str:
    passed = sum(outcome.passed for outcome in outcomes)
    lines = [
        "# Reproduction scorecard",
        "",
        "Paper: *A Unified Architectural Tradeoff Methodology* "
        "(Chen & Somani, ISCA 1994).",
        "",
        f"**{passed}/{len(outcomes)} claims reproduced** "
        f"({'quick' if quick else 'full'} fidelity, {elapsed:.1f}s).",
        "",
        "| claim | paper location | statement | verdict |",
        "|---|---|---|---|",
    ]
    for outcome in outcomes:
        verdict = "PASS" if outcome.passed else f"FAIL {outcome.error}".strip()
        lines.append(
            f"| `{outcome.claim.claim_id}` | {outcome.claim.section} | "
            f"{outcome.claim.statement} | {verdict} |"
        )
    lines += ["", "## Experiments run", ""]
    for experiment_id, result in results.items():
        lines.append(
            f"* `{experiment_id}` — {result.title} "
            f"({timings[experiment_id]:.1f}s)"
        )
        for note in result.notes:
            lines.append(f"    * {note}")
    return "\n".join(lines) + "\n"


def write_report(
    path: str | Path,
    quick: bool = True,
    include_ablations: bool = False,
    jobs: int = 1,
) -> Path:
    """Build and write the report; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        build_report(quick=quick, include_ablations=include_ablations, jobs=jobs)
    )
    return target
