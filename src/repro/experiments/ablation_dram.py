"""Ablation: constant-beta_m versus page-mode DRAM.

Eq. (2) treats the memory cycle as a constant beta_m.  Real early-90s
DRAM had fast-page mode, where a transfer inside the open row is much
cheaper.  This ablation runs the six stand-in traces on a page-mode
model, extracts the *effective* beta_m each workload saw, and checks the
paper's abstraction: replaying the constant-cycle model at that
effective beta_m reproduces the page-mode execution time within a few
percent — sequential workloads see an effective cycle near the page-hit
cost, scattered ones near the page-miss cost.
"""

from __future__ import annotations

from repro.cache.cache import CacheConfig
from repro.core.stalling import StallPolicy
from repro.cpu.replay import replay
from repro.experiments.base import ExperimentResult
from repro.experiments._phi import spec92_events
from repro.memory.dram import PageModeDram
from repro.memory.mainmem import MainMemory
from repro.trace.spec92 import SPEC92_PROFILES
from repro.util.tables import format_table

PAGE_HIT = 4.0
PAGE_MISS = 12.0
ROW_BYTES = 2048
CACHE = CacheConfig(8192, 32, 2)


def run(quick: bool = False) -> ExperimentResult:
    """Page-mode vs constant-cycle execution time per program."""
    length = 6_000 if quick else 20_000
    result = ExperimentResult(
        experiment_id="ablation_dram",
        title=(
            "Page-mode DRAM vs constant beta_m "
            f"(hit {PAGE_HIT:.0f} / miss {PAGE_MISS:.0f} cycles, 2 KB rows)"
        ),
    )
    rows = []
    max_error = 0.0
    for name in SPEC92_PROFILES:
        events = spec92_events(name, length, CACHE, seed=7)
        # The replay kernel drives the stateful DRAM model's
        # schedule_fill in program order, so the page-hit counters read
        # below match the step simulator's exactly.
        dram = PageModeDram(PAGE_HIT, PAGE_MISS, ROW_BYTES, 4)
        dram_run = replay(events, dram, StallPolicy.FULL_STALL)
        effective = dram.effective_memory_cycle()
        flat_run = replay(
            events, MainMemory(effective, 4), StallPolicy.FULL_STALL
        )
        error = abs(flat_run.cycles - dram_run.cycles) / dram_run.cycles
        max_error = max(max_error, error)
        rows.append(
            (
                name,
                f"{dram.page_hit_ratio:.0%}",
                effective,
                dram_run.cycles,
                flat_run.cycles,
                f"{100 * error:.2f}%",
            )
        )
    result.tables.append(
        format_table(
            [
                "program",
                "page hits",
                "effective beta_m",
                "page-mode cycles",
                "constant-cycle cycles",
                "error",
            ],
            rows,
        )
    )
    result.notes.append(
        f"worst-case abstraction error {100 * max_error:.2f}% — the "
        "paper's constant-beta_m model is a faithful stand-in once "
        "beta_m is set to the workload's effective value."
    )
    result.notes.append(
        "sequential programs ride the open row (high page-hit ratio, low "
        "effective beta_m); scattered programs pay page misses."
    )
    return result
