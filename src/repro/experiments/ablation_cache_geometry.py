"""Ablation: Figure 1's stalling factors versus cache geometry.

Figure 1 fixes an 8 KB two-way cache.  The stalling factor is a property
of the *interaction* between the blocking policy and the reference
stream, so it should be largely geometry-insensitive — misses get rarer
with a bigger cache, but each miss's stall profile stays similar.  This
ablation verifies that: phi (% of L/D) moves by only a few points across
4-32 KB and 1-4 ways, while the miss ratio moves by a factor of ~2.
That separation is what lets the paper measure phi once and reuse it
across the tradeoff curves.
"""

from __future__ import annotations

from repro.cache.cache import CacheConfig
from repro.core.stalling import StallPolicy
from repro.cpu.replay import replay
from repro.experiments._phi import spec92_events
from repro.memory.mainmem import MainMemory
from repro.experiments.base import ExperimentResult
from repro.util.tables import format_table

GEOMETRIES = (
    (4096, 1),
    (8192, 1),
    (8192, 2),
    (16384, 2),
    (32768, 4),
)
BETA_M = 8.0
PROGRAMS = ("swm256", "ear", "doduc")


def run(quick: bool = False) -> ExperimentResult:
    """Measure BNL1 phi and miss ratio across cache geometries."""
    length = 8_000 if quick else 30_000
    result = ExperimentResult(
        experiment_id="ablation_cache_geometry",
        title="Stalling factor vs cache geometry (BNL1, beta_m=8, L=32)",
    )
    rows = []
    phis, miss_ratios = [], []
    for total_bytes, ways in GEOMETRIES:
        config = CacheConfig(total_bytes, 32, ways)
        phi_sum = mr_sum = 0.0
        for name in PROGRAMS:
            # Phase 1 gives the miss ratio for free; phase 2 the timing.
            events = spec92_events(name, length, config, seed=7)
            timing = replay(
                events, MainMemory(BETA_M, 4), StallPolicy.BUS_NOT_LOCKED_1
            )
            phi_sum += timing.stall_percentage(8)
            mr_sum += events.stats.miss_ratio
        phi = phi_sum / len(PROGRAMS)
        mr = mr_sum / len(PROGRAMS)
        phis.append(phi)
        miss_ratios.append(mr)
        rows.append((f"{total_bytes // 1024}K", ways, phi, 100.0 * mr))
    result.tables.append(
        format_table(
            ["cache", "ways", "phi (% of L/D)", "miss ratio (%)"],
            rows,
        )
    )
    phi_spread = max(phis) - min(phis)
    mr_spread = max(miss_ratios) / min(miss_ratios)
    result.notes.append(
        f"phi spread across geometries: {phi_spread:.1f} points; miss "
        f"ratio spread: {mr_spread:.1f}x — the stalling factor is far "
        "less geometry-sensitive than the miss ratio, supporting the "
        "paper's measure-once use of phi."
    )
    return result
