"""Command-line experiment runner.

Examples::

    python -m repro.experiments.runner --all
    python -m repro.experiments.runner figure3 figure4 --quick
    python -m repro.experiments.runner --all --out results/ --jobs 4
    python -m repro.experiments.runner figure1 --quick --out tmp \\
        --trace trace.json --metrics metrics.json -v

``--jobs N`` fans independent experiments out over N worker processes
(and, when a single experiment is requested, parallelizes its phase-1
functional cache passes instead).  Every experiment is deterministic, so
results — including ``--out`` files — are byte-identical for any job
count; only wall-clock changes.  Results print in request order either
way.

Observability (see ``docs/OBSERVABILITY.md``):

* ``--trace FILE`` records spans into a Chrome-trace JSON (open in
  Perfetto); worker processes get their own thread tracks.
* ``--metrics FILE`` writes the aggregated counters/histograms.  Workers
  collect per-experiment snapshots that the parent merges in request
  order, so the aggregate is byte-identical for any ``--jobs N``.
* every ``--out`` run additionally writes ``<id>.meta.json`` — a run
  manifest with config, seeds, engine path, the Eq. (2) cycle
  breakdown, and the per-experiment metrics snapshot.
* ``-v`` / ``-vv`` / ``--log-level`` control diagnostics on stderr.
"""

from __future__ import annotations

import argparse
import logging
import time
from collections.abc import Sequence
from typing import Any

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import logs, manifest, metrics, tracing
from repro.obs import profile as profile_mod

logger = logging.getLogger(__name__)


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'A Unified Architectural "
            "Tradeoff Methodology' (Chen & Somani, ISCA 1994)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (available: {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller traces and sparser sweeps (seconds instead of minutes)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        help="also write <id>.txt, <id>.csv and a <id>.meta.json run "
        "manifest into DIR",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent experiments (default: 1); "
        "results are identical for any N",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="run the paper experiments, check every claim, write a "
        "markdown reproduction scorecard to FILE, and print it",
    )
    parser.add_argument(
        "--no-events-cache",
        action="store_true",
        help="disable the on-disk event-stream cache for this run "
        "(results are identical either way; see docs/ENGINE.md)",
    )
    parser.add_argument(
        "--no-reuse-profile",
        action="store_true",
        help="disable the reuse-distance phase-1 engine for this run: "
        "every extraction steps the Cache oracle instead (results are "
        "byte-identical either way; see docs/ENGINE.md)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=profile_mod.DEFAULT_HZ,
        default=None,
        type=int,
        metavar="HZ",
        help="sample wall-clock stacks during each experiment (default "
        f"{profile_mod.DEFAULT_HZ} Hz; spell a custom rate --profile=HZ) "
        "and write a span-attributed <id>.profile.json beside the "
        "manifest; requires --out",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record spans into a Chrome-trace JSON (view in Perfetto)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the aggregated metrics snapshot as JSON",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="diagnostics on stderr (-v info, -vv debug)",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        help="explicit log level (debug/info/warning/error); wins over -v",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.profile is not None:
        if not 1 <= args.profile <= 1000:
            parser.error(
                f"--profile must be within [1, 1000] Hz, got {args.profile}"
            )
        if not args.out and not args.report and not args.list:
            parser.error("--profile writes <id>.profile.json, so it needs --out")
    return args


def _run_one(
    experiment_id: str,
    quick: bool,
    with_tracing: bool = False,
    with_metrics: bool = False,
    worker: bool = False,
    profile_hz: int | None = None,
) -> tuple[
    ExperimentResult,
    float,
    dict[str, Any] | None,
    list | None,
    dict[str, Any] | None,
]:
    """Run one experiment; returns (result, seconds, metrics, spans, profile).

    Top-level so it pickles for :class:`ProcessPoolExecutor`.  Collection
    is scoped per experiment: a fresh metrics registry is installed and
    the φ memo caches are cleared first, so the snapshot describes a cold
    start regardless of process reuse — sequential and worker runs
    produce identical snapshots.  ``worker`` marks a pool-process call:
    a fresh local tracer is installed (a forked child would otherwise
    append to its useless copy of the parent's tracer) and its events
    are returned for the parent to adopt; in the parent, spans land on
    the already-active tracer.

    ``profile_hz`` wraps the experiment in a :class:`SamplingProfiler`
    window (one per experiment, so with ``--jobs N`` each worker process
    samples itself) and returns the plain-dict profile document.
    """
    local_tracer = None
    if with_tracing and worker:
        local_tracer = tracing.enable_tracing(name=f"worker:{experiment_id}")
    registry = None
    if with_metrics:
        registry = metrics.enable_metrics()
    if with_metrics or with_tracing:
        # Cold-start the φ memo caches so the collected spans/counters
        # describe this experiment completely and independently of what
        # ran earlier in the process (or of the job count).
        from repro.experiments._phi import clear_caches

        clear_caches()
    profiler = None
    if profile_hz is not None:
        profiler = profile_mod.SamplingProfiler(hz=profile_hz).start()
    started = time.perf_counter()
    try:
        with tracing.span("runner.run", experiment=experiment_id, quick=quick):
            result = run_experiment(experiment_id, quick=quick)
    finally:
        if profiler is not None:
            profiler.stop()
    elapsed = time.perf_counter() - started
    profile_document = profiler.document() if profiler is not None else None
    snapshot = None
    if registry is not None:
        snapshot = registry.snapshot()
        metrics.disable_metrics()
    events = None
    if local_tracer is not None:
        events = local_tracer.events
        tracing.disable_tracing()
    return result, elapsed, snapshot, events, profile_document


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit status."""
    args = _parse_args(argv)
    logs.configure(verbosity=args.verbose, level=args.log_level)
    if args.no_events_cache:
        # Via the environment so --jobs worker processes inherit it.
        import os

        from repro.cache.events_store import EVENTS_CACHE_ENV

        os.environ[EVENTS_CACHE_ENV] = "0"
    if args.no_reuse_profile:
        # Same propagation trick as --no-events-cache.
        import os

        from repro.cache.reuse_store import REUSE_PROFILE_ENV

        os.environ[REUSE_PROFILE_ENV] = "0"
    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    if args.report:
        from repro.experiments.report import write_report

        path = write_report(args.report, quick=args.quick, jobs=args.jobs)
        print(path.read_text())
        print(f"[report written to {path}]")
        return 0
    ids = list(EXPERIMENTS) if args.all else args.experiments
    if not ids:
        logger.error("nothing to run: pass experiment ids or --all")
        return 2
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        logger.error(
            "unknown experiment(s): %s; available: %s",
            ", ".join(unknown),
            ", ".join(EXPERIMENTS),
        )
        return 2

    # Collection plan: tracing follows --trace; metrics are needed for a
    # --metrics file and for the manifest every --out run writes.  While
    # metrics are on, each experiment starts from cleared φ memo caches
    # so its counts are complete and job-count independent.
    with_tracing = bool(args.trace)
    with_metrics = bool(args.metrics or args.out)
    tracer = tracing.enable_tracing() if with_tracing else None
    aggregate = metrics.MetricsRegistry() if with_metrics else None
    logger.info(
        "running %d experiment(s) with jobs=%d quick=%s tracing=%s metrics=%s",
        len(ids),
        args.jobs,
        args.quick,
        with_tracing,
        with_metrics,
    )

    if args.jobs > 1 and len(ids) > 1:
        # Fan whole experiments out across processes; consume futures in
        # request order so stdout, --out files and merged metrics match a
        # sequential run.
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(args.jobs, len(ids))) as pool:
            futures = [
                pool.submit(
                    _run_one,
                    experiment_id,
                    args.quick,
                    with_tracing,
                    with_metrics,
                    True,
                    args.profile,
                )
                for experiment_id in ids
            ]
            outcomes = [future.result() for future in futures]
        if tracer is not None:
            for worker_tid, (experiment_id, outcome) in enumerate(
                zip(ids, outcomes), start=1
            ):
                events = outcome[3]
                if events:
                    tracer.adopt(
                        events, tid=worker_tid, name=f"worker:{experiment_id}"
                    )
    else:
        if args.jobs > 1:
            # One experiment: parallelize inside it (phase-1 extraction).
            from repro.experiments._phi import set_phase1_jobs

            set_phase1_jobs(args.jobs)
        try:
            outcomes = [
                _run_one(
                    experiment_id,
                    args.quick,
                    with_tracing,
                    with_metrics,
                    profile_hz=args.profile,
                )
                for experiment_id in ids
            ]
        finally:
            if args.jobs > 1:
                from repro.experiments._phi import set_phase1_jobs

                set_phase1_jobs(1)

    status = 0
    for experiment_id, (result, elapsed, snapshot, _events, profile_doc) in zip(
        ids, outcomes
    ):
        logger.info("%s finished in %.1fs", experiment_id, elapsed)
        print(result.render())
        print(f"[{experiment_id} finished in {elapsed:.1f}s]")
        print()
        if aggregate is not None and snapshot is not None:
            aggregate.merge(snapshot)
        if args.out:
            written = result.save(args.out)
            manifest_path = manifest.write_manifest(
                args.out,
                experiment_id,
                manifest.build_manifest(
                    experiment_id=experiment_id,
                    title=result.title,
                    quick=args.quick,
                    jobs=args.jobs,
                    seed=_default_seed(),
                    n_instructions=_instruction_count(args.quick),
                    wall_time_s=elapsed,
                    outputs=[path.name for path in written],
                    metrics_snapshot=snapshot,
                ),
            )
            extra = [manifest_path]
            if profile_doc is not None:
                from pathlib import Path

                from repro.util.jsonout import write_json

                extra.append(
                    write_json(
                        Path(args.out) / f"{experiment_id}.profile.json",
                        profile_doc,
                    )
                )
            for path in (*written, *extra):
                print(f"  wrote {path}")

    if args.metrics and aggregate is not None:
        from repro.util.jsonout import write_json

        metrics_path = write_json(
            args.metrics,
            {"schema": metrics.SNAPSHOT_SCHEMA, **aggregate.snapshot()},
        )
        print(f"[metrics written to {metrics_path}]")
    if tracer is not None:
        tracing.disable_tracing()
        trace_path = tracer.write(args.trace)
        print(f"[trace written to {trace_path}; open in https://ui.perfetto.dev]")
    return status


def _default_seed() -> int:
    from repro.experiments._phi import DEFAULT_SEED

    return DEFAULT_SEED


def _instruction_count(quick: bool) -> int:
    from repro.experiments._phi import FULL_INSTRUCTIONS, QUICK_INSTRUCTIONS

    return QUICK_INSTRUCTIONS if quick else FULL_INSTRUCTIONS


if __name__ == "__main__":
    raise SystemExit(main())
